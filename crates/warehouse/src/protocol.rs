//! The source ↔ warehouse protocol (paper §5.1).
//!
//! Sources report updates at one of three levels, matching the paper's
//! three scenarios:
//!
//! 1. [`ReportLevel::OidsOnly`] — "the source only reports the type of
//!    U and the OIDs of all directly affected source objects";
//! 2. [`ReportLevel::WithValues`] — "in addition to OIDs, the source
//!    also reports the label and value of all directly affected
//!    objects";
//! 3. [`ReportLevel::WithPaths`] — "for each directly affected object
//!    N, the source will report `path(ROOT, N)` as well as the OIDs of
//!    objects along this path".
//!
//! The warehouse sends [`SourceQuery`] messages back when the report
//! alone cannot answer Algorithm 1's functions; every message in both
//! directions carries an estimated wire size so experiments can report
//! bytes as well as query counts.

use gsdb::{AppliedUpdate, Atom, Label, Object, Oid, Path, Value};
use gsview_obs::metrics::{Counter, Registry};
use std::fmt;
use std::sync::Arc;

/// How much information a source volunteers with each update report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReportLevel {
    /// Level 1: update type + OIDs of directly affected objects.
    OidsOnly,
    /// Level 2: + label, type and value of directly affected objects.
    WithValues,
    /// Level 3: + root path (labels and OIDs) of each directly
    /// affected object.
    WithPaths,
}

impl fmt::Display for ReportLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportLevel::OidsOnly => write!(f, "L1 (OIDs only)"),
            ReportLevel::WithValues => write!(f, "L2 (+labels/values)"),
            ReportLevel::WithPaths => write!(f, "L3 (+root paths)"),
        }
    }
}

/// Label + value of a directly affected object (level ≥ 2).
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectInfo {
    /// The object.
    pub oid: Oid,
    /// Its label.
    pub label: Label,
    /// Its value at report time.
    pub value: Value,
}

impl ObjectInfo {
    /// Capture from an object.
    pub fn of(obj: &Object) -> Self {
        ObjectInfo {
            oid: obj.oid,
            label: obj.label,
            value: obj.value.clone(),
        }
    }

    /// Reconstruct an object copy.
    pub fn to_object(&self) -> Object {
        Object {
            oid: self.oid,
            label: self.label,
            value: self.value.clone(),
        }
    }
}

/// The root path of a directly affected object (level 3): the labels
/// of `path(ROOT, N)` and the OIDs of the objects along it
/// (`ROOT = oids[0]`, …, `N = oids[last]`).
#[derive(Clone, Debug, PartialEq)]
pub struct RootPathInfo {
    /// The object the path leads to.
    pub target: Oid,
    /// Label path from the source root to the target.
    pub path: Path,
    /// OIDs along the path, root first, target last
    /// (`oids.len() == path.len() + 1`).
    pub oids: Vec<Oid>,
}

/// An update report from a source monitor.
///
/// Dropping a report unprocessed is a correctness event, not a leak:
/// every view defined over the source silently diverges until the gap
/// is detected and resynced. Hence `#[must_use]`.
#[must_use = "a dropped update report silently corrupts every view over its source"]
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateReport {
    /// Which source sent this.
    pub source: String,
    /// Monotonic per-source sequence number (for integrator ordering).
    pub seq: u64,
    /// The update itself (always carried: its OIDs are level 1).
    pub update: AppliedUpdate,
    /// Level-2 payload: info for each directly affected object.
    pub info: Vec<ObjectInfo>,
    /// Level-3 payload: root path for each directly affected object
    /// that is reachable from the source root.
    pub paths: Vec<RootPathInfo>,
}

impl UpdateReport {
    /// Level-2 lookup.
    pub fn info_of(&self, oid: Oid) -> Option<&ObjectInfo> {
        self.info.iter().find(|i| i.oid == oid)
    }

    /// Level-3 lookup.
    pub fn path_of(&self, oid: Oid) -> Option<&RootPathInfo> {
        self.paths.iter().find(|p| p.target == oid)
    }

    /// The effective report level of this message: what the payload
    /// actually carries, which may be lower than the source's
    /// configured level if a fault downgraded the report mid-stream.
    pub fn effective_level(&self) -> ReportLevel {
        if !self.paths.is_empty() {
            ReportLevel::WithPaths
        } else if !self.info.is_empty() {
            ReportLevel::WithValues
        } else {
            ReportLevel::OidsOnly
        }
    }
}

/// A query from the warehouse back to a source (paper Example 9's
/// `fetch X where func(X)` interface, specialized to the functions
/// Algorithm 1 needs).
#[derive(Clone, Debug, PartialEq)]
pub enum SourceQuery {
    /// Fetch one object (OID, label, type, value).
    Fetch(Oid),
    /// Compute `path(root, n)`.
    PathFromRoot {
        /// The root.
        root: Oid,
        /// The target.
        n: Oid,
    },
    /// Compute `ancestor(n, p)`.
    Ancestor {
        /// The object.
        n: Oid,
        /// The path.
        p: Path,
    },
    /// All ancestors with `path(X, n) = p` (DAG sources).
    AncestorsAll {
        /// The object.
        n: Oid,
        /// The path.
        p: Path,
    },
    /// Objects in `n.p` (the warehouse tests conditions locally, as in
    /// Example 9: "obtain all objects in N.p, then test cond() on
    /// those objects locally").
    Reach {
        /// The start object.
        n: Oid,
        /// The path.
        p: Path,
    },
    /// The label of an object.
    LabelOf(Oid),
}

/// A source's reply.
///
/// Replies are paid for (a metered round trip); discarding one means
/// the query was wasted, so constructors and carriers are `must_use`.
#[must_use = "a source reply cost a metered round trip; inspect it"]
#[derive(Clone, Debug, PartialEq)]
pub enum SourceReply {
    /// Reply to `Fetch`.
    Object(Option<ObjectInfo>),
    /// Reply to `PathFromRoot`.
    PathResult(Option<Path>),
    /// Reply to `Ancestor`.
    AncestorResult(Option<Oid>),
    /// Reply to `AncestorsAll`.
    Ancestors(Vec<Oid>),
    /// Reply to `Reach`: the objects in `n.p`, with values so the
    /// warehouse can test conditions locally.
    Objects(Vec<ObjectInfo>),
    /// Reply to `LabelOf`.
    LabelResult(Option<Label>),
}

/// Why a source interaction failed. Real deployments see both flavors
/// (a wrapper crash vs a slow network); the distinction matters for
/// retry accounting — a timeout has already cost latency before the
/// retry even starts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryFault {
    /// The source did not answer within the deadline.
    Timeout,
    /// The source refused or the connection dropped.
    Unavailable,
    /// The serving tier shed the request at admission control (a
    /// `Busy` reply): the source is healthy but over its connection
    /// limit. Retrying immediately is pointless — the retrying
    /// [`Channel`](crate::remote::Channel) jumps straight to its
    /// backoff ceiling for this fault.
    Overloaded,
}

impl fmt::Display for QueryFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryFault::Timeout => write!(f, "timeout"),
            QueryFault::Unavailable => write!(f, "unavailable"),
            QueryFault::Overloaded => write!(f, "overloaded (admission shed)"),
        }
    }
}

// ----------------------------------------------------------------------
// Wire-size estimation
// ----------------------------------------------------------------------

fn atom_bytes(a: &Atom) -> usize {
    match a {
        Atom::Int(_) | Atom::Real(_) => 8,
        Atom::Bool(_) => 1,
        Atom::Str(s) => s.len(),
        Atom::Tagged(unit, _) => unit.as_str().len() + 8,
    }
}

fn value_bytes(v: &Value) -> usize {
    match v {
        Value::Atom(a) => atom_bytes(a),
        Value::Set(s) => s.iter().map(|o| o.name().len()).sum::<usize>() + 2,
    }
}

fn info_bytes(i: &ObjectInfo) -> usize {
    i.oid.name().len() + i.label.as_str().len() + value_bytes(&i.value) + 3
}

fn path_bytes(p: &Path) -> usize {
    p.labels().iter().map(|l| l.as_str().len() + 1).sum()
}

/// Estimated wire size of a message, in bytes. Deterministic and
/// platform-independent; used by the cost meters.
pub trait WireSize {
    /// Estimated serialized size.
    fn wire_size(&self) -> usize;
}

impl WireSize for UpdateReport {
    fn wire_size(&self) -> usize {
        let base = self.source.len()
            + 8
            + self
                .update
                .directly_affected()
                .iter()
                .map(|o| o.name().len())
                .sum::<usize>()
            + 8;
        let l2: usize = self.info.iter().map(info_bytes).sum();
        let l3: usize = self
            .paths
            .iter()
            .map(|rp| {
                rp.target.name().len()
                    + path_bytes(&rp.path)
                    + rp.oids.iter().map(|o| o.name().len()).sum::<usize>()
            })
            .sum();
        base + l2 + l3
    }
}

impl WireSize for SourceQuery {
    fn wire_size(&self) -> usize {
        match self {
            SourceQuery::Fetch(o) | SourceQuery::LabelOf(o) => o.name().len() + 2,
            SourceQuery::PathFromRoot { root, n } => root.name().len() + n.name().len() + 2,
            SourceQuery::Ancestor { n, p }
            | SourceQuery::AncestorsAll { n, p }
            | SourceQuery::Reach { n, p } => n.name().len() + path_bytes(p) + 2,
        }
    }
}

impl WireSize for SourceReply {
    fn wire_size(&self) -> usize {
        match self {
            SourceReply::Object(o) => o.as_ref().map(info_bytes).unwrap_or(1),
            SourceReply::PathResult(p) => p.as_ref().map(path_bytes).unwrap_or(1),
            SourceReply::AncestorResult(o) => o.map(|o| o.name().len()).unwrap_or(1),
            SourceReply::Ancestors(os) => os.iter().map(|o| o.name().len()).sum::<usize>() + 1,
            SourceReply::Objects(infos) => infos.iter().map(info_bytes).sum::<usize>() + 1,
            SourceReply::LabelResult(l) => l.map(|l| l.as_str().len()).unwrap_or(1),
        }
    }
}

/// Communication cost counters, shared between the warehouse side and
/// the source wrapper (atomic: wrappers may be driven from pump
/// threads).
///
/// Each connected source gets its **own** meter (the warehouse installs
/// one per wrapper at connect time), so retry and fault traffic is
/// attributable per source — a chaos experiment can tell which source's
/// unreliability drove the extra round trips.
///
/// [`CostMeter::snapshot`] captures all counters **consistently**: the
/// meter is now a thin compatibility shim over a private
/// [`gsview_obs::metrics::Registry`], whose seqlock write sections
/// (writers bump a generation on entry and exit of each multi-counter
/// record; the reader retries until it observes a quiet generation)
/// guarantee the returned [`CostSnapshot`] corresponds to a state
/// between two whole record operations. Without it, a snapshot taken
/// mid-`record_query` could report `queries` and `messages` that
/// disagree (e.g. one query but zero of its two messages), which
/// showed up as mutually inconsistent columns in E12/E13 output.
/// [`CostMeter::reset`] zeroes all counters under the same write
/// protocol, so a concurrent snapshot sees either all counters
/// pre-reset or all zero.
pub struct CostMeter {
    /// Backing registry: owns the seqlock discipline the old
    /// hand-rolled gen/writers pair implemented.
    reg: Registry,
    queries: Arc<Counter>,
    messages: Arc<Counter>,
    bytes: Arc<Counter>,
    retries: Arc<Counter>,
    faults: Arc<Counter>,
}

impl fmt::Debug for CostMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.snapshot();
        f.debug_struct("CostMeter")
            .field("queries", &s.queries)
            .field("messages", &s.messages)
            .field("bytes", &s.bytes)
            .field("retries", &s.retries)
            .field("faults", &s.faults)
            .finish()
    }
}

impl Default for CostMeter {
    fn default() -> Self {
        let reg = Registry::new();
        CostMeter {
            queries: reg.counter("cost.queries"),
            messages: reg.counter("cost.messages"),
            bytes: reg.counter("cost.bytes"),
            retries: reg.counter("cost.retries"),
            faults: reg.counter("cost.faults"),
            reg,
        }
    }
}

/// A point-in-time copy of a [`CostMeter`]'s counters.
#[must_use = "a snapshot is only useful compared against another"]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostSnapshot {
    /// Queries sent.
    pub queries: u64,
    /// Messages (reports + queries + replies).
    pub messages: u64,
    /// Estimated bytes.
    pub bytes: u64,
    /// Retried query attempts.
    pub retries: u64,
    /// Failed query attempts (timeouts + unavailability).
    pub faults: u64,
}

impl CostSnapshot {
    /// Counter growth since an earlier snapshot (saturating, so a
    /// concurrent `reset()` yields zeros rather than wrapping).
    pub fn delta_since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            queries: self.queries.saturating_sub(earlier.queries),
            messages: self.messages.saturating_sub(earlier.messages),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            retries: self.retries.saturating_sub(earlier.retries),
            faults: self.faults.saturating_sub(earlier.faults),
        }
    }
}

impl CostMeter {
    /// Fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a query/reply round trip.
    pub fn record_query(&self, q: &SourceQuery, r: &SourceReply) {
        let _s = self.reg.section();
        self.queries.incr();
        self.messages.add(2);
        self.bytes.add((q.wire_size() + r.wire_size()) as u64);
    }

    /// Record a pushed update report.
    pub fn record_report(&self, r: &UpdateReport) {
        let _s = self.reg.section();
        self.messages.incr();
        self.bytes.add(r.wire_size() as u64);
    }

    /// Record a failed query attempt (the request went out and cost a
    /// message, but no usable reply came back).
    pub fn record_fault(&self, q: &SourceQuery, _fault: QueryFault) {
        let _s = self.reg.section();
        self.faults.incr();
        self.messages.incr();
        self.bytes.add(q.wire_size() as u64);
    }

    /// Record one retry attempt about to be made after a fault.
    pub fn record_retry(&self) {
        let _s = self.reg.section();
        self.retries.incr();
    }

    /// Queries sent so far.
    pub fn queries(&self) -> u64 {
        self.queries.get()
    }

    /// Messages (reports + queries + replies) so far.
    pub fn messages(&self) -> u64 {
        self.messages.get()
    }

    /// Estimated bytes so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.get()
    }

    /// Retried query attempts so far.
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Failed query attempts so far.
    pub fn faults(&self) -> u64 {
        self.faults.get()
    }

    /// Capture all counters as one consistent state: the snapshot
    /// corresponds to the meter between two whole record operations,
    /// never mid-record ([`Registry::snapshot`]'s seqlock retry loop).
    pub fn snapshot(&self) -> CostSnapshot {
        let s = self.reg.snapshot();
        CostSnapshot {
            queries: s.counter("cost.queries"),
            messages: s.counter("cost.messages"),
            bytes: s.counter("cost.bytes"),
            retries: s.counter("cost.retries"),
            faults: s.counter("cost.faults"),
        }
    }

    /// Reset all counters atomically (as one write section): a
    /// concurrent [`CostMeter::snapshot`] observes either the whole
    /// pre-reset state or all zeros, never a mix.
    pub fn reset(&self) {
        self.reg.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_lookups() {
        let report = UpdateReport {
            source: "s1".into(),
            seq: 1,
            update: AppliedUpdate::Insert {
                parent: Oid::new("P2"),
                child: Oid::new("A2"),
            },
            info: vec![ObjectInfo {
                oid: Oid::new("A2"),
                label: Label::new("age"),
                value: Value::Atom(Atom::Int(40)),
            }],
            paths: vec![RootPathInfo {
                target: Oid::new("P2"),
                path: Path::parse("professor"),
                oids: vec![Oid::new("ROOT"), Oid::new("P2")],
            }],
        };
        assert!(report.info_of(Oid::new("A2")).is_some());
        assert!(report.info_of(Oid::new("P2")).is_none());
        assert_eq!(
            report.path_of(Oid::new("P2")).unwrap().path,
            Path::parse("professor")
        );
        assert!(report.wire_size() > 0);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(ReportLevel::OidsOnly < ReportLevel::WithValues);
        assert!(ReportLevel::WithValues < ReportLevel::WithPaths);
    }

    #[test]
    fn meter_accumulates() {
        let m = CostMeter::new();
        let q = SourceQuery::Fetch(Oid::new("P1"));
        let r = SourceReply::Object(None);
        m.record_query(&q, &r);
        m.record_query(&q, &r);
        assert_eq!(m.queries(), 2);
        assert_eq!(m.messages(), 4);
        assert!(m.bytes() > 0);
        m.reset();
        assert_eq!(m.queries(), 0);
    }

    #[test]
    fn meter_attributes_retries_and_faults() {
        let m = CostMeter::new();
        let q = SourceQuery::Fetch(Oid::new("P1"));
        let before = m.snapshot();
        m.record_fault(&q, QueryFault::Timeout);
        m.record_retry();
        m.record_query(&q, &SourceReply::Object(None));
        let delta = m.snapshot().delta_since(&before);
        assert_eq!(delta.faults, 1);
        assert_eq!(delta.retries, 1);
        assert_eq!(delta.queries, 1);
        // The failed attempt still cost a message on the wire.
        assert_eq!(delta.messages, 3);
        m.reset();
        assert_eq!(m.snapshot(), CostSnapshot::default());
    }

    #[test]
    fn snapshot_is_never_torn_under_concurrent_recording() {
        // Every record_query adds exactly (1 query, 2 messages, B
        // bytes) as one write section, so EVERY consistent snapshot
        // satisfies messages == 2*queries and bytes == B*queries. A
        // snapshot taken mid-record (the seed behavior) violates this.
        let m = CostMeter::new();
        let q = SourceQuery::Fetch(Oid::new("P1"));
        let r = SourceReply::Object(None);
        let per_query_bytes = (q.wire_size() + r.wire_size()) as u64;
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 2_000;
        std::thread::scope(|s| {
            for _ in 0..WRITERS {
                s.spawn(|| {
                    for _ in 0..PER_WRITER {
                        m.record_query(&q, &r);
                    }
                });
            }
            s.spawn(|| {
                loop {
                    let snap = m.snapshot();
                    assert_eq!(
                        snap.messages,
                        2 * snap.queries,
                        "torn snapshot: {snap:?}"
                    );
                    assert_eq!(
                        snap.bytes,
                        per_query_bytes * snap.queries,
                        "torn snapshot: {snap:?}"
                    );
                    if snap.queries == WRITERS as u64 * PER_WRITER {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(m.queries(), WRITERS as u64 * PER_WRITER);
    }

    #[test]
    fn reset_is_atomic_with_respect_to_snapshots() {
        let m = CostMeter::new();
        let q = SourceQuery::Fetch(Oid::new("P1"));
        let r = SourceReply::Object(None);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..1_000 {
                    m.record_query(&q, &r);
                    m.reset();
                }
            });
            s.spawn(|| {
                for _ in 0..1_000 {
                    let snap = m.snapshot();
                    // All-or-nothing: a half-reset state would break this.
                    assert_eq!(snap.messages, 2 * snap.queries, "torn reset: {snap:?}");
                }
            });
        });
    }

    #[test]
    fn effective_level_tracks_payload() {
        let update = AppliedUpdate::Insert {
            parent: Oid::new("P2"),
            child: Oid::new("A2"),
        };
        let mut r = UpdateReport {
            source: "s".into(),
            seq: 0,
            update,
            info: vec![],
            paths: vec![],
        };
        assert_eq!(r.effective_level(), ReportLevel::OidsOnly);
        r.info.push(ObjectInfo {
            oid: Oid::new("A2"),
            label: Label::new("age"),
            value: Value::Atom(Atom::Int(40)),
        });
        assert_eq!(r.effective_level(), ReportLevel::WithValues);
        r.paths.push(RootPathInfo {
            target: Oid::new("P2"),
            path: Path::parse("professor"),
            oids: vec![Oid::new("ROOT"), Oid::new("P2")],
        });
        assert_eq!(r.effective_level(), ReportLevel::WithPaths);
    }

    #[test]
    fn richer_reports_cost_more_bytes() {
        let update = AppliedUpdate::Insert {
            parent: Oid::new("P2"),
            child: Oid::new("A2"),
        };
        let l1 = UpdateReport {
            source: "s".into(),
            seq: 0,
            update: update.clone(),
            info: vec![],
            paths: vec![],
        };
        let l2 = UpdateReport {
            info: vec![ObjectInfo {
                oid: Oid::new("A2"),
                label: Label::new("age"),
                value: Value::Atom(Atom::Int(40)),
            }],
            ..l1.clone()
        };
        let l3 = UpdateReport {
            paths: vec![RootPathInfo {
                target: Oid::new("P2"),
                path: Path::parse("professor"),
                oids: vec![Oid::new("ROOT"), Oid::new("P2")],
            }],
            ..l2.clone()
        };
        assert!(l1.wire_size() < l2.wire_size());
        assert!(l2.wire_size() < l3.wire_size());
    }
}
