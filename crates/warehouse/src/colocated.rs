//! Source-colocated view maintenance with parallel fan-out.
//!
//! The paper's warehouse (§5) pays per-query costs because views live
//! far from the base data. The other deployment the paper describes is
//! the centralized one (§4): views materialized *at the source site*,
//! with direct base access. [`ColocatedViews`] realizes that setting
//! on top of a [`Source`]: it holds a portfolio of materialized views,
//! absorbs the same [`UpdateReport`]s a warehouse would consume (so a
//! source can feed both), and on [`flush`](ColocatedViews::flush)
//! maintains every view in a single [`ParallelMaintainer`] fan-out —
//! per-view delta partitioning plus multi-threaded batched
//! maintenance — against the source's latest **published epoch**
//! ([`Source::snapshot`]), not the locked live store. The whole
//! fan-out runs without holding the source mutex, so source-local
//! writers and wrapper readers proceed while views are maintained;
//! the snapshot is immutable, which is exactly the contract the
//! maintainer workers already required.
//!
//! Reports are buffered between flushes, so a flush also benefits from
//! batch consolidation: an edge inserted and deleted between two
//! flushes costs nothing at maintenance time.

use crate::protocol::UpdateReport;
use crate::source::Source;
use gsdb::{DeltaBatch, Oid, Result};
use gsview_core::recompute::recompute;
use gsview_core::{BatchOutcome, LocalBase, MaterializedView, ParallelMaintainer, SimpleViewDef};
use gsview_query::MaintBackend;

/// A portfolio of materialized views colocated with one source.
pub struct ColocatedViews {
    pm: ParallelMaintainer,
    views: Vec<MaterializedView>,
    pending: DeltaBatch,
    threads: usize,
}

impl ColocatedViews {
    /// Materialize `defs` against the source's latest committed epoch.
    /// Reads one published snapshot — never a shard lock — so source
    /// writers keep committing while the portfolio materializes.
    /// `threads` workers maintain the portfolio on each flush (clamped
    /// to the number of views; `0` means one).
    pub fn new(source: &Source, defs: Vec<SimpleViewDef>, threads: usize) -> Result<Self> {
        Self::from_maintainer(source, ParallelMaintainer::new(defs), threads)
    }

    /// Like [`ColocatedViews::new`], but with one explicit maintenance
    /// backend per definition (in order): `Algorithm1` lanes run the
    /// batched repair plan on their partitioned delta slice, `Circuit`
    /// lanes step a delta circuit over the full consolidated delta.
    ///
    /// Circuit state is epoch-consistent by construction: it is
    /// (re)built from a published snapshot on the first flush, and its
    /// version guard forces the same rebuild whenever a flush arrives
    /// against an epoch the circuit did not step through — which is
    /// exactly what happens on a **warm restart**, where the portfolio
    /// is rebuilt against a source recovered from the durable epoch
    /// log ([`Source::recover`]).
    pub fn with_backends(
        source: &Source,
        defs: Vec<SimpleViewDef>,
        backends: Vec<MaintBackend>,
        threads: usize,
    ) -> Result<Self> {
        Self::from_maintainer(
            source,
            ParallelMaintainer::with_backends(defs, backends),
            threads,
        )
    }

    fn from_maintainer(source: &Source, pm: ParallelMaintainer, threads: usize) -> Result<Self> {
        let snapshot = source.snapshot();
        let views = pm
            .defs()
            .map(|d| recompute(d, &mut LocalBase::new(&snapshot)))
            .collect::<Result<Vec<_>>>()?;
        Ok(ColocatedViews {
            pm,
            views,
            pending: DeltaBatch::new(),
            threads,
        })
    }

    /// Which maintenance backend the view named `name` runs on.
    pub fn backend_of(&self, name: &str) -> Option<MaintBackend> {
        self.pm
            .defs()
            .position(|d| d.view == Oid::new(name))
            .map(|i| self.pm.backend(i))
    }

    /// Buffer one update report for the next flush. The report is not
    /// consumed — the same report can still drive a remote warehouse.
    pub fn absorb(&mut self, report: &UpdateReport) {
        self.pending.push(report.update.clone());
    }

    /// Number of reports buffered since the last flush.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Maintain every view over the buffered reports: one epoch
    /// snapshot load, one consolidation, one parallel fan-out — no
    /// shard lock is ever taken (one consistent store-wide epoch is
    /// read, regardless of how many shards the source's commit
    /// pipeline runs), so updates and queries flow while maintenance
    /// runs. The snapshot already reflects every
    /// absorbed report (reports are emitted at or after commit, and
    /// commits publish), so maintenance sees the post-batch base state
    /// exactly as it did when it locked the live store. Returns the
    /// per-view outcomes, in definition order.
    pub fn flush(&mut self, source: &Source) -> Result<Vec<BatchOutcome>> {
        let _span = gsview_obs::span!("warehouse.flush",
            "views" = self.views.len(),
            "pending" = self.pending.len(),
            "threads" = self.threads);
        let batch = DeltaBatch::from_ops(self.pending.drain());
        let store = source.snapshot();
        self.pm
            .apply_batch(&mut self.views, &store, &batch, self.threads)
    }

    /// The materialized views, in definition order.
    pub fn views(&self) -> &[MaterializedView] {
        &self.views
    }

    /// The view materializing the definition named `name`.
    pub fn view(&self, name: &str) -> Option<&MaterializedView> {
        self.pm
            .defs()
            .position(|d| d.view == Oid::new(name))
            .map(|i| &self.views[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ReportLevel;
    use gsdb::{samples, Object, Update};
    use gsview_query::{CmpOp, Pred};

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn person_source() -> Source {
        let src = Source::empty("persons", oid("ROOT"), ReportLevel::OidsOnly);
        src.with_store(|s| samples::person_db(s).map(|_| ())).unwrap();
        src.with_store(|s| {
            s.drain_log();
        });
        src
    }

    fn defs() -> Vec<SimpleViewDef> {
        vec![
            SimpleViewDef::new("YP", "ROOT", "professor")
                .with_cond("age", Pred::new(CmpOp::Le, 45i64)),
            SimpleViewDef::new("ST", "ROOT", "professor.student"),
            SimpleViewDef::new("PS", "P1", "student"),
        ]
    }

    #[test]
    fn colocated_flush_matches_recompute_at_every_thread_count() {
        for threads in [1, 2, 4] {
            let src = person_source();
            let mut cv = ColocatedViews::new(&src, defs(), threads).unwrap();
            assert_eq!(cv.view("YP").unwrap().members_base(), vec![oid("P1")]);

            src.with_store(|s| s.create(Object::atom("A2", "age", 40i64)))
                .unwrap();
            src.apply(Update::insert("P2", "A2")).unwrap();
            src.apply(Update::modify("A1", 80i64)).unwrap();
            src.apply(Update::delete("P1", "P3")).unwrap();
            for r in src.monitor().poll() {
                cv.absorb(&r);
            }
            assert_eq!(cv.pending(), 4, "create + insert + modify + delete");
            let outcomes = cv.flush(&src).unwrap();
            assert_eq!(outcomes.len(), 3);
            assert_eq!(cv.pending(), 0);

            // Every view equals a from-scratch recompute of the final
            // source state.
            src.with_store(|s| {
                for (def, mv) in defs().iter().zip(cv.views()) {
                    let want = recompute(def, &mut LocalBase::new(s)).unwrap();
                    assert_eq!(
                        mv.members_base(),
                        want.members_base(),
                        "view {} at {threads} threads",
                        def.view
                    );
                }
            });
            assert_eq!(cv.view("YP").unwrap().members_base(), vec![oid("P2")]);
            assert!(cv.view("ST").unwrap().is_empty());
        }
    }

    #[test]
    fn circuit_backed_portfolio_matches_recompute_and_restarts_warm() {
        use gsview_durable::{DurableStore, MediaSet};
        use gsview_query::MaintBackend::{Algorithm1, Circuit};
        use std::sync::Arc;

        let durable = Arc::new(DurableStore::open(MediaSet::memory()).unwrap());
        let src = person_source();
        src.attach_durable(Arc::clone(&durable)).unwrap();
        let mut cv =
            ColocatedViews::with_backends(&src, defs(), vec![Circuit, Algorithm1, Circuit], 2)
                .unwrap();
        assert_eq!(cv.backend_of("YP"), Some(Circuit));
        assert_eq!(cv.backend_of("ST"), Some(Algorithm1));

        let check = |cv: &ColocatedViews, src: &Source, tag: &str| {
            src.with_store(|s| {
                for (def, mv) in defs().iter().zip(cv.views()) {
                    let want = recompute(def, &mut LocalBase::new(s)).unwrap();
                    assert_eq!(
                        mv.members_base(),
                        want.members_base(),
                        "view {} {tag}",
                        def.view
                    );
                }
            })
        };

        // Round 1: mixed batch, flushed against the live source.
        src.with_store(|s| s.create(Object::atom("A2", "age", 40i64)))
            .unwrap();
        src.apply(Update::insert("P2", "A2")).unwrap();
        src.apply(Update::modify("A1", 80i64)).unwrap();
        for r in src.monitor().poll() {
            cv.absorb(&r);
        }
        cv.flush(&src).unwrap();
        check(&cv, &src, "after first flush");
        assert_eq!(cv.view("YP").unwrap().members_base(), vec![oid("P2")]);

        // Crash: drop the source; only the durable epoch log survives.
        drop(src);
        let src = Source::recover("persons", oid("ROOT"), ReportLevel::OidsOnly, &durable)
            .unwrap()
            .expect("lineage is recoverable");

        // Warm restart: rebuild the portfolio against the recovered
        // epoch. Circuit lanes start unstepped and rebuild
        // epoch-consistently on their first flush.
        let mut cv =
            ColocatedViews::with_backends(&src, defs(), vec![Circuit, Algorithm1, Circuit], 2)
                .unwrap();
        check(&cv, &src, "after warm restart");

        // Round 2: the recovered pipeline keeps flowing through the
        // same circuit-backed flush path.
        src.apply(Update::modify("A1", 30i64)).unwrap();
        src.apply(Update::delete("P2", "A2")).unwrap();
        for r in src.monitor().poll() {
            cv.absorb(&r);
        }
        cv.flush(&src).unwrap();
        check(&cv, &src, "after post-recovery flush");
        assert_eq!(cv.view("YP").unwrap().members_base(), vec![oid("P1")]);
    }

    #[test]
    fn absorbing_does_not_consume_the_report() {
        let src = person_source();
        let mut cv = ColocatedViews::new(&src, defs(), 2).unwrap();
        src.apply(Update::modify("A1", 80i64)).unwrap();
        let reports = src.monitor().poll();
        assert_eq!(reports.len(), 1);
        for r in &reports {
            cv.absorb(r);
        }
        // The report object is untouched and still warehouse-usable.
        assert_eq!(reports[0].seq, 0);
        cv.flush(&src).unwrap();
        assert!(cv.view("YP").unwrap().is_empty());
    }

    #[test]
    fn consolidation_spans_buffered_reports() {
        let src = person_source();
        let mut cv = ColocatedViews::new(&src, defs(), 2).unwrap();
        // Detach and re-attach between flushes: nets to nothing.
        src.apply(Update::delete("ROOT", "P1")).unwrap();
        src.apply(Update::insert("ROOT", "P1")).unwrap();
        for r in src.monitor().poll() {
            cv.absorb(&r);
        }
        let outcomes = cv.flush(&src).unwrap();
        for o in &outcomes {
            assert_eq!(o.consolidated_ops, 0);
            assert!(!o.changed());
        }
        assert_eq!(cv.view("YP").unwrap().members_base(), vec![oid("P1")]);
    }
}
