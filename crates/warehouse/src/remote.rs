//! [`RemoteBase`]: the warehouse-side realization of the
//! [`BaseAccess`] interface Algorithm 1 runs against (paper §5.1).
//!
//! Each function is answered from the cheapest available tier:
//!
//! 1. the triggering **update report** (levels 2/3 carry labels,
//!    values, and root paths of the directly affected objects);
//! 2. the **auxiliary cache** (§5.2), when one is attached;
//! 3. a **query back to the source** through its wrapper — the
//!    expensive case the paper's techniques aim to avoid.

use crate::cache::AuxCache;
use crate::protocol::{SourceQuery, SourceReply, UpdateReport};
use crate::source::Wrapper;
use gsdb::{Label, Object, Oid, Path};
use gsview_core::BaseAccess;
use gsview_query::Pred;

/// Base access over a source wrapper, consulting the triggering report
/// and an optional auxiliary cache first.
pub struct RemoteBase<'a> {
    wrapper: &'a Wrapper,
    report: Option<&'a UpdateReport>,
    cache: Option<&'a AuxCache>,
}

impl<'a> RemoteBase<'a> {
    /// Access with neither report nor cache (pure querying).
    pub fn new(wrapper: &'a Wrapper) -> Self {
        RemoteBase {
            wrapper,
            report: None,
            cache: None,
        }
    }

    /// Attach the triggering update report.
    pub fn with_report(mut self, report: &'a UpdateReport) -> Self {
        self.report = Some(report);
        self
    }

    /// Attach an auxiliary cache.
    pub fn with_cache(mut self, cache: &'a AuxCache) -> Self {
        self.cache = Some(cache);
        self
    }
}

impl BaseAccess for RemoteBase<'_> {
    fn path_from_root(&mut self, root: Oid, n: Oid) -> Option<Path> {
        // Tier 1: level-3 reports carry path(ROOT, N) directly.
        if let Some(r) = self.report {
            if let Some(rp) = r.path_of(n) {
                return Some(rp.path.clone());
            }
        }
        // Tier 2: cache.
        if let Some(c) = self.cache {
            if let Some(p) = c.try_path_from_root(n) {
                return Some(p);
            }
            if c.root() == root && c.certainly_off_path(n) {
                // Complete-cache short circuit: n has no root path
                // that the view's location test could match, so the
                // maintenance algorithm will (correctly) treat the
                // update as irrelevant without a source query.
                return None;
            }
        }
        // Tier 3: query.
        match self.wrapper.serve(&SourceQuery::PathFromRoot { root, n }) {
            SourceReply::PathResult(p) => p,
            _ => None,
        }
    }

    fn ancestor(&mut self, n: Oid, p: &Path) -> Option<Oid> {
        if p.is_empty() {
            return Some(n);
        }
        // Tier 1: a level-3 root path of n names the OIDs along it —
        // the ancestor at distance |p| is right there if the labels
        // match.
        if let Some(r) = self.report {
            if let Some(rp) = r.path_of(n) {
                let len = rp.path.len();
                if p.len() <= len && rp.path.ends_with(p) {
                    // oids = [root, ..., n] has len+1 entries with n at
                    // index len; the ancestor |p| levels up is at
                    // index len - |p|.
                    return rp.oids.get(len - p.len()).copied();
                }
            }
        }
        if let Some(c) = self.cache {
            if let Some(a) = c.try_ancestor(n, p) {
                return Some(a);
            }
        }
        match self.wrapper.serve(&SourceQuery::Ancestor { n, p: p.clone() }) {
            SourceReply::AncestorResult(a) => a,
            _ => None,
        }
    }

    fn ancestors_all(&mut self, n: Oid, p: &Path) -> Vec<Oid> {
        match self
            .wrapper
            .serve(&SourceQuery::AncestorsAll { n, p: p.clone() })
        {
            SourceReply::Ancestors(a) => a,
            _ => Vec::new(),
        }
    }

    fn eval(&mut self, n: Oid, p: &Path, pred: Option<&Pred>) -> Vec<Oid> {
        // Tier 1: empty-path eval over a reported object can be
        // answered from the report (Example 5's insert(P2, A2) with a
        // level-2 report needs no query for eval(A2, ∅, cond)).
        if p.is_empty() {
            if let Some(r) = self.report {
                if let Some(info) = r.info_of(n) {
                    return match (pred, info.value.as_atom()) {
                        (Some(pr), Some(a)) => {
                            if pr.eval(a) {
                                vec![n]
                            } else {
                                vec![]
                            }
                        }
                        (Some(_), None) => vec![],
                        (None, _) => vec![n],
                    };
                }
            }
        }
        if let Some(c) = self.cache {
            if let Some(result) = c.try_eval(n, p, pred) {
                return result;
            }
        }
        // Tier 3: fetch n.p with values and test the condition locally
        // (Example 9).
        match self.wrapper.serve(&SourceQuery::Reach { n, p: p.clone() }) {
            SourceReply::Objects(infos) => infos
                .into_iter()
                .filter(|i| match pred {
                    None => true,
                    Some(pr) => i.value.as_atom().map(|a| pr.eval(a)).unwrap_or(false),
                })
                .map(|i| i.oid)
                .collect(),
            _ => Vec::new(),
        }
    }

    fn label_of(&mut self, n: Oid) -> Option<Label> {
        if let Some(r) = self.report {
            if let Some(info) = r.info_of(n) {
                return Some(info.label);
            }
        }
        if let Some(c) = self.cache {
            if let Some(l) = c.try_label(n) {
                return Some(l);
            }
        }
        match self.wrapper.serve(&SourceQuery::LabelOf(n)) {
            SourceReply::LabelResult(l) => l,
            _ => None,
        }
    }

    fn fetch(&mut self, n: Oid) -> Option<Object> {
        if let Some(r) = self.report {
            if let Some(info) = r.info_of(n) {
                return Some(info.to_object());
            }
        }
        if let Some(c) = self.cache {
            if let Some(o) = c.try_fetch(n) {
                return Some(o);
            }
        }
        match self.wrapper.serve(&SourceQuery::Fetch(n)) {
            SourceReply::Object(info) => info.map(|i| i.to_object()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CostMeter, ReportLevel};
    use crate::source::Source;
    use gsdb::{samples, Update};
    use gsview_query::{CmpOp, Pred};
    use std::sync::Arc;

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn person_source(level: ReportLevel) -> Source {
        let src = Source::empty("persons", oid("ROOT"), level);
        src.with_store(|s| samples::person_db(s).map(|_| ())).unwrap();
        src.with_store(|s| {
            s.drain_log();
        });
        src
    }

    #[test]
    fn report_tier_answers_without_queries_at_l3() {
        let src = person_source(ReportLevel::WithPaths);
        let meter = Arc::new(CostMeter::new());
        let w = src.wrapper(meter.clone());
        src.apply(Update::modify("A1", 50i64)).unwrap();
        let reports = src.monitor().poll();
        let report = &reports[0];
        let mut rb = RemoteBase::new(&w).with_report(report);
        // path(ROOT, A1) from the report.
        assert_eq!(
            rb.path_from_root(oid("ROOT"), oid("A1")),
            Some(Path::parse("professor.age"))
        );
        // ancestor(A1, age) from the report's OID list.
        assert_eq!(rb.ancestor(oid("A1"), &Path::parse("age")), Some(oid("P1")));
        // label from the L2 payload.
        assert_eq!(rb.label_of(oid("A1")).unwrap().as_str(), "age");
        assert_eq!(meter.queries(), 0, "all answered from the report");
    }

    #[test]
    fn query_tier_used_when_report_lacks_data() {
        let src = person_source(ReportLevel::OidsOnly);
        let meter = Arc::new(CostMeter::new());
        let w = src.wrapper(meter.clone());
        src.apply(Update::modify("A1", 50i64)).unwrap();
        let reports = src.monitor().poll();
        let mut rb = RemoteBase::new(&w).with_report(&reports[0]);
        assert_eq!(
            rb.path_from_root(oid("ROOT"), oid("A1")),
            Some(Path::parse("professor.age"))
        );
        assert!(meter.queries() >= 1, "L1 reports force query-back");
    }

    #[test]
    fn eval_tests_condition_locally() {
        let src = person_source(ReportLevel::OidsOnly);
        let meter = Arc::new(CostMeter::new());
        let w = src.wrapper(meter.clone());
        let mut rb = RemoteBase::new(&w);
        let le45 = Pred::new(CmpOp::Le, 45i64);
        let result = rb.eval(oid("P1"), &Path::parse("age"), Some(&le45));
        assert_eq!(result, vec![oid("A1")]);
        assert_eq!(meter.queries(), 1, "one Reach round trip");
    }

    #[test]
    fn cache_tier_avoids_queries() {
        let src = person_source(ReportLevel::WithValues);
        let meter = Arc::new(CostMeter::new());
        let w = src.wrapper(meter.clone());
        let cache = crate::cache::AuxCache::build(oid("ROOT"), Path::parse("professor.age"), &w);
        meter.reset();
        let mut rb = RemoteBase::new(&w).with_cache(&cache);
        let le45 = Pred::new(CmpOp::Le, 45i64);
        assert_eq!(
            rb.eval(oid("P1"), &Path::parse("age"), Some(&le45)),
            vec![oid("A1")]
        );
        assert_eq!(
            rb.path_from_root(oid("ROOT"), oid("P2")),
            Some(Path::parse("professor"))
        );
        assert_eq!(rb.ancestor(oid("A1"), &Path::parse("age")), Some(oid("P1")));
        assert_eq!(meter.queries(), 0, "cache answers everything");
    }
}
