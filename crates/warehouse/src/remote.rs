//! [`Channel`] — the warehouse's retrying transport to one source —
//! and [`RemoteBase`], the warehouse-side realization of the
//! [`BaseAccess`] interface Algorithm 1 runs against (paper §5.1).
//!
//! Each `BaseAccess` function is answered from the cheapest available
//! tier:
//!
//! 1. the triggering **update report** (levels 2/3 carry labels,
//!    values, and root paths of the directly affected objects);
//! 2. the **auxiliary cache** (§5.2), when one is attached;
//! 3. a **query back to the source** through its channel — the
//!    expensive case the paper's techniques aim to avoid, and (in a
//!    fault-tolerant deployment) the only one that can *fail*.

use crate::cache::AuxCache;
use crate::protocol::{CostMeter, SourceQuery, SourceReply, UpdateReport};
use crate::resync::{DeadLetter, DeadLetterQueue, RetryPolicy, SimClock};
use crate::source::{QueryPort, Wrapper};
use gsdb::{Label, Object, Oid, Path};
use gsview_core::BaseAccess;
use gsview_query::Pred;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The warehouse's connection to one source: a [`QueryPort`] plus the
/// retry policy, simulated clock, per-source cost meter, and
/// dead-letter queue that make querying survivable.
///
/// `serve` retries faulted queries with exponential backoff (advancing
/// the shared [`SimClock`] instead of sleeping); a query that exhausts
/// its retries is recorded as a [`DeadLetter`] and surfaces as `None`,
/// which the warehouse treats as grounds to flag dependent views
/// [`Stale`](crate::resync::ViewState::Stale) — never as an answer.
#[derive(Clone)]
pub struct Channel {
    source: String,
    port: Arc<dyn QueryPort>,
    meter: Arc<CostMeter>,
    retry: RetryPolicy,
    clock: SimClock,
    dead_letters: Arc<DeadLetterQueue>,
    exhausted: Arc<AtomicU64>,
}

impl Channel {
    /// A channel over an arbitrary port.
    pub fn new(
        source: impl Into<String>,
        port: Arc<dyn QueryPort>,
        meter: Arc<CostMeter>,
        retry: RetryPolicy,
        clock: SimClock,
        dead_letters: Arc<DeadLetterQueue>,
    ) -> Self {
        Channel {
            source: source.into(),
            port,
            meter,
            retry,
            clock,
            dead_letters,
            exhausted: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A channel straight over a (fault-free) wrapper: no retries ever
    /// needed, fresh clock and dead-letter queue. Convenience for tests
    /// and single-source tools.
    pub fn direct(wrapper: Wrapper) -> Self {
        let meter = wrapper.meter_handle();
        Channel::new(
            wrapper.source_name().to_owned(),
            Arc::new(wrapper),
            meter,
            RetryPolicy::none(),
            SimClock::new(),
            Arc::new(DeadLetterQueue::new()),
        )
    }

    /// The source this channel reaches.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The per-source cost meter (queries, retries, faults).
    pub fn meter(&self) -> &CostMeter {
        &self.meter
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The shared dead-letter queue.
    pub fn dead_letters(&self) -> &DeadLetterQueue {
        &self.dead_letters
    }

    /// Queries that exhausted their retries over this channel's
    /// lifetime. Compare before/after a maintenance pass to learn
    /// whether its result can be trusted.
    pub fn exhausted(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Serve one query with retries. `None` means the query exhausted
    /// its retry budget; it has been dead-lettered and the caller's
    /// result is incomplete.
    pub fn serve(&self, q: &SourceQuery) -> Option<SourceReply> {
        let mut attempt = 0u32;
        loop {
            match self.port.query(q) {
                Ok(reply) => return Some(reply),
                Err(fault) => {
                    if attempt >= self.retry.max_retries {
                        self.exhausted.fetch_add(1, Ordering::Relaxed);
                        self.dead_letters.push(DeadLetter {
                            source: self.source.clone(),
                            query: q.clone(),
                            fault,
                            attempts: attempt + 1,
                            at_ms: self.clock.now_ms(),
                        });
                        return None;
                    }
                    self.meter.record_retry();
                    gsview_obs::event!("warehouse.retry",
                        "source" = self.source.clone(),
                        "attempt" = attempt + 1,
                        "fault" = fault.to_string());
                    // An admission shed is an explicit "go away": the
                    // server is healthy but over its limit, so skip
                    // the exponential ramp and back off at the
                    // ceiling immediately.
                    let backoff = match fault {
                        crate::protocol::QueryFault::Overloaded => self.retry.max_backoff_ms,
                        _ => self.retry.backoff_ms(attempt),
                    };
                    self.clock.advance_ms(backoff);
                    attempt += 1;
                }
            }
        }
    }
}

/// Base access over a source channel, consulting the triggering report
/// and an optional auxiliary cache first.
///
/// When a query exhausts its retries the method answers `None`/empty —
/// the caller must watch [`Channel::exhausted`] to distinguish "no
/// such object" from "the source stopped answering".
pub struct RemoteBase<'a> {
    channel: &'a Channel,
    report: Option<&'a UpdateReport>,
    cache: Option<&'a AuxCache>,
}

impl<'a> RemoteBase<'a> {
    /// Access with neither report nor cache (pure querying).
    pub fn new(channel: &'a Channel) -> Self {
        RemoteBase {
            channel,
            report: None,
            cache: None,
        }
    }

    /// Attach the triggering update report.
    pub fn with_report(mut self, report: &'a UpdateReport) -> Self {
        self.report = Some(report);
        self
    }

    /// Attach an auxiliary cache.
    pub fn with_cache(mut self, cache: &'a AuxCache) -> Self {
        self.cache = Some(cache);
        self
    }
}

impl BaseAccess for RemoteBase<'_> {
    fn path_from_root(&mut self, root: Oid, n: Oid) -> Option<Path> {
        // Tier 1: level-3 reports carry path(ROOT, N) directly.
        if let Some(r) = self.report {
            if let Some(rp) = r.path_of(n) {
                return Some(rp.path.clone());
            }
        }
        // Tier 2: cache.
        if let Some(c) = self.cache {
            if let Some(p) = c.try_path_from_root(n) {
                return Some(p);
            }
            if c.root() == root && c.certainly_off_path(n) {
                // Complete-cache short circuit: n has no root path
                // that the view's location test could match, so the
                // maintenance algorithm will (correctly) treat the
                // update as irrelevant without a source query.
                return None;
            }
        }
        // Tier 3: query.
        match self.channel.serve(&SourceQuery::PathFromRoot { root, n }) {
            Some(SourceReply::PathResult(p)) => p,
            _ => None,
        }
    }

    fn ancestor(&mut self, n: Oid, p: &Path) -> Option<Oid> {
        if p.is_empty() {
            return Some(n);
        }
        // Tier 1: a level-3 root path of n names the OIDs along it —
        // the ancestor at distance |p| is right there if the labels
        // match.
        if let Some(r) = self.report {
            if let Some(rp) = r.path_of(n) {
                let len = rp.path.len();
                if p.len() <= len && rp.path.ends_with(p) {
                    // oids = [root, ..., n] has len+1 entries with n at
                    // index len; the ancestor |p| levels up is at
                    // index len - |p|.
                    return rp.oids.get(len - p.len()).copied();
                }
            }
        }
        if let Some(c) = self.cache {
            if let Some(a) = c.try_ancestor(n, p) {
                return Some(a);
            }
        }
        match self.channel.serve(&SourceQuery::Ancestor { n, p: p.clone() }) {
            Some(SourceReply::AncestorResult(a)) => a,
            _ => None,
        }
    }

    fn ancestors_all(&mut self, n: Oid, p: &Path) -> Vec<Oid> {
        match self
            .channel
            .serve(&SourceQuery::AncestorsAll { n, p: p.clone() })
        {
            Some(SourceReply::Ancestors(a)) => a,
            _ => Vec::new(),
        }
    }

    fn eval(&mut self, n: Oid, p: &Path, pred: Option<&Pred>) -> Vec<Oid> {
        // Tier 1: empty-path eval over a reported object can be
        // answered from the report (Example 5's insert(P2, A2) with a
        // level-2 report needs no query for eval(A2, ∅, cond)).
        if p.is_empty() {
            if let Some(r) = self.report {
                if let Some(info) = r.info_of(n) {
                    return match (pred, info.value.as_atom()) {
                        (Some(pr), Some(a)) => {
                            if pr.eval(a) {
                                vec![n]
                            } else {
                                vec![]
                            }
                        }
                        (Some(_), None) => vec![],
                        (None, _) => vec![n],
                    };
                }
            }
        }
        if let Some(c) = self.cache {
            if let Some(result) = c.try_eval(n, p, pred) {
                return result;
            }
        }
        // Tier 3: fetch n.p with values and test the condition locally
        // (Example 9).
        match self.channel.serve(&SourceQuery::Reach { n, p: p.clone() }) {
            Some(SourceReply::Objects(infos)) => infos
                .into_iter()
                .filter(|i| match pred {
                    None => true,
                    Some(pr) => i.value.as_atom().map(|a| pr.eval(a)).unwrap_or(false),
                })
                .map(|i| i.oid)
                .collect(),
            _ => Vec::new(),
        }
    }

    fn label_of(&mut self, n: Oid) -> Option<Label> {
        if let Some(r) = self.report {
            if let Some(info) = r.info_of(n) {
                return Some(info.label);
            }
        }
        if let Some(c) = self.cache {
            if let Some(l) = c.try_label(n) {
                return Some(l);
            }
        }
        match self.channel.serve(&SourceQuery::LabelOf(n)) {
            Some(SourceReply::LabelResult(l)) => l,
            _ => None,
        }
    }

    fn fetch(&mut self, n: Oid) -> Option<Object> {
        if let Some(r) = self.report {
            if let Some(info) = r.info_of(n) {
                return Some(info.to_object());
            }
        }
        if let Some(c) = self.cache {
            if let Some(o) = c.try_fetch(n) {
                return Some(o);
            }
        }
        match self.channel.serve(&SourceQuery::Fetch(n)) {
            Some(SourceReply::Object(info)) => info.map(|i| i.to_object()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CostMeter, QueryFault, ReportLevel};
    use crate::source::Source;
    use gsdb::{samples, Update};
    use gsview_query::{CmpOp, Pred};
    use std::sync::Arc;

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn person_source(level: ReportLevel) -> Source {
        let src = Source::empty("persons", oid("ROOT"), level);
        src.with_store(|s| samples::person_db(s).map(|_| ())).unwrap();
        src.with_store(|s| {
            s.drain_log();
        });
        src
    }

    fn channel_for(src: &Source, meter: Arc<CostMeter>) -> Channel {
        Channel::direct(src.wrapper(meter))
    }

    #[test]
    fn report_tier_answers_without_queries_at_l3() {
        let src = person_source(ReportLevel::WithPaths);
        let meter = Arc::new(CostMeter::new());
        let chan = channel_for(&src, meter.clone());
        src.apply(Update::modify("A1", 50i64)).unwrap();
        let reports = src.monitor().poll();
        let report = &reports[0];
        let mut rb = RemoteBase::new(&chan).with_report(report);
        // path(ROOT, A1) from the report.
        assert_eq!(
            rb.path_from_root(oid("ROOT"), oid("A1")),
            Some(Path::parse("professor.age"))
        );
        // ancestor(A1, age) from the report's OID list.
        assert_eq!(rb.ancestor(oid("A1"), &Path::parse("age")), Some(oid("P1")));
        // label from the L2 payload.
        assert_eq!(rb.label_of(oid("A1")).unwrap().as_str(), "age");
        assert_eq!(meter.queries(), 0, "all answered from the report");
    }

    #[test]
    fn query_tier_used_when_report_lacks_data() {
        let src = person_source(ReportLevel::OidsOnly);
        let meter = Arc::new(CostMeter::new());
        let chan = channel_for(&src, meter.clone());
        src.apply(Update::modify("A1", 50i64)).unwrap();
        let reports = src.monitor().poll();
        let mut rb = RemoteBase::new(&chan).with_report(&reports[0]);
        assert_eq!(
            rb.path_from_root(oid("ROOT"), oid("A1")),
            Some(Path::parse("professor.age"))
        );
        assert!(meter.queries() >= 1, "L1 reports force query-back");
    }

    #[test]
    fn eval_tests_condition_locally() {
        let src = person_source(ReportLevel::OidsOnly);
        let meter = Arc::new(CostMeter::new());
        let chan = channel_for(&src, meter.clone());
        let mut rb = RemoteBase::new(&chan);
        let le45 = Pred::new(CmpOp::Le, 45i64);
        let result = rb.eval(oid("P1"), &Path::parse("age"), Some(&le45));
        assert_eq!(result, vec![oid("A1")]);
        assert_eq!(meter.queries(), 1, "one Reach round trip");
    }

    #[test]
    fn cache_tier_avoids_queries() {
        let src = person_source(ReportLevel::WithValues);
        let meter = Arc::new(CostMeter::new());
        let chan = channel_for(&src, meter.clone());
        let cache = crate::cache::AuxCache::build(oid("ROOT"), Path::parse("professor.age"), &chan);
        meter.reset();
        let mut rb = RemoteBase::new(&chan).with_cache(&cache);
        let le45 = Pred::new(CmpOp::Le, 45i64);
        assert_eq!(
            rb.eval(oid("P1"), &Path::parse("age"), Some(&le45)),
            vec![oid("A1")]
        );
        assert_eq!(
            rb.path_from_root(oid("ROOT"), oid("P2")),
            Some(Path::parse("professor"))
        );
        assert_eq!(rb.ancestor(oid("A1"), &Path::parse("age")), Some(oid("P1")));
        assert_eq!(meter.queries(), 0, "cache answers everything");
    }

    /// A port that fails a fixed number of times before recovering.
    struct Flaky {
        inner: Wrapper,
        failures: AtomicU64,
    }

    impl QueryPort for Flaky {
        fn query(&self, q: &SourceQuery) -> Result<SourceReply, QueryFault> {
            if self.failures.load(Ordering::Relaxed) > 0 {
                self.failures.fetch_sub(1, Ordering::Relaxed);
                return Err(QueryFault::Timeout);
            }
            Ok(self.inner.serve(q))
        }
    }

    #[test]
    fn channel_retries_through_transient_faults() {
        let src = person_source(ReportLevel::OidsOnly);
        let meter = Arc::new(CostMeter::new());
        let port = Flaky {
            inner: src.wrapper(meter.clone()),
            failures: AtomicU64::new(2),
        };
        let chan = Channel::new(
            "persons",
            Arc::new(port),
            meter.clone(),
            RetryPolicy {
                max_retries: 3,
                base_backoff_ms: 10,
                max_backoff_ms: 1_000,
            },
            SimClock::new(),
            Arc::new(DeadLetterQueue::new()),
        );
        let reply = chan.serve(&SourceQuery::Fetch(oid("P1")));
        assert!(matches!(reply, Some(SourceReply::Object(Some(_)))));
        assert_eq!(meter.retries(), 2);
        assert_eq!(chan.exhausted(), 0);
        assert!(chan.dead_letters().is_empty());
        // Backoff 10 + 20 advanced on the shared clock.
        assert_eq!(chan.clock().now_ms(), 30);
    }

    #[test]
    fn channel_dead_letters_exhausted_queries() {
        let src = person_source(ReportLevel::OidsOnly);
        let meter = Arc::new(CostMeter::new());
        let port = Flaky {
            inner: src.wrapper(meter.clone()),
            failures: AtomicU64::new(100),
        };
        let chan = Channel::new(
            "persons",
            Arc::new(port),
            meter.clone(),
            RetryPolicy {
                max_retries: 2,
                base_backoff_ms: 5,
                max_backoff_ms: 1_000,
            },
            SimClock::new(),
            Arc::new(DeadLetterQueue::new()),
        );
        assert_eq!(chan.serve(&SourceQuery::Fetch(oid("P1"))), None);
        assert_eq!(chan.exhausted(), 1);
        let letters = chan.dead_letters().drain();
        assert_eq!(letters.len(), 1);
        assert_eq!(letters[0].attempts, 3, "1 try + 2 retries");
        assert_eq!(letters[0].fault, QueryFault::Timeout);
        assert_eq!(letters[0].source, "persons");
        // And RemoteBase degrades to a non-answer, not a panic.
        let mut rb = RemoteBase::new(&chan);
        assert_eq!(rb.fetch(oid("P1")), None);
        assert_eq!(chan.exhausted(), 2);
    }
}
