//! The data warehouse (paper §5, Figure 6): stores materialized views
//! over autonomous sources, maintains them from update reports, and
//! queries back only when reports and caches cannot answer.
//!
//! Beyond the paper's architecture, this warehouse does not *trust*
//! delivery: every report's sequence number is checked against a
//! per-source [`SeqTracker`], queries travel over a retrying
//! [`Channel`], and a view that missed a report (or whose maintenance
//! lost a query to the dead-letter queue) degrades to an explicit
//! [`Stale`](ViewState::Stale) state — still serving reads — until
//! [`Warehouse::resync_view`] verifies it back to `Consistent`.

use crate::cache::{AuxCache, PathKnowledge};
use crate::chaos::ChaosPolicy;
use crate::durable::{local_channel, ChunkCache};
use crate::protocol::{CostMeter, UpdateReport};
use crate::remote::{Channel, RemoteBase};
use crate::resync::{
    DeadLetterQueue, ResyncOutcome, RetryPolicy, SeqTracker, SeqVerdict, SimClock, StaleCause,
    ViewState,
};
use crate::source::{QueryPort, Source};
use gsdb::{AppliedUpdate, DeltaBatch, Label, Object, Oid, Result};
use gsview_core::{
    consistency, sweep_members, BaseAccess, BatchOutcome, LocalBase, MaintPlan, MaterializedView,
    Maintainer, Outcome, SimpleViewDef,
};
use gsview_durable::ChunkPort;
use std::collections::HashMap;
use std::sync::Arc;

/// Options controlling how a warehouse view is maintained.
#[derive(Clone, Debug, Default)]
pub struct ViewOptions {
    /// Maintain an auxiliary cache along `sel_path.cond_path` (§5.2).
    pub use_aux_cache: bool,
    /// Screen reports by label before doing anything else (works at
    /// report level ≥ 2: "the warehouse can do some local screening to
    /// avoid some querying back to the source").
    pub label_screening: bool,
    /// Impossible-path knowledge (§5.2 closing paragraph).
    pub knowledge: PathKnowledge,
}

/// Statistics for one warehouse view.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Reports processed (including duplicates and reports skipped
    /// while the view was stale).
    pub reports: u64,
    /// Reports discarded by label screening or path knowledge, with no
    /// query to the source.
    pub screened_out: u64,
    /// Reports that turned out relevant (Algorithm 1's location test
    /// passed).
    pub relevant: u64,
    /// Members inserted over the view's lifetime.
    pub inserted: u64,
    /// Members deleted over the view's lifetime.
    pub deleted: u64,
    /// Sequence gaps detected (each sent the view stale).
    pub gaps_detected: u64,
    /// Duplicate reports dropped before touching the view.
    pub duplicates_dropped: u64,
    /// In-order reports skipped because the view was already stale
    /// (they will be subsumed by the next resync).
    pub skipped_while_stale: u64,
    /// Resyncs that restored the view to `Consistent`.
    pub resyncs: u64,
    /// Member re-verification sweeps forced by report lag (an update
    /// dismissed only because its anchor was no longer reachable).
    pub lag_sweeps: u64,
}

struct WarehouseView {
    def: SimpleViewDef,
    maintainer: Maintainer,
    mv: MaterializedView,
    source: String,
    cache: Option<AuxCache>,
    options: ViewOptions,
    stats: ViewStats,
    state: ViewState,
}

/// One connected source: its retrying query channel plus the sequence
/// tracker guarding its report stream.
struct Connection {
    channel: Channel,
    tracker: SeqTracker,
}

/// A warehouse holding materialized views over one or more sources.
///
/// The warehouse owns no base data: it reaches sources only through
/// their wrappers (queries) and monitors (reports), exactly as in the
/// paper's architecture where "only the warehouse (and not the data
/// sources) knows the view definition".
pub struct Warehouse {
    connections: HashMap<String, Connection>,
    views: Vec<WarehouseView>,
    retry: RetryPolicy,
    clock: SimClock,
    dead_letters: Arc<DeadLetterQueue>,
    durable: Option<DurablePort>,
}

/// The warehouse's durable attachment: a chunk port (the segment
/// itself when colocated, a wire proxy when not) plus the decoded
/// pages already fetched through it.
struct DurablePort {
    port: Arc<dyn ChunkPort>,
    cache: ChunkCache,
}

impl Warehouse {
    /// An empty warehouse with the default retry policy.
    pub fn new() -> Self {
        Warehouse {
            connections: HashMap::new(),
            views: Vec::new(),
            retry: RetryPolicy::default(),
            clock: SimClock::new(),
            dead_letters: Arc::new(DeadLetterQueue::new()),
            durable: None,
        }
    }

    /// Set the retry policy used by subsequently connected sources.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The warehouse's simulated clock (total backoff latency paid).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Queries that exhausted their retries, across all sources.
    pub fn dead_letters(&self) -> &DeadLetterQueue {
        &self.dead_letters
    }

    /// Connect a source by name, installing a cost meter on its
    /// wrapper and baselining gap detection at the source's current
    /// sequence counter.
    pub fn connect(&mut self, source: &Source) {
        let meter = Arc::new(CostMeter::new());
        let wrapper = source.wrapper(meter.clone());
        self.connect_port(source.name(), Arc::new(wrapper), meter, source.next_seq());
    }

    /// Connect a source through a fault-injecting wrapper (chaos
    /// experiments: queries fail or time out per `policy`).
    pub fn connect_faulty(&mut self, source: &Source, policy: ChaosPolicy) {
        let meter = Arc::new(CostMeter::new());
        let wrapper = source.wrapper(meter.clone());
        let port = crate::chaos::FaultyWrapper::new(wrapper, policy);
        self.connect_port(source.name(), Arc::new(port), meter, source.next_seq());
    }

    /// Connect an arbitrary query port under `name`. `next_seq` is the
    /// first report sequence number the warehouse should expect.
    pub fn connect_port(
        &mut self,
        name: &str,
        port: Arc<dyn QueryPort>,
        meter: Arc<CostMeter>,
        next_seq: u64,
    ) {
        let channel = Channel::new(
            name,
            port,
            meter,
            self.retry,
            self.clock.clone(),
            self.dead_letters.clone(),
        );
        self.connections.insert(
            name.to_owned(),
            Connection {
                channel,
                tracker: SeqTracker::with_baseline(next_seq),
            },
        );
    }

    /// The cost meter for a connected source.
    pub fn meter(&self, source: &str) -> Option<&CostMeter> {
        self.connections.get(source).map(|c| c.channel.meter())
    }

    /// The retrying channel to a connected source.
    pub fn channel(&self, source: &str) -> Option<&Channel> {
        self.connections.get(source).map(|c| &c.channel)
    }

    /// Define a materialized view over a connected source and
    /// initialize it by querying the source.
    pub fn add_view(
        &mut self,
        source: &str,
        def: SimpleViewDef,
        options: ViewOptions,
    ) -> Result<Oid> {
        let channel = self
            .connections
            .get(source)
            .unwrap_or_else(|| panic!("source {source} not connected"))
            .channel
            .clone();
        let cache = options
            .use_aux_cache
            .then(|| AuxCache::build(def.root, def.full_path(), &channel));
        // Initial materialization through the channel.
        let mut base = RemoteBase::new(&channel);
        let mv = gsview_core::recompute::recompute(&def, &mut base)?;
        let view = def.view;
        self.views.push(WarehouseView {
            maintainer: Maintainer::new(def.clone()),
            def,
            mv,
            source: source.to_owned(),
            cache,
            options,
            stats: ViewStats::default(),
            state: ViewState::default(),
        });
        Ok(view)
    }

    /// Attach a durable chunk port: warm view materialization
    /// ([`Warehouse::add_view_warm`]) and chunk-diff resync
    /// ([`Warehouse::resync_view_durable`]) become available. One
    /// attachment serves every source lineage persisted into the
    /// shared segment, and the page cache it carries dedups across
    /// them by content hash.
    pub fn attach_durable(&mut self, port: Arc<dyn ChunkPort>) {
        self.durable = Some(DurablePort {
            port,
            cache: ChunkCache::new(),
        });
    }

    /// Reconstruct the newest persisted epoch of `source` through the
    /// durable attachment. `None` when there is no attachment, no
    /// manifest for the lineage, or the chunks no longer verify — the
    /// caller falls back to the query path.
    fn reconstruct_source(
        &mut self,
        source: &str,
    ) -> Option<(gsview_durable::Manifest, gsdb::Store, crate::durable::FetchStats)> {
        let d = self.durable.as_mut()?;
        let m = d.port.latest_manifest(source)?;
        match d.cache.reconstruct(d.port.as_ref(), &m) {
            Ok((store, stats)) => Some((m, store, stats)),
            Err(e) => {
                gsview_obs::event!(
                    "warehouse.durable.reconstruct_failed",
                    "source" = source.to_string(),
                    "error" = e.to_string()
                );
                None
            }
        }
    }

    /// Define a view over a connected source and materialize it from
    /// the source's **durable lineage** instead of querying the source
    /// — the warm-restart path: after a crash, re-declared views load
    /// from the last persisted epoch with zero source queries, which
    /// is exactly the restart cost the paper's §3 architecture exists
    /// to avoid. The auxiliary cache (when requested) is likewise
    /// built against the reconstructed epoch through a local port.
    ///
    /// The source's sequence tracker is re-baselined at the manifest's
    /// watermark: reports the persisted epoch already contains arrive
    /// as duplicates and are dropped; anything committed after the
    /// persist still arrives in order (or surfaces as a gap and heals
    /// through resync).
    ///
    /// Returns `Ok(None)` when no durable state is available — a cold
    /// start; fall back to [`Warehouse::add_view`].
    pub fn add_view_warm(
        &mut self,
        source: &str,
        def: SimpleViewDef,
        options: ViewOptions,
    ) -> Result<Option<Oid>> {
        let _span = gsview_obs::span!(
            "warehouse.add_view_warm",
            "view" = def.view.name().to_string(),
            "source" = source.to_string()
        );
        assert!(
            self.connections.contains_key(source),
            "source {source} not connected"
        );
        let Some((m, store, stats)) = self.reconstruct_source(source) else {
            return Ok(None);
        };
        let store = Arc::new(store);
        let mv = gsview_core::recompute::recompute(&def, &mut LocalBase::new(&store))?;
        let cache = options.use_aux_cache.then(|| {
            let chan = local_channel(source, Arc::clone(&store), self.clock.clone());
            AuxCache::build(def.root, def.full_path(), &chan)
        });
        if let Some(conn) = self.connections.get_mut(source) {
            conn.tracker = SeqTracker::with_baseline(m.seq);
        }
        gsview_obs::event!(
            "warehouse.add_view_warm.done",
            "view" = def.view.name().to_string(),
            "epoch" = m.epoch,
            "chunks_fetched" = stats.fetched,
            "chunks_reused" = stats.reused
        );
        let view = def.view;
        self.views.push(WarehouseView {
            maintainer: Maintainer::new(def.clone()),
            def,
            mv,
            source: source.to_owned(),
            cache,
            options,
            stats: ViewStats::default(),
            state: ViewState::default(),
        });
        Ok(Some(view))
    }

    /// Access a view's materialized state. Reads are served even while
    /// the view is [`Stale`](ViewState::Stale) — check
    /// [`Warehouse::view_state`] to know whether to trust them.
    pub fn view(&self, view: Oid) -> Option<&MaterializedView> {
        self.views.iter().find(|v| v.def.view == view).map(|v| &v.mv)
    }

    /// A view's health.
    pub fn view_state(&self, view: Oid) -> Option<ViewState> {
        self.views
            .iter()
            .find(|v| v.def.view == view)
            .map(|v| v.state)
    }

    /// All views currently flagged stale.
    pub fn stale_views(&self) -> Vec<Oid> {
        self.views
            .iter()
            .filter(|v| v.state.is_stale())
            .map(|v| v.def.view)
            .collect()
    }

    /// A view's statistics.
    pub fn view_stats(&self, view: Oid) -> Option<ViewStats> {
        self.views
            .iter()
            .find(|v| v.def.view == view)
            .map(|v| v.stats)
    }

    /// A view's auxiliary-cache maintenance query count, if caching.
    pub fn cache_queries(&self, view: Oid) -> Option<u64> {
        self.views
            .iter()
            .find(|v| v.def.view == view)
            .and_then(|v| v.cache.as_ref())
            .map(|c| c.maintenance_queries)
    }

    /// Re-materialize one view by querying its source (the recovery
    /// path for the update-anomaly the paper flags in §5.1: "source
    /// updates may interfere with query evaluation and resulting in
    /// inconsistent query results \[ZGMHW95\]" — when reports are
    /// processed against a source state that has already moved on,
    /// the view can drift; a refresh restores exactness).
    pub fn refresh_view(&mut self, view: Oid) -> Result<()> {
        let Some(idx) = self.views.iter().position(|v| v.def.view == view) else {
            return Ok(());
        };
        let channel = self
            .connections
            .get(&self.views[idx].source)
            .expect("view sources are connected")
            .channel
            .clone();
        let wv = &mut self.views[idx];
        let mut base = RemoteBase::new(&channel);
        gsview_core::recompute::refresh(&wv.def, &mut base, &mut wv.mv)?;
        Ok(())
    }

    /// Handle one update report from a source monitor: check its
    /// sequence number, then maintain every (healthy) view defined
    /// over that source.
    ///
    /// * Duplicates are dropped before touching any view or cache
    ///   (idempotency).
    /// * A gap flags every view of the source [`Stale`](ViewState::Stale)
    ///   — the lost reports will never arrive, so incremental
    ///   maintenance cannot continue soundly; [`Warehouse::resync_view`]
    ///   heals.
    /// * Stale views skip maintenance entirely (cheap degraded mode;
    ///   resync subsumes whatever the skipped reports would have done).
    /// * A maintenance pass that loses a query to the dead-letter
    ///   queue also sends the view stale: its result cannot be trusted.
    pub fn handle_report(&mut self, report: &UpdateReport) -> Result<Vec<(Oid, Outcome)>> {
        let _span = gsview_obs::span!("warehouse.handle_report",
            "source" = report.source.clone(),
            "seq" = report.seq,
            "level" = report.effective_level().to_string());
        let Some(conn) = self.connections.get_mut(&report.source) else {
            return Ok(Vec::new());
        };
        let verdict = conn.tracker.observe(report.seq);
        let channel = conn.channel.clone();

        if matches!(verdict, SeqVerdict::Duplicate { .. }) {
            for wv in self.views.iter_mut().filter(|v| v.source == report.source) {
                wv.stats.reports += 1;
                wv.stats.duplicates_dropped += 1;
            }
            return Ok(Vec::new());
        }
        if let SeqVerdict::Gap { expected, got } = verdict {
            gsview_obs::event!("warehouse.seq_gap",
                "source" = report.source.clone(),
                "expected" = expected,
                "got" = got);
            for wv in self.views.iter_mut().filter(|v| v.source == report.source) {
                wv.stats.gaps_detected += 1;
                if !wv.state.is_stale() {
                    wv.state = ViewState::Stale(StaleCause::ReportGap { expected, got });
                }
            }
        }

        let mut outcomes = Vec::new();
        for wv in &mut self.views {
            if wv.source != report.source {
                continue;
            }
            wv.stats.reports += 1;

            if wv.state.is_stale() {
                wv.stats.skipped_while_stale += 1;
                continue;
            }

            let faults_before = channel.exhausted();

            // Maintain the auxiliary cache first — before screening,
            // and before Algorithm 1 so it reflects the post-update
            // state the algorithm expects. Screening only proves the
            // *view* cannot change; a cached copy still can, and
            // [`AuxCache::try_fetch`] serves exact whole-value copies.
            if let Some(cache) = wv.cache.as_mut() {
                cache.apply_report(report, &channel);
            }

            // Local screening (no source queries). A screened report
            // cannot change membership, but an edge into a member set
            // or a modify of a member atom still changes its *value*
            // (§3.2) — refresh it from local data, or fall through to
            // full maintenance when no local copy is available.
            if screened_out(wv, report) && screened_content_upkeep(wv, report)? {
                wv.stats.screened_out += 1;
                if let Some(cache) = wv.cache.as_mut() {
                    cache.finalize_report();
                }
                if channel.exhausted() > faults_before {
                    wv.state = ViewState::Stale(StaleCause::QueryFailure);
                }
                continue;
            }

            let mut outcome = {
                let mut base = RemoteBase::new(&channel).with_report(report);
                if let Some(cache) = wv.cache.as_ref() {
                    base = base.with_cache(cache);
                }
                wv.maintainer.apply(&mut wv.mv, &mut base, &report.update)?
            };
            if let Some(cache) = wv.cache.as_mut() {
                cache.finalize_report();
            }
            if channel.exhausted() > faults_before {
                // A query inside this pass exhausted its retries: the
                // outcome is built on missing data.
                wv.state = ViewState::Stale(StaleCause::QueryFailure);
                continue;
            }
            // §4.3 precondition guard. Algorithm 1 assumes the base is
            // in the state right after the triggering update, but the
            // source may have moved on since this report was emitted
            // (the warehouse polls, queues and retries). A delete whose
            // parent — or a condition-bearing modify whose object — is
            // unreachable *now* may have been view-relevant *then*, and
            // the source has already destroyed the evidence; re-verify
            // the membership instead of trusting the dismissal. (Gains
            // never need this: they always leave evidence in the
            // current state for a later report to find.)
            //
            // A view with a healthy aux cache is exempt: the cache is
            // maintained from the report stream itself, so its answers
            // — including `certainly_off_path` rejections — describe
            // the state right after each reported update. Dismissals
            // are then report-time-sound and the guard (whose check
            // costs a source query) would only re-confirm them.
            if wv.cache.is_none() && !outcome.relevant && !wv.mv.is_empty() {
                let mut base = RemoteBase::new(&channel);
                let suspect = match &report.update {
                    AppliedUpdate::Delete { parent, child } => {
                        base.path_from_root(wv.def.root, *parent).is_none()
                            || base.label_of(*child).is_none()
                    }
                    AppliedUpdate::Modify { oid, .. } => {
                        wv.def.cond.is_some()
                            && base.path_from_root(wv.def.root, *oid).is_none()
                    }
                    _ => false,
                };
                if suspect {
                    wv.stats.lag_sweeps += 1;
                    let swept = sweep_members(&wv.def, &mut wv.mv, &mut base)?;
                    outcome.deleted.extend(swept);
                    if channel.exhausted() > faults_before {
                        wv.state = ViewState::Stale(StaleCause::QueryFailure);
                        continue;
                    }
                }
            }
            if outcome.relevant {
                wv.stats.relevant += 1;
            }
            wv.stats.inserted += outcome.inserted.len() as u64;
            wv.stats.deleted += outcome.deleted.len() as u64;
            outcomes.push((wv.def.view, outcome));
        }
        Ok(outcomes)
    }

    /// Handle a buffered run of update reports in one batched
    /// maintenance pass per view.
    ///
    /// Reports are grouped by source and sequence-screened exactly as
    /// in [`Warehouse::handle_report`] (duplicates dropped, gaps flag
    /// the source's views stale); for each healthy view the surviving
    /// reports' updates are collected into a [`DeltaBatch`] and applied
    /// with [`MaintPlan::apply_batch`] against the source's *current*
    /// state. Consolidation means churny runs (insert+delete of the
    /// same edge, repeated modifies of one atom) cost far fewer
    /// location tests and source queries than one-at-a-time
    /// [`handle_report`](Warehouse::handle_report) calls.
    pub fn handle_batch(
        &mut self,
        reports: &[UpdateReport],
    ) -> Result<Vec<(Oid, BatchOutcome)>> {
        let _span = gsview_obs::span!("warehouse.handle_batch", "reports" = reports.len());
        let mut sources: Vec<String> = Vec::new();
        for r in reports {
            if !sources.contains(&r.source) {
                sources.push(r.source.clone());
            }
        }
        let mut outcomes = Vec::new();
        for source in sources {
            let Some(conn) = self.connections.get_mut(&source) else {
                continue;
            };
            // Sequence screening, once per report (not per view).
            let mut accepted: Vec<&UpdateReport> = Vec::new();
            let mut dups = 0u64;
            let mut gaps = 0u64;
            let mut first_gap: Option<(u64, u64)> = None;
            let mut total = 0u64;
            for r in reports.iter().filter(|r| r.source == source) {
                total += 1;
                match conn.tracker.observe(r.seq) {
                    SeqVerdict::InOrder => accepted.push(r),
                    SeqVerdict::Duplicate { .. } => dups += 1,
                    SeqVerdict::Gap { expected, got } => {
                        gaps += 1;
                        if first_gap.is_none() {
                            gsview_obs::event!("warehouse.seq_gap",
                                "source" = source.clone(),
                                "expected" = expected,
                                "got" = got);
                        }
                        first_gap.get_or_insert((expected, got));
                        accepted.push(r);
                    }
                }
            }
            let channel = conn.channel.clone();
            for wv in &mut self.views {
                if wv.source != source {
                    continue;
                }
                wv.stats.reports += total;
                wv.stats.duplicates_dropped += dups;
                if let Some((expected, got)) = first_gap {
                    wv.stats.gaps_detected += gaps;
                    if !wv.state.is_stale() {
                        wv.state = ViewState::Stale(StaleCause::ReportGap { expected, got });
                    }
                }
                if wv.state.is_stale() {
                    wv.stats.skipped_while_stale += accepted.len() as u64;
                    continue;
                }
                let faults_before = channel.exhausted();
                let mut batch = DeltaBatch::new();
                for report in &accepted {
                    // Cache upkeep runs for every report — screening
                    // only proves the view can't change, not the
                    // cached copies (see handle_report).
                    if let Some(cache) = wv.cache.as_mut() {
                        cache.apply_report(report, &channel);
                    }
                    if screened_out(wv, report) && screened_content_upkeep(wv, report)? {
                        wv.stats.screened_out += 1;
                        continue;
                    }
                    batch.push(report.update.clone());
                }
                if batch.is_empty() {
                    if let Some(cache) = wv.cache.as_mut() {
                        cache.finalize_report();
                    }
                    if channel.exhausted() > faults_before {
                        wv.state = ViewState::Stale(StaleCause::QueryFailure);
                    }
                    continue;
                }
                let outcome = {
                    let mut base = RemoteBase::new(&channel);
                    if let Some(cache) = wv.cache.as_ref() {
                        base = base.with_cache(cache);
                    }
                    MaintPlan::new(wv.def.clone()).apply_batch(&mut wv.mv, &mut base, &batch)?
                };
                if let Some(cache) = wv.cache.as_mut() {
                    cache.finalize_report();
                }
                if channel.exhausted() > faults_before {
                    wv.state = ViewState::Stale(StaleCause::QueryFailure);
                    continue;
                }
                wv.stats.relevant += outcome.relevant_deltas as u64;
                wv.stats.inserted += outcome.inserted.len() as u64;
                wv.stats.deleted += outcome.deleted.len() as u64;
                outcomes.push((wv.def.view, outcome));
            }
        }
        Ok(outcomes)
    }

    /// Account for a source's control-plane checkpoint: the monitor has
    /// emitted every sequence number below `next_seq`. Detects *tail*
    /// loss — a dropped report with no delivered successor — which no
    /// amount of stream watching can reveal. Returns the gap verdict if
    /// reports turned out to be missing (the affected views are flagged
    /// stale).
    pub fn reconcile(&mut self, source: &str, next_seq: u64) -> Option<SeqVerdict> {
        let conn = self.connections.get_mut(source)?;
        let verdict = conn.tracker.reconcile(next_seq)?;
        if let SeqVerdict::Gap { expected, got } = verdict {
            for wv in self.views.iter_mut().filter(|v| v.source == source) {
                wv.stats.gaps_detected += 1;
                if !wv.state.is_stale() {
                    wv.state = ViewState::Stale(StaleCause::ReportGap { expected, got });
                }
            }
        }
        Some(verdict)
    }

    /// [`Warehouse::reconcile`] against a whole set of checkpoints (as
    /// returned by [`Integrator::checkpoints`](crate::Integrator::checkpoints)).
    /// Returns how many sources turned out to have tail loss.
    pub fn reconcile_checkpoints(
        &mut self,
        checkpoints: impl IntoIterator<Item = (String, u64)>,
    ) -> usize {
        checkpoints
            .into_iter()
            .filter(|(source, next_seq)| {
                matches!(
                    self.reconcile(source, *next_seq),
                    Some(SeqVerdict::Gap { .. })
                )
            })
            .count()
    }

    /// Heal one view: replay a source snapshot diff over the current
    /// membership ([`recompute::refresh`](gsview_core::recompute::refresh)),
    /// verify with the consistency checker, and escalate to the full
    /// recompute baseline if the diff repair does not verify clean.
    /// The auxiliary cache (stale since the view went degraded) is
    /// rebuilt on success.
    ///
    /// Healing runs over the same faulty channel as maintenance, so a
    /// resync can itself lose queries; in that case the view *stays*
    /// stale (`healed == false`) and the caller retries — see the
    /// bounded loop in [`chaos::run_scenario`](crate::chaos::run_scenario).
    pub fn resync_view(&mut self, view: Oid) -> Result<ResyncOutcome> {
        let _span = gsview_obs::span!("warehouse.resync_view", "view" = view.name().to_string());
        let Some(idx) = self.views.iter().position(|v| v.def.view == view) else {
            return Ok(ResyncOutcome::default());
        };
        let channel = self
            .connections
            .get(&self.views[idx].source)
            .expect("view sources are connected")
            .channel
            .clone();
        let wv = &mut self.views[idx];
        let mut outcome = ResyncOutcome::default();

        // Stage 1: snapshot-diff repair.
        let pre = channel.exhausted();
        {
            let mut base = RemoteBase::new(&channel);
            let (ins, del) = gsview_core::recompute::refresh(&wv.def, &mut base, &mut wv.mv)?;
            outcome.inserted = ins;
            outcome.deleted = del;
        }
        let mut healed = channel.exhausted() == pre && verified(&channel, &wv.def, &wv.mv);

        // Stage 2: escalate to the full-recompute baseline.
        if !healed {
            outcome.escalated = true;
            let pre = channel.exhausted();
            let mut base = RemoteBase::new(&channel);
            wv.mv = gsview_core::recompute::recompute(&wv.def, &mut base)?;
            healed = channel.exhausted() == pre && verified(&channel, &wv.def, &wv.mv);
        }

        // The cache went unmaintained while the view was stale: rebuild
        // it, and refuse to heal onto an incomplete cache.
        if healed && wv.options.use_aux_cache {
            let pre = channel.exhausted();
            let cache = AuxCache::build(wv.def.root, wv.def.full_path(), &channel);
            if channel.exhausted() == pre {
                wv.cache = Some(cache);
            } else {
                healed = false;
            }
        }

        if healed {
            if wv.state.is_stale() {
                wv.stats.resyncs += 1;
            }
            wv.state = ViewState::Consistent;
        } else if !wv.state.is_stale() {
            wv.state = ViewState::Stale(StaleCause::QueryFailure);
        }
        outcome.healed = healed;
        gsview_obs::event!("warehouse.resync_view.done",
            "view" = view.name().to_string(),
            "healed" = healed,
            "escalated" = outcome.escalated);
        Ok(outcome)
    }

    /// Heal one view from the source's **durable lineage**: reconstruct
    /// the last persisted epoch (fetching only chunks whose hashes
    /// changed since the previous reconstruction — [`ChunkCache`]),
    /// then run the same diff-repair / escalate-to-recompute / verify
    /// ladder as [`Warehouse::resync_view`], entirely against the
    /// reconstructed store. Zero source queries; a crashed or
    /// unreachable source can still have its stale views healed to its
    /// last durable epoch.
    ///
    /// The healed view is consistent *with the persisted epoch*. The
    /// tracker is re-baselined at the manifest's sequence watermark, so
    /// if the source had committed past the persist, the next report
    /// surfaces as a gap and sends the view back through resync — the
    /// lag is detected, never silently absorbed.
    ///
    /// Falls back to the channel-query path ([`Warehouse::resync_view`])
    /// when no durable attachment, manifest, or intact chunk set is
    /// available.
    pub fn resync_view_durable(&mut self, view: Oid) -> Result<ResyncOutcome> {
        let _span = gsview_obs::span!(
            "warehouse.resync_view_durable",
            "view" = view.name().to_string()
        );
        let Some(idx) = self.views.iter().position(|v| v.def.view == view) else {
            return Ok(ResyncOutcome::default());
        };
        let source = self.views[idx].source.clone();
        let Some((m, store, stats)) = self.reconstruct_source(&source) else {
            gsview_obs::event!(
                "warehouse.resync_view_durable.fallback",
                "view" = view.name().to_string()
            );
            return self.resync_view(view);
        };
        let store = Arc::new(store);
        let wv = &mut self.views[idx];
        let mut outcome = ResyncOutcome {
            chunks_fetched: stats.fetched,
            chunks_reused: stats.reused,
            ..ResyncOutcome::default()
        };

        // Stage 1: snapshot-diff repair against the reconstructed epoch.
        {
            let mut base = LocalBase::new(&store);
            let (ins, del) = gsview_core::recompute::refresh(&wv.def, &mut base, &mut wv.mv)?;
            outcome.inserted = ins;
            outcome.deleted = del;
        }
        let mut healed =
            consistency::check(&wv.def, &mut LocalBase::new(&store), &wv.mv).is_empty();

        // Stage 2: escalate to the full-recompute baseline.
        if !healed {
            outcome.escalated = true;
            wv.mv = gsview_core::recompute::recompute(&wv.def, &mut LocalBase::new(&store))?;
            healed = consistency::check(&wv.def, &mut LocalBase::new(&store), &wv.mv).is_empty();
        }

        // Rebuild the cache from the reconstruction — local, infallible.
        if healed && wv.options.use_aux_cache {
            let chan = local_channel(&source, Arc::clone(&store), self.clock.clone());
            wv.cache = Some(AuxCache::build(wv.def.root, wv.def.full_path(), &chan));
        }

        if healed {
            if wv.state.is_stale() {
                wv.stats.resyncs += 1;
            }
            wv.state = ViewState::Consistent;
            if let Some(conn) = self.connections.get_mut(&source) {
                conn.tracker = SeqTracker::with_baseline(m.seq);
            }
        }
        outcome.healed = healed;
        gsview_obs::event!("warehouse.resync_view_durable.done",
            "view" = view.name().to_string(),
            "healed" = healed,
            "escalated" = outcome.escalated,
            "epoch" = m.epoch,
            "chunks_fetched" = stats.fetched,
            "chunks_reused" = stats.reused);
        Ok(outcome)
    }

    /// Resync every stale view once. Views that fail to heal (the
    /// source kept failing) remain stale; call again.
    pub fn resync_stale(&mut self) -> Result<Vec<(Oid, ResyncOutcome)>> {
        let stale = self.stale_views();
        let mut out = Vec::new();
        for view in stale {
            out.push((view, self.resync_view(view)?));
        }
        Ok(out)
    }
}

impl Default for Warehouse {
    fn default() -> Self {
        Self::new()
    }
}

/// Consistency-check `mv` against the source over `channel`; a check
/// that lost queries to the dead-letter queue is not a verification.
fn verified(channel: &Channel, def: &SimpleViewDef, mv: &MaterializedView) -> bool {
    let pre = channel.exhausted();
    let mut base = RemoteBase::new(channel);
    let clean = consistency::check(def, &mut base, mv).is_empty();
    clean && channel.exhausted() == pre
}

/// Local screening (paper §5.1 scenario 2 + §5.2 path knowledge):
/// decide, from the report alone, that this view cannot be affected.
fn screened_out(wv: &WarehouseView, report: &UpdateReport) -> bool {
    // Path-knowledge screening: a view whose full path is impossible
    // can never change.
    if !wv.options.knowledge.path_possible(&wv.def.full_path()) {
        return true;
    }
    if !wv.options.label_screening {
        return false;
    }
    let full = wv.def.full_path();
    match &report.update {
        AppliedUpdate::Insert { child, .. } | AppliedUpdate::Delete { child, .. } => {
            // "when label(N2) is not in the sel_path.cond_path,
            // insert(N1, N2) will have no effect on the view."
            match reported_label(report, *child) {
                Some(l) => !full.labels().contains(&l),
                None => false, // L1 report: cannot screen locally
            }
        }
        AppliedUpdate::Modify { oid, .. } => {
            // A modify matters only if the atom can sit at the tail of
            // sel.cond — and only for views with a condition.
            if wv.def.cond.is_none() {
                return true;
            }
            match (reported_label(report, *oid), full.labels().last()) {
                (Some(l), Some(&tail)) => l != tail,
                _ => false,
            }
        }
        AppliedUpdate::Create { .. } | AppliedUpdate::Remove { .. } => true,
    }
}

fn reported_label(report: &UpdateReport, oid: Oid) -> Option<Label> {
    report.info_of(oid).map(|i| i.label)
}

/// Content upkeep for a screened report, from local data only. A
/// screened update cannot change *membership*, but an edge into a
/// member set or a modify of a member atom still changes the member's
/// value, and a delegate carries "the same value as the original
/// object" (§3.2). Screening promises query-free handling, so the
/// fresh copy must already be at the warehouse: the report's carried
/// object values (L2+ reports describe both ends of an edge
/// post-update), the modify's own new value, or the aux cache (kept
/// exact by [`AuxCache::apply_report`]). Returns `false` when the
/// affected object is a member but no local copy is available — the
/// caller must then fall through to full maintenance instead of
/// screening.
fn screened_content_upkeep(wv: &mut WarehouseView, report: &UpdateReport) -> Result<bool> {
    let affected = match &report.update {
        AppliedUpdate::Insert { parent, .. } | AppliedUpdate::Delete { parent, .. } => *parent,
        AppliedUpdate::Modify { oid, .. } => *oid,
        AppliedUpdate::Create { .. } | AppliedUpdate::Remove { .. } => return Ok(true),
    };
    if !wv.mv.contains_base(affected) {
        return Ok(true);
    }
    if let Some(info) = report.info_of(affected) {
        wv.mv.refresh_delegate(&info.to_object())?;
        return Ok(true);
    }
    if let AppliedUpdate::Modify { oid, new, .. } = &report.update {
        // A level-1 modify carries no object info, but the update
        // itself holds the new value; the label comes from the
        // member's own delegate copy.
        let label = wv
            .mv
            .delegate_of(*oid)
            .and_then(|d| wv.mv.delegate(d))
            .map(|d| d.label);
        if let Some(label) = label {
            wv.mv.refresh_delegate(&Object::atom(*oid, label, new.clone()))?;
            return Ok(true);
        }
    }
    if let Some(obj) = wv.cache.as_ref().and_then(|c| c.try_fetch(affected)) {
        wv.mv.refresh_delegate(&obj)?;
        return Ok(true);
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ReportLevel;
    use crate::source::{ReportSource, Source};
    use gsdb::{samples, Update};
    use gsview_query::{CmpOp, Pred};

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn person_source(level: ReportLevel) -> Source {
        let src = Source::empty("persons", oid("ROOT"), level);
        src.with_store(|s| samples::person_db(s).map(|_| ())).unwrap();
        src.with_store(|s| {
            s.drain_log();
        });
        src
    }

    fn yp_def() -> SimpleViewDef {
        SimpleViewDef::new("YP", "ROOT", "professor")
            .with_cond("age", Pred::new(CmpOp::Le, 45i64))
    }

    fn pump(src: &Source, wh: &mut Warehouse) {
        for r in src.monitor().poll() {
            wh.handle_report(&r).unwrap();
        }
    }

    #[test]
    fn warehouse_maintains_view_from_reports() {
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view("persons", yp_def(), ViewOptions::default())
            .unwrap();
        assert_eq!(wh.view(oid("YP")).unwrap().members_base(), vec![oid("P1")]);

        // Example 5 at the source: insert(P2, A2).
        src.with_store(|s| s.create(gsdb::Object::atom("A2", "age", 40i64)))
            .unwrap();
        src.apply(Update::insert("P2", "A2")).unwrap();
        pump(&src, &mut wh);
        assert_eq!(
            wh.view(oid("YP")).unwrap().members_base(),
            vec![oid("P1"), oid("P2")]
        );

        // And a departure.
        src.apply(Update::modify("A1", 80i64)).unwrap();
        src.apply(Update::modify("A2", 80i64)).unwrap();
        pump(&src, &mut wh);
        assert!(wh.view(oid("YP")).unwrap().is_empty());
    }

    #[test]
    fn label_screening_avoids_queries_for_irrelevant_updates() {
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view(
            "persons",
            yp_def(),
            ViewOptions {
                label_screening: true,
                ..ViewOptions::default()
            },
        )
        .unwrap();
        wh.meter("persons").unwrap().reset();

        // Name changes cannot affect an age view.
        src.apply(Update::modify("N1", "Johnny")).unwrap();
        src.apply(Update::modify("N2", "Sal")).unwrap();
        pump(&src, &mut wh);
        let stats = wh.view_stats(oid("YP")).unwrap();
        assert_eq!(stats.screened_out, 2);
        assert_eq!(wh.meter("persons").unwrap().queries(), 0);
    }

    #[test]
    fn screened_reports_still_refresh_member_content() {
        // Screening proves membership cannot change — not that a
        // member's *value* cannot (§3.2). An off-path edge into a
        // member set must still refresh the delegate copy, and from
        // the report alone (no source queries).
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view(
            "persons",
            yp_def(),
            ViewOptions {
                label_screening: true,
                ..ViewOptions::default()
            },
        )
        .unwrap();
        wh.meter("persons").unwrap().reset();

        src.with_store(|s| s.create(gsdb::Object::atom("H1", "hobby", "go")))
            .unwrap();
        src.with_store(|s| {
            s.drain_log();
        });
        src.apply(Update::insert("P1", "H1")).unwrap();
        pump(&src, &mut wh);
        let stats = wh.view_stats(oid("YP")).unwrap();
        assert_eq!(stats.screened_out, 1, "hobby edge screened for an age view");
        let mv = wh.view(oid("YP")).unwrap();
        let delegate = mv.delegate_of(oid("P1")).unwrap();
        assert!(
            mv.delegate(delegate).unwrap().children().contains(&oid("H1")),
            "member copy refreshed from the screened report"
        );
        assert_eq!(wh.meter("persons").unwrap().queries(), 0);
    }

    #[test]
    fn richer_reports_need_fewer_queries() {
        // The E4 claim in miniature: the same update costs strictly
        // fewer queries as the report level rises.
        let mut queries = Vec::new();
        for level in [
            ReportLevel::OidsOnly,
            ReportLevel::WithValues,
            ReportLevel::WithPaths,
        ] {
            let src = person_source(level);
            let mut wh = Warehouse::new();
            wh.connect(&src);
            wh.add_view("persons", yp_def(), ViewOptions::default())
                .unwrap();
            wh.meter("persons").unwrap().reset();
            src.apply(Update::modify("A1", 50i64)).unwrap();
            pump(&src, &mut wh);
            queries.push(wh.meter("persons").unwrap().queries());
        }
        assert!(
            queries[0] > queries[1] || queries[1] > queries[2],
            "queries must decrease with report level: {queries:?}"
        );
        assert!(queries[0] >= queries[1] && queries[1] >= queries[2]);
    }

    #[test]
    fn cached_view_maintains_locally() {
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view(
            "persons",
            yp_def(),
            ViewOptions {
                use_aux_cache: true,
                label_screening: true,
                ..ViewOptions::default()
            },
        )
        .unwrap();
        wh.meter("persons").unwrap().reset();
        // Example 10's claim: modify-driven maintenance is fully local.
        src.apply(Update::modify("A1", 80i64)).unwrap(); // P1 leaves
        src.apply(Update::modify("A1", 40i64)).unwrap(); // P1 returns
        src.apply(Update::delete("ROOT", "P2")).unwrap();
        pump(&src, &mut wh);
        assert_eq!(
            wh.view(oid("YP")).unwrap().members_base(),
            vec![oid("P1")]
        );
        assert_eq!(
            wh.meter("persons").unwrap().queries(),
            0,
            "maintenance fully local with the §5.2 cache"
        );
    }

    #[test]
    fn path_knowledge_short_circuits_impossible_views() {
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        let mut knowledge = PathKnowledge::new();
        knowledge.assert_never_child("student", "salary");
        // A view over an impossible path: every report is discarded.
        wh.add_view(
            "persons",
            SimpleViewDef::new("SS", "ROOT", "professor.student")
                .with_cond("salary", Pred::new(CmpOp::Gt, 0i64)),
            ViewOptions {
                knowledge,
                label_screening: true,
                ..ViewOptions::default()
            },
        )
        .unwrap();
        wh.meter("persons").unwrap().reset();
        src.apply(Update::modify("S1", gsdb::Atom::tagged("dollar", 1i64)))
            .unwrap();
        pump(&src, &mut wh);
        let stats = wh.view_stats(oid("SS")).unwrap();
        assert_eq!(stats.screened_out, 1);
        assert_eq!(wh.meter("persons").unwrap().queries(), 0);
    }

    #[test]
    fn multiple_views_over_one_source() {
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view("persons", yp_def(), ViewOptions::default()).unwrap();
        wh.add_view(
            "persons",
            SimpleViewDef::new("VJ", "ROOT", "professor")
                .with_cond("name", Pred::new(CmpOp::Eq, "John")),
            ViewOptions::default(),
        )
        .unwrap();
        src.apply(Update::modify("N2", "John")).unwrap();
        pump(&src, &mut wh);
        assert_eq!(
            wh.view(oid("VJ")).unwrap().members_base(),
            vec![oid("P1"), oid("P2")]
        );
        assert_eq!(wh.view(oid("YP")).unwrap().members_base(), vec![oid("P1")]);
    }

    #[test]
    fn batch_flush_converges_at_every_reporting_level() {
        // §5's three report levels must all land on the same view
        // after one batched flush — richer reports only save queries.
        let updates = || {
            vec![
                Update::modify("A1", 50i64),  // P1 leaves…
                Update::modify("A1", 20i64),  // …and returns (cancels)
                Update::delete("P1", "A1"),
                Update::insert("P1", "A1"),   // cancels
                Update::delete("ROOT", "P2"),
                Update::modify("N2", "Sal"),  // name noise
            ]
        };
        let mut memberships = Vec::new();
        let mut query_counts = Vec::new();
        for level in [
            ReportLevel::OidsOnly,
            ReportLevel::WithValues,
            ReportLevel::WithPaths,
        ] {
            let src = person_source(level);
            let mut wh = Warehouse::new();
            wh.connect(&src);
            wh.add_view("persons", yp_def(), ViewOptions::default())
                .unwrap();
            let mut integrator = crate::integrator::BatchingIntegrator::new(4);
            integrator.register(src.monitor());
            for u in updates() {
                src.apply(u).unwrap();
            }
            integrator.pump();
            assert!(integrator.is_full());
            wh.meter("persons").unwrap().reset();
            let reports = integrator.flush();
            assert_eq!(reports.len(), 6);
            wh.handle_batch(&reports).unwrap();
            assert_eq!(integrator.buffered(), 0);
            memberships.push(wh.view(oid("YP")).unwrap().members_base());
            query_counts.push(wh.meter("persons").unwrap().queries());

            // And it matches a direct recompute of the source.
            let expected = src.with_store(|s| {
                gsview_core::recompute::recompute_members(
                    &yp_def(),
                    &mut gsview_core::LocalBase::new(s),
                )
            });
            assert_eq!(*memberships.last().unwrap(), expected);
        }
        assert!(memberships.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(*memberships.last().unwrap(), vec![oid("P1")]);
    }

    #[test]
    fn batch_flush_matches_report_at_a_time() {
        // The same report stream, flushed in one batch vs pumped one
        // report at a time, produces identical views and stats that
        // agree on net membership changes.
        let updates = vec![
            Update::modify("A1", 80i64),
            Update::delete("ROOT", "P1"),
            Update::insert("ROOT", "P1"),
            Update::modify("A1", 30i64),
            Update::modify("N2", "Jo"),
        ];

        let run = |batched: bool| {
            let src = person_source(ReportLevel::WithValues);
            let mut wh = Warehouse::new();
            wh.connect(&src);
            wh.add_view("persons", yp_def(), ViewOptions::default())
                .unwrap();
            for u in &updates {
                src.apply(u.clone()).unwrap();
            }
            let reports = src.monitor().poll();
            if batched {
                wh.handle_batch(&reports).unwrap();
            } else {
                for r in &reports {
                    wh.handle_report(r).unwrap();
                }
            }
            (
                wh.view(oid("YP")).unwrap().members_base(),
                wh.view_stats(oid("YP")).unwrap().reports,
            )
        };
        let (batched_members, batched_reports) = run(true);
        let (seq_members, seq_reports) = run(false);
        assert_eq!(batched_members, seq_members);
        assert_eq!(batched_members, vec![oid("P1")]);
        assert_eq!(batched_reports, seq_reports);
    }

    #[test]
    fn batched_cancelling_churn_skips_the_source() {
        // A fully cancelling batch consolidates to nothing: with label
        // screening the flush costs zero source queries.
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view(
            "persons",
            yp_def(),
            ViewOptions {
                label_screening: true,
                ..ViewOptions::default()
            },
        )
        .unwrap();
        src.apply(Update::delete("P1", "A1")).unwrap();
        src.apply(Update::insert("P1", "A1")).unwrap();
        let reports = src.monitor().poll();
        wh.meter("persons").unwrap().reset();
        let outcomes = wh.handle_batch(&reports).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].1.consolidated_ops, 0);
        assert!(!outcomes[0].1.changed());
        assert_eq!(wh.meter("persons").unwrap().queries(), 0);
        assert_eq!(wh.view(oid("YP")).unwrap().members_base(), vec![oid("P1")]);
    }

    #[test]
    fn warehouse_view_matches_direct_recompute() {
        // End-to-end correctness across a mixed stream.
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view("persons", yp_def(), ViewOptions::default())
            .unwrap();
        let updates = vec![
            Update::modify("A1", 50i64),
            Update::modify("A1", 20i64),
            Update::delete("P1", "A1"),
            Update::insert("P1", "A1"),
            Update::delete("ROOT", "P1"),
            Update::insert("ROOT", "P1"),
        ];
        for u in updates {
            src.apply(u).unwrap();
            pump(&src, &mut wh);
            let expected = src.with_store(|s| {
                gsview_core::recompute::recompute_members(
                    &yp_def(),
                    &mut gsview_core::LocalBase::new(s),
                )
            });
            assert_eq!(wh.view(oid("YP")).unwrap().members_base(), expected);
        }
    }

    // ------------------------------------------------------------------
    // Fault tolerance
    // ------------------------------------------------------------------

    #[test]
    fn dropped_report_is_detected_and_resync_heals() {
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view("persons", yp_def(), ViewOptions::default())
            .unwrap();
        src.apply(Update::modify("A1", 80i64)).unwrap(); // P1 leaves
        src.apply(Update::delete("ROOT", "P2")).unwrap();
        let reports = src.monitor().poll();
        // Lose the first report: the view never hears that P1 left.
        wh.handle_report(&reports[1]).unwrap();

        assert_eq!(
            wh.stale_views(),
            vec![oid("YP")],
            "seq 1 arriving where 0 was expected must flag the view"
        );
        let stats = wh.view_stats(oid("YP")).unwrap();
        assert_eq!(stats.gaps_detected, 1);
        assert_eq!(stats.skipped_while_stale, 1);
        // Degraded mode: reads still served (possibly stale content).
        assert!(wh.view(oid("YP")).is_some());
        assert!(wh.view_state(oid("YP")).unwrap().is_stale());

        // Self-healing.
        let outcome = wh.resync_view(oid("YP")).unwrap();
        assert!(outcome.healed);
        assert_eq!(outcome.deleted, 1, "diff repair removed the member P1");
        assert!(!outcome.escalated);
        assert_eq!(wh.view_state(oid("YP")).unwrap(), ViewState::Consistent);
        assert!(wh.view(oid("YP")).unwrap().is_empty());
        assert_eq!(wh.view_stats(oid("YP")).unwrap().resyncs, 1);
    }

    #[test]
    fn duplicate_reports_are_idempotent() {
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view("persons", yp_def(), ViewOptions::default())
            .unwrap();
        src.apply(Update::delete("ROOT", "P1")).unwrap();
        let reports = src.monitor().poll();
        wh.handle_report(&reports[0]).unwrap();
        assert!(wh.view(oid("YP")).unwrap().is_empty());
        // The network delivers the same report twice more.
        wh.handle_report(&reports[0]).unwrap();
        wh.handle_report(&reports[0]).unwrap();
        let stats = wh.view_stats(oid("YP")).unwrap();
        assert_eq!(stats.duplicates_dropped, 2);
        assert!(wh.stale_views().is_empty(), "duplicates are not gaps");
        assert!(wh.view(oid("YP")).unwrap().is_empty());
    }

    #[test]
    fn reconcile_detects_tail_loss() {
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view("persons", yp_def(), ViewOptions::default())
            .unwrap();
        // The last report of the stream is dropped: no successor will
        // ever reveal the gap.
        src.apply(Update::modify("A1", 80i64)).unwrap();
        let _lost = src.monitor().poll();
        assert!(wh.stale_views().is_empty(), "stream watching sees nothing");

        // The control-plane checkpoint does.
        let gaps = wh.reconcile_checkpoints([src.monitor().checkpoint()]);
        assert_eq!(gaps, 1);
        assert_eq!(wh.stale_views(), vec![oid("YP")]);
        let outcome = wh.resync_view(oid("YP")).unwrap();
        assert!(outcome.healed);
        assert!(wh.view(oid("YP")).unwrap().is_empty());
    }

    #[test]
    fn resync_rebuilds_the_aux_cache() {
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view(
            "persons",
            yp_def(),
            ViewOptions {
                use_aux_cache: true,
                ..ViewOptions::default()
            },
        )
        .unwrap();
        // Lose a report that changes the cached region.
        src.apply(Update::modify("A1", 80i64)).unwrap();
        src.apply(Update::modify("N1", "Jon")).unwrap();
        let reports = src.monitor().poll();
        wh.handle_report(&reports[1]).unwrap(); // seq 0 lost
        assert!(wh.view_state(oid("YP")).unwrap().is_stale());

        assert!(wh.resync_view(oid("YP")).unwrap().healed);
        // The rebuilt cache must answer from post-gap state: further
        // maintenance stays fully local and correct.
        wh.meter("persons").unwrap().reset();
        src.apply(Update::modify("A1", 40i64)).unwrap(); // P1 returns
        pump(&src, &mut wh);
        assert_eq!(wh.view(oid("YP")).unwrap().members_base(), vec![oid("P1")]);
        assert_eq!(wh.meter("persons").unwrap().queries(), 0);
    }

    // ------------------------------------------------------------------
    // Durable warm restart & chunk-diff resync
    // ------------------------------------------------------------------

    #[test]
    fn warm_view_materializes_with_zero_source_queries() {
        use gsview_durable::{DurableStore, MediaSet};
        let src = person_source(ReportLevel::WithValues);
        let d = Arc::new(DurableStore::open(MediaSet::memory()).unwrap());
        src.attach_durable(Arc::clone(&d)).unwrap();
        src.apply(Update::modify("A1", 40i64)).unwrap();
        let _ = src.monitor().poll(); // consumed before the "restart"

        // Warehouse restart: reconnect, then materialize warm — from
        // the durable lineage, not the source.
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.attach_durable(d);
        wh.meter("persons").unwrap().reset();
        let v = wh
            .add_view_warm(
                "persons",
                yp_def(),
                ViewOptions {
                    use_aux_cache: true,
                    ..ViewOptions::default()
                },
            )
            .unwrap()
            .expect("a persisted lineage exists");
        assert_eq!(v, oid("YP"));
        assert_eq!(wh.view(oid("YP")).unwrap().members_base(), vec![oid("P1")]);
        assert_eq!(
            wh.meter("persons").unwrap().queries(),
            0,
            "warm materialization (aux cache included) must not query the source"
        );

        // Maintenance continues seamlessly: the tracker was baselined
        // at the manifest watermark, so the next report is in order.
        src.apply(Update::modify("A1", 80i64)).unwrap();
        pump(&src, &mut wh);
        assert!(wh.view(oid("YP")).unwrap().is_empty());
        assert!(wh.stale_views().is_empty());
    }

    #[test]
    fn durable_resync_heals_without_source_queries_and_reuses_chunks() {
        use gsview_durable::{DurableStore, MediaSet};
        let src = person_source(ReportLevel::WithValues);
        // Pad the store past one page so unchanged pages exist to reuse.
        src.with_store(|s| {
            for i in 0..600 {
                s.create(Object::atom(format!("f{i}").as_str(), "x", i as i64))
                    .unwrap();
            }
            s.drain_log();
        });
        let d = Arc::new(DurableStore::open(MediaSet::memory()).unwrap());
        src.attach_durable(Arc::clone(&d)).unwrap();
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.attach_durable(d);
        wh.add_view("persons", yp_def(), ViewOptions::default())
            .unwrap();

        src.apply(Update::modify("A1", 80i64)).unwrap(); // P1 leaves
        src.apply(Update::delete("ROOT", "P2")).unwrap();
        let reports = src.monitor().poll();
        wh.handle_report(&reports[1]).unwrap(); // seq 0 lost → stale
        assert!(wh.view_state(oid("YP")).unwrap().is_stale());

        wh.meter("persons").unwrap().reset();
        let first = wh.resync_view_durable(oid("YP")).unwrap();
        assert!(first.healed);
        assert!(first.chunks_fetched > 0, "first reconstruction fetches");
        assert_eq!(
            wh.meter("persons").unwrap().queries(),
            0,
            "durable resync never queries the source"
        );
        assert_eq!(wh.view_state(oid("YP")).unwrap(), ViewState::Consistent);
        assert!(wh.view(oid("YP")).unwrap().is_empty());

        // Go stale again after one more source commit: the second
        // reconstruction fetches only the chunks whose hashes changed.
        src.apply(Update::modify("A1", 30i64)).unwrap(); // P1 returns
        src.apply(Update::modify("N1", "Jon")).unwrap();
        let reports = src.monitor().poll();
        wh.handle_report(&reports[1]).unwrap(); // gap again
        assert!(wh.view_state(oid("YP")).unwrap().is_stale());
        let second = wh.resync_view_durable(oid("YP")).unwrap();
        assert!(second.healed);
        assert!(second.chunks_reused > 0, "unchanged pages come from cache");
        assert!(
            second.chunks_fetched <= first.chunks_fetched,
            "only changed pages travel: {} vs {}",
            second.chunks_fetched,
            first.chunks_fetched
        );
        assert_eq!(wh.view(oid("YP")).unwrap().members_base(), vec![oid("P1")]);
    }

    #[test]
    fn warm_paths_fall_back_cold_without_durable_state() {
        use gsview_durable::{DurableStore, MediaSet};
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        // No attachment at all → cold.
        assert!(wh
            .add_view_warm("persons", yp_def(), ViewOptions::default())
            .unwrap()
            .is_none());
        // Attached, but nothing persisted under this lineage → cold.
        wh.attach_durable(Arc::new(DurableStore::open(MediaSet::memory()).unwrap()));
        assert!(wh
            .add_view_warm("persons", yp_def(), ViewOptions::default())
            .unwrap()
            .is_none());
        // A stale view still heals: durable resync degrades to the
        // wire path instead of failing.
        wh.add_view("persons", yp_def(), ViewOptions::default())
            .unwrap();
        src.apply(Update::modify("A1", 80i64)).unwrap();
        src.apply(Update::delete("ROOT", "P2")).unwrap();
        let reports = src.monitor().poll();
        wh.handle_report(&reports[1]).unwrap(); // seq 0 lost
        assert!(wh.view_state(oid("YP")).unwrap().is_stale());
        let outcome = wh.resync_view_durable(oid("YP")).unwrap();
        assert!(outcome.healed);
        assert_eq!(outcome.chunks_fetched, 0, "nothing durable was read");
        assert_eq!(wh.view_state(oid("YP")).unwrap(), ViewState::Consistent);
    }

    #[test]
    fn batch_with_gap_goes_stale_then_heals() {
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view("persons", yp_def(), ViewOptions::default())
            .unwrap();
        src.apply(Update::modify("A1", 80i64)).unwrap();
        src.apply(Update::delete("ROOT", "P2")).unwrap();
        src.apply(Update::modify("A1", 30i64)).unwrap();
        let mut reports = src.monitor().poll();
        let _ = reports.remove(1); // lose the middle report
        let outcomes = wh.handle_batch(&reports).unwrap();
        assert!(outcomes.is_empty(), "gapped batch must not maintain");
        assert_eq!(wh.stale_views(), vec![oid("YP")]);
        assert!(wh.resync_view(oid("YP")).unwrap().healed);
        let expected = src.with_store(|s| {
            gsview_core::recompute::recompute_members(
                &yp_def(),
                &mut gsview_core::LocalBase::new(s),
            )
        });
        assert_eq!(wh.view(oid("YP")).unwrap().members_base(), expected);
    }
}
