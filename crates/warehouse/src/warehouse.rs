//! The data warehouse (paper §5, Figure 6): stores materialized views
//! over autonomous sources, maintains them from update reports, and
//! queries back only when reports and caches cannot answer.

use crate::cache::{AuxCache, PathKnowledge};
use crate::protocol::{CostMeter, UpdateReport};
use crate::remote::RemoteBase;
use crate::source::Wrapper;
use gsdb::{AppliedUpdate, DeltaBatch, Label, Oid, Result};
use gsview_core::{BatchOutcome, MaintPlan, MaterializedView, Maintainer, Outcome, SimpleViewDef};
use std::collections::HashMap;
use std::sync::Arc;

/// Options controlling how a warehouse view is maintained.
#[derive(Clone, Debug, Default)]
pub struct ViewOptions {
    /// Maintain an auxiliary cache along `sel_path.cond_path` (§5.2).
    pub use_aux_cache: bool,
    /// Screen reports by label before doing anything else (works at
    /// report level ≥ 2: "the warehouse can do some local screening to
    /// avoid some querying back to the source").
    pub label_screening: bool,
    /// Impossible-path knowledge (§5.2 closing paragraph).
    pub knowledge: PathKnowledge,
}

/// Statistics for one warehouse view.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Reports processed.
    pub reports: u64,
    /// Reports discarded by label screening or path knowledge, with no
    /// query to the source.
    pub screened_out: u64,
    /// Reports that turned out relevant (Algorithm 1's location test
    /// passed).
    pub relevant: u64,
    /// Members inserted over the view's lifetime.
    pub inserted: u64,
    /// Members deleted over the view's lifetime.
    pub deleted: u64,
}

struct WarehouseView {
    def: SimpleViewDef,
    maintainer: Maintainer,
    mv: MaterializedView,
    source: String,
    cache: Option<AuxCache>,
    options: ViewOptions,
    stats: ViewStats,
}

/// A warehouse holding materialized views over one or more sources.
///
/// The warehouse owns no base data: it reaches sources only through
/// their wrappers (queries) and monitors (reports), exactly as in the
/// paper's architecture where "only the warehouse (and not the data
/// sources) knows the view definition".
pub struct Warehouse {
    wrappers: HashMap<String, Wrapper>,
    meters: HashMap<String, Arc<CostMeter>>,
    views: Vec<WarehouseView>,
}

impl Warehouse {
    /// An empty warehouse.
    pub fn new() -> Self {
        Warehouse {
            wrappers: HashMap::new(),
            meters: HashMap::new(),
            views: Vec::new(),
        }
    }

    /// Connect a source by name, installing a cost meter on its
    /// wrapper.
    pub fn connect(&mut self, source: &crate::source::Source) {
        let meter = Arc::new(CostMeter::new());
        let wrapper = source.wrapper(meter.clone());
        self.meters.insert(source.name().to_owned(), meter);
        self.wrappers.insert(source.name().to_owned(), wrapper);
    }

    /// The cost meter for a connected source.
    pub fn meter(&self, source: &str) -> Option<&CostMeter> {
        self.meters.get(source).map(|m| m.as_ref())
    }

    /// Define a materialized view over a connected source and
    /// initialize it by querying the source.
    pub fn add_view(
        &mut self,
        source: &str,
        def: SimpleViewDef,
        options: ViewOptions,
    ) -> Result<Oid> {
        let wrapper = self
            .wrappers
            .get(source)
            .unwrap_or_else(|| panic!("source {source} not connected"))
            .clone();
        let cache = options
            .use_aux_cache
            .then(|| AuxCache::build(def.root, def.full_path(), &wrapper));
        // Initial materialization through the wrapper.
        let mut base = RemoteBase::new(&wrapper);
        let mv = gsview_core::recompute::recompute(&def, &mut base)?;
        let view = def.view;
        self.views.push(WarehouseView {
            maintainer: Maintainer::new(def.clone()),
            def,
            mv,
            source: source.to_owned(),
            cache,
            options,
            stats: ViewStats::default(),
        });
        Ok(view)
    }

    /// Access a view's materialized state.
    pub fn view(&self, view: Oid) -> Option<&MaterializedView> {
        self.views.iter().find(|v| v.def.view == view).map(|v| &v.mv)
    }

    /// A view's statistics.
    pub fn view_stats(&self, view: Oid) -> Option<ViewStats> {
        self.views
            .iter()
            .find(|v| v.def.view == view)
            .map(|v| v.stats)
    }

    /// A view's auxiliary-cache maintenance query count, if caching.
    pub fn cache_queries(&self, view: Oid) -> Option<u64> {
        self.views
            .iter()
            .find(|v| v.def.view == view)
            .and_then(|v| v.cache.as_ref())
            .map(|c| c.maintenance_queries)
    }

    /// Re-materialize one view by querying its source (the recovery
    /// path for the update-anomaly the paper flags in §5.1: "source
    /// updates may interfere with query evaluation and resulting in
    /// inconsistent query results \[ZGMHW95\]" — when reports are
    /// processed against a source state that has already moved on,
    /// the view can drift; a refresh restores exactness).
    pub fn refresh_view(&mut self, view: Oid) -> Result<()> {
        let Some(wv) = self.views.iter_mut().find(|v| v.def.view == view) else {
            return Ok(());
        };
        let wrapper = self
            .wrappers
            .get(&wv.source)
            .expect("view sources are connected")
            .clone();
        let mut base = RemoteBase::new(&wrapper);
        gsview_core::recompute::refresh(&wv.def, &mut base, &mut wv.mv)?;
        Ok(())
    }

    /// Handle one update report from a source monitor: maintain every
    /// view defined over that source.
    pub fn handle_report(&mut self, report: &UpdateReport) -> Result<Vec<(Oid, Outcome)>> {
        let wrapper = match self.wrappers.get(&report.source) {
            Some(w) => w.clone(),
            None => return Ok(Vec::new()),
        };
        let mut outcomes = Vec::new();
        for wv in &mut self.views {
            if wv.source != report.source {
                continue;
            }
            wv.stats.reports += 1;

            // Local screening (no source queries).
            if screened_out(wv, report) {
                wv.stats.screened_out += 1;
                continue;
            }

            // Maintain the auxiliary cache first so it reflects the
            // post-update state Algorithm 1 expects.
            if let Some(cache) = wv.cache.as_mut() {
                cache.apply_report(report, &wrapper);
            }

            let outcome = {
                let mut base = RemoteBase::new(&wrapper).with_report(report);
                if let Some(cache) = wv.cache.as_ref() {
                    base = base.with_cache(cache);
                }
                wv.maintainer.apply(&mut wv.mv, &mut base, &report.update)?
            };
            if let Some(cache) = wv.cache.as_mut() {
                cache.finalize_report();
            }
            if outcome.relevant {
                wv.stats.relevant += 1;
            }
            wv.stats.inserted += outcome.inserted.len() as u64;
            wv.stats.deleted += outcome.deleted.len() as u64;
            outcomes.push((wv.def.view, outcome));
        }
        Ok(outcomes)
    }

    /// Handle a buffered run of update reports in one batched
    /// maintenance pass per view.
    ///
    /// Reports are grouped by source; for each view the unscreened
    /// reports' updates are collected into a [`DeltaBatch`] and applied
    /// with [`MaintPlan::apply_batch`] against the source's *current*
    /// state. Consolidation means churny runs (insert+delete of the
    /// same edge, repeated modifies of one atom) cost far fewer
    /// location tests and source queries than one-at-a-time
    /// [`handle_report`](Warehouse::handle_report) calls.
    pub fn handle_batch(
        &mut self,
        reports: &[UpdateReport],
    ) -> Result<Vec<(Oid, BatchOutcome)>> {
        let mut sources: Vec<String> = Vec::new();
        for r in reports {
            if !sources.contains(&r.source) {
                sources.push(r.source.clone());
            }
        }
        let mut outcomes = Vec::new();
        for source in sources {
            let wrapper = match self.wrappers.get(&source) {
                Some(w) => w.clone(),
                None => continue,
            };
            for wv in &mut self.views {
                if wv.source != source {
                    continue;
                }
                let mut batch = DeltaBatch::new();
                for report in reports.iter().filter(|r| r.source == source) {
                    wv.stats.reports += 1;
                    if screened_out(wv, report) {
                        wv.stats.screened_out += 1;
                        continue;
                    }
                    if let Some(cache) = wv.cache.as_mut() {
                        cache.apply_report(report, &wrapper);
                    }
                    batch.push(report.update.clone());
                }
                if batch.is_empty() {
                    continue;
                }
                let outcome = {
                    let mut base = RemoteBase::new(&wrapper);
                    if let Some(cache) = wv.cache.as_ref() {
                        base = base.with_cache(cache);
                    }
                    MaintPlan::new(wv.def.clone()).apply_batch(&mut wv.mv, &mut base, &batch)?
                };
                if let Some(cache) = wv.cache.as_mut() {
                    cache.finalize_report();
                }
                wv.stats.relevant += outcome.relevant_deltas as u64;
                wv.stats.inserted += outcome.inserted.len() as u64;
                wv.stats.deleted += outcome.deleted.len() as u64;
                outcomes.push((wv.def.view, outcome));
            }
        }
        Ok(outcomes)
    }
}

impl Default for Warehouse {
    fn default() -> Self {
        Self::new()
    }
}

/// Local screening (paper §5.1 scenario 2 + §5.2 path knowledge):
/// decide, from the report alone, that this view cannot be affected.
fn screened_out(wv: &WarehouseView, report: &UpdateReport) -> bool {
    // Path-knowledge screening: a view whose full path is impossible
    // can never change.
    if !wv.options.knowledge.path_possible(&wv.def.full_path()) {
        return true;
    }
    if !wv.options.label_screening {
        return false;
    }
    let full = wv.def.full_path();
    match &report.update {
        AppliedUpdate::Insert { child, .. } | AppliedUpdate::Delete { child, .. } => {
            // "when label(N2) is not in the sel_path.cond_path,
            // insert(N1, N2) will have no effect on the view."
            match reported_label(report, *child) {
                Some(l) => !full.labels().contains(&l),
                None => false, // L1 report: cannot screen locally
            }
        }
        AppliedUpdate::Modify { oid, .. } => {
            // A modify matters only if the atom can sit at the tail of
            // sel.cond — and only for views with a condition.
            if wv.def.cond.is_none() {
                return true;
            }
            match (reported_label(report, *oid), full.labels().last()) {
                (Some(l), Some(&tail)) => l != tail,
                _ => false,
            }
        }
        AppliedUpdate::Create { .. } | AppliedUpdate::Remove { .. } => true,
    }
}

fn reported_label(report: &UpdateReport, oid: Oid) -> Option<Label> {
    report.info_of(oid).map(|i| i.label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ReportLevel;
    use crate::source::Source;
    use gsdb::{samples, Update};
    use gsview_query::{CmpOp, Pred};

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn person_source(level: ReportLevel) -> Source {
        let src = Source::empty("persons", oid("ROOT"), level);
        src.with_store(|s| samples::person_db(s).map(|_| ())).unwrap();
        src.with_store(|s| {
            s.drain_log();
        });
        src
    }

    fn yp_def() -> SimpleViewDef {
        SimpleViewDef::new("YP", "ROOT", "professor")
            .with_cond("age", Pred::new(CmpOp::Le, 45i64))
    }

    fn pump(src: &Source, wh: &mut Warehouse) {
        for r in src.monitor().poll() {
            wh.handle_report(&r).unwrap();
        }
    }

    #[test]
    fn warehouse_maintains_view_from_reports() {
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view("persons", yp_def(), ViewOptions::default())
            .unwrap();
        assert_eq!(wh.view(oid("YP")).unwrap().members_base(), vec![oid("P1")]);

        // Example 5 at the source: insert(P2, A2).
        src.with_store(|s| s.create(gsdb::Object::atom("A2", "age", 40i64)))
            .unwrap();
        src.apply(Update::insert("P2", "A2")).unwrap();
        pump(&src, &mut wh);
        assert_eq!(
            wh.view(oid("YP")).unwrap().members_base(),
            vec![oid("P1"), oid("P2")]
        );

        // And a departure.
        src.apply(Update::modify("A1", 80i64)).unwrap();
        src.apply(Update::modify("A2", 80i64)).unwrap();
        pump(&src, &mut wh);
        assert!(wh.view(oid("YP")).unwrap().is_empty());
    }

    #[test]
    fn label_screening_avoids_queries_for_irrelevant_updates() {
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view(
            "persons",
            yp_def(),
            ViewOptions {
                label_screening: true,
                ..ViewOptions::default()
            },
        )
        .unwrap();
        wh.meter("persons").unwrap().reset();

        // Name changes cannot affect an age view.
        src.apply(Update::modify("N1", "Johnny")).unwrap();
        src.apply(Update::modify("N2", "Sal")).unwrap();
        pump(&src, &mut wh);
        let stats = wh.view_stats(oid("YP")).unwrap();
        assert_eq!(stats.screened_out, 2);
        assert_eq!(wh.meter("persons").unwrap().queries(), 0);
    }

    #[test]
    fn richer_reports_need_fewer_queries() {
        // The E4 claim in miniature: the same update costs strictly
        // fewer queries as the report level rises.
        let mut queries = Vec::new();
        for level in [
            ReportLevel::OidsOnly,
            ReportLevel::WithValues,
            ReportLevel::WithPaths,
        ] {
            let src = person_source(level);
            let mut wh = Warehouse::new();
            wh.connect(&src);
            wh.add_view("persons", yp_def(), ViewOptions::default())
                .unwrap();
            wh.meter("persons").unwrap().reset();
            src.apply(Update::modify("A1", 50i64)).unwrap();
            pump(&src, &mut wh);
            queries.push(wh.meter("persons").unwrap().queries());
        }
        assert!(
            queries[0] > queries[1] || queries[1] > queries[2],
            "queries must decrease with report level: {queries:?}"
        );
        assert!(queries[0] >= queries[1] && queries[1] >= queries[2]);
    }

    #[test]
    fn cached_view_maintains_locally() {
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view(
            "persons",
            yp_def(),
            ViewOptions {
                use_aux_cache: true,
                label_screening: true,
                ..ViewOptions::default()
            },
        )
        .unwrap();
        wh.meter("persons").unwrap().reset();
        // Example 10's claim: modify-driven maintenance is fully local.
        src.apply(Update::modify("A1", 80i64)).unwrap(); // P1 leaves
        src.apply(Update::modify("A1", 40i64)).unwrap(); // P1 returns
        src.apply(Update::delete("ROOT", "P2")).unwrap();
        pump(&src, &mut wh);
        assert_eq!(
            wh.view(oid("YP")).unwrap().members_base(),
            vec![oid("P1")]
        );
        assert_eq!(
            wh.meter("persons").unwrap().queries(),
            0,
            "maintenance fully local with the §5.2 cache"
        );
    }

    #[test]
    fn path_knowledge_short_circuits_impossible_views() {
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        let mut knowledge = PathKnowledge::new();
        knowledge.assert_never_child("student", "salary");
        // A view over an impossible path: every report is discarded.
        wh.add_view(
            "persons",
            SimpleViewDef::new("SS", "ROOT", "professor.student")
                .with_cond("salary", Pred::new(CmpOp::Gt, 0i64)),
            ViewOptions {
                knowledge,
                label_screening: true,
                ..ViewOptions::default()
            },
        )
        .unwrap();
        wh.meter("persons").unwrap().reset();
        src.apply(Update::modify("S1", gsdb::Atom::tagged("dollar", 1i64)))
            .unwrap();
        pump(&src, &mut wh);
        let stats = wh.view_stats(oid("SS")).unwrap();
        assert_eq!(stats.screened_out, 1);
        assert_eq!(wh.meter("persons").unwrap().queries(), 0);
    }

    #[test]
    fn multiple_views_over_one_source() {
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view("persons", yp_def(), ViewOptions::default()).unwrap();
        wh.add_view(
            "persons",
            SimpleViewDef::new("VJ", "ROOT", "professor")
                .with_cond("name", Pred::new(CmpOp::Eq, "John")),
            ViewOptions::default(),
        )
        .unwrap();
        src.apply(Update::modify("N2", "John")).unwrap();
        pump(&src, &mut wh);
        assert_eq!(
            wh.view(oid("VJ")).unwrap().members_base(),
            vec![oid("P1"), oid("P2")]
        );
        assert_eq!(wh.view(oid("YP")).unwrap().members_base(), vec![oid("P1")]);
    }

    #[test]
    fn batch_flush_converges_at_every_reporting_level() {
        // §5's three report levels must all land on the same view
        // after one batched flush — richer reports only save queries.
        let updates = || {
            vec![
                Update::modify("A1", 50i64),  // P1 leaves…
                Update::modify("A1", 20i64),  // …and returns (cancels)
                Update::delete("P1", "A1"),
                Update::insert("P1", "A1"),   // cancels
                Update::delete("ROOT", "P2"),
                Update::modify("N2", "Sal"),  // name noise
            ]
        };
        let mut memberships = Vec::new();
        let mut query_counts = Vec::new();
        for level in [
            ReportLevel::OidsOnly,
            ReportLevel::WithValues,
            ReportLevel::WithPaths,
        ] {
            let src = person_source(level);
            let mut wh = Warehouse::new();
            wh.connect(&src);
            wh.add_view("persons", yp_def(), ViewOptions::default())
                .unwrap();
            let mut integrator = crate::integrator::BatchingIntegrator::new(4);
            integrator.register(src.monitor());
            for u in updates() {
                src.apply(u).unwrap();
            }
            integrator.pump();
            assert!(integrator.is_full());
            wh.meter("persons").unwrap().reset();
            let reports = integrator.flush();
            assert_eq!(reports.len(), 6);
            wh.handle_batch(&reports).unwrap();
            assert_eq!(integrator.buffered(), 0);
            memberships.push(wh.view(oid("YP")).unwrap().members_base());
            query_counts.push(wh.meter("persons").unwrap().queries());

            // And it matches a direct recompute of the source.
            let expected = src.with_store(|s| {
                gsview_core::recompute::recompute_members(
                    &yp_def(),
                    &mut gsview_core::LocalBase::new(s),
                )
            });
            assert_eq!(*memberships.last().unwrap(), expected);
        }
        assert!(memberships.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(*memberships.last().unwrap(), vec![oid("P1")]);
    }

    #[test]
    fn batch_flush_matches_report_at_a_time() {
        // The same report stream, flushed in one batch vs pumped one
        // report at a time, produces identical views and stats that
        // agree on net membership changes.
        let updates = vec![
            Update::modify("A1", 80i64),
            Update::delete("ROOT", "P1"),
            Update::insert("ROOT", "P1"),
            Update::modify("A1", 30i64),
            Update::modify("N2", "Jo"),
        ];

        let run = |batched: bool| {
            let src = person_source(ReportLevel::WithValues);
            let mut wh = Warehouse::new();
            wh.connect(&src);
            wh.add_view("persons", yp_def(), ViewOptions::default())
                .unwrap();
            for u in &updates {
                src.apply(u.clone()).unwrap();
            }
            let reports = src.monitor().poll();
            if batched {
                wh.handle_batch(&reports).unwrap();
            } else {
                for r in &reports {
                    wh.handle_report(r).unwrap();
                }
            }
            (
                wh.view(oid("YP")).unwrap().members_base(),
                wh.view_stats(oid("YP")).unwrap().reports,
            )
        };
        let (batched_members, batched_reports) = run(true);
        let (seq_members, seq_reports) = run(false);
        assert_eq!(batched_members, seq_members);
        assert_eq!(batched_members, vec![oid("P1")]);
        assert_eq!(batched_reports, seq_reports);
    }

    #[test]
    fn batched_cancelling_churn_skips_the_source() {
        // A fully cancelling batch consolidates to nothing: with label
        // screening the flush costs zero source queries.
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view(
            "persons",
            yp_def(),
            ViewOptions {
                label_screening: true,
                ..ViewOptions::default()
            },
        )
        .unwrap();
        src.apply(Update::delete("P1", "A1")).unwrap();
        src.apply(Update::insert("P1", "A1")).unwrap();
        let reports = src.monitor().poll();
        wh.meter("persons").unwrap().reset();
        let outcomes = wh.handle_batch(&reports).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].1.consolidated_ops, 0);
        assert!(!outcomes[0].1.changed());
        assert_eq!(wh.meter("persons").unwrap().queries(), 0);
        assert_eq!(wh.view(oid("YP")).unwrap().members_base(), vec![oid("P1")]);
    }

    #[test]
    fn warehouse_view_matches_direct_recompute() {
        // End-to-end correctness across a mixed stream.
        let src = person_source(ReportLevel::WithValues);
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view("persons", yp_def(), ViewOptions::default())
            .unwrap();
        let updates = vec![
            Update::modify("A1", 50i64),
            Update::modify("A1", 20i64),
            Update::delete("P1", "A1"),
            Update::insert("P1", "A1"),
            Update::delete("ROOT", "P1"),
            Update::insert("ROOT", "P1"),
        ];
        for u in updates {
            src.apply(u).unwrap();
            pump(&src, &mut wh);
            let expected = src.with_store(|s| {
                gsview_core::recompute::recompute_members(
                    &yp_def(),
                    &mut gsview_core::LocalBase::new(s),
                )
            });
            assert_eq!(wh.view(oid("YP")).unwrap().members_base(), expected);
        }
    }
}
