//! Deterministic fault injection for the warehouse pipeline, and the
//! chaos differential harness that proves recovery from it.
//!
//! [`ChaosPolicy`] is a seeded description of how unreliable a source
//! is; [`FaultyMonitor`] and [`FaultyWrapper`] are decorators that
//! realize it — they drop, duplicate, delay and reorder update
//! reports, downgrade report levels mid-stream (L3 → L1), and make
//! source queries fail or time out. Everything is driven by one
//! seeded RNG, so a failing scenario replays exactly from its seed.
//!
//! [`run_scenario`] is the differential harness: the same update
//! stream is run through a fault-free sequential Algorithm 1 pass
//! (the PR-1 oracle) and through a chaos-wrapped warehouse pipeline
//! with detection + resync enabled, and the post-recovery views must
//! be member-identical and pass the consistency checker.

use crate::protocol::{QueryFault, ReportLevel, SourceQuery, SourceReply, UpdateReport};
use crate::resync::RetryPolicy;
use crate::source::{Monitor, QueryPort, ReportSource, Source, Wrapper};
use crate::warehouse::{ViewOptions, Warehouse};
use gsdb::{Oid, Result, Store, StoreConfig, Update};
use gsview_core::{consistency, oracle, SimpleViewDef};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A seeded description of source unreliability. All probabilities are
/// independent per report / per query attempt; `0.0` everywhere (the
/// default) makes the decorators transparent.
#[derive(Clone, Copy, Debug)]
pub struct ChaosPolicy {
    /// RNG seed; the same policy + stream replays identically.
    pub seed: u64,
    /// Probability a report is dropped outright.
    pub drop_prob: f64,
    /// Probability a delivered report is delivered twice.
    pub dup_prob: f64,
    /// Probability a report is delayed to a later poll.
    pub delay_prob: f64,
    /// Probability a poll's batch has two adjacent reports swapped.
    pub reorder_prob: f64,
    /// Probability a report is downgraded to level 1 (its L2/L3
    /// payloads stripped) before delivery.
    pub downgrade_prob: f64,
    /// Probability a query attempt fails as [`QueryFault::Unavailable`].
    pub query_fail_prob: f64,
    /// Probability a query attempt fails as [`QueryFault::Timeout`].
    pub query_timeout_prob: f64,
}

impl Default for ChaosPolicy {
    fn default() -> Self {
        ChaosPolicy {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            reorder_prob: 0.0,
            downgrade_prob: 0.0,
            query_fail_prob: 0.0,
            query_timeout_prob: 0.0,
        }
    }
}

impl ChaosPolicy {
    /// A transparent policy with the given seed.
    pub fn seeded(seed: u64) -> Self {
        ChaosPolicy {
            seed,
            ..ChaosPolicy::default()
        }
    }

    /// Report loss only, at probability `p`.
    pub fn lossy(seed: u64, p: f64) -> Self {
        ChaosPolicy {
            seed,
            drop_prob: p,
            ..ChaosPolicy::default()
        }
    }
}

// ----------------------------------------------------------------------
// Socket-level faults (the serving tier's transport chaos)
// ----------------------------------------------------------------------

/// What a socket-chaos injector does to one outbound frame. Decided
/// per frame by [`SocketChaosPolicy::decide`]; realized by the
/// serving tier's chaotic client (`gsview-serve`), which owns the
/// actual socket — this crate only owns the *decision*, so the
/// differential harness and the transport share one seeded schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SocketFault {
    /// Deliver the frame intact.
    None,
    /// Write only the given number of bytes of the frame, then close
    /// the connection — the peer sees a mid-frame disconnect.
    TruncateWrite(usize),
    /// Write a prefix of the frame and then go silent without
    /// closing — the peer's stalled-read sweep must reap the
    /// connection; the sender's read deadline turns into a timeout.
    Stall(usize),
    /// Close the connection before writing anything.
    Disconnect,
}

/// A seeded description of transport unreliability, decided per
/// outbound frame. Deterministic: fault `k` for a given seed is a
/// pure function of `(seed, k)`, so a failing networked scenario
/// replays exactly from its seed — no RNG state to thread through the
/// socket layer.
#[derive(Clone, Copy, Debug)]
pub struct SocketChaosPolicy {
    /// Schedule seed.
    pub seed: u64,
    /// Probability a frame is truncated mid-write and the connection
    /// closed (mid-frame disconnect at the peer).
    pub p_truncate: f64,
    /// Probability the sender stalls mid-frame without closing.
    pub p_stall: f64,
    /// Probability the connection is closed before the frame is sent.
    pub p_disconnect: f64,
}

impl Default for SocketChaosPolicy {
    fn default() -> Self {
        SocketChaosPolicy {
            seed: 0,
            p_truncate: 0.0,
            p_stall: 0.0,
            p_disconnect: 0.0,
        }
    }
}

impl SocketChaosPolicy {
    /// A transparent policy with the given seed.
    pub fn seeded(seed: u64) -> Self {
        SocketChaosPolicy {
            seed,
            ..SocketChaosPolicy::default()
        }
    }

    /// Equal probability `p` for each fault flavor.
    pub fn uniform(seed: u64, p: f64) -> Self {
        SocketChaosPolicy {
            seed,
            p_truncate: p,
            p_stall: p,
            p_disconnect: p,
        }
    }

    /// The fault to inject on outbound frame number `op` of
    /// `frame_len` bytes. Pure: same `(seed, op)` → same decision.
    pub fn decide(&self, op: u64, frame_len: usize) -> SocketFault {
        // splitmix64 of (seed, op): cheap, stateless, well-mixed.
        let mut z = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(op.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let roll = (z >> 11) as f64 / (1u64 << 53) as f64;
        // A truncated/stalled frame keeps at least one byte (the peer
        // must observe a *partial* frame, not an empty read) and
        // drops at least one (otherwise it would be a clean delivery).
        let cut = 1 + (z as usize % frame_len.max(2).saturating_sub(1));
        if roll < self.p_truncate {
            SocketFault::TruncateWrite(cut)
        } else if roll < self.p_truncate + self.p_stall {
            SocketFault::Stall(cut)
        } else if roll < self.p_truncate + self.p_stall + self.p_disconnect {
            SocketFault::Disconnect
        } else {
            SocketFault::None
        }
    }
}

/// What the fault injectors actually did (for experiment reporting and
/// test assertions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Reports delivered (including duplicates).
    pub delivered: u64,
    /// Reports dropped.
    pub dropped: u64,
    /// Reports delivered twice.
    pub duplicated: u64,
    /// Reports pushed to a later poll.
    pub delayed: u64,
    /// Polls whose batch was reordered.
    pub reordered: u64,
    /// Reports stripped to level 1.
    pub downgraded: u64,
    /// Query attempts failed.
    pub query_faults: u64,
}

/// A monitor decorator that injects report-stream faults according to
/// a [`ChaosPolicy`].
///
/// Checkpoints pass through unfaulted: they are control-plane
/// metadata (the equivalent of a heartbeat/watermark), and the inner
/// monitor's sequence counter already includes every dropped report —
/// which is exactly what lets the warehouse detect tail loss.
pub struct FaultyMonitor {
    inner: Monitor,
    policy: ChaosPolicy,
    rng: Mutex<StdRng>,
    pending: Mutex<Vec<UpdateReport>>,
    stats: Mutex<ChaosStats>,
}

impl FaultyMonitor {
    /// Decorate a monitor.
    pub fn new(inner: Monitor, policy: ChaosPolicy) -> Self {
        FaultyMonitor {
            inner,
            policy,
            rng: Mutex::new(StdRng::seed_from_u64(policy.seed ^ 0x006d_6f6e_6974_6f72)),
            pending: Mutex::new(Vec::new()),
            stats: Mutex::new(ChaosStats::default()),
        }
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> ChaosStats {
        *self.stats.lock().unwrap()
    }

    /// Reports still held back by delay faults. Draining models the
    /// late arrivals finally landing; never draining models loss.
    #[must_use = "unprocessed reports silently corrupt the warehouse's views"]
    pub fn drain_delayed(&self) -> Vec<UpdateReport> {
        std::mem::take(&mut *self.pending.lock().unwrap())
    }

    /// Poll the inner monitor and push the fresh reports through the
    /// fault model, together with any previously delayed reports.
    #[must_use = "unprocessed reports silently corrupt the warehouse's views"]
    pub fn poll(&self) -> Vec<UpdateReport> {
        let fresh = self.inner.poll();
        let mut rng = self.rng.lock().unwrap();
        let mut stats = self.stats.lock().unwrap();
        let mut out: Vec<UpdateReport> = self.pending.lock().unwrap().drain(..).collect();
        for mut report in fresh {
            if rng.gen_bool(self.policy.drop_prob) {
                stats.dropped += 1;
                gsview_obs::event!("chaos.inject", "kind" = "drop", "seq" = report.seq);
                continue;
            }
            if rng.gen_bool(self.policy.downgrade_prob)
                && report.effective_level() > ReportLevel::OidsOnly
            {
                report.info.clear();
                report.paths.clear();
                stats.downgraded += 1;
                gsview_obs::event!("chaos.inject", "kind" = "downgrade", "seq" = report.seq);
            }
            if rng.gen_bool(self.policy.delay_prob) {
                stats.delayed += 1;
                gsview_obs::event!("chaos.inject", "kind" = "delay", "seq" = report.seq);
                self.pending.lock().unwrap().push(report);
                continue;
            }
            if rng.gen_bool(self.policy.dup_prob) {
                stats.duplicated += 1;
                stats.delivered += 1;
                gsview_obs::event!("chaos.inject", "kind" = "duplicate", "seq" = report.seq);
                out.push(report.clone());
            }
            stats.delivered += 1;
            out.push(report);
        }
        if out.len() >= 2 && rng.gen_bool(self.policy.reorder_prob) {
            let i = rng.gen_range(0..out.len() - 1);
            out.swap(i, i + 1);
            stats.reordered += 1;
            gsview_obs::event!("chaos.inject", "kind" = "reorder");
        }
        out
    }
}

impl ReportSource for FaultyMonitor {
    fn poll_reports(&self) -> Vec<UpdateReport> {
        self.poll()
    }

    fn checkpoint(&self) -> (String, u64) {
        self.inner.checkpoint()
    }
}

/// A wrapper decorator that makes queries fail or time out according
/// to a [`ChaosPolicy`]. Failed attempts are charged to the wrapped
/// wrapper's (per-source) cost meter as faults.
pub struct FaultyWrapper {
    inner: Wrapper,
    policy: ChaosPolicy,
    rng: Mutex<StdRng>,
    injected: AtomicU64,
}

impl FaultyWrapper {
    /// Decorate a wrapper.
    pub fn new(inner: Wrapper, policy: ChaosPolicy) -> Self {
        FaultyWrapper {
            inner,
            policy,
            rng: Mutex::new(StdRng::seed_from_u64(policy.seed ^ 0x0077_7261_7070_6572)),
            injected: AtomicU64::new(0),
        }
    }

    /// Query faults injected so far.
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl QueryPort for FaultyWrapper {
    fn query(&self, q: &SourceQuery) -> std::result::Result<SourceReply, QueryFault> {
        let roll: f64 = self.rng.lock().unwrap().gen();
        let fault = if roll < self.policy.query_fail_prob {
            Some(QueryFault::Unavailable)
        } else if roll < self.policy.query_fail_prob + self.policy.query_timeout_prob {
            Some(QueryFault::Timeout)
        } else {
            None
        };
        if let Some(fault) = fault {
            self.injected.fetch_add(1, Ordering::Relaxed);
            gsview_obs::event!("chaos.inject",
                "kind" = "query_fault",
                "fault" = fault.to_string());
            self.inner.meter().record_fault(q, fault);
            return Err(fault);
        }
        Ok(self.inner.serve(q))
    }
}

// ----------------------------------------------------------------------
// The chaos differential harness
// ----------------------------------------------------------------------

/// One seeded fault scenario for [`run_scenario`].
#[derive(Clone, Debug)]
pub struct ChaosScenario {
    /// The level the source's monitor reports at (before downgrades).
    pub level: ReportLevel,
    /// The fault model.
    pub policy: ChaosPolicy,
    /// Retry budget for queries through the faulty wrapper.
    pub retry: RetryPolicy,
    /// View maintenance options (aux cache, screening, …).
    pub options: ViewOptions,
    /// Updates applied between monitor polls.
    pub poll_every: usize,
    /// Resync attempts allowed before declaring the scenario failed
    /// (each attempt can itself lose queries to chaos).
    pub max_resync_rounds: usize,
}

impl Default for ChaosScenario {
    fn default() -> Self {
        ChaosScenario {
            level: ReportLevel::WithValues,
            policy: ChaosPolicy::default(),
            retry: RetryPolicy::default(),
            options: ViewOptions::default(),
            poll_every: 3,
            max_resync_rounds: 16,
        }
    }
}

/// The harness's verdict: what chaos did, what recovery did, and every
/// way the recovered pipeline disagrees with the fault-free run.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Final membership of the fault-free sequential run.
    pub expected: Vec<Oid>,
    /// Final membership of the chaos pipeline after recovery.
    pub members: Vec<Oid>,
    /// What the report-stream injector did.
    pub monitor_stats: ChaosStats,
    /// Gaps the warehouse detected (per-view count).
    pub gaps_detected: u64,
    /// Duplicate reports the warehouse dropped (per-view count).
    pub duplicates_dropped: u64,
    /// Resyncs performed across all views.
    pub resyncs: u64,
    /// Resync rounds needed to heal every view (0 = never went stale).
    pub resync_rounds: usize,
    /// Queries that exhausted retries (dead letters at the end).
    pub dead_letters: usize,
    /// Total simulated backoff latency.
    pub backoff_ms: u64,
    /// Human-readable disagreements. Empty = the pipeline recovered
    /// byte-identically (member set + consistency check).
    pub failures: Vec<String>,
}

impl ChaosReport {
    /// True iff the pipeline recovered exactly.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Rebuild `initial` into a store with monitoring enabled (the chaos
/// source needs an update log regardless of how the caller built the
/// initial state).
fn logging_copy(initial: &Store) -> Result<Store> {
    let mut s = Store::with_config(StoreConfig {
        parent_index: true,
        label_index: true,
        log_updates: true,
        ..StoreConfig::default()
    });
    s.create_all(initial.iter().cloned())?;
    s.drain_log();
    Ok(s)
}

/// Run one seeded fault scenario and compare against the fault-free
/// sequential run.
///
/// The pipeline: a [`Source`] at `sc.level`, its monitor wrapped in a
/// [`FaultyMonitor`] and its wrapper in a [`FaultyWrapper`]; a
/// [`Warehouse`] with gap detection, retries and the dead-letter queue
/// armed. After the stream ends, delayed reports land, the warehouse
/// reconciles against the monitor's checkpoint (tail-loss detection)
/// and resyncs stale views until every view is `Consistent` again (or
/// `sc.max_resync_rounds` is exhausted). Updates the store rejects are
/// skipped identically on both runs.
pub fn run_scenario(
    def: &SimpleViewDef,
    initial: &Store,
    updates: &[Update],
    sc: &ChaosScenario,
) -> Result<ChaosReport> {
    // Route 1: the fault-free oracle (sequential Algorithm 1,
    // consistency-checked at the end).
    let mut report = ChaosReport {
        expected: oracle::reference_members(def, initial, updates)?,
        ..ChaosReport::default()
    };

    // Route 2: the chaos pipeline.
    let source = Source::new("chaos", def.root, logging_copy(initial)?, sc.level);
    let monitor = FaultyMonitor::new(source.monitor(), sc.policy);
    let mut wh = Warehouse::new().with_retry_policy(sc.retry);
    wh.connect_faulty(&source, sc.policy);
    let view = wh.add_view("chaos", def.clone(), sc.options.clone())?;

    let poll_every = sc.poll_every.max(1);
    let mut since_poll = 0usize;
    for u in updates {
        if source.apply(u.clone()).is_err() {
            continue; // skipped identically by the oracle
        }
        since_poll += 1;
        if since_poll >= poll_every {
            since_poll = 0;
            for r in monitor.poll() {
                wh.handle_report(&r)?;
            }
        }
    }
    // End of stream: final poll, then the delayed stragglers land.
    for r in monitor.poll() {
        wh.handle_report(&r)?;
    }
    for r in monitor.drain_delayed() {
        wh.handle_report(&r)?;
    }
    // Tail-loss detection against the control-plane checkpoint.
    let (name, next_seq) = monitor.checkpoint();
    wh.reconcile(&name, next_seq);

    // Self-healing: resync until consistent (chaos can fail a resync's
    // own queries, so this may take several rounds).
    let mut rounds = 0usize;
    while !wh.stale_views().is_empty() && rounds < sc.max_resync_rounds {
        rounds += 1;
        for (_, outcome) in wh.resync_stale()? {
            if outcome.healed {
                report.resyncs += 1;
            }
        }
    }
    report.resync_rounds = rounds;

    // Verdict.
    report.monitor_stats = monitor.stats();
    report.dead_letters = wh.dead_letters().len();
    report.backoff_ms = wh.clock().now_ms();
    if let Some(stats) = wh.view_stats(view) {
        report.gaps_detected = stats.gaps_detected;
        report.duplicates_dropped = stats.duplicates_dropped;
    }
    report.members = wh
        .view(view)
        .map(|mv| mv.members_base())
        .unwrap_or_default();

    for v in wh.stale_views() {
        report
            .failures
            .push(format!("view {v} left permanently stale after {rounds} resync rounds"));
    }
    if let Some(diff) = oracle::diff_members("chaos vs fault-free", &report.members, &report.expected)
    {
        report.failures.push(diff);
    }
    // The consistency checker, evaluated against the live source
    // through the (still faulty) channel: retry until it gets a clean
    // read or the round budget is spent.
    if let Some(mv) = wh.view(view) {
        let problems = source.with_store(|s| {
            consistency::check(def, &mut gsview_core::LocalBase::new(s), mv)
        });
        for p in problems {
            report.failures.push(format!("consistency: {p}"));
        }
    }
    Ok(report)
}

/// [`run_scenario`], panicking with replayable context on divergence.
pub fn assert_recovers(
    def: &SimpleViewDef,
    initial: &Store,
    updates: &[Update],
    sc: &ChaosScenario,
) -> ChaosReport {
    let report = run_scenario(def, initial, updates, sc).expect("chaos scenario run failed");
    if !report.ok() {
        let ops: Vec<String> = updates.iter().map(|u| u.to_string()).collect();
        let msg = format!(
            "chaos pipeline failed to recover for `{def}`\n\
             seed: {seed:#x}, level: {level}, policy: {policy:?}\n\
             updates: [{ops}]\nchaos: {stats:?}\nfailures:\n  {failures}",
            seed = sc.policy.seed,
            level = sc.level,
            policy = sc.policy,
            ops = ops.join(", "),
            stats = report.monitor_stats,
            failures = report.failures.join("\n  ")
        );
        gsview_obs::failure(&msg);
        panic!("{msg}");
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdb::samples;
    use gsview_query::{CmpOp, Pred};

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn person_store() -> Store {
        let mut s = Store::new();
        samples::person_db(&mut s).unwrap();
        s
    }

    fn yp_def() -> SimpleViewDef {
        SimpleViewDef::new("YP", "ROOT", "professor")
            .with_cond("age", Pred::new(CmpOp::Le, 45i64))
    }

    fn chaos_source(level: ReportLevel) -> Source {
        let src = Source::empty("persons", oid("ROOT"), level);
        src.with_store(|s| samples::person_db(s).map(|_| ())).unwrap();
        src.with_store(|s| {
            s.drain_log();
        });
        src
    }

    #[test]
    fn transparent_policy_changes_nothing() {
        let src = chaos_source(ReportLevel::WithPaths);
        let fm = FaultyMonitor::new(src.monitor(), ChaosPolicy::seeded(1));
        src.apply(Update::modify("A1", 50i64)).unwrap();
        src.apply(Update::modify("A1", 30i64)).unwrap();
        let reports = fm.poll();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].seq, 0);
        assert_eq!(reports[1].seq, 1);
        assert_eq!(fm.stats().dropped, 0);
        assert_eq!(fm.stats().delivered, 2);
    }

    #[test]
    fn drop_faults_are_deterministic_per_seed() {
        let run = |seed| {
            let src = chaos_source(ReportLevel::OidsOnly);
            let fm = FaultyMonitor::new(
                src.monitor(),
                ChaosPolicy {
                    drop_prob: 0.5,
                    ..ChaosPolicy::seeded(seed)
                },
            );
            for i in 0..50 {
                src.apply(Update::modify("A1", i as i64)).unwrap();
            }
            fm.poll().iter().map(|r| r.seq).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same faults");
        assert_ne!(run(7), run(8), "different seed, different faults");
        assert!(run(7).len() < 50, "half the stream should drop");
    }

    #[test]
    fn downgrade_strips_payload_but_keeps_oids() {
        let src = chaos_source(ReportLevel::WithPaths);
        let fm = FaultyMonitor::new(
            src.monitor(),
            ChaosPolicy {
                downgrade_prob: 1.0,
                ..ChaosPolicy::seeded(3)
            },
        );
        src.apply(Update::modify("A1", 50i64)).unwrap();
        let reports = fm.poll();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].effective_level(), ReportLevel::OidsOnly);
        assert!(!reports[0].update.directly_affected().is_empty());
        assert_eq!(fm.stats().downgraded, 1);
    }

    #[test]
    fn delayed_reports_arrive_on_a_later_poll() {
        let src = chaos_source(ReportLevel::OidsOnly);
        let fm = FaultyMonitor::new(
            src.monitor(),
            ChaosPolicy {
                delay_prob: 1.0,
                ..ChaosPolicy::seeded(4)
            },
        );
        src.apply(Update::modify("A1", 50i64)).unwrap();
        assert!(fm.poll().is_empty(), "everything delayed");
        assert_eq!(fm.stats().delayed, 1);
        let late = fm.drain_delayed();
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].seq, 0);
    }

    #[test]
    fn faulty_wrapper_fails_queries_and_meters_them() {
        let src = chaos_source(ReportLevel::OidsOnly);
        let meter = std::sync::Arc::new(crate::protocol::CostMeter::new());
        let fw = FaultyWrapper::new(
            src.wrapper(meter.clone()),
            ChaosPolicy {
                query_fail_prob: 1.0,
                ..ChaosPolicy::seeded(5)
            },
        );
        let q = SourceQuery::Fetch(oid("P1"));
        assert_eq!(fw.query(&q), Err(QueryFault::Unavailable));
        assert_eq!(fw.injected_faults(), 1);
        assert_eq!(meter.faults(), 1);
        assert_eq!(meter.queries(), 0, "no successful round trip");
    }

    #[test]
    fn scenario_with_no_faults_matches_oracle_without_resync() {
        let report = assert_recovers(
            &yp_def(),
            &person_store(),
            &[
                Update::modify("A1", 50i64),
                Update::modify("A1", 30i64),
                Update::delete("ROOT", "P2"),
            ],
            &ChaosScenario::default(),
        );
        assert_eq!(report.gaps_detected, 0);
        assert_eq!(report.resyncs, 0);
        assert_eq!(report.members, vec![oid("P1")]);
    }

    #[test]
    fn lossy_scenario_detects_gaps_and_heals() {
        let report = assert_recovers(
            &yp_def(),
            &person_store(),
            &[
                Update::modify("A1", 50i64),
                Update::modify("A1", 30i64),
                Update::modify("A1", 80i64),
                Update::delete("ROOT", "P2"),
                Update::insert("ROOT", "P2"),
                Update::modify("A1", 20i64),
            ],
            &ChaosScenario {
                policy: ChaosPolicy::lossy(11, 0.5),
                poll_every: 1,
                ..ChaosScenario::default()
            },
        );
        assert!(report.monitor_stats.dropped > 0, "seed 11 must drop something");
        assert!(report.gaps_detected > 0, "losses must be detected");
        assert!(report.resyncs > 0, "healing must have happened");
    }

    #[test]
    fn downgrade_mid_stream_recovers_without_panic() {
        // L3 source whose reports keep collapsing to L1: the
        // maintainer falls back to querying the source.
        let report = assert_recovers(
            &yp_def(),
            &person_store(),
            &[
                Update::modify("A1", 50i64),
                Update::delete("P1", "A1"),
                Update::insert("P1", "A1"),
                Update::modify("A1", 44i64),
            ],
            &ChaosScenario {
                level: ReportLevel::WithPaths,
                policy: ChaosPolicy {
                    downgrade_prob: 0.7,
                    ..ChaosPolicy::seeded(12)
                },
                poll_every: 1,
                ..ChaosScenario::default()
            },
        );
        assert_eq!(report.members, vec![oid("P1")]);
    }

    #[test]
    fn query_faults_with_retries_still_converge() {
        let _ = assert_recovers(
            &yp_def(),
            &person_store(),
            &[
                Update::modify("A1", 50i64),
                Update::delete("ROOT", "P1"),
                Update::insert("ROOT", "P1"),
                Update::modify("A1", 20i64),
            ],
            &ChaosScenario {
                level: ReportLevel::OidsOnly, // forces query-backs
                policy: ChaosPolicy {
                    query_fail_prob: 0.2,
                    query_timeout_prob: 0.1,
                    ..ChaosPolicy::seeded(13)
                },
                poll_every: 2,
                ..ChaosScenario::default()
            },
        );
    }
}
