//! The integrator (paper Figure 6): collects update reports from all
//! source monitors and feeds them to the warehouse in a deterministic
//! order.
//!
//! Two modes:
//! * [`Integrator`] — synchronous polling of registered monitors
//!   (deterministic, used by tests and benchmarks);
//! * [`spawn_channel_integrator`] — a bounded-channel pipeline where
//!   each monitor is pumped from its own thread, as a warehouse
//!   deployment would run (used by the warehouse example).

use crate::protocol::UpdateReport;
use crate::source::{Monitor, ReportSource};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

/// A synchronous integrator polling report sources in registration
/// order.
///
/// Reports from one source preserve their sequence order; across
/// sources, the integrator round-robins polls, which matches the
/// paper's assumption that each source reports its own updates in
/// order while sources are mutually asynchronous.
///
/// Any [`ReportSource`] registers — a plain [`Monitor`] or a
/// fault-injecting [`FaultyMonitor`](crate::chaos::FaultyMonitor); the
/// integrator neither knows nor cares whether the stream is reliable.
/// Gap and duplicate detection is the warehouse's job
/// ([`Warehouse::handle_report`](crate::Warehouse::handle_report)),
/// fed by the control-plane [`Integrator::checkpoints`] for tail-loss
/// reconciliation.
#[derive(Default)]
pub struct Integrator {
    monitors: Vec<Box<dyn ReportSource>>,
}

impl Integrator {
    /// An integrator with no monitors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a report source (a monitor or any decorator over one).
    pub fn register(&mut self, source: impl ReportSource + 'static) {
        self.monitors.push(Box::new(source));
    }

    /// Poll all sources once, returning the merged report batch.
    pub fn poll(&self) -> Vec<UpdateReport> {
        let mut out = Vec::new();
        for m in &self.monitors {
            out.extend(m.poll_reports());
        }
        out
    }

    /// Every source's control-plane checkpoint `(name, next_seq)`.
    /// Feed to [`Warehouse::reconcile_checkpoints`](crate::Warehouse::reconcile_checkpoints)
    /// to detect tail loss.
    pub fn checkpoints(&self) -> Vec<(String, u64)> {
        self.monitors.iter().map(|m| m.checkpoint()).collect()
    }
}

/// An integrator that buffers polled reports and releases them in
/// batches, for warehouses that maintain views with
/// [`Warehouse::handle_batch`](crate::Warehouse::handle_batch).
///
/// Batching trades staleness for work: the warehouse sees source
/// changes only at flush time, but consolidation lets one batched
/// maintenance pass replace up to `capacity` report-at-a-time passes.
#[derive(Default)]
pub struct BatchingIntegrator {
    inner: Integrator,
    buffer: Vec<UpdateReport>,
    capacity: usize,
}

impl BatchingIntegrator {
    /// A batching integrator that considers itself full at `capacity`
    /// buffered reports (0 means "never full": flush manually).
    pub fn new(capacity: usize) -> Self {
        BatchingIntegrator {
            inner: Integrator::new(),
            buffer: Vec::new(),
            capacity,
        }
    }

    /// Register a report source (a monitor or any decorator over one).
    pub fn register(&mut self, source: impl ReportSource + 'static) {
        self.inner.register(source);
    }

    /// Every registered source's control-plane checkpoint.
    pub fn checkpoints(&self) -> Vec<(String, u64)> {
        self.inner.checkpoints()
    }

    /// Poll all monitors once into the buffer; returns how many
    /// reports were added.
    pub fn pump(&mut self) -> usize {
        let polled = self.inner.poll();
        let n = polled.len();
        self.buffer.extend(polled);
        n
    }

    /// Number of buffered reports.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// True once the buffer has reached capacity.
    pub fn is_full(&self) -> bool {
        self.capacity > 0 && self.buffer.len() >= self.capacity
    }

    /// Drain the buffer, returning the batch in arrival order.
    pub fn flush(&mut self) -> Vec<UpdateReport> {
        std::mem::take(&mut self.buffer)
    }
}

/// Spawn one pump thread per monitor, all feeding a bounded channel.
/// Returns the receiving end and the thread handles; threads exit when
/// `stop` is dropped... more precisely, each pump exits after
/// `rounds` polls (bounded by test/demo needs — sources here are
/// in-process, so an unbounded daemon would never terminate).
pub fn spawn_channel_integrator(
    monitors: Vec<Monitor>,
    rounds: usize,
) -> (Receiver<UpdateReport>, Vec<JoinHandle<()>>) {
    let (tx, rx): (SyncSender<UpdateReport>, Receiver<UpdateReport>) = sync_channel(1024);
    let mut handles = Vec::new();
    for m in monitors {
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..rounds {
                for report in m.poll() {
                    if tx.send(report).is_err() {
                        return;
                    }
                }
                std::thread::yield_now();
            }
        }));
    }
    drop(tx);
    (rx, handles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ReportLevel;
    use crate::source::Source;
    use gsdb::{Object, Oid, Update};

    fn tiny_source(name: &str) -> Source {
        let src = Source::empty(name, Oid::new(&format!("{name}-root")), ReportLevel::OidsOnly);
        src.with_store(|s| {
            s.create(Object::empty_set(format!("{name}-root").as_str(), "db"))?;
            s.create(Object::atom(format!("{name}-x").as_str(), "x", 1i64))
        })
        .unwrap();
        src.with_store(|s| {
            s.drain_log();
        });
        src
    }

    #[test]
    fn integrator_merges_sources_in_order() {
        let s1 = tiny_source("s1");
        let s2 = tiny_source("s2");
        let mut integrator = Integrator::new();
        integrator.register(s1.monitor());
        integrator.register(s2.monitor());

        s1.apply(Update::modify("s1-x", 2i64)).unwrap();
        s2.apply(Update::modify("s2-x", 2i64)).unwrap();
        s1.apply(Update::modify("s1-x", 3i64)).unwrap();

        let batch = integrator.poll();
        assert_eq!(batch.len(), 3);
        // Per-source sequence order preserved.
        let s1_seqs: Vec<u64> = batch
            .iter()
            .filter(|r| r.source == "s1")
            .map(|r| r.seq)
            .collect();
        assert_eq!(s1_seqs, vec![0, 1]);
        // Second poll is empty.
        assert!(integrator.poll().is_empty());
    }

    #[test]
    fn channel_integrator_delivers_all_reports() {
        let s1 = tiny_source("c1");
        let s2 = tiny_source("c2");
        for i in 0..10 {
            s1.apply(Update::modify("c1-x", i as i64)).unwrap();
            s2.apply(Update::modify("c2-x", i as i64)).unwrap();
        }
        let (rx, handles) = spawn_channel_integrator(vec![s1.monitor(), s2.monitor()], 3);
        let reports: Vec<UpdateReport> = rx.iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reports.len(), 20);
        // Per-source order is preserved even across threads.
        let seqs: Vec<u64> = reports
            .iter()
            .filter(|r| r.source == "c1")
            .map(|r| r.seq)
            .collect();
        assert_eq!(seqs, (0..10).collect::<Vec<u64>>());
    }
}
