//! Warehouse-side caching of auxiliary information (paper §5.2).
//!
//! [`AuxCache`] realizes Example 10: "for a view whose select path
//! starts from object OBJ, say the warehouse caches all objects and
//! labels reachable from OBJ along `sel_path.cond_path`. Then the
//! warehouse can maintain the view locally, for any base update." The
//! cache is itself "simply another materialized view" and is kept up
//! to date from the source's update reports; when a report lacks the
//! data needed to keep the cached region complete (e.g. an inserted
//! professor's direct subobjects), the cache fetches exactly those
//! objects — the paper's partial-caching caveat.
//!
//! [`PathKnowledge`] realizes the section's closing idea: "knowledge of
//! paths that can never occur ... at the source", e.g. *student objects
//! never have a salary child*, which lets the warehouse discard reports
//! without any queries.
//!
//! Cache rebuilds and completeness fetches go through the warehouse's
//! [`Channel`], whose wrapper serves them from the source's latest
//! **published epoch** — a cache refill therefore sees one immutable
//! batch-boundary snapshot of the source and never contends with
//! in-flight maintenance for the store mutex.

use crate::protocol::{SourceQuery, SourceReply, UpdateReport};
use crate::remote::Channel;
use gsdb::{path, AppliedUpdate, Label, Object, Oid, Path, Store, StoreConfig};
use gsview_query::Pred;
use std::collections::{HashMap, HashSet};

/// A cached copy of the base subgraph along `sel_path.cond_path`.
#[derive(Debug)]
pub struct AuxCache {
    root: Oid,
    full: Path,
    store: Store,
    /// Subtrees detached by a just-applied delete, kept until
    /// [`AuxCache::finalize_report`]: Algorithm 1's delete case still
    /// evaluates `eval(N2, p, cond)` over the detached subtree, so the
    /// cache must keep it (with its recorded pre-delete root path)
    /// through maintenance.
    detached: HashMap<Oid, Path>,
    /// Queries issued to keep the cache complete (setup excluded).
    pub maintenance_queries: u64,
}

impl AuxCache {
    /// Build the cache by querying the source for every prefix level
    /// of `full` (one `Reach` query per level plus one root fetch).
    ///
    /// Queries that exhaust their retries leave the corresponding
    /// region uncached; watch [`Channel::exhausted`] across the build —
    /// an incomplete cache must not be trusted for
    /// [`AuxCache::certainly_off_path`] answers.
    pub fn build(root: Oid, full: Path, chan: &Channel) -> AuxCache {
        let mut store = Store::with_config(StoreConfig {
            parent_index: true,
            label_index: false,
            log_updates: false,
            ..StoreConfig::default()
        });
        if let Some(SourceReply::Object(Some(info))) = chan.serve(&SourceQuery::Fetch(root)) {
            store
                .create(info.to_object())
                .expect("fresh cache store accepts the root");
        }
        for depth in 1..=full.len() {
            let prefix = Path(full.labels()[..depth].to_vec());
            let reply = chan.serve(&SourceQuery::Reach {
                n: root,
                p: prefix,
            });
            if let Some(SourceReply::Objects(infos)) = reply {
                for info in infos {
                    if !store.contains(info.oid) {
                        store
                            .create(info.to_object())
                            .expect("distinct OIDs within one level");
                    }
                }
            }
        }
        AuxCache {
            root,
            full,
            store,
            detached: HashMap::new(),
            maintenance_queries: 0,
        }
    }

    /// The cached region's root.
    pub fn root(&self) -> Oid {
        self.root
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Is `n` in the cached region?
    pub fn covers(&self, n: Oid) -> bool {
        self.store.contains(n)
    }

    /// Does `rooted.l` extend along `full`? (I.e. is it a viable
    /// prefix position — the object belongs in the cached region.)
    fn extends(&self, rooted: &Path, l: Label) -> bool {
        rooted.len() < self.full.len()
            && self.full.labels()[..rooted.len()] == rooted.labels()[..]
            && self.full.labels()[rooted.len()] == l
    }

    /// Maintain the cache from one update report. Missing labels or
    /// subtree objects are fetched through `chan`, counting into
    /// [`AuxCache::maintenance_queries`].
    pub fn apply_report(&mut self, report: &UpdateReport, chan: &Channel) {
        match &report.update {
            AppliedUpdate::Modify { oid, new, .. } => {
                if self.store.contains(*oid) {
                    let _ = self.store.modify_atom(*oid, new.clone());
                }
            }
            AppliedUpdate::Insert { parent, child } => {
                if !self.store.contains(*parent) {
                    return;
                }
                // Pull the child (and its relevant descendants) into
                // the cached region when it extends the view path from
                // the parent's position.
                if let Some(rooted) = path::path_between(&self.store, self.root, *parent) {
                    if let Some(cl) = self.label_via(report, chan, *child) {
                        if self.extends(&rooted, cl) {
                            let mut remaining = rooted.clone();
                            remaining.push(cl);
                            self.adopt(report, chan, *child, remaining);
                        }
                    }
                }
                // Either way the parent's cached copy gains the edge:
                // copies are served by [`AuxCache::try_fetch`], so a
                // set copy must stay exact even when the child lies
                // outside the region — it is kept as a dangling OID,
                // exactly as `build` copies arrive.
                let _ = self.store.insert_edge_unchecked(*parent, *child);
            }
            AppliedUpdate::Delete { parent, child } => {
                if !self.store.contains(*parent) {
                    return;
                }
                if self.store.contains(*child) {
                    // Record the child's pre-delete root path so
                    // eval over the detached subtree stays answerable
                    // until finalize_report() collects it.
                    if let Some(p) = path::path_between(&self.store, self.root, *child) {
                        self.detached.insert(*child, p);
                    }
                }
                // Drop the edge from the parent's copy whether or not
                // the child is in the region (it may be dangling).
                let _ = self.store.delete_edge(*parent, *child);
            }
            AppliedUpdate::Create { .. } | AppliedUpdate::Remove { .. } => {}
        }
    }

    /// Ensure `oid` (whose root path will be `rooted`) and all its
    /// descendants along `full` are cached.
    fn adopt(&mut self, report: &UpdateReport, chan: &Channel, oid: Oid, rooted: Path) {
        if self.store.contains(oid) {
            return;
        }
        let Some(obj) = self.fetch_via(report, chan, oid) else {
            return;
        };
        let children: Vec<Oid> = obj.children().to_vec();
        self.store.create(obj).expect("checked absent above");
        for c in children {
            if let Some(cl) = self.label_via(report, chan, c) {
                if self.extends(&rooted, cl) {
                    let mut next = rooted.clone();
                    next.push(cl);
                    self.adopt(report, chan, c, next);
                }
            }
        }
    }

    fn label_via(&mut self, report: &UpdateReport, chan: &Channel, oid: Oid) -> Option<Label> {
        if let Some(info) = report.info_of(oid) {
            return Some(info.label);
        }
        if let Some(l) = self.store.label(oid) {
            return Some(l);
        }
        self.maintenance_queries += 1;
        match chan.serve(&SourceQuery::LabelOf(oid)) {
            Some(SourceReply::LabelResult(l)) => l,
            _ => None,
        }
    }

    fn fetch_via(&mut self, report: &UpdateReport, chan: &Channel, oid: Oid) -> Option<Object> {
        if let Some(info) = report.info_of(oid) {
            return Some(info.to_object());
        }
        self.maintenance_queries += 1;
        match chan.serve(&SourceQuery::Fetch(oid)) {
            Some(SourceReply::Object(Some(info))) => Some(info.to_object()),
            _ => None,
        }
    }

    /// Collect subtrees detached by the report just maintained. Call
    /// after Algorithm 1 has processed the triggering update.
    pub fn finalize_report(&mut self) {
        if self.detached.is_empty() {
            return;
        }
        self.detached.clear();
        gsdb::gc::collect(&mut self.store, &[self.root]);
    }

    /// The root path of `n`, looking through just-detached subtrees.
    fn rooted_of(&self, n: Oid) -> Option<Path> {
        if let Some(p) = path::path_between(&self.store, self.root, n) {
            return Some(p);
        }
        // n may live inside a detached subtree: root path = recorded
        // path of the detachment point + path within the subtree.
        for (&top, top_path) in &self.detached {
            if let Some(rest) = path::path_between(&self.store, top, n) {
                return Some(top_path.concat(&rest));
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Local (query-free) answers for Algorithm 1's functions
    // ------------------------------------------------------------------

    /// `path(root, n)` from the cache, if `n` is cached (including
    /// just-detached subtrees, which report their pre-delete path).
    pub fn try_path_from_root(&self, n: Oid) -> Option<Path> {
        if !self.covers(n) {
            return None;
        }
        self.rooted_of(n)
    }

    /// The cache is *complete* along `sel_path.cond_path`: it holds
    /// every object whose root path is a prefix position of the view
    /// path. On a tree-structured base (where root paths are unique),
    /// an object **not** in the cache therefore has no root path that
    /// Algorithm 1's location test could match — the warehouse may
    /// reject the update locally, with no source query (Example 10:
    /// "view maintenance corresponding to any base update can be done
    /// locally"). Returns true when `n`'s irrelevance is certain.
    pub fn certainly_off_path(&self, n: Oid) -> bool {
        !self.covers(n)
    }

    /// `ancestor(n, p)` from the cache.
    pub fn try_ancestor(&self, n: Oid, p: &Path) -> Option<Oid> {
        if !self.covers(n) {
            return None;
        }
        path::ancestor(&self.store, n, p)
    }

    /// `eval(n, p, pred)` from the cache, if the region under `n`
    /// along `p` lies inside the cached region (so the local answer is
    /// complete). Just-detached subtrees remain answerable until
    /// [`AuxCache::finalize_report`].
    pub fn try_eval(&self, n: Oid, p: &Path, pred: Option<&Pred>) -> Option<Vec<Oid>> {
        if !self.covers(n) {
            return None;
        }
        let rooted = self.rooted_of(n)?;
        // The whole of n.p must lie along full for completeness.
        let end = rooted.len() + p.len();
        if end > self.full.len()
            || self.full.labels()[..rooted.len()] != rooted.labels()[..]
            || self.full.labels()[rooted.len()..end] != p.labels()[..]
        {
            return None;
        }
        Some(match pred {
            Some(pr) => path::eval(&self.store, n, p, &|a| pr.eval(a)),
            None => path::reach(&self.store, n, p),
        })
    }

    /// Label from the cache.
    pub fn try_label(&self, n: Oid) -> Option<Label> {
        self.store.label(n)
    }

    /// Object copy from the cache. Copies are exact for the *whole*
    /// value: [`AuxCache::apply_report`] mirrors every reported edge
    /// that touches a cached parent — including edges whose far end
    /// lies outside the cached region, kept as dangling OIDs just as
    /// `build` copies arrive — so a cached set's child list matches
    /// the source as of the last applied report, and an atom's value
    /// is kept exact by modify upkeep.
    pub fn try_fetch(&self, n: Oid) -> Option<Object> {
        self.store.get(n).cloned()
    }
}

/// Schema-like knowledge of impossible paths (paper §5.2 closing
/// paragraph): pairs `(parent_label, child_label)` that never occur at
/// the source.
#[derive(Clone, Debug, Default)]
pub struct PathKnowledge {
    never_child: HashSet<(Label, Label)>,
}

impl PathKnowledge {
    /// No knowledge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that objects labeled `parent` never have a child labeled
    /// `child`.
    pub fn assert_never_child(&mut self, parent: impl Into<Label>, child: impl Into<Label>) {
        self.never_child.insert((parent.into(), child.into()));
    }

    /// Can this label path occur at the source?
    pub fn path_possible(&self, p: &Path) -> bool {
        p.labels()
            .windows(2)
            .all(|w| !self.never_child.contains(&(w[0], w[1])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CostMeter, ReportLevel};
    use crate::source::Source;
    use gsdb::{samples, Update};
    use gsview_query::{CmpOp, Pred};
    use std::sync::Arc;

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn person_source(level: ReportLevel) -> Source {
        let src = Source::empty("persons", oid("ROOT"), level);
        src.with_store(|s| samples::person_db(s).map(|_| ())).unwrap();
        src.with_store(|s| {
            s.drain_log();
        });
        src
    }

    fn chan(src: &Source, meter: Arc<CostMeter>) -> Channel {
        Channel::direct(src.wrapper(meter))
    }

    #[test]
    fn build_caches_the_full_path_region() {
        // Example 10's cache: ROOT, professors, and their age atoms.
        let src = person_source(ReportLevel::WithValues);
        let w = chan(&src, Arc::new(CostMeter::new()));
        let cache = AuxCache::build(oid("ROOT"), Path::parse("professor.age"), &w);
        assert!(cache.covers(oid("ROOT")));
        assert!(cache.covers(oid("P1")));
        assert!(cache.covers(oid("P2")));
        assert!(cache.covers(oid("A1")));
        // Not along professor.age:
        assert!(!cache.covers(oid("P4")));
        assert!(!cache.covers(oid("N1")));
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn local_answers_from_cache() {
        let src = person_source(ReportLevel::WithValues);
        let w = chan(&src, Arc::new(CostMeter::new()));
        let cache = AuxCache::build(oid("ROOT"), Path::parse("professor.age"), &w);
        assert_eq!(
            cache.try_path_from_root(oid("A1")),
            Some(Path::parse("professor.age"))
        );
        assert_eq!(
            cache.try_ancestor(oid("A1"), &Path::parse("age")),
            Some(oid("P1"))
        );
        let le45 = Pred::new(CmpOp::Le, 45i64);
        assert_eq!(
            cache.try_eval(oid("P1"), &Path::parse("age"), Some(&le45)),
            Some(vec![oid("A1")])
        );
        // Outside the region: no (complete) local answer.
        assert_eq!(cache.try_eval(oid("P1"), &Path::parse("name"), Some(&le45)), None);
        assert!(cache.try_path_from_root(oid("N1")).is_none());
    }

    #[test]
    fn modify_and_delete_maintain_cache_without_queries() {
        let src = person_source(ReportLevel::WithValues);
        let meter = Arc::new(CostMeter::new());
        let w = chan(&src, meter.clone());
        let mut cache = AuxCache::build(oid("ROOT"), Path::parse("professor.age"), &w);
        meter.reset();

        src.apply(Update::modify("A1", 50i64)).unwrap();
        let reports = src.monitor().poll();
        for r in &reports {
            cache.apply_report(r, &w);
        }
        assert_eq!(cache.store.atom(oid("A1")), Some(&gsdb::Atom::Int(50)));

        src.apply(Update::delete("ROOT", "P1")).unwrap();
        for r in src.monitor().poll() {
            cache.apply_report(&r, &w);
            // Mid-report, the detached subtree is still answerable.
            assert!(cache.try_eval(oid("P1"), &Path::parse("age"), None).is_some());
            cache.finalize_report();
        }
        assert!(!cache.covers(oid("P1")), "detached region collected");
        assert!(!cache.covers(oid("A1")));
        assert_eq!(cache.maintenance_queries, 0);
        assert_eq!(meter.queries(), 0, "fully local maintenance");
    }

    #[test]
    fn insert_adopts_subtree_fetching_only_what_reports_lack() {
        let src = person_source(ReportLevel::WithValues);
        let meter = Arc::new(CostMeter::new());
        let w = chan(&src, meter.clone());
        let mut cache = AuxCache::build(oid("ROOT"), Path::parse("professor.age"), &w);
        meter.reset();

        // New professor P5 with an age child, inserted into ROOT.
        src.with_store(|s| {
            s.create(gsdb::Object::atom("A5", "age", 33i64))?;
            s.create(gsdb::Object::set("P5", "professor", &[oid("A5")]))
        })
        .unwrap();
        src.with_store(|s| {
            s.drain_log();
        });
        src.apply(Update::insert("ROOT", "P5")).unwrap();
        for r in src.monitor().poll() {
            cache.apply_report(&r, &w);
        }
        assert!(cache.covers(oid("P5")));
        assert!(cache.covers(oid("A5")), "age child adopted");
        // The L2 report carried P5's label/value; A5's label+value
        // needed fetching (the paper's "direct subobjects of P").
        assert!(cache.maintenance_queries <= 2);
        let le45 = Pred::new(CmpOp::Le, 45i64);
        assert_eq!(
            cache.try_eval(oid("P5"), &Path::parse("age"), Some(&le45)),
            Some(vec![oid("A5")])
        );
    }

    #[test]
    fn irrelevant_inserts_do_not_grow_cache() {
        let src = person_source(ReportLevel::WithValues);
        let meter = Arc::new(CostMeter::new());
        let w = chan(&src, meter.clone());
        let mut cache = AuxCache::build(oid("ROOT"), Path::parse("professor.age"), &w);
        let before = cache.len();
        meter.reset();
        // A hobby under P1: professor.hobby does not extend
        // professor.age.
        src.with_store(|s| s.create(gsdb::Object::atom("H1", "hobby", "go")))
            .unwrap();
        src.with_store(|s| {
            s.drain_log();
        });
        src.apply(Update::insert("P1", "H1")).unwrap();
        for r in src.monitor().poll() {
            cache.apply_report(&r, &w);
        }
        assert_eq!(cache.len(), before);
        assert_eq!(meter.queries(), 0);
    }

    #[test]
    fn cached_copies_stay_exact_under_off_region_edges() {
        // An edge whose far end is outside the cached region must
        // still be mirrored in the cached parent's copy: try_fetch
        // serves whole-value copies (content upkeep relies on them).
        let src = person_source(ReportLevel::WithValues);
        let meter = Arc::new(CostMeter::new());
        let w = chan(&src, meter.clone());
        let mut cache = AuxCache::build(oid("ROOT"), Path::parse("professor.age"), &w);
        meter.reset();

        src.with_store(|s| s.create(gsdb::Object::atom("H1", "hobby", "go")))
            .unwrap();
        src.with_store(|s| {
            s.drain_log();
        });
        src.apply(Update::insert("P1", "H1")).unwrap();
        for r in src.monitor().poll() {
            cache.apply_report(&r, &w);
            cache.finalize_report();
        }
        let copy = cache.try_fetch(oid("P1")).unwrap();
        assert!(copy.children().contains(&oid("H1")), "dangling child mirrored");
        assert!(!cache.covers(oid("H1")), "off-region child not adopted");

        src.apply(Update::delete("P1", "H1")).unwrap();
        for r in src.monitor().poll() {
            cache.apply_report(&r, &w);
            cache.finalize_report();
        }
        let copy = cache.try_fetch(oid("P1")).unwrap();
        assert!(!copy.children().contains(&oid("H1")), "dangling child dropped");
        assert_eq!(meter.queries(), 0, "mirroring is query-free at L2");
    }

    #[test]
    fn path_knowledge_rules_out_paths() {
        // The paper's example: student objects never have salary
        // children.
        let mut pk = PathKnowledge::new();
        pk.assert_never_child("student", "salary");
        assert!(!pk.path_possible(&Path::parse("student.salary")));
        assert!(!pk.path_possible(&Path::parse("professor.student.salary")));
        assert!(pk.path_possible(&Path::parse("professor.salary")));
        assert!(pk.path_possible(&Path::parse("student.name")));
        assert!(pk.path_possible(&Path::empty()));
    }
}
