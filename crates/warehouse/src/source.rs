//! Data sources, their monitors, and their wrappers (paper §5,
//! Figure 6).
//!
//! A [`Source`] owns a GSDB. Its [`Monitor`] "detects the update events
//! ... and reports them to the warehouse" at a configured
//! [`ReportLevel`]; its [`Wrapper`] "translates queries from the
//! warehouse ... and sends the results back". The warehouse "cannot
//! control actions on source objects, but it can send queries to the
//! source and obtain answers evaluated at the current source state" —
//! accordingly the only handles the warehouse ever gets are `Monitor`
//! and `Wrapper`, never the store itself.
//!
//! ## The sharded commit path and the epoch read path
//!
//! A source's store lives inside a [`ShardedStore`]: the slab is
//! partitioned into per-shard mutation locks, so writers —
//! [`Source::apply`], [`Source::apply_batch`] — contend only on the
//! shards their updates touch and commit concurrently when their
//! shard sets are disjoint (the paper's sources report updates
//! *independently*; now they also apply them independently).
//! [`Source::with_store`] remains the exclusive escape hatch: it
//! locks every shard and hands the closure a plain [`Store`].
//!
//! Every commit publishes an immutable copy-on-write snapshot into an
//! [`EpochHandle`] via the pipeline's two-phase publish. Readers —
//! [`Wrapper::serve`], and through it every warehouse query, resync
//! snapshot-diff, and cache rebuild — call [`Source::snapshot`] and
//! evaluate against the latest published epoch: they **never take a
//! shard lock**, so queries arriving while a maintenance pass or a
//! long source-local batch holds locks complete immediately against
//! the pre-batch state. Each read observes exactly one committed
//! epoch, never a torn intermediate — not even across shards
//! (verified differentially by `gsview-core`'s
//! `check_snapshot_isolation` and its cross-shard marker pairs).
//!
//! Report sequencing rides on the pipeline's commit log: entries are
//! appended in publish order (under the publish lock), and
//! [`Monitor::poll`] drains them and assigns sequence numbers in one
//! critical section of the log lock — racing pollers and appliers can
//! never emit reports whose sequence order disagrees with commit
//! order, which would trip `SeqTracker` gap detection on a healthy
//! source.

use crate::protocol::{
    CostMeter, ObjectInfo, QueryFault, ReportLevel, RootPathInfo, SourceQuery, SourceReply,
    UpdateReport,
};
use gsdb::{
    path, AppliedUpdate, EpochHandle, Oid, Result, ShardedStore, Store, StoreConfig, Update,
};
use gsview_durable::{DurableStore, PersistMeta, PersistReceipt};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// How many times the publish-point persist hook retries a failed
/// epoch persist before declaring durability degraded. Retries are
/// synchronous and immediate: the hook runs behind the publish lock,
/// so the only faults worth retrying are transient media hiccups, not
/// long outages.
const PERSIST_HOOK_RETRIES: usize = 3;

/// Sticky durability health, shared between the publish-point persist
/// hook and the [`Source`] handles that want to ask about it.
///
/// Once the hook exhausts its retries the flag latches: background
/// successes on later epochs do **not** clear it, because the lineage
/// already has a hole and warm recovery from it would silently lose
/// the failed epochs. Only an explicit, acknowledged
/// [`Source::persist_now`] re-baseline clears the flag.
#[derive(Default)]
struct DurabilityHealth {
    degraded: AtomicBool,
    /// The first unsurfaced persist error. Taken (and cleared) by the
    /// next explicit persist call; `degraded` stays latched until a
    /// fresh baseline lands.
    pending_error: Mutex<Option<String>>,
}

impl DurabilityHealth {
    fn record_failure(&self, msg: String) {
        self.degraded.store(true, Ordering::Release);
        let mut slot = self.pending_error.lock().unwrap();
        // Keep the *first* error: it names the epoch where the lineage
        // hole starts, which is what the operator needs.
        slot.get_or_insert(msg);
    }

    fn take_pending(&self) -> Option<String> {
        self.pending_error.lock().unwrap().take()
    }

    fn peek(&self) -> Option<String> {
        self.pending_error.lock().unwrap().clone()
    }

    fn clear(&self) {
        *self.pending_error.lock().unwrap() = None;
        self.degraded.store(false, Ordering::Release);
    }
}

/// The warehouse side of the query protocol: anything that can be
/// asked a [`SourceQuery`] and may fail to answer.
///
/// [`Wrapper`] implements this infallibly; the chaos decorator
/// [`FaultyWrapper`](crate::chaos::FaultyWrapper) injects
/// [`QueryFault`]s. The warehouse never talks to a port directly — it
/// goes through a retrying [`Channel`](crate::remote::Channel).
pub trait QueryPort: Send + Sync {
    /// Attempt one query round trip.
    fn query(&self, q: &SourceQuery) -> std::result::Result<SourceReply, QueryFault>;
}

/// The warehouse side of the report protocol: anything that yields
/// update reports when polled, plus a fault-free control-plane
/// checkpoint (source name and next sequence number) that the
/// integrator uses to detect *tail* loss — a dropped report with no
/// successor would otherwise go unnoticed forever.
pub trait ReportSource {
    /// Collect reports since the last poll.
    #[must_use = "unprocessed reports silently corrupt the warehouse's views"]
    fn poll_reports(&self) -> Vec<UpdateReport>;

    /// `(source name, next sequence number)` — how many reports the
    /// monitor has emitted so far. Control-plane metadata: cheap,
    /// reliable, and never subject to chaos.
    fn checkpoint(&self) -> (String, u64);
}

/// An autonomous data source: a GSDB plus a designated root object.
#[derive(Clone)]
pub struct Source {
    name: String,
    root: Oid,
    /// The sharded commit pipeline: per-shard mutation locks, a global
    /// epoch publisher (the committed-epoch read path), and the commit
    /// log the monitor drains.
    store: Arc<ShardedStore>,
    level: ReportLevel,
    /// Sticky durability health fed by the publish-point persist hook
    /// (see [`Source::attach_durable`]). Shared across clones so the
    /// monitor/wrapper handles observe the same state.
    durability: Arc<DurabilityHealth>,
}

impl Source {
    /// Create a source around an existing store (keeping its shard
    /// count). Any update log accumulated during setup is discarded —
    /// monitoring starts now.
    pub fn new(name: &str, root: Oid, mut store: Store, level: ReportLevel) -> Self {
        store.drain_log();
        Source {
            name: name.to_owned(),
            root,
            store: Arc::new(ShardedStore::new(store)),
            level,
            durability: Arc::new(DurabilityHealth::default()),
        }
    }

    /// Create an empty source with logging enabled.
    pub fn empty(name: &str, root: Oid, level: ReportLevel) -> Self {
        Source::empty_sharded(name, root, level, 1)
    }

    /// Create an empty source with logging enabled and the given slab
    /// shard count — writers touching disjoint shards commit
    /// concurrently.
    pub fn empty_sharded(name: &str, root: Oid, level: ReportLevel, shards: usize) -> Self {
        Source::new(
            name,
            root,
            Store::with_config(StoreConfig {
                parent_index: true,
                label_index: true,
                log_updates: true,
                ..StoreConfig::default().with_shards(shards)
            }),
            level,
        )
    }

    /// The source's name (used to qualify OIDs into universal ones in
    /// real deployments; here names are already unique).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The source's root object.
    pub fn root(&self) -> Oid {
        self.root
    }

    /// Apply an update locally (the source is autonomous — this is its
    /// own workload, not a warehouse action). The post-update state is
    /// published as a new epoch at commit. Concurrent appliers whose
    /// updates touch disjoint shards run in parallel.
    pub fn apply(&self, update: Update) -> Result<AppliedUpdate> {
        let mut applied = self.store.commit(std::slice::from_ref(&update)).into_result()?;
        Ok(applied.remove(0))
    }

    /// Apply a run of updates as one commit: the intermediate states
    /// are never published, only the final one — concurrent readers
    /// observe either the pre-batch or the post-batch epoch, nothing
    /// in between. On the first failing update the batch stops; the
    /// applied prefix stays committed (matching what a sequential
    /// [`Source::apply`] loop would have left behind) and is published.
    pub fn apply_batch(
        &self,
        updates: impl IntoIterator<Item = Update>,
    ) -> Result<Vec<AppliedUpdate>> {
        let updates: Vec<Update> = updates.into_iter().collect();
        self.store.commit(&updates).into_result()
    }

    /// Run an arbitrary closure against the live store (source-local
    /// setup; not available to the warehouse). Locks **every** shard
    /// for the duration. If the closure mutated the store (detected
    /// via [`Store::version`]), the new state is published as one
    /// epoch when the closure returns — a multi-update closure is one
    /// commit, like [`Source::apply_batch`].
    pub fn with_store<T>(&self, f: impl FnOnce(&mut Store) -> T) -> T {
        self.store.with_exclusive(f)
    }

    /// The latest committed epoch of this source's state. This is the
    /// read path: it never takes a shard lock, so it completes even
    /// while writers or a maintenance flush hold locks.
    pub fn snapshot(&self) -> Arc<Store> {
        self.store.snapshot()
    }

    /// The epoch number of the current snapshot (number of commits
    /// published so far).
    pub fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// A shared handle to the epoch publication point — for harnesses
    /// that want `(epoch, snapshot)` pairs read consistently.
    pub fn epoch_handle(&self) -> Arc<EpochHandle> {
        self.store.epoch_handle()
    }

    /// The commit pipeline itself — source-local instrumentation and
    /// test access (shard counts, direct commits). Never handed to the
    /// warehouse.
    pub fn pipeline(&self) -> &Arc<ShardedStore> {
        &self.store
    }

    /// The sequence number the next report from this source will
    /// carry. Used by the warehouse to baseline gap detection at
    /// connect time.
    pub fn next_seq(&self) -> u64 {
        self.store.assigned_seq()
    }

    /// The monitor role for this source.
    pub fn monitor(&self) -> Monitor {
        Monitor {
            source: self.clone(),
        }
    }

    /// The wrapper role for this source, charging the given meter.
    pub fn wrapper(&self, meter: Arc<CostMeter>) -> Wrapper {
        Wrapper {
            source: self.clone(),
            meter,
        }
    }

    // ------------------------------------------------------------------
    // Durability
    // ------------------------------------------------------------------

    /// Attach a durable store: persist the current published epoch as
    /// a baseline, then persist every subsequently published epoch
    /// from inside the pipeline's publish hook — the source's lineage
    /// in the epoch log tracks its epoch sequence one-to-one.
    ///
    /// Persistence runs *behind* the publish point: a failed persist
    /// (media crash) never blocks or rolls back the in-memory commit.
    /// The hook retries up to [`PERSIST_HOOK_RETRIES`] times
    /// (`durable.persist.hook_retries`); if every attempt fails it
    /// counts the loss (`durable.persist.hook_errors`) and latches the
    /// sticky [`Source::durability_degraded`] flag — the lineage now
    /// has a hole, and the recorded error is surfaced on the next
    /// explicit [`Source::persist_now`] call. The in-memory source
    /// keeps serving either way: the lineage simply ends at the last
    /// durable epoch, which is exactly what a process crash at that
    /// point would leave behind.
    ///
    /// Attach before concurrent writers start (setup time, or right
    /// after [`Source::recover`]); the baseline snapshot and watermark
    /// are read in two steps and assume no commit races between them.
    pub fn attach_durable(
        &self,
        durable: Arc<DurableStore>,
    ) -> gsview_durable::Result<PersistReceipt> {
        let log_updates = self.store.logs_updates();
        let receipt = durable.persist(
            &self.name,
            &self.store.snapshot(),
            PersistMeta {
                epoch: self.store.epoch(),
                seq: self.store.assigned_seq_total(),
                log_updates,
                extra: Vec::new(),
            },
        )?;
        let name = self.name.clone();
        let health = Arc::clone(&self.durability);
        self.store.set_publish_hook(move |info, snapshot| {
            let meta = PersistMeta {
                epoch: info.epoch,
                seq: info.assigned_seq_total,
                log_updates,
                extra: Vec::new(),
            };
            let mut last_err = None;
            for attempt in 0..=PERSIST_HOOK_RETRIES {
                if attempt > 0 {
                    gsview_obs::registry().counter("durable.persist.hook_retries").incr();
                }
                match durable.persist(&name, snapshot, meta.clone()) {
                    Ok(_) => return,
                    Err(e) => last_err = Some(e),
                }
            }
            let e = last_err.expect("loop ran at least once");
            gsview_obs::registry().counter("durable.persist.hook_errors").incr();
            gsview_obs::event!(
                "durable.persist.failed",
                "name" = name.clone(),
                "epoch" = info.epoch,
                "error" = e.to_string()
            );
            health.record_failure(format!(
                "epoch {} of source {name} failed to persist after {} attempts: {e}",
                info.epoch,
                PERSIST_HOOK_RETRIES + 1
            ));
        });
        Ok(receipt)
    }

    /// Has the publish-point persist hook exhausted its retries on
    /// some epoch since the last successful [`Source::persist_now`]
    /// re-baseline? Sticky: later background successes do **not**
    /// clear it — the durable lineage already has a hole.
    pub fn durability_degraded(&self) -> bool {
        self.durability.degraded.load(Ordering::Acquire)
    }

    /// The recorded error from the first unsurfaced persist failure,
    /// if any. Peeks without consuming; [`Source::persist_now`] is
    /// what surfaces (and consumes) it.
    pub fn durability_error(&self) -> Option<String> {
        self.durability.peek()
    }

    /// Explicitly persist the current published epoch.
    ///
    /// If the background hook recorded a failure since the last
    /// successful explicit persist, this call **surfaces that error
    /// first** and does not write: the caller must observe the
    /// lineage hole before re-baselining. Calling again then attempts
    /// a fresh full persist; on success the sticky
    /// [`Source::durability_degraded`] flag clears — the new baseline
    /// supersedes the lost epochs.
    pub fn persist_now(
        &self,
        durable: &Arc<DurableStore>,
    ) -> gsview_durable::Result<PersistReceipt> {
        if let Some(msg) = self.durability.take_pending() {
            return Err(gsview_durable::DurableError::Io(format!(
                "durability degraded: {msg}"
            )));
        }
        let receipt = durable.persist(
            &self.name,
            &self.store.snapshot(),
            PersistMeta {
                epoch: self.store.epoch(),
                seq: self.store.assigned_seq_total(),
                log_updates: self.store.logs_updates(),
                extra: Vec::new(),
            },
        )?;
        self.durability.clear();
        Ok(receipt)
    }

    /// Reopen a source **warm** from its durable lineage: rebuild the
    /// newest recoverable epoch, resume the commit pipeline at the
    /// persisted epoch and sequence watermark (so report sequencing
    /// continues without ever reusing a number the warehouse may have
    /// consumed), and re-attach persistence so new epochs keep
    /// flowing to the log. The re-attach baseline appends zero chunks
    /// — recovery seeds the persist cache — and its duplicate
    /// manifest frame is harmless by construction.
    ///
    /// `Ok(None)` is a cold start: nothing recoverable under `name`.
    pub fn recover(
        name: &str,
        root: Oid,
        level: ReportLevel,
        durable: &Arc<DurableStore>,
    ) -> gsview_durable::Result<Option<Source>> {
        let Some(rec) = durable.recover(name)? else {
            return Ok(None);
        };
        let src = Source {
            name: name.to_owned(),
            root,
            store: Arc::new(ShardedStore::restore(
                rec.store,
                rec.manifest.epoch,
                rec.manifest.seq,
            )),
            level,
            durability: Arc::new(DurabilityHealth::default()),
        };
        src.attach_durable(Arc::clone(durable))?;
        Ok(Some(src))
    }

    /// Store statistics over the latest published epoch with the
    /// durable footprint filled in ([`gsdb::StoreStats::durable`]) and
    /// mirrored into the obs metrics registry.
    pub fn stats_with_footprint(&self, durable: &DurableStore) -> (u64, gsdb::StoreStats) {
        gsview_durable::stats_with_footprint(&self.store.epoch_handle(), durable)
    }
}

/// Build one update report against `store` (the monitor's view of the
/// source at report time — a committed snapshot that already reflects
/// the drained update).
fn make_report(
    store: &Store,
    name: &str,
    root: Oid,
    level: ReportLevel,
    update: AppliedUpdate,
    seq: u64,
) -> UpdateReport {
    let mut report = UpdateReport {
        source: name.to_owned(),
        seq,
        update,
        info: Vec::new(),
        paths: Vec::new(),
    };
    if level >= ReportLevel::WithValues {
        for oid in report.update.directly_affected() {
            if let Some(obj) = store.get(oid) {
                report.info.push(ObjectInfo::of(obj));
            }
        }
    }
    if level >= ReportLevel::WithPaths {
        for oid in report.update.directly_affected() {
            if let Some(p) = path::path_between(store, root, oid) {
                let oids = oids_along(store, root, oid, &p);
                report.paths.push(RootPathInfo {
                    target: oid,
                    path: p,
                    oids,
                });
            }
        }
    }
    report
}

/// The OIDs along the (tree) path from `root` to `n`, root first.
/// "When the source does the update, it needs to traverse the source
/// database until reaching the updated object. So the source may
/// record the path to the updated object" (§5.1).
fn oids_along(store: &Store, root: Oid, n: Oid, p: &gsdb::Path) -> Vec<Oid> {
    let mut oids = vec![n];
    let mut cur = n;
    for _ in 0..p.len() {
        let Some(parents) = store.parents(cur) else {
            break;
        };
        let Some(parent) = parents.iter().next() else {
            break;
        };
        oids.push(parent);
        cur = parent;
        if cur == root {
            break;
        }
    }
    oids.reverse();
    oids
}

/// The source monitor: drains the source's update log into reports.
#[derive(Clone)]
pub struct Monitor {
    source: Source,
}

impl Monitor {
    /// Collect reports for all updates applied since the last poll.
    ///
    /// Draining the commit log and assigning sequence numbers happen
    /// in one critical section of the log lock, and the pipeline
    /// appends entries in publish order — so racing pollers (or
    /// appliers) can never produce reports whose sequence order
    /// disagrees with store commit order — see
    /// `concurrent_appliers_and_pollers_keep_seq_consistent`. Report
    /// content (values, root paths) is built against a snapshot that
    /// reflects at least every drained update.
    #[must_use = "unprocessed reports silently corrupt the warehouse's views"]
    pub fn poll(&self) -> Vec<UpdateReport> {
        let (base, applied, snap) = self.source.store.drain_reports();
        applied
            .into_iter()
            .enumerate()
            .map(|(i, u)| {
                make_report(
                    &snap,
                    &self.source.name,
                    self.source.root,
                    self.source.level,
                    u,
                    base + i as u64,
                )
            })
            .collect()
    }

    /// The source's name.
    pub fn source_name(&self) -> &str {
        self.source.name()
    }
}

impl ReportSource for Monitor {
    fn poll_reports(&self) -> Vec<UpdateReport> {
        self.poll()
    }

    fn checkpoint(&self) -> (String, u64) {
        (self.source.name().to_owned(), self.source.next_seq())
    }
}

/// The source wrapper: answers warehouse queries at current source
/// state, charging a cost meter per round trip.
#[derive(Clone)]
pub struct Wrapper {
    source: Source,
    meter: Arc<CostMeter>,
}

impl Wrapper {
    /// Serve one query against the latest committed epoch. Never takes
    /// the store mutex: a query arriving mid-maintenance (or while a
    /// source-local batch holds the lock) answers immediately from the
    /// last published snapshot — "answers evaluated at the current
    /// source state" in the paper's sense, where the current state is
    /// the latest *committed* one.
    pub fn serve(&self, q: &SourceQuery) -> SourceReply {
        let reply = answer(&self.source.snapshot(), q);
        self.meter.record_query(q, &reply);
        reply
    }

    /// The meter charged by this wrapper.
    pub fn meter(&self) -> &CostMeter {
        &self.meter
    }

    /// A shared handle to the meter (for channels that must record
    /// retries and faults into the same per-source ledger).
    pub fn meter_handle(&self) -> Arc<CostMeter> {
        self.meter.clone()
    }

    /// The source's root.
    pub fn root(&self) -> Oid {
        self.source.root()
    }

    /// The source's name.
    pub fn source_name(&self) -> &str {
        self.source.name()
    }
}

impl QueryPort for Wrapper {
    fn query(&self, q: &SourceQuery) -> std::result::Result<SourceReply, QueryFault> {
        Ok(self.serve(q))
    }
}

/// Evaluate one [`SourceQuery`] against a store snapshot — the one
/// query semantics shared by [`Wrapper::serve`], the warehouse's
/// local replay of a recovered durable epoch, and the serving tier's
/// epoch front-end (which answers thousands of remote readers from a
/// pinned [`EpochHandle`] snapshot without ever touching the store
/// locks).
pub fn answer(store: &Store, q: &SourceQuery) -> SourceReply {
    match q {
        SourceQuery::Fetch(o) => SourceReply::Object(store.get(*o).map(ObjectInfo::of)),
        SourceQuery::PathFromRoot { root, n } => {
            SourceReply::PathResult(path::path_between(store, *root, *n))
        }
        SourceQuery::Ancestor { n, p } => {
            SourceReply::AncestorResult(path::ancestor(store, *n, p))
        }
        SourceQuery::AncestorsAll { n, p } => {
            SourceReply::Ancestors(path::ancestors_all(store, *n, p))
        }
        SourceQuery::Reach { n, p } => SourceReply::Objects(
            path::reach(store, *n, p)
                .into_iter()
                .filter_map(|o| store.get(o).map(ObjectInfo::of))
                .collect(),
        ),
        SourceQuery::LabelOf(o) => SourceReply::LabelResult(store.label(*o)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdb::{samples, Path};
    use std::sync::Mutex;

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn person_source(level: ReportLevel) -> Source {
        let src = Source::empty("persons", oid("ROOT"), level);
        src.with_store(|s| samples::person_db(s).map(|_| ())).unwrap();
        // Setup creates log entries; discard them.
        src.with_store(|s| {
            s.drain_log();
        });
        src
    }

    #[test]
    fn monitor_reports_at_level_1() {
        let src = person_source(ReportLevel::OidsOnly);
        src.with_store(|s| s.create(gsdb::Object::atom("A2", "age", 40i64)))
            .unwrap();
        src.apply(Update::insert("P2", "A2")).unwrap();
        let reports = src.monitor().poll();
        assert_eq!(reports.len(), 2); // create + insert
        let insert_report = &reports[1];
        assert!(insert_report.info.is_empty());
        assert!(insert_report.paths.is_empty());
        assert_eq!(
            insert_report.update.directly_affected(),
            vec![oid("P2"), oid("A2")]
        );
    }

    #[test]
    fn monitor_reports_at_level_2_and_3() {
        let src = person_source(ReportLevel::WithPaths);
        src.with_store(|s| s.create(gsdb::Object::atom("A2", "age", 40i64)))
            .unwrap();
        src.apply(Update::insert("P2", "A2")).unwrap();
        let reports = src.monitor().poll();
        let r = &reports[1];
        // L2: labels and values.
        let a2 = r.info_of(oid("A2")).unwrap();
        assert_eq!(a2.label.as_str(), "age");
        // L3: root path of P2 with OIDs along it.
        let p2 = r.path_of(oid("P2")).unwrap();
        assert_eq!(p2.path, Path::parse("professor"));
        assert_eq!(p2.oids, vec![oid("ROOT"), oid("P2")]);
        // A2's path exists too (now a child of P2).
        let a2p = r.path_of(oid("A2")).unwrap();
        assert_eq!(a2p.path, Path::parse("professor.age"));
    }

    #[test]
    fn monitor_sequences_reports() {
        let src = person_source(ReportLevel::OidsOnly);
        src.apply(Update::modify("A1", 46i64)).unwrap();
        src.apply(Update::modify("A1", 47i64)).unwrap();
        let reports = src.monitor().poll();
        assert_eq!(reports[0].seq, 0);
        assert_eq!(reports[1].seq, 1);
        // Later polls continue the sequence.
        src.apply(Update::modify("A1", 48i64)).unwrap();
        let more = src.monitor().poll();
        assert_eq!(more[0].seq, 2);
    }

    #[test]
    fn wrapper_serves_and_meters() {
        let src = person_source(ReportLevel::OidsOnly);
        let meter = Arc::new(CostMeter::new());
        let w = src.wrapper(meter.clone());
        let reply = w.serve(&SourceQuery::PathFromRoot {
            root: oid("ROOT"),
            n: oid("A1"),
        });
        assert_eq!(
            reply,
            SourceReply::PathResult(Some(Path::parse("professor.age")))
        );
        let reply = w.serve(&SourceQuery::Fetch(oid("P1")));
        match reply {
            SourceReply::Object(Some(info)) => assert_eq!(info.label.as_str(), "professor"),
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(meter.queries(), 2);
        assert_eq!(meter.messages(), 4);
    }

    #[test]
    fn wrapper_serves_while_the_store_mutex_is_held() {
        // A writer parks inside `with_store` (holding the source
        // lock); the wrapper must still answer from the last published
        // epoch. With the seed's mutex-read path this test deadlocks.
        use std::sync::mpsc;
        let src = person_source(ReportLevel::OidsOnly);
        let meter = Arc::new(CostMeter::new());
        let w = src.wrapper(meter);
        let (locked_tx, locked_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        std::thread::scope(|s| {
            let src2 = src.clone();
            s.spawn(move || {
                src2.with_store(|store| {
                    store.apply(Update::modify("A1", 99i64)).unwrap();
                    locked_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                });
            });
            locked_rx.recv().unwrap(); // writer is inside the lock now
            let reply = w.serve(&SourceQuery::Fetch(oid("A1")));
            match reply {
                SourceReply::Object(Some(info)) => {
                    // The uncommitted modify is invisible: the read
                    // came from the pre-commit epoch.
                    assert_eq!(info.value, gsdb::Value::Atom(gsdb::Atom::Int(45)));
                }
                other => panic!("unexpected reply {other:?}"),
            }
            release_tx.send(()).unwrap();
        });
        // After the closure returns, the commit is published.
        match w.serve(&SourceQuery::Fetch(oid("A1"))) {
            SourceReply::Object(Some(info)) => {
                assert_eq!(info.value, gsdb::Value::Atom(gsdb::Atom::Int(99)));
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn epochs_advance_once_per_commit() {
        let src = person_source(ReportLevel::OidsOnly);
        let e0 = src.epoch();
        src.apply(Update::modify("A1", 50i64)).unwrap();
        assert_eq!(src.epoch(), e0 + 1);
        src.apply_batch(vec![
            Update::modify("A1", 51i64),
            Update::modify("A1", 52i64),
        ])
        .unwrap();
        assert_eq!(src.epoch(), e0 + 2, "a batch is one epoch");
        src.with_store(|s| {
            let _ = s.oids_sorted();
        });
        assert_eq!(src.epoch(), e0 + 2, "read-only closures publish nothing");
        let pinned = src.snapshot();
        src.apply(Update::modify("A1", 60i64)).unwrap();
        assert_eq!(pinned.atom(oid("A1")), Some(&gsdb::Atom::Int(52)));
        assert_eq!(src.snapshot().atom(oid("A1")), Some(&gsdb::Atom::Int(60)));
    }

    #[test]
    fn failed_batch_commits_and_publishes_the_applied_prefix() {
        let src = person_source(ReportLevel::OidsOnly);
        let err = src
            .apply_batch(vec![
                Update::modify("A1", 70i64),
                Update::modify("NOPE", 1i64),
                Update::modify("A1", 71i64),
            ])
            .unwrap_err();
        assert_eq!(err, gsdb::GsdbError::NoSuchObject(oid("NOPE")));
        // The prefix is visible on the read path, the tail never ran.
        assert_eq!(src.snapshot().atom(oid("A1")), Some(&gsdb::Atom::Int(70)));
    }

    #[test]
    fn concurrent_appliers_and_pollers_keep_seq_consistent() {
        // Satellite regression for the seed's seq race: two appliers
        // and two pollers race; with `seq` and `store` under separate
        // locks, report sequence order could disagree with commit
        // order and trip SeqTracker on a healthy source. Here: all
        // reports collected across both pollers must carry unique,
        // contiguous seqs, and per-OID the Modify old→new values must
        // chain in seq order (seq order == commit order).
        let src = person_source(ReportLevel::OidsOnly);
        src.with_store(|s| {
            s.create(gsdb::Object::atom("TA", "n", 0i64)).unwrap();
            s.create(gsdb::Object::atom("TB", "n", 0i64)).unwrap();
            s.drain_log();
        });
        const N: i64 = 50;
        let all = Mutex::new(Vec::<UpdateReport>::new());
        std::thread::scope(|scope| {
            for target in ["TA", "TB"] {
                let src = src.clone();
                scope.spawn(move || {
                    for v in 1..=N {
                        src.apply(Update::modify(target, v)).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                let m = src.monitor();
                let all = &all;
                scope.spawn(move || loop {
                    let reports = m.poll();
                    let mut guard = all.lock().unwrap();
                    guard.extend(reports);
                    if guard.len() as i64 >= 2 * N {
                        break;
                    }
                    drop(guard);
                    std::thread::yield_now();
                });
            }
        });
        let mut reports = all.into_inner().unwrap();
        assert_eq!(reports.len() as i64, 2 * N);
        reports.sort_by_key(|r| r.seq);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "seqs must be contiguous");
        }
        for target in ["TA", "TB"] {
            let mut last = 0i64;
            for r in &reports {
                if let gsdb::AppliedUpdate::Modify { oid: o, old, new } = &r.update {
                    if o.name() == target {
                        assert_eq!(
                            old,
                            &gsdb::Atom::Int(last),
                            "seq order diverged from commit order for {target}"
                        );
                        if let gsdb::Atom::Int(v) = new {
                            last = *v;
                        }
                    }
                }
            }
            assert_eq!(last, N, "all {target} updates reported");
        }
    }

    #[test]
    fn wrapper_reach_carries_values_for_local_cond_tests() {
        // Example 9: the warehouse fetches N.p and tests cond locally.
        let src = person_source(ReportLevel::OidsOnly);
        let meter = Arc::new(CostMeter::new());
        let w = src.wrapper(meter);
        let reply = w.serve(&SourceQuery::Reach {
            n: oid("P1"),
            p: Path::parse("age"),
        });
        match reply {
            SourceReply::Objects(infos) => {
                assert_eq!(infos.len(), 1);
                assert_eq!(infos[0].value, gsdb::Value::Atom(gsdb::Atom::Int(45)));
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
}
