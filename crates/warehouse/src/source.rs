//! Data sources, their monitors, and their wrappers (paper §5,
//! Figure 6).
//!
//! A [`Source`] owns a GSDB. Its [`Monitor`] "detects the update events
//! ... and reports them to the warehouse" at a configured
//! [`ReportLevel`]; its [`Wrapper`] "translates queries from the
//! warehouse ... and sends the results back". The warehouse "cannot
//! control actions on source objects, but it can send queries to the
//! source and obtain answers evaluated at the current source state" —
//! accordingly the only handles the warehouse ever gets are `Monitor`
//! and `Wrapper`, never the store itself.

use crate::protocol::{
    CostMeter, ObjectInfo, QueryFault, ReportLevel, RootPathInfo, SourceQuery, SourceReply,
    UpdateReport,
};
use gsdb::{path, AppliedUpdate, Oid, Result, Store, StoreConfig, Update};
use std::sync::Mutex;
use std::sync::Arc;

/// The warehouse side of the query protocol: anything that can be
/// asked a [`SourceQuery`] and may fail to answer.
///
/// [`Wrapper`] implements this infallibly; the chaos decorator
/// [`FaultyWrapper`](crate::chaos::FaultyWrapper) injects
/// [`QueryFault`]s. The warehouse never talks to a port directly — it
/// goes through a retrying [`Channel`](crate::remote::Channel).
pub trait QueryPort: Send + Sync {
    /// Attempt one query round trip.
    fn query(&self, q: &SourceQuery) -> std::result::Result<SourceReply, QueryFault>;
}

/// The warehouse side of the report protocol: anything that yields
/// update reports when polled, plus a fault-free control-plane
/// checkpoint (source name and next sequence number) that the
/// integrator uses to detect *tail* loss — a dropped report with no
/// successor would otherwise go unnoticed forever.
pub trait ReportSource {
    /// Collect reports since the last poll.
    #[must_use = "unprocessed reports silently corrupt the warehouse's views"]
    fn poll_reports(&self) -> Vec<UpdateReport>;

    /// `(source name, next sequence number)` — how many reports the
    /// monitor has emitted so far. Control-plane metadata: cheap,
    /// reliable, and never subject to chaos.
    fn checkpoint(&self) -> (String, u64);
}

/// An autonomous data source: a GSDB plus a designated root object.
#[derive(Clone)]
pub struct Source {
    name: String,
    root: Oid,
    store: Arc<Mutex<Store>>,
    level: ReportLevel,
    seq: Arc<Mutex<u64>>,
}

impl Source {
    /// Create a source around an existing store. Any update log
    /// accumulated during setup is discarded — monitoring starts now.
    pub fn new(name: &str, root: Oid, mut store: Store, level: ReportLevel) -> Self {
        store.drain_log();
        Source {
            name: name.to_owned(),
            root,
            store: Arc::new(Mutex::new(store)),
            level,
            seq: Arc::new(Mutex::new(0)),
        }
    }

    /// Create an empty source with logging enabled.
    pub fn empty(name: &str, root: Oid, level: ReportLevel) -> Self {
        Source::new(
            name,
            root,
            Store::with_config(StoreConfig {
                parent_index: true,
                label_index: true,
                log_updates: true,
                ..StoreConfig::default()
            }),
            level,
        )
    }

    /// The source's name (used to qualify OIDs into universal ones in
    /// real deployments; here names are already unique).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The source's root object.
    pub fn root(&self) -> Oid {
        self.root
    }

    /// Apply an update locally (the source is autonomous — this is its
    /// own workload, not a warehouse action).
    pub fn apply(&self, update: Update) -> Result<AppliedUpdate> {
        self.store.lock().unwrap().apply(update)
    }

    /// Run an arbitrary closure against the store (source-local
    /// setup; not available to the warehouse).
    pub fn with_store<T>(&self, f: impl FnOnce(&mut Store) -> T) -> T {
        f(&mut self.store.lock().unwrap())
    }

    /// The sequence number the next report from this source will
    /// carry. Used by the warehouse to baseline gap detection at
    /// connect time.
    pub fn next_seq(&self) -> u64 {
        *self.seq.lock().unwrap()
    }

    /// The monitor role for this source.
    pub fn monitor(&self) -> Monitor {
        Monitor {
            source: self.clone(),
        }
    }

    /// The wrapper role for this source, charging the given meter.
    pub fn wrapper(&self, meter: Arc<CostMeter>) -> Wrapper {
        Wrapper {
            source: self.clone(),
            meter,
        }
    }

    fn make_report(&self, update: AppliedUpdate, seq: u64) -> UpdateReport {
        let store = self.store.lock().unwrap();
        let mut report = UpdateReport {
            source: self.name.clone(),
            seq,
            update,
            info: Vec::new(),
            paths: Vec::new(),
        };
        if self.level >= ReportLevel::WithValues {
            for oid in report.update.directly_affected() {
                if let Some(obj) = store.get(oid) {
                    report.info.push(ObjectInfo::of(obj));
                }
            }
        }
        if self.level >= ReportLevel::WithPaths {
            for oid in report.update.directly_affected() {
                if let Some(p) = path::path_between(&store, self.root, oid) {
                    let oids = oids_along(&store, self.root, oid, &p);
                    report.paths.push(RootPathInfo {
                        target: oid,
                        path: p,
                        oids,
                    });
                }
            }
        }
        report
    }
}

/// The OIDs along the (tree) path from `root` to `n`, root first.
/// "When the source does the update, it needs to traverse the source
/// database until reaching the updated object. So the source may
/// record the path to the updated object" (§5.1).
fn oids_along(store: &Store, root: Oid, n: Oid, p: &gsdb::Path) -> Vec<Oid> {
    let mut oids = vec![n];
    let mut cur = n;
    for _ in 0..p.len() {
        let Some(parents) = store.parents(cur) else {
            break;
        };
        let Some(parent) = parents.iter().next() else {
            break;
        };
        oids.push(parent);
        cur = parent;
        if cur == root {
            break;
        }
    }
    oids.reverse();
    oids
}

/// The source monitor: drains the source's update log into reports.
#[derive(Clone)]
pub struct Monitor {
    source: Source,
}

impl Monitor {
    /// Collect reports for all updates applied since the last poll.
    #[must_use = "unprocessed reports silently corrupt the warehouse's views"]
    pub fn poll(&self) -> Vec<UpdateReport> {
        let applied = self.source.store.lock().unwrap().drain_log();
        let mut seq_guard = self.source.seq.lock().unwrap();
        applied
            .into_iter()
            .map(|u| {
                let seq = *seq_guard;
                *seq_guard += 1;
                self.source.make_report(u, seq)
            })
            .collect()
    }

    /// The source's name.
    pub fn source_name(&self) -> &str {
        self.source.name()
    }
}

impl ReportSource for Monitor {
    fn poll_reports(&self) -> Vec<UpdateReport> {
        self.poll()
    }

    fn checkpoint(&self) -> (String, u64) {
        (self.source.name().to_owned(), self.source.next_seq())
    }
}

/// The source wrapper: answers warehouse queries at current source
/// state, charging a cost meter per round trip.
#[derive(Clone)]
pub struct Wrapper {
    source: Source,
    meter: Arc<CostMeter>,
}

impl Wrapper {
    /// Serve one query.
    pub fn serve(&self, q: &SourceQuery) -> SourceReply {
        let store = self.source.store.lock().unwrap();
        let reply = match q {
            SourceQuery::Fetch(o) => SourceReply::Object(store.get(*o).map(ObjectInfo::of)),
            SourceQuery::PathFromRoot { root, n } => {
                SourceReply::PathResult(path::path_between(&store, *root, *n))
            }
            SourceQuery::Ancestor { n, p } => {
                SourceReply::AncestorResult(path::ancestor(&store, *n, p))
            }
            SourceQuery::AncestorsAll { n, p } => {
                SourceReply::Ancestors(path::ancestors_all(&store, *n, p))
            }
            SourceQuery::Reach { n, p } => SourceReply::Objects(
                path::reach(&store, *n, p)
                    .into_iter()
                    .filter_map(|o| store.get(o).map(ObjectInfo::of))
                    .collect(),
            ),
            SourceQuery::LabelOf(o) => SourceReply::LabelResult(store.label(*o)),
        };
        self.meter.record_query(q, &reply);
        reply
    }

    /// The meter charged by this wrapper.
    pub fn meter(&self) -> &CostMeter {
        &self.meter
    }

    /// A shared handle to the meter (for channels that must record
    /// retries and faults into the same per-source ledger).
    pub fn meter_handle(&self) -> Arc<CostMeter> {
        self.meter.clone()
    }

    /// The source's root.
    pub fn root(&self) -> Oid {
        self.source.root()
    }

    /// The source's name.
    pub fn source_name(&self) -> &str {
        self.source.name()
    }
}

impl QueryPort for Wrapper {
    fn query(&self, q: &SourceQuery) -> std::result::Result<SourceReply, QueryFault> {
        Ok(self.serve(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdb::{samples, Path};

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn person_source(level: ReportLevel) -> Source {
        let src = Source::empty("persons", oid("ROOT"), level);
        src.with_store(|s| samples::person_db(s).map(|_| ())).unwrap();
        // Setup creates log entries; discard them.
        src.with_store(|s| {
            s.drain_log();
        });
        src
    }

    #[test]
    fn monitor_reports_at_level_1() {
        let src = person_source(ReportLevel::OidsOnly);
        src.with_store(|s| s.create(gsdb::Object::atom("A2", "age", 40i64)))
            .unwrap();
        src.apply(Update::insert("P2", "A2")).unwrap();
        let reports = src.monitor().poll();
        assert_eq!(reports.len(), 2); // create + insert
        let insert_report = &reports[1];
        assert!(insert_report.info.is_empty());
        assert!(insert_report.paths.is_empty());
        assert_eq!(
            insert_report.update.directly_affected(),
            vec![oid("P2"), oid("A2")]
        );
    }

    #[test]
    fn monitor_reports_at_level_2_and_3() {
        let src = person_source(ReportLevel::WithPaths);
        src.with_store(|s| s.create(gsdb::Object::atom("A2", "age", 40i64)))
            .unwrap();
        src.apply(Update::insert("P2", "A2")).unwrap();
        let reports = src.monitor().poll();
        let r = &reports[1];
        // L2: labels and values.
        let a2 = r.info_of(oid("A2")).unwrap();
        assert_eq!(a2.label.as_str(), "age");
        // L3: root path of P2 with OIDs along it.
        let p2 = r.path_of(oid("P2")).unwrap();
        assert_eq!(p2.path, Path::parse("professor"));
        assert_eq!(p2.oids, vec![oid("ROOT"), oid("P2")]);
        // A2's path exists too (now a child of P2).
        let a2p = r.path_of(oid("A2")).unwrap();
        assert_eq!(a2p.path, Path::parse("professor.age"));
    }

    #[test]
    fn monitor_sequences_reports() {
        let src = person_source(ReportLevel::OidsOnly);
        src.apply(Update::modify("A1", 46i64)).unwrap();
        src.apply(Update::modify("A1", 47i64)).unwrap();
        let reports = src.monitor().poll();
        assert_eq!(reports[0].seq, 0);
        assert_eq!(reports[1].seq, 1);
        // Later polls continue the sequence.
        src.apply(Update::modify("A1", 48i64)).unwrap();
        let more = src.monitor().poll();
        assert_eq!(more[0].seq, 2);
    }

    #[test]
    fn wrapper_serves_and_meters() {
        let src = person_source(ReportLevel::OidsOnly);
        let meter = Arc::new(CostMeter::new());
        let w = src.wrapper(meter.clone());
        let reply = w.serve(&SourceQuery::PathFromRoot {
            root: oid("ROOT"),
            n: oid("A1"),
        });
        assert_eq!(
            reply,
            SourceReply::PathResult(Some(Path::parse("professor.age")))
        );
        let reply = w.serve(&SourceQuery::Fetch(oid("P1")));
        match reply {
            SourceReply::Object(Some(info)) => assert_eq!(info.label.as_str(), "professor"),
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(meter.queries(), 2);
        assert_eq!(meter.messages(), 4);
    }

    #[test]
    fn wrapper_reach_carries_values_for_local_cond_tests() {
        // Example 9: the warehouse fetches N.p and tests cond locally.
        let src = person_source(ReportLevel::OidsOnly);
        let meter = Arc::new(CostMeter::new());
        let w = src.wrapper(meter);
        let reply = w.serve(&SourceQuery::Reach {
            n: oid("P1"),
            p: Path::parse("age"),
        });
        match reply {
            SourceReply::Objects(infos) => {
                assert_eq!(infos.len(), 1);
                assert_eq!(infos[0].value, gsdb::Value::Atom(gsdb::Atom::Int(45)));
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
}
