//! Protocol hardening and self-healing primitives.
//!
//! The paper's warehousing architecture (§5, Figure 6) assumes every
//! update report arrives exactly once, in order, and that wrappers
//! answer every query. This module supplies what a production pipeline
//! needs when those assumptions break:
//!
//! * [`SeqTracker`] — per-source monotonic sequence accounting, so the
//!   integrator *detects* gaps and duplicates instead of trusting
//!   delivery;
//! * [`RetryPolicy`] — bounded retries with exponential backoff over a
//!   [`SimClock`] (a simulated clock, so chaos experiments stay
//!   deterministic and instantaneous);
//! * [`DeadLetterQueue`] — queries that exhausted their retries, kept
//!   for diagnosis instead of being silently swallowed;
//! * [`ViewState`] / [`StaleCause`] — the explicit degraded mode: a
//!   view that missed a report keeps serving reads but is flagged
//!   `Stale` until a resync restores `Consistent`;
//! * [`ResyncOutcome`] — what one healing pass did (snapshot-diff
//!   repair, or escalation to the full-recompute baseline).
//!
//! Every query a healing pass issues travels the `Channel → Wrapper`
//! query port, and [`Wrapper::serve`](crate::source::Wrapper::serve)
//! answers from the source's latest **published epoch** — so a resync
//! snapshot-diff reads one immutable batch-boundary state end to end,
//! without ever taking the source's store mutex, even while the source
//! is mid-commit on the next batch.

use crate::protocol::{QueryFault, SourceQuery};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ----------------------------------------------------------------------
// Simulated time
// ----------------------------------------------------------------------

/// A shared simulated clock, in milliseconds. Retried queries "wait
/// out" their backoff by advancing this clock, so experiments can
/// report total backoff latency without ever sleeping.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now_ms: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::Relaxed)
    }

    /// Advance the clock (all clones share the new time).
    pub fn advance_ms(&self, delta: u64) {
        self.now_ms.fetch_add(delta, Ordering::Relaxed);
    }
}

// ----------------------------------------------------------------------
// Retries
// ----------------------------------------------------------------------

/// Bounded retries with exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = fail immediately).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
        }
    }
}

impl RetryPolicy {
    /// No retries at all: every fault is terminal.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
        }
    }

    /// Tuned for a real network transport: a timed-out attempt has
    /// already cost its full read deadline in wall-clock before the
    /// retry accounting even starts, so the ramp starts higher and
    /// retries are fewer than the in-process default — retrying a
    /// dead TCP peer five times just multiplies the outage.
    pub fn network() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
        }
    }

    /// Backoff before retry number `attempt` (0-based): `base << attempt`,
    /// capped at `max_backoff_ms`.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        self.base_backoff_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.max_backoff_ms)
    }
}

// ----------------------------------------------------------------------
// Dead letters
// ----------------------------------------------------------------------

/// A query that exhausted its retries.
#[derive(Clone, Debug, PartialEq)]
pub struct DeadLetter {
    /// The source the query was addressed to.
    pub source: String,
    /// The query itself.
    pub query: SourceQuery,
    /// The final fault.
    pub fault: QueryFault,
    /// Total attempts made (1 + retries).
    pub attempts: u32,
    /// Simulated time of the final failure.
    pub at_ms: u64,
}

/// A shared queue of dead letters. The warehouse never drops a failed
/// query silently: whatever maintenance could not learn is recorded
/// here, and the affected view is flagged [`ViewState::Stale`].
#[derive(Debug, Default)]
pub struct DeadLetterQueue {
    letters: Mutex<Vec<DeadLetter>>,
}

impl DeadLetterQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a dead letter. Never silent: every entry emits a trace
    /// event (flight-recorder visible) and bumps the global
    /// `warehouse.dlq.enter` counter, so a chaos run can assert that
    /// nothing was lost without scraping logs.
    pub fn push(&self, letter: DeadLetter) {
        gsview_obs::event!("warehouse.dlq.enter",
            "source" = letter.source.clone(),
            "fault" = letter.fault.to_string(),
            "attempts" = letter.attempts);
        gsview_obs::registry().counter("warehouse.dlq.enter").incr();
        self.letters.lock().unwrap().push(letter);
    }

    /// Number of queued letters.
    pub fn len(&self) -> usize {
        self.letters.lock().unwrap().len()
    }

    /// True iff no letters are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take all queued letters. Bumps `warehouse.dlq.leave` by the
    /// number taken, so `enter - leave` is the standing backlog.
    pub fn drain(&self) -> Vec<DeadLetter> {
        let letters = std::mem::take(&mut *self.letters.lock().unwrap());
        if !letters.is_empty() {
            gsview_obs::event!("warehouse.dlq.drain", "count" = letters.len());
            gsview_obs::registry()
                .counter("warehouse.dlq.leave")
                .add(letters.len() as u64);
        }
        letters
    }
}

// ----------------------------------------------------------------------
// Sequence accounting
// ----------------------------------------------------------------------

/// What a sequence number reveals about a report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqVerdict {
    /// Exactly the expected next report.
    InOrder,
    /// Reports were lost (or delayed past their successors): `got`
    /// arrived where `expected` should have been.
    Gap {
        /// The sequence number that should have come next.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
    /// An already-consumed sequence number arrived again (a duplicate,
    /// or a delayed report whose gap has since been handled).
    Duplicate {
        /// The sequence number that should have come next.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
}

/// Per-source monotonic sequence tracking.
///
/// On a gap the tracker *fast-forwards* past it: the missing reports
/// will never be re-delivered, so the right response is to flag the
/// views stale (the caller's job) and keep consuming the stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeqTracker {
    next: Option<u64>,
}

impl SeqTracker {
    /// A tracker that accepts whatever sequence number arrives first.
    pub fn new() -> Self {
        Self::default()
    }

    /// A tracker expecting `next` as the first sequence number (the
    /// source's counter at connect time).
    pub fn with_baseline(next: u64) -> Self {
        SeqTracker { next: Some(next) }
    }

    /// The next expected sequence number, if any report (or baseline)
    /// has established one.
    pub fn next_expected(&self) -> Option<u64> {
        self.next
    }

    /// Account for an arriving report's sequence number.
    pub fn observe(&mut self, seq: u64) -> SeqVerdict {
        let verdict = match self.next {
            None => SeqVerdict::InOrder,
            Some(expected) if seq == expected => SeqVerdict::InOrder,
            Some(expected) if seq > expected => SeqVerdict::Gap { expected, got: seq },
            Some(expected) => return SeqVerdict::Duplicate { expected, got: seq },
        };
        self.next = Some(seq + 1);
        verdict
    }

    /// Account for a control-plane checkpoint: the source has emitted
    /// all sequence numbers below `next_seq`. Returns the tail gap, if
    /// reports are missing that no successor will ever reveal.
    pub fn reconcile(&mut self, next_seq: u64) -> Option<SeqVerdict> {
        let expected = self.next.unwrap_or(0);
        if next_seq <= expected {
            return None;
        }
        self.next = Some(next_seq);
        Some(SeqVerdict::Gap {
            expected,
            got: next_seq,
        })
    }
}

// ----------------------------------------------------------------------
// View health
// ----------------------------------------------------------------------

/// Why a view was flagged stale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StaleCause {
    /// A sequence gap: at least one update report was lost.
    ReportGap {
        /// The first missing sequence number.
        expected: u64,
        /// The sequence number whose arrival (or checkpoint) revealed
        /// the gap.
        got: u64,
    },
    /// A source query exhausted its retries during maintenance, so the
    /// maintenance result cannot be trusted.
    QueryFailure,
}

impl fmt::Display for StaleCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaleCause::ReportGap { expected, got } => {
                write!(f, "report gap: expected seq {expected}, saw {got}")
            }
            StaleCause::QueryFailure => write!(f, "source query exhausted retries"),
        }
    }
}

/// Health of one warehouse view.
///
/// A `Stale` view still serves reads — that is the graceful-degradation
/// contract — but its contents are best-effort until a resync restores
/// `Consistent`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ViewState {
    /// Maintained exactly; trustworthy.
    #[default]
    Consistent,
    /// Possibly diverged from the source; flagged, awaiting resync.
    Stale(StaleCause),
}

impl ViewState {
    /// True iff the view is flagged stale.
    pub fn is_stale(&self) -> bool {
        matches!(self, ViewState::Stale(_))
    }
}

impl fmt::Display for ViewState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewState::Consistent => write!(f, "consistent"),
            ViewState::Stale(cause) => write!(f, "stale ({cause})"),
        }
    }
}

/// What one resync pass accomplished.
#[must_use = "check `healed` — a view can stay stale if the source kept failing"]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResyncOutcome {
    /// The view is `Consistent` again.
    pub healed: bool,
    /// Members inserted by the snapshot-diff repair.
    pub inserted: usize,
    /// Members deleted by the snapshot-diff repair.
    pub deleted: usize,
    /// The diff repair did not verify clean and the full-recompute
    /// baseline was used instead.
    pub escalated: bool,
    /// Chunks fetched over the durable port (durable resync only:
    /// pages whose content hash changed since the warehouse last
    /// reconstructed this source, or that it had never seen).
    pub chunks_fetched: u64,
    /// Chunks served from the warehouse's hash-keyed page cache
    /// (durable resync only: unchanged pages, fetched for free).
    pub chunks_reused: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdb::Oid;

    #[test]
    fn tracker_detects_gaps_duplicates_and_fast_forwards() {
        let mut t = SeqTracker::new();
        assert_eq!(t.observe(0), SeqVerdict::InOrder);
        assert_eq!(t.observe(1), SeqVerdict::InOrder);
        // Loss of 2: seq 3 arrives.
        assert_eq!(
            t.observe(3),
            SeqVerdict::Gap {
                expected: 2,
                got: 3
            }
        );
        // Fast-forwarded: 4 is now in order.
        assert_eq!(t.observe(4), SeqVerdict::InOrder);
        // The delayed 2 finally arrives: duplicate/late.
        assert_eq!(
            t.observe(2),
            SeqVerdict::Duplicate {
                expected: 5,
                got: 2
            }
        );
        assert_eq!(t.next_expected(), Some(5));
    }

    #[test]
    fn tracker_baseline_rejects_replays_from_before_connect() {
        let mut t = SeqTracker::with_baseline(7);
        assert!(matches!(t.observe(3), SeqVerdict::Duplicate { .. }));
        assert_eq!(t.observe(7), SeqVerdict::InOrder);
    }

    #[test]
    fn reconcile_reveals_tail_loss() {
        let mut t = SeqTracker::new();
        assert_eq!(t.observe(0), SeqVerdict::InOrder);
        // Source says it emitted 0..3; we only saw 0.
        assert_eq!(
            t.reconcile(3),
            Some(SeqVerdict::Gap {
                expected: 1,
                got: 3
            })
        );
        // Caught up: a second checkpoint is quiet.
        assert_eq!(t.reconcile(3), None);
    }

    #[test]
    fn reconcile_on_a_fresh_tracker_flags_total_loss() {
        let mut t = SeqTracker::new();
        assert_eq!(
            t.reconcile(2),
            Some(SeqVerdict::Gap {
                expected: 0,
                got: 2
            })
        );
        assert_eq!(t.reconcile(0), None);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff_ms: 10,
            max_backoff_ms: 100,
        };
        assert_eq!(p.backoff_ms(0), 10);
        assert_eq!(p.backoff_ms(1), 20);
        assert_eq!(p.backoff_ms(2), 40);
        assert_eq!(p.backoff_ms(5), 100, "capped");
        assert_eq!(p.backoff_ms(63), 100, "shift overflow capped");
    }

    #[test]
    fn clock_is_shared_across_clones() {
        let c = SimClock::new();
        let c2 = c.clone();
        c.advance_ms(40);
        c2.advance_ms(2);
        assert_eq!(c.now_ms(), 42);
    }

    #[test]
    fn dead_letters_accumulate_and_drain() {
        let q = DeadLetterQueue::new();
        assert!(q.is_empty());
        q.push(DeadLetter {
            source: "s1".into(),
            query: SourceQuery::Fetch(Oid::new("X")),
            fault: QueryFault::Timeout,
            attempts: 4,
            at_ms: 70,
        });
        assert_eq!(q.len(), 1);
        let drained = q.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].attempts, 4);
        assert!(q.is_empty());
    }

    #[test]
    fn view_state_displays_cause() {
        let s = ViewState::Stale(StaleCause::ReportGap {
            expected: 2,
            got: 5,
        });
        assert!(s.is_stale());
        assert!(s.to_string().contains("expected seq 2"));
        assert!(!ViewState::Consistent.is_stale());
    }
}
