//! Durable warm-restart and chunk-diff resync support.
//!
//! The warehouse side of `gsview-durable`: a [`ChunkCache`] of decoded
//! pages keyed by content hash, so reconstructing a source's persisted
//! epoch fetches **only the chunks whose hashes changed** since the
//! last reconstruction — unchanged pages are free, exactly mirroring
//! how the segment stores them once. This is the first step toward the
//! ROADMAP's subtree-diff resync protocol: today the diff unit is the
//! 256-slot page, addressed by hash.
//!
//! [`LocalPort`] serves [`SourceQuery`]s from a reconstructed store so
//! warm restart can rebuild auxiliary caches without touching the
//! source (zero metered queries; the paper's §3 motivation is exactly
//! that restart cost).

use crate::protocol::{CostMeter, QueryFault, SourceQuery, SourceReply};
use crate::remote::Channel;
use crate::resync::{DeadLetterQueue, RetryPolicy, SimClock};
use crate::source::QueryPort;
use gsdb::{Object, ShardImage, Store};
use gsview_durable::{ChunkHash, ChunkPort, DurableError, Manifest};
use std::collections::HashMap;
use std::sync::Arc;

/// What one cached reconstruction moved over the chunk port.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Chunks fetched from the port (changed or first-seen pages).
    pub fetched: u64,
    /// Chunks served from the warehouse-side cache (unchanged pages).
    pub reused: u64,
}

/// Decoded pages the warehouse has already fetched from a durable
/// port, keyed by content hash. Content addressing makes the cache
/// trivially coherent: a hash never names two different pages, so a
/// page cached once never needs re-fetching or invalidating.
#[derive(Default)]
pub struct ChunkCache {
    pages: HashMap<ChunkHash, Arc<Vec<Option<Object>>>>,
}

impl ChunkCache {
    /// An empty cache.
    pub fn new() -> ChunkCache {
        ChunkCache::default()
    }

    /// Number of distinct pages cached.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True iff nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Rebuild the store a manifest describes, fetching only pages the
    /// cache has not seen (a previous reconstruction of any lineage
    /// over this cache counts — dedup is cross-lineage, like the
    /// segment's). Fails if a needed chunk is unavailable or corrupt;
    /// the caller falls back to the query path.
    pub fn reconstruct(
        &mut self,
        port: &dyn ChunkPort,
        m: &Manifest,
    ) -> gsview_durable::Result<(Store, FetchStats)> {
        let mut stats = FetchStats::default();
        let mut images = Vec::with_capacity(m.shards.len());
        for sm in &m.shards {
            let mut pages = Vec::with_capacity(sm.pages.len());
            for h in &sm.pages {
                let page = match self.pages.get(h) {
                    Some(p) => {
                        stats.reused += 1;
                        Arc::clone(p)
                    }
                    None => {
                        let payload = port.fetch_chunk(h).ok_or_else(|| {
                            DurableError::Corrupt(format!("chunk {h} unavailable"))
                        })?;
                        let page = Arc::new(gsdb::codec::decode_page(&payload)?);
                        stats.fetched += 1;
                        self.pages.insert(*h, Arc::clone(&page));
                        page
                    }
                };
                pages.push(page);
            }
            images.push(ShardImage {
                len_slots: sm.len_slots as usize,
                pages,
            });
        }
        let store = Store::from_images(m.store_config(), images, m.version)
            .map_err(DurableError::Corrupt)?;
        let r = gsview_obs::registry();
        r.counter("warehouse.durable.chunks_fetched").add(stats.fetched);
        r.counter("warehouse.durable.chunks_reused").add(stats.reused);
        Ok((store, stats))
    }
}

/// A [`QueryPort`] answering from a local (reconstructed) store — the
/// warm-restart path's stand-in for a source wrapper. Infallible and
/// unmetered against the *source*; its own meter records the local
/// traffic for diagnostics.
struct LocalPort {
    store: Arc<Store>,
}

impl QueryPort for LocalPort {
    fn query(&self, q: &SourceQuery) -> Result<SourceReply, QueryFault> {
        Ok(crate::source::answer(&self.store, q))
    }
}

/// A [`Channel`] over a [`LocalPort`]: lets channel-shaped consumers
/// (aux-cache builds, [`RemoteBase`](crate::remote::RemoteBase)) run
/// against a recovered epoch without a single source round trip.
pub(crate) fn local_channel(name: &str, store: Arc<Store>, clock: SimClock) -> Channel {
    Channel::new(
        name,
        Arc::new(LocalPort { store }),
        Arc::new(CostMeter::new()),
        RetryPolicy::none(),
        clock,
        Arc::new(DeadLetterQueue::new()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdb::{samples, Oid, StoreConfig};
    use gsview_durable::{DurableStore, MediaSet, PersistMeta};

    fn persist(d: &DurableStore, name: &str, s: &Store, epoch: u64) {
        d.persist(
            name,
            &s.fork(),
            PersistMeta {
                epoch,
                seq: epoch,
                log_updates: false,
                extra: Vec::new(),
            },
        )
        .unwrap();
    }

    #[test]
    fn cache_fetches_only_changed_pages_on_the_second_pass() {
        let d = DurableStore::open(MediaSet::memory()).unwrap();
        let mut s = Store::with_config(StoreConfig::default().with_shards(2));
        samples::person_db(&mut s).unwrap();
        for i in 0..200 {
            s.create(gsdb::Object::atom(format!("f{i}").as_str(), "x", i as i64))
                .unwrap();
        }
        persist(&d, "src", &s, 1);
        let m1 = d.frames_for("src").last().unwrap().manifest.clone();

        let mut cache = ChunkCache::new();
        let (r1, st1) = cache.reconstruct(&d, &m1).unwrap();
        assert_eq!(st1.reused, 0);
        assert!(st1.fetched > 1, "first pass fetches everything");
        assert_eq!(r1.oids_sorted(), s.oids_sorted());

        // One modify, one fresh persist: the second reconstruction
        // fetches only the changed page(s).
        s.modify_atom(Oid::new("f7"), -7i64).unwrap();
        persist(&d, "src", &s, 2);
        let m2 = d.frames_for("src").last().unwrap().manifest.clone();
        let (r2, st2) = cache.reconstruct(&d, &m2).unwrap();
        assert!(st2.fetched <= 2, "unchanged pages must come from cache");
        assert!(st2.reused >= st1.fetched - 2);
        assert_eq!(r2.atom(Oid::new("f7")), Some(&gsdb::Atom::Int(-7)));
    }

    #[test]
    fn local_channel_serves_queries_from_the_reconstruction() {
        let mut s = Store::new();
        samples::person_db(&mut s).unwrap();
        let chan = local_channel("persons", Arc::new(s.fork()), SimClock::new());
        let mut base = crate::remote::RemoteBase::new(&chan);
        use gsview_core::BaseAccess;
        assert_eq!(
            base.path_from_root(Oid::new("ROOT"), Oid::new("A1")),
            Some(gsdb::Path::parse("professor.age"))
        );
        assert!(base.fetch(Oid::new("P1")).is_some());
        // Applying an update never touches any real source: the port
        // has no source to reach.
        assert_eq!(chan.exhausted(), 0);
    }

    #[test]
    fn reconstruct_fails_closed_on_a_missing_chunk() {
        let d = DurableStore::open(MediaSet::memory()).unwrap();
        let mut s = Store::new();
        samples::person_db(&mut s).unwrap();
        persist(&d, "src", &s, 1);
        let mut m = d.frames_for("src").last().unwrap().manifest.clone();
        // Point one page at a hash the segment never stored.
        m.shards[0].pages[0] = gsview_durable::chunk_hash(b"not a real page");
        let err = ChunkCache::new().reconstruct(&d, &m);
        assert!(err.is_err(), "missing chunk must not reconstruct");
    }
}
