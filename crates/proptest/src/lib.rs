//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate vendors
//! the subset of proptest's API that this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, [`Just`], `any::<T>()`,
//! integer-range strategies, tuple strategies, `prop::collection::vec`,
//! the `prop_oneof!` union, and the `proptest!` test macro with
//! `prop_assert*` assertions and a `ProptestConfig { cases, .. }`
//! knob.
//!
//! Differences from upstream, deliberate and documented:
//!
//! * **No shrinking.** A failing case reports its deterministic seed
//!   (derived from the test name and case index) so it can be replayed
//!   exactly, but inputs are not minimized.
//! * **Deterministic by construction.** Every test function runs the
//!   same case sequence on every machine; there is no persistence file
//!   (existing `.proptest-regressions` files are ignored).

use std::marker::PhantomData;

pub use rand::SeedableRng;

/// The RNG driving all strategies.
pub type TestRng = rand::rngs::StdRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Derive the deterministic seed for one case of one test.
pub fn case_seed(test_name: &str, case: u64) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Prints the failing case's replay seed if the test body panics.
pub struct CaseGuard {
    name: &'static str,
    case: u64,
    seed: u64,
}

impl CaseGuard {
    /// Arm a guard for one case.
    pub fn new(name: &'static str, case: u64, seed: u64) -> Self {
        CaseGuard { name, case, seed }
    }

    /// The case completed; do not report.
    pub fn disarm(self) {
        std::mem::forget(self);
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest-shim: test `{}` failed at case {} (replay seed {:#x})",
                self.name, self.case, self.seed
            );
        }
    }
}

/// A generator of random values (proptest's `Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen_fn: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    gen_fn: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()`: uniform over the whole type.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A/0);
impl_tuple_strategy!(A/0, B/1);
impl_tuple_strategy!(A/0, B/1, C/2);
impl_tuple_strategy!(A/0, B/1, C/2, D/3);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);

/// Uniformly picks one of several boxed strategies (the expansion of
/// `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the macro's collected arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng as _;
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// The `prop::` namespace mirror.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// A vector of `elem` values with a length drawn from `lens`.
        pub fn vec<S: Strategy>(elem: S, lens: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, lens }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            lens: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                use rand::Rng as _;
                let n = rng.gen_range(self.lens.clone());
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// The macro surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, case_seed, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, CaseGuard, Just, ProptestConfig, SeedableRng, Strategy, TestRng,
    };
}

/// `assert!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Union of strategies: uniformly picks an arm per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The test-defining macro: each `fn name(arg in strategy, ...)` runs
/// `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let __seed = $crate::case_seed(stringify!($name), __case as u64);
                let mut __rng =
                    <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(__seed);
                let __guard = $crate::CaseGuard::new(stringify!($name), __case as u64, __seed);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
                __guard.disarm();
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples((a, b) in (0..10usize, 5..6i64), v in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1i64), (10..20i64).prop_map(|v| v * 2)]) {
            prop_assert!(x == 1 || (20..40).contains(&x));
            prop_assert_ne!(x, 0);
        }
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        assert_eq!(case_seed("t", 3), case_seed("t", 3));
        assert_ne!(case_seed("t", 3), case_seed("t", 4));
        assert_ne!(case_seed("t", 3), case_seed("u", 3));
    }
}
