//! Multi-writer commit pipeline over the sharded store.
//!
//! A [`Store`](crate::Store) behind one mutex serializes every writer —
//! the paper's sources report updates *independently*, so a
//! source-side store should let independent writers commit
//! concurrently. [`ShardedStore`] provides that: it takes ownership of
//! a store and re-homes each shard's state behind **its own mutation
//! lock**, so commits touching disjoint shards proceed in parallel,
//! while readers keep loading immutable epoch snapshots that are never
//! torn across shards.
//!
//! ## The two-phase publish
//!
//! A [`commit`](ShardedStore::commit) runs in two phases:
//!
//! 1. **Apply.** Compute the batch's *affected shard set* (each basic
//!    update touches the home shards of the OIDs it names — see the
//!    ownership discipline in the [`store`](crate::store) module docs),
//!    lock exactly those shards **in ascending index order**, and
//!    apply the batch to copy-on-write clones of the locked states.
//!    A failed update aborts the batch at that point with the prefix
//!    applied (the store's historical `apply_batch` semantics).
//! 2. **Publish.** Still holding the shard locks, take the global
//!    publish lock, compose the next snapshot — the previous published
//!    snapshot's shard states with the freshly mutated shards swapped
//!    in — and publish it through the [`EpochHandle`], bumping the
//!    single global epoch counter. The applied updates are appended to
//!    the commit log (still under the publish lock, so log order
//!    equals epoch order), then everything unlocks.
//!
//! **Deadlock freedom.** Every code path acquires locks in one global
//! order: shard locks in ascending shard index, then the publish lock,
//! then the log lock. Two commits that both need shards `{1, 3}` meet
//! at shard 1; a commit never waits on a lower-ordered lock while
//! holding a higher-ordered one. [`with_exclusive`] follows the same
//! order (all shards ascending, then publish, then log).
//!
//! **Consistency.** Writers hold their affected shard locks *through*
//! the publish step, so for any two commits either (a) their shard
//! sets intersect — the shared shard's lock orders them totally, and
//! the later one composes on top of the earlier one's published
//! snapshot — or (b) they are disjoint — they commute, and each
//! composes its own shards over whatever the other published.
//! Either way every published snapshot is a consistent cut: it
//! contains each commit entirely or not at all, never a torn prefix
//! across shards.
//!
//! **Dynamic shard sets.** `Remove`'s affected set depends on the
//! victim's *current* children (their home shards receive the
//! parent-index removals). The pipeline guesses from the latest
//! snapshot, locks, and re-validates against the locked (and
//! batch-mutated) state; if the guess was stale it widens the set and
//! retries, falling back to locking every shard after three attempts —
//! children can only change under the victim's own shard lock, so the
//! loop converges.

use crate::store::{shard_for, ShardAccess, ShardState};
use crate::{AppliedUpdate, EpochHandle, GsdbError, Store, Update};
use gsview_obs::Counter;
use std::sync::{Arc, Mutex, MutexGuard};

/// Outcome of one [`ShardedStore::commit`].
#[derive(Debug)]
pub struct CommitResult {
    /// The epoch the commit published, if anything was applied.
    /// Epochs are assigned under the global publish lock, so they
    /// totally order all commits of one store.
    pub epoch: Option<u64>,
    /// The updates applied (and published), in batch order. On error
    /// this is the successfully applied prefix.
    pub applied: Vec<AppliedUpdate>,
    /// The first failing update's error, if the batch did not apply
    /// fully. The prefix in `applied` is committed regardless.
    pub error: Option<GsdbError>,
}

impl CommitResult {
    /// Collapse into a `Result`, keeping the historical
    /// prefix-commit contract: the applied prefix is committed and
    /// published even when an error is returned.
    pub fn into_result(self) -> crate::Result<Vec<AppliedUpdate>> {
        match self.error {
            None => Ok(self.applied),
            Some(e) => Err(e),
        }
    }
}

/// Store-level mutable metadata guarded by the publish lock.
#[derive(Debug)]
struct PublishState {
    /// Version of the live (= latest published) store state.
    version: u64,
}

/// The monitor's feed: applied updates in publish order, plus the
/// sequence number the next drained report will take.
#[derive(Debug, Default)]
struct CommitLog {
    entries: Vec<AppliedUpdate>,
    next_seq: u64,
}

/// Per-shard instrumentation, registered in the global metrics
/// registry as `store.shard.commits.<i>` / `store.shard.lock_wait.<i>`.
struct ShardMetrics {
    /// Commits whose affected set included this shard.
    commits: Arc<Counter>,
    /// Lock acquisitions that found this shard's lock contended.
    lock_waits: Arc<Counter>,
}

/// A store partitioned behind per-shard mutation locks, with a global
/// epoch publisher — the concurrent commit path a
/// [`Source`](crate::Store) uses underneath. Readers call
/// [`snapshot`](ShardedStore::snapshot) (wait-free against writers);
/// writers call [`commit`](ShardedStore::commit) and contend only on
/// the shards their batch touches plus the brief publish step.
pub struct ShardedStore {
    /// One lock per shard, indexed by shard id.
    locks: Vec<Mutex<ShardState>>,
    /// `log2(shard count)`.
    shift: u32,
    /// Whether applied updates feed the commit log.
    log_enabled: bool,
    /// Whether assembled exclusive-mode stores count accesses.
    count_accesses: bool,
    /// The published-snapshot handle readers load from.
    epochs: Arc<EpochHandle>,
    /// Phase-two lock: serializes snapshot composition + epoch bump.
    publish: Mutex<PublishState>,
    /// The monitor feed. Locked after `publish` (never the reverse).
    log: Mutex<CommitLog>,
    /// Per-shard commit / lock-contention counters.
    metrics: Vec<ShardMetrics>,
    /// Commits whose affected set spanned more than one shard.
    cross_shard_commits: Arc<Counter>,
    /// Optional commit observer, called under the publish lock (after
    /// the log lock is released — lock order publish → log → hook).
    hook: Mutex<Option<PublishHook>>,
}

/// The locked-and-cloned view a commit applies its batch to: COW
/// clones of exactly the shards the batch affects. Touching any other
/// shard means the affected-set computation is wrong — that is a bug,
/// and the panic in `state()` is the detector.
struct CommitView {
    shift: u32,
    states: Vec<Option<ShardState>>,
}

impl ShardAccess for CommitView {
    #[inline]
    fn shift(&self) -> u32 {
        self.shift
    }
    #[inline]
    fn state(&self, i: usize) -> &ShardState {
        self.states[i]
            .as_ref()
            .expect("update touched a shard outside the commit's affected set")
    }
    #[inline]
    fn state_mut(&mut self, i: usize) -> &mut ShardState {
        self.states[i]
            .as_mut()
            .expect("update touched a shard outside the commit's affected set")
    }
}

/// What a publish hook is told about the commit it is observing.
/// Every field is captured under the publish lock, so hooks see
/// commits in epoch order with internally consistent metadata.
#[derive(Clone, Copy, Debug)]
pub struct PublishInfo {
    /// The epoch this commit published.
    pub epoch: u64,
    /// The store version of the published snapshot.
    pub version: u64,
    /// Total sequence numbers assigned or pending at publish time:
    /// the commit log's `next_seq` plus its undrained entries. A
    /// recovered source resumes sequencing here, so a warehouse that
    /// processed fewer reports sees a detectable tail gap — never a
    /// silently reused sequence number.
    pub assigned_seq_total: u64,
}

/// A commit observer invoked under the publish lock — the durability
/// layer's attachment point (persist every published epoch).
type PublishHook = Box<dyn Fn(&PublishInfo, &Store) + Send + Sync>;

/// Why one apply attempt could not finish against its locked set.
enum Attempt {
    /// A `Remove`'s current children live on shards outside the locked
    /// set; retry with the union.
    Widen(u16),
}

impl ShardedStore {
    /// Take ownership of a store and re-home it behind per-shard
    /// locks. The store's current state becomes epoch 0's published
    /// snapshot; any pending log entries become the commit log's
    /// initial feed.
    pub fn new(store: Store) -> ShardedStore {
        Self::build(store, 0, 0)
    }

    /// Re-home a **recovered** store: the warm-restart constructor.
    /// The store's state becomes the published snapshot at `epoch`
    /// (not 0 — epoch numbering must continue where the durable log
    /// left off), and report sequencing resumes at `next_seq` so
    /// downstream gap detection sees continuity, or a genuine tail
    /// gap, never a reused sequence number.
    pub fn restore(store: Store, epoch: u64, next_seq: u64) -> ShardedStore {
        Self::build(store, epoch, next_seq)
    }

    fn build(store: Store, epoch: u64, next_seq: u64) -> ShardedStore {
        let snapshot = store.fork();
        let log_enabled = store.logs_updates();
        let count_accesses = store.counts_accesses();
        let (shards, version, entries) = store.into_parts();
        let shift = shards.len().trailing_zeros();
        let metrics = (0..shards.len())
            .map(|i| ShardMetrics {
                commits: gsview_obs::registry().counter(&format!("store.shard.commits.{i}")),
                lock_waits: gsview_obs::registry().counter(&format!("store.shard.lock_wait.{i}")),
            })
            .collect();
        ShardedStore {
            locks: shards.into_iter().map(Mutex::new).collect(),
            shift,
            log_enabled,
            count_accesses,
            epochs: Arc::new(EpochHandle::with_epoch(snapshot, epoch)),
            publish: Mutex::new(PublishState { version }),
            log: Mutex::new(CommitLog { entries, next_seq }),
            metrics,
            cross_shard_commits: gsview_obs::registry().counter("store.commit.cross_shard"),
            hook: Mutex::new(None),
        }
    }

    /// Install a commit observer, replacing any previous one. The hook
    /// runs under the publish lock after every epoch publish (both
    /// [`commit`](ShardedStore::commit) and
    /// [`with_exclusive`](ShardedStore::with_exclusive)), receiving
    /// the published snapshot — commits are observed in epoch order
    /// with no gaps from installation onward. Keep hooks short: every
    /// writer serializes behind them.
    pub fn set_publish_hook(&self, hook: impl Fn(&PublishInfo, &Store) + Send + Sync + 'static) {
        *self.hook.lock().unwrap() = Some(Box::new(hook));
    }

    /// Remove the commit observer, if any.
    pub fn clear_publish_hook(&self) {
        *self.hook.lock().unwrap() = None;
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.locks.len()
    }

    /// The epoch handle readers subscribe to.
    pub fn epoch_handle(&self) -> Arc<EpochHandle> {
        Arc::clone(&self.epochs)
    }

    /// The latest published snapshot (wait-free against writers in the
    /// apply phase; at most a brief read-lock hand-off with a
    /// publishing writer).
    pub fn snapshot(&self) -> Arc<Store> {
        self.epochs.load()
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epochs.epoch()
    }

    /// The sequence number the next drained report will take.
    pub fn assigned_seq(&self) -> u64 {
        self.log.lock().unwrap().next_seq
    }

    /// Total sequence numbers assigned or pending: `next_seq` plus the
    /// undrained commit-log entries — the same watermark a publish
    /// hook sees in [`PublishInfo::assigned_seq_total`]. A durable
    /// baseline taken here can never lead a recovered source to reuse
    /// a sequence number the warehouse already consumed.
    pub fn assigned_seq_total(&self) -> u64 {
        let log = self.log.lock().unwrap();
        log.next_seq + log.entries.len() as u64
    }

    /// True iff the live store logs applied updates (the feed a
    /// source's monitor drains into reports).
    pub fn logs_updates(&self) -> bool {
        self.log_enabled
    }

    /// The home shard of an OID (same function every snapshot uses).
    pub fn shard_of(&self, oid: crate::Oid) -> usize {
        shard_for(oid, self.shift)
    }

    /// The affected-shard bitmask of one update, guessing `Remove`'s
    /// children from `snap` (re-validated under lock).
    fn guess_mask(&self, u: &Update, snap: &Store) -> u16 {
        let bit = |oid| 1u16 << shard_for(oid, self.shift);
        match u {
            Update::Insert { parent, child } | Update::Delete { parent, child } => {
                bit(*parent) | bit(*child)
            }
            Update::Modify { oid, .. } => bit(*oid),
            Update::Create { object } => {
                let mut m = bit(object.oid);
                for c in object.children() {
                    m |= bit(*c);
                }
                m
            }
            Update::Remove { oid } => {
                let mut m = bit(*oid);
                for c in snap.children(*oid) {
                    m |= bit(*c);
                }
                m
            }
        }
    }

    /// Lock the shards in `mask`, ascending, counting contention.
    fn lock_mask(&self, mask: u16) -> Vec<Option<MutexGuard<'_, ShardState>>> {
        (0..self.locks.len())
            .map(|i| {
                if mask & (1 << i) == 0 {
                    return None;
                }
                Some(match self.locks[i].try_lock() {
                    Ok(g) => g,
                    Err(std::sync::TryLockError::WouldBlock) => {
                        self.metrics[i].lock_waits.incr();
                        self.locks[i].lock().unwrap()
                    }
                    Err(std::sync::TryLockError::Poisoned(e)) => {
                        panic!("shard {i} lock poisoned: {e}")
                    }
                })
            })
            .collect()
    }

    /// One apply attempt against a locked set: clone the locked
    /// shards, apply the batch. `Ok` carries the mutated view and the
    /// per-update outcomes; `Err(Widen)` means a `Remove` needs shards
    /// outside `mask` and nothing is committed.
    #[allow(clippy::type_complexity)]
    fn try_apply(
        &self,
        guards: &[Option<MutexGuard<'_, ShardState>>],
        mask: u16,
        updates: &[Update],
    ) -> Result<(CommitView, Vec<AppliedUpdate>, Option<GsdbError>), Attempt> {
        let mut view = CommitView {
            shift: self.shift,
            states: guards
                .iter()
                .map(|g| g.as_deref().cloned())
                .collect(),
        };
        let mut applied = Vec::with_capacity(updates.len());
        let mut error = None;
        for u in updates {
            // Re-validate Remove against the locked, batch-mutated
            // state: the victim's shard is locked, so its children are
            // frozen except by this very batch.
            if let Update::Remove { oid } = u {
                let home = shard_for(*oid, self.shift);
                if mask & (1 << home) == 0 {
                    return Err(Attempt::Widen(1 << home));
                }
                let mut need = 0u16;
                if let Some(slot) = view.state(home).slot_of.get(oid) {
                    let local = slot >> self.shift;
                    if let Some(obj) = view.state(home).obj(local) {
                        for c in obj.children() {
                            need |= 1 << shard_for(*c, self.shift);
                        }
                    }
                }
                if need & !mask != 0 {
                    return Err(Attempt::Widen(need));
                }
            }
            match crate::store::apply_update(&mut view, u.clone()) {
                Ok(a) => applied.push(a),
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        Ok((view, applied, error))
    }

    /// Apply a batch of basic updates atomically (with the historical
    /// prefix-commit semantics on error) and publish the result as one
    /// new epoch. Concurrent commits whose affected shards are
    /// disjoint run their apply phases in parallel.
    pub fn commit(&self, updates: &[Update]) -> CommitResult {
        if updates.is_empty() {
            return CommitResult {
                epoch: None,
                applied: Vec::new(),
                error: None,
            };
        }
        let all_mask = if self.locks.len() >= 16 {
            u16::MAX
        } else {
            (1u16 << self.locks.len()) - 1
        };
        let mut mask = {
            let snap = self.snapshot();
            updates
                .iter()
                .fold(0u16, |m, u| m | self.guess_mask(u, &snap))
        };
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > 3 {
                mask = all_mask;
            }
            let mut guards = self.lock_mask(mask);
            match self.try_apply(&guards, mask, updates) {
                Err(Attempt::Widen(need)) => {
                    drop(guards);
                    mask |= need;
                    continue;
                }
                Ok((view, applied, error)) => {
                    if applied.is_empty() {
                        return CommitResult {
                            epoch: None,
                            applied,
                            error,
                        };
                    }
                    // Phase two: publish while still holding the shard
                    // locks, so no concurrent commit can slip a
                    // conflicting snapshot between our apply and our
                    // publish.
                    let oidset_changed = applied.iter().any(|a| {
                        matches!(
                            a,
                            AppliedUpdate::Create { .. } | AppliedUpdate::Remove { .. }
                        )
                    });
                    let mut pub_state = self.publish.lock().unwrap();
                    pub_state.version += applied.len() as u64;
                    let replaced: Vec<(usize, ShardState)> = view
                        .states
                        .into_iter()
                        .enumerate()
                        .filter_map(|(i, s)| s.map(|s| (i, s)))
                        .collect();
                    // Write the mutated states back into the live
                    // shards, then compose the snapshot from the same
                    // states (cheap COW clones of each other).
                    for (i, s) in &replaced {
                        **guards[*i].as_mut().unwrap() = s.clone();
                    }
                    let composed = Store::compose_from(
                        &self.epochs.load(),
                        replaced,
                        pub_state.version,
                        oidset_changed,
                    );
                    let epoch = self.epochs.publish(composed);
                    let seq_total = {
                        // Still under the publish lock: log order ==
                        // epoch order, which the monitor turns into
                        // sequence numbers.
                        let mut log = self.log.lock().unwrap();
                        if self.log_enabled {
                            log.entries.extend(applied.iter().cloned());
                        }
                        log.next_seq + log.entries.len() as u64
                    };
                    if let Some(h) = self.hook.lock().unwrap().as_ref() {
                        h(
                            &PublishInfo {
                                epoch,
                                version: pub_state.version,
                                assigned_seq_total: seq_total,
                            },
                            &self.epochs.load(),
                        );
                    }
                    let shards_touched = mask.count_ones();
                    for i in 0..self.locks.len() {
                        if mask & (1 << i) != 0 {
                            self.metrics[i].commits.incr();
                        }
                    }
                    if shards_touched > 1 {
                        self.cross_shard_commits.incr();
                    }
                    gsview_obs::event!(
                        "store.commit",
                        "epoch" = epoch,
                        "updates" = applied.len(),
                        "shards" = shards_touched as usize,
                        "attempts" = attempts as usize,
                    );
                    drop(pub_state);
                    return CommitResult {
                        epoch: Some(epoch),
                        applied,
                        error,
                    };
                }
            }
        }
    }

    /// Run a closure with exclusive mutable access to the whole store,
    /// assembled as a plain [`Store`] — the escape hatch for setup
    /// code, direct-access experiments, and the historical
    /// `with_store` API. Takes every shard lock (ascending), the
    /// publish lock, and the log lock; pending commit-log entries are
    /// checked out into the assembled store's log (so the closure
    /// observes the same log a single-mutex store would) and whatever
    /// the closure leaves in the log is checked back in. If the
    /// closure mutated the store, the new state is published as one
    /// epoch.
    pub fn with_exclusive<T>(&self, f: impl FnOnce(&mut Store) -> T) -> T {
        let mut guards = self.lock_mask(if self.locks.len() >= 16 {
            u16::MAX
        } else {
            (1u16 << self.locks.len()) - 1
        });
        let mut pub_state = self.publish.lock().unwrap();
        let mut log = self.log.lock().unwrap();
        let states: Vec<ShardState> = guards
            .iter_mut()
            .map(|g| std::mem::take(&mut **g.as_mut().unwrap()))
            .collect();
        let mut store =
            Store::from_parts(states, self.log_enabled, pub_state.version, self.count_accesses);
        store.set_log(std::mem::take(&mut log.entries));
        let before = store.version();

        let out = f(&mut store);

        let changed = store.version() != before;
        let snapshot = changed.then(|| store.fork());
        let (states, version, entries) = store.into_parts();
        for (g, s) in guards.iter_mut().zip(states) {
            **g.as_mut().unwrap() = s;
        }
        pub_state.version = version;
        log.entries = entries;
        if let Some(snap) = snapshot {
            let epoch = self.epochs.publish(snap);
            gsview_obs::event!("store.commit", "epoch" = epoch, "exclusive" = true);
            let seq_total = log.next_seq + log.entries.len() as u64;
            if let Some(h) = self.hook.lock().unwrap().as_ref() {
                h(
                    &PublishInfo {
                        epoch,
                        version: pub_state.version,
                        assigned_seq_total: seq_total,
                    },
                    &self.epochs.load(),
                );
            }
        }
        out
    }

    /// Drain the commit log for the monitor: returns the first drained
    /// entry's sequence number, the entries in publish order, and a
    /// snapshot that reflects **at least** those entries (it may
    /// additionally include commits published while the drain was in
    /// flight — never fewer).
    pub fn drain_reports(&self) -> (u64, Vec<AppliedUpdate>, Arc<Store>) {
        let mut log = self.log.lock().unwrap();
        let base = log.next_seq;
        let entries = std::mem::take(&mut log.entries);
        log.next_seq += entries.len() as u64;
        let snap = self.epochs.load();
        (base, entries, snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, Object, Oid, StoreConfig};

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn sharded(n: usize) -> ShardedStore {
        let mut s = Store::with_config(StoreConfig {
            log_updates: true,
            ..StoreConfig::default().with_shards(n)
        });
        s.create(Object::empty_set("R", "root")).unwrap();
        s.drain_log();
        ShardedStore::new(s)
    }

    #[test]
    fn commit_applies_and_publishes_one_epoch_per_batch() {
        let ss = sharded(4);
        let e0 = ss.epoch();
        let r = ss.commit(&[
            Update::Create {
                object: Object::atom("A", "age", 1i64),
            },
            Update::insert("R", "A"),
            Update::modify("A", 2i64),
        ]);
        assert!(r.error.is_none());
        assert_eq!(r.applied.len(), 3);
        assert_eq!(r.epoch, Some(e0 + 1));
        assert_eq!(ss.epoch(), e0 + 1);
        let snap = ss.snapshot();
        assert_eq!(snap.atom(oid("A")), Some(&Atom::Int(2)));
        assert!(snap.children(oid("R")).contains(&oid("A")));
        snap.check_invariants().unwrap();
    }

    #[test]
    fn failed_update_commits_the_prefix() {
        let ss = sharded(4);
        let r = ss.commit(&[
            Update::Create {
                object: Object::atom("A", "age", 1i64),
            },
            Update::insert("R", "GHOST"),
            Update::modify("A", 9i64),
        ]);
        assert_eq!(r.applied.len(), 1, "prefix before the failure");
        assert_eq!(r.error, Some(GsdbError::NoSuchObject(oid("GHOST"))));
        assert!(r.epoch.is_some(), "prefix publishes");
        let snap = ss.snapshot();
        assert!(snap.contains(oid("A")));
        assert_eq!(snap.atom(oid("A")), Some(&Atom::Int(1)), "suffix not applied");
    }

    #[test]
    fn empty_and_fully_failed_commits_publish_nothing() {
        let ss = sharded(2);
        let e0 = ss.epoch();
        let r = ss.commit(&[]);
        assert_eq!(r.epoch, None);
        let r = ss.commit(&[Update::modify("GHOST", 1i64)]);
        assert_eq!(r.epoch, None);
        assert!(r.error.is_some());
        assert_eq!(ss.epoch(), e0);
    }

    #[test]
    fn remove_widens_to_its_children_shards() {
        let ss = sharded(8);
        // Build a parent with children spread across shards, then
        // remove it in the same pipeline — the Remove's affected set
        // must cover every child's home shard to fix the parent index.
        let mut batch = vec![Update::Create {
            object: Object::empty_set("P", "parent"),
        }];
        for i in 0..12 {
            batch.push(Update::Create {
                object: Object::atom(format!("c{i}").as_str(), "x", i as i64),
            });
            batch.push(Update::insert("P", format!("c{i}").as_str()));
        }
        ss.commit(&batch).into_result().unwrap();
        let r = ss.commit(&[Update::Remove { oid: oid("P") }]);
        assert!(r.error.is_none());
        let snap = ss.snapshot();
        assert!(!snap.contains(oid("P")));
        for i in 0..12 {
            assert!(snap
                .parents(Oid::new(&format!("c{i}")))
                .unwrap()
                .is_empty());
        }
        snap.check_invariants().unwrap();
    }

    #[test]
    fn with_exclusive_checks_the_log_in_and_out() {
        let ss = sharded(4);
        ss.commit(&[Update::Create {
            object: Object::atom("A", "age", 1i64),
        }])
        .into_result()
        .unwrap();
        // The committed entry is visible to an exclusive closure...
        ss.with_exclusive(|s| {
            assert_eq!(s.log().len(), 1);
            s.drain_log();
            s.modify_atom(oid("A"), 2i64).unwrap();
        });
        // ...the drain stuck, and the closure's own mutation logged
        // and published.
        let (_, entries, snap) = ss.drain_reports();
        assert_eq!(entries.len(), 1);
        assert!(matches!(entries[0], AppliedUpdate::Modify { .. }));
        assert_eq!(snap.atom(oid("A")), Some(&Atom::Int(2)));
    }

    #[test]
    fn read_only_exclusive_publishes_nothing() {
        let ss = sharded(4);
        let e0 = ss.epoch();
        let n = ss.with_exclusive(|s| s.len());
        assert_eq!(n, 1);
        assert_eq!(ss.epoch(), e0);
    }

    #[test]
    fn drain_reports_sequences_in_publish_order() {
        let ss = sharded(4);
        assert_eq!(ss.assigned_seq(), 0);
        ss.commit(&[Update::Create {
            object: Object::atom("A", "age", 1i64),
        }])
        .into_result()
        .unwrap();
        ss.commit(&[Update::modify("A", 2i64)]).into_result().unwrap();
        let (base, entries, _) = ss.drain_reports();
        assert_eq!(base, 0);
        assert_eq!(entries.len(), 2);
        assert!(matches!(entries[0], AppliedUpdate::Create { .. }));
        ss.commit(&[Update::modify("A", 3i64)]).into_result().unwrap();
        let (base, entries, _) = ss.drain_reports();
        assert_eq!(base, 2);
        assert_eq!(entries.len(), 1);
        assert_eq!(ss.assigned_seq(), 3);
    }

    #[test]
    fn concurrent_disjoint_writers_all_commit() {
        let ss = Arc::new(sharded(8));
        let writers = 4;
        let per = 25;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let ss = Arc::clone(&ss);
                scope.spawn(move || {
                    for i in 0..per {
                        ss.commit(&[Update::Create {
                            object: Object::atom(format!("w{w}_{i}").as_str(), "x", i as i64),
                        }])
                        .into_result()
                        .unwrap();
                    }
                });
            }
        });
        let snap = ss.snapshot();
        assert_eq!(snap.len(), 1 + writers * per);
        assert_eq!(ss.epoch(), (writers * per) as u64);
        snap.check_invariants().unwrap();
    }
}
