//! Pretty-printing of stores in the paper's indented angle-bracket
//! notation (Example 2), used by the examples and the paper-figure
//! tests.

use crate::{Oid, Store};
use std::collections::HashSet;
use std::fmt::Write;

/// Render the subtree under `root` in the paper's notation, one object
/// per line, indented by depth. Objects reachable via multiple paths
/// are printed once in full and afterwards as `(see <OID>)`, keeping
/// the output finite on DAGs and cyclic graphs.
pub fn render(store: &Store, root: Oid) -> String {
    let mut out = String::new();
    let mut printed = HashSet::new();
    render_rec(store, root, 0, &mut printed, &mut out);
    out
}

fn render_rec(
    store: &Store,
    oid: Oid,
    depth: usize,
    printed: &mut HashSet<Oid>,
    out: &mut String,
) {
    let pad = "  ".repeat(depth);
    let Some(obj) = store.get(oid) else {
        // The OID is not in this store: in a view database this is a
        // pointer back to a base object (paper §3.2); in a base store
        // it is a dangling reference. Either way, show it as a pointer.
        let _ = writeln!(out, "{pad}-> {oid} (not in this database)");
        return;
    };
    if !printed.insert(oid) {
        let _ = writeln!(out, "{pad}(see {oid})");
        return;
    }
    let _ = writeln!(out, "{pad}{}", obj.to_paper_notation());
    for &c in obj.children() {
        render_rec(store, c, depth + 1, printed, out);
    }
}

/// Render a flat object listing (every object in the store, sorted by
/// OID name) — the shape of the paper's Example 2 listing.
pub fn render_flat(store: &Store) -> String {
    let mut out = String::new();
    for oid in store.oids_sorted() {
        if let Some(obj) = store.get(oid) {
            let _ = writeln!(out, "{}", obj.to_paper_notation());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{atom, set};

    #[test]
    fn renders_indented_tree() {
        let mut s = Store::new();
        let root = set("R", "person")
            .child(set("p", "professor").child(atom("n", "name", "John")))
            .build(&mut s)
            .unwrap();
        let text = render(&s, root);
        assert!(text.contains("< R, person, set, {p} >"));
        assert!(text.contains("  < p, professor, set, {n} >"));
        assert!(text.contains("    < n, name, string, 'John' >"));
    }

    #[test]
    fn shared_objects_render_once() {
        let mut s = Store::new();
        set("a", "left").child(atom("sh", "v", 1i64)).build(&mut s).unwrap();
        let root = set("top", "root")
            .reference("a")
            .child(set("b", "right").reference("sh"))
            .build(&mut s)
            .unwrap();
        let text = render(&s, root);
        assert_eq!(text.matches("< sh, v, integer, 1 >").count(), 1);
        assert!(text.contains("(see sh)"));
    }

    #[test]
    fn out_of_store_children_render_as_pointers() {
        let mut s = Store::new();
        s.create(crate::Object::set("p", "x", &[Oid::new("ghost")]))
            .unwrap();
        let text = render(&s, Oid::new("p"));
        assert!(text.contains("-> ghost (not in this database)"));
    }

    #[test]
    fn flat_listing_sorted() {
        let mut s = Store::new();
        set("b", "x").build(&mut s).unwrap();
        set("a", "y").build(&mut s).unwrap();
        let flat = render_flat(&s);
        let a_pos = flat.find("< a,").unwrap();
        let b_pos = flat.find("< b,").unwrap();
        assert!(a_pos < b_pos);
    }
}
