//! Parser for the paper's angle-bracket object notation — the format
//! Example 2 is printed in and [`display`](crate::display) renders:
//!
//! ```text
//! < ROOT, person, set, {P1,P2,P3,P4} >
//! < N1, name, string, 'John' >
//! < A1, age, integer, 45 >
//! < S1, salary, dollar, dollar 100000 >
//! ```
//!
//! Together with the renderer this gives a textual round-trip for
//! whole databases: paste a listing from the paper (or a snapshot
//! dump) and get a populated [`Store`] back. Indentation is ignored —
//! structure comes from the set values, as in the paper ("We use
//! indentation as a visual aid").

use crate::{Atom, Label, Object, Oid, Result, Store, Value};
use std::fmt;

/// A notation parse error, with the (1-based) line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NotationError {
    /// Line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for NotationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "notation error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NotationError {}

fn err(line: usize, message: impl Into<String>) -> NotationError {
    NotationError {
        line,
        message: message.into(),
    }
}

/// Parse one `< OID, label, type, value >` record.
pub fn parse_object(line_no: usize, text: &str) -> std::result::Result<Object, NotationError> {
    let t = text.trim();
    let inner = t
        .strip_prefix('<')
        .and_then(|r| r.strip_suffix('>'))
        .ok_or_else(|| err(line_no, "expected `< ... >`"))?
        .trim();
    // Split into exactly four fields, respecting braces and quotes in
    // the last one.
    let mut fields: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut cur = String::new();
    for c in inner.chars() {
        match c {
            '{' if !in_str => {
                depth += 1;
                cur.push(c);
            }
            '}' if !in_str => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            '\'' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if depth == 0 && !in_str && fields.len() < 3 => {
                fields.push(cur.trim().to_owned());
                cur = String::new();
            }
            _ => cur.push(c),
        }
    }
    fields.push(cur.trim().to_owned());
    if fields.len() != 4 {
        return Err(err(
            line_no,
            format!("expected 4 fields (OID, label, type, value), got {}", fields.len()),
        ));
    }
    let oid = Oid::new(&fields[0]);
    let label = Label::new(&fields[1]);
    let type_name = fields[2].as_str();
    let raw_value = fields[3].as_str();
    let value = parse_value(line_no, type_name, raw_value)?;
    Ok(Object { oid, label, value })
}

fn parse_value(
    line_no: usize,
    type_name: &str,
    raw: &str,
) -> std::result::Result<Value, NotationError> {
    match type_name {
        "set" => {
            let inner = raw
                .strip_prefix('{')
                .and_then(|r| r.strip_suffix('}'))
                .ok_or_else(|| err(line_no, "set value must be `{...}`"))?;
            let oids: Vec<Oid> = inner
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(Oid::new)
                .collect();
            Ok(Value::set_of(oids))
        }
        "integer" => raw
            .parse::<i64>()
            .map(|v| Value::Atom(Atom::Int(v)))
            .map_err(|e| err(line_no, format!("bad integer {raw:?}: {e}"))),
        "real" => raw
            .parse::<f64>()
            .map(|v| Value::Atom(Atom::Real(v)))
            .map_err(|e| err(line_no, format!("bad real {raw:?}: {e}"))),
        "boolean" => raw
            .parse::<bool>()
            .map(|v| Value::Atom(Atom::Bool(v)))
            .map_err(|e| err(line_no, format!("bad boolean {raw:?}: {e}"))),
        "string" => {
            let s = raw
                .strip_prefix('\'')
                .and_then(|r| r.strip_suffix('\''))
                .or_else(|| {
                    raw.strip_prefix('`').and_then(|r| r.strip_suffix('\''))
                })
                .ok_or_else(|| err(line_no, "string value must be quoted"))?;
            Ok(Value::Atom(Atom::str(s)))
        }
        // Tagged quantities: the paper's `dollar` type prints as
        // `dollar 100000` or `$100,000`.
        unit => {
            let magnitude = raw
                .trim_start_matches(unit)
                .trim()
                .trim_start_matches('$')
                .replace(',', "");
            magnitude
                .parse::<i64>()
                .map(|v| Value::Atom(Atom::Tagged(Label::new(unit), v)))
                .map_err(|e| {
                    err(
                        line_no,
                        format!("bad tagged value {raw:?} for type {unit}: {e}"),
                    )
                })
        }
    }
}

/// Parse a whole listing (one record per non-empty line; indentation
/// and blank lines ignored; `(see X)` continuation lines from the
/// renderer are skipped) into objects.
pub fn parse_listing(text: &str) -> std::result::Result<Vec<Object>, NotationError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with("(see ") {
            continue;
        }
        out.push(parse_object(i + 1, t)?);
    }
    Ok(out)
}

/// Parse a listing straight into a store.
pub fn load_listing(store: &mut Store, text: &str) -> std::result::Result<usize, NotationError> {
    let objects = parse_listing(text)?;
    let n = objects.len();
    for o in objects {
        store
            .create(o)
            .map_err(|e| err(0, format!("store rejected object: {e}")))?;
    }
    Ok(n)
}

/// Render every object of a store (flat, sorted) — inverse of
/// [`load_listing`] up to ordering.
pub fn dump_listing(store: &Store) -> String {
    crate::display::render_flat(store)
}

/// Helper: check that a store round-trips through the notation.
pub fn roundtrips(store: &Store) -> Result<bool> {
    let text = dump_listing(store);
    let mut fresh = Store::new();
    match load_listing(&mut fresh, &text) {
        Ok(_) => {}
        Err(_) => return Ok(false),
    }
    Ok(crate::Snapshot::capture(store) == crate::Snapshot::capture(&fresh))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    #[test]
    fn parses_the_papers_example_2_listing() {
        let text = "
            < ROOT, person, set, {P1,P2,P3,P4} >
            < P1, professor, set, {N1, A1, S1, P3} >
            < N1, name, string, 'John' >
            < A1, age, integer, 45 >
            < S1, salary, dollar, $100,000 >
            < P3, student, set, {N3, A3, M3} >
            < N3, name, string, 'John' >
            < A3, age, integer, 20 >
            < M3, major, string, 'education' >
            < P2, professor, set, {N2, ADD2} >
            < N2, name, string, 'Sally' >
            < ADD2, address, string, 'Palo Alto' >
            < P4, secretary, set, {N4, A4} >
            < N4, name, string, 'Tom' >
            < A4, age, integer, 40 >
        ";
        let mut store = Store::new();
        let n = load_listing(&mut store, text).unwrap();
        assert_eq!(n, 15);
        assert_eq!(store.atom(Oid::new("A1")), Some(&Atom::Int(45)));
        assert_eq!(
            store.atom(Oid::new("S1")),
            Some(&Atom::tagged("dollar", 100_000))
        );
        // Structure works: the usual query answers hold.
        let reached =
            crate::path::reach(&store, Oid::new("ROOT"), &crate::Path::parse("professor.age"));
        assert_eq!(reached, vec![Oid::new("A1")]);
    }

    #[test]
    fn roundtrip_person_db() {
        let mut store = Store::new();
        samples::person_db(&mut store).unwrap();
        assert!(roundtrips(&store).unwrap());
    }

    #[test]
    fn roundtrip_fig1() {
        let mut store = Store::new();
        samples::fig1_db(&mut store).unwrap();
        assert!(roundtrips(&store).unwrap());
    }

    #[test]
    fn backquoted_strings_accepted() {
        let o = parse_object(1, "< N1, name, string, `John' >").unwrap();
        assert_eq!(o.atom_value(), Some(&Atom::str("John")));
    }

    #[test]
    fn values_with_commas_inside_strings() {
        let o = parse_object(1, "< X, note, string, 'a, b, and c' >").unwrap();
        assert_eq!(o.atom_value(), Some(&Atom::str("a, b, and c")));
    }

    #[test]
    fn empty_set_and_reals_and_bools() {
        assert!(parse_object(1, "< E, empty, set, {} >")
            .unwrap()
            .children()
            .is_empty());
        assert_eq!(
            parse_object(1, "< R, ratio, real, 2.5 >").unwrap().atom_value(),
            Some(&Atom::Real(2.5))
        );
        assert_eq!(
            parse_object(1, "< B, flag, boolean, true >").unwrap().atom_value(),
            Some(&Atom::Bool(true))
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = load_listing(&mut Store::new(), "\n\nnot a record").unwrap_err();
        assert_eq!(e.line, 3);
        let e = parse_object(7, "< X, y, integer, twelve >").unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.message.contains("bad integer"));
        assert!(parse_object(1, "< only, three, fields >").is_err());
    }

    #[test]
    fn renderer_continuation_lines_are_skipped() {
        let text = "< a, x, set, {b} >\n  (see b)\n< b, y, integer, 1 >";
        let objs = parse_listing(text).unwrap();
        assert_eq!(objs.len(), 2);
    }
}
