//! Garbage collection of unreferenced objects.
//!
//! Paper §4.1: "If no objects point to N2 any more, N2 may be garbage
//! collected." We provide a mark-and-sweep collector over a set of
//! declared roots (typically database objects and view objects), since
//! reference counting alone cannot reclaim cyclic garbage.

use crate::{graph, Oid, Store, Update};
use std::collections::HashSet;

/// Collect every object not reachable from any of `roots`.
/// Returns the OIDs that were removed.
pub fn collect(store: &mut Store, roots: &[Oid]) -> Vec<Oid> {
    let mut live: HashSet<Oid> = HashSet::new();
    for &r in roots {
        live.extend(graph::reachable(store, r));
    }
    let dead: Vec<Oid> = store
        .oids_sorted()
        .into_iter()
        .filter(|o| !live.contains(o))
        .collect();
    for &d in &dead {
        // Unlink from any live parents first so Remove cannot leave
        // dangling edges behind (live parents of dead objects cannot
        // exist by construction, but defensive unlinking keeps the
        // parent index exact even on inconsistent inputs).
        let parents: Vec<Oid> = store
            .parents(d)
            .map(|p| p.iter().collect())
            .unwrap_or_default();
        for p in parents {
            let _ = store.delete_edge(p, d);
        }
        store
            .apply(Update::Remove { oid: d })
            .expect("dead object must exist");
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Object;

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    #[test]
    fn unreachable_objects_are_collected() {
        let mut s = Store::new();
        s.create_all([
            Object::set("root", "db", &[oid("kept")]),
            Object::atom("kept", "x", 1i64),
            Object::atom("orphan", "x", 2i64),
        ])
        .unwrap();
        let dead = collect(&mut s, &[oid("root")]);
        assert_eq!(dead, vec![oid("orphan")]);
        assert!(s.contains(oid("kept")));
        assert!(!s.contains(oid("orphan")));
    }

    #[test]
    fn delete_then_collect_models_paper_gc() {
        // delete(N1, N2) followed by GC reclaims N2 iff nothing else
        // points at it (paper §4.1).
        let mut s = Store::new();
        s.create_all([
            Object::set("root", "db", &[oid("a"), oid("b")]),
            Object::set("a", "s", &[oid("shared")]),
            Object::set("b", "s", &[oid("shared")]),
            Object::atom("shared", "v", 1i64),
        ])
        .unwrap();
        s.delete_edge(oid("a"), oid("shared")).unwrap();
        assert!(collect(&mut s, &[oid("root")]).is_empty(), "still referenced by b");
        s.delete_edge(oid("b"), oid("shared")).unwrap();
        assert_eq!(collect(&mut s, &[oid("root")]), vec![oid("shared")]);
    }

    #[test]
    fn cyclic_garbage_is_collected() {
        let mut s = Store::new();
        s.create_all([
            Object::empty_set("root", "db"),
            Object::empty_set("c1", "c"),
            Object::empty_set("c2", "c"),
        ])
        .unwrap();
        s.insert_edge(oid("c1"), oid("c2")).unwrap();
        s.insert_edge(oid("c2"), oid("c1")).unwrap();
        let dead = collect(&mut s, &[oid("root")]);
        assert_eq!(dead.len(), 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn multiple_roots_protect_their_subtrees() {
        let mut s = Store::new();
        s.create_all([
            Object::set("r1", "db", &[oid("m1")]),
            Object::set("r2", "db", &[oid("m2")]),
            Object::atom("m1", "x", 1i64),
            Object::atom("m2", "x", 2i64),
        ])
        .unwrap();
        let dead = collect(&mut s, &[oid("r1"), oid("r2")]);
        assert!(dead.is_empty());
        assert_eq!(collect(&mut s, &[oid("r1")]), vec![oid("m2"), oid("r2")]);
    }
}
