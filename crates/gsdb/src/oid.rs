//! Object identifiers.
//!
//! Every object in a GSDB carries a universally unique OID (paper §2).
//! Our OIDs are interned names, so the mnemonic identifiers used in the
//! paper's examples (`ROOT`, `P1`, `N1`) work directly, while synthetic
//! workloads can generate numbered names (`t00042`).
//!
//! Delegate OIDs (paper §3.2) are *semantic*: the delegate of base object
//! `P1` in materialized view `MVJ` has OID `MVJ.P1`, constructed with
//! [`Oid::delegate`] and decomposed with [`Oid::split_delegate`].

use crate::intern::{delegate_parts, intern, intern_delegate, Symbol};
use std::fmt;

/// A universally unique object identifier.
///
/// Cheap to copy, hash and compare (a single machine word). Two OIDs are
/// equal iff their names are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(Symbol);

impl Oid {
    /// Intern an OID by name.
    pub fn new(name: &str) -> Self {
        Oid(intern(name))
    }

    /// The OID's name.
    pub fn name(self) -> &'static str {
        crate::intern::resolve(self.0)
    }

    /// The interned symbol id — the stable integer the store's shard
    /// placement hashes. Crate-internal: callers outside `gsdb`
    /// observe shard placement only through `Store::shard_of`.
    pub(crate) fn raw(self) -> u64 {
        self.0 .0
    }

    /// Construct the semantic OID of `base`'s delegate in view `view`:
    /// the concatenation `view.base` (paper §3.2).
    pub fn delegate(view: Oid, base: Oid) -> Self {
        Oid(intern_delegate(view.0, base.0))
    }

    /// If this OID is a delegate OID, return `(view, base)`.
    ///
    /// Delegates of delegates (views over views) split one level at a
    /// time.
    pub fn split_delegate(self) -> Option<(Oid, Oid)> {
        delegate_parts(self.0).map(|(v, b)| (Oid(v), Oid(b)))
    }

    /// True iff this OID was constructed by [`Oid::delegate`].
    pub fn is_delegate(self) -> bool {
        delegate_parts(self.0).is_some()
    }

    /// The base OID at the bottom of a (possibly nested) delegate chain.
    /// For a non-delegate OID, returns `self`.
    pub fn ultimate_base(self) -> Oid {
        let mut cur = self;
        while let Some((_, base)) = cur.split_delegate() {
            cur = base;
        }
        cur
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Oid({})", self.name())
    }
}

impl From<&str> for Oid {
    fn from(s: &str) -> Self {
        Oid::new(s)
    }
}

impl From<&String> for Oid {
    fn from(s: &String) -> Self {
        Oid::new(s)
    }
}

impl From<String> for Oid {
    fn from(s: String) -> Self {
        Oid::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oid_equality_by_name() {
        assert_eq!(Oid::new("P1"), Oid::new("P1"));
        assert_ne!(Oid::new("P1"), Oid::new("P2"));
    }

    #[test]
    fn delegate_oid_roundtrip() {
        let mv = Oid::new("MVJ");
        let p1 = Oid::new("P1");
        let d = Oid::delegate(mv, p1);
        assert_eq!(d.name(), "MVJ.P1");
        assert_eq!(d.split_delegate(), Some((mv, p1)));
        assert!(d.is_delegate());
        assert!(!p1.is_delegate());
    }

    #[test]
    fn ultimate_base_unwinds_nesting() {
        let v1 = Oid::new("V1");
        let v2 = Oid::new("V2");
        let b = Oid::new("B7");
        let d = Oid::delegate(v2, Oid::delegate(v1, b));
        assert_eq!(d.ultimate_base(), b);
        assert_eq!(b.ultimate_base(), b);
    }

    #[test]
    fn display_shows_name() {
        assert_eq!(Oid::new("ROOT").to_string(), "ROOT");
    }
}
