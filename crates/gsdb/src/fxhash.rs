//! A fast, non-cryptographic hasher for the store's internal maps.
//!
//! The default `SipHash` hasher is DoS-resistant but costs ~1ns per
//! word hashed — measurable on the maintenance hot path, where every
//! object read goes through an `Oid → slot` lookup. Keys here are
//! interned symbols (a single `u64`) fully controlled by the store, so
//! hash-flooding is not a concern and an FxHash-style multiply-xor mix
//! is both safe and several times faster.
//!
//! The mixing function is the classic Firefox/rustc FxHash step:
//! `hash = (hash.rotate_left(5) ^ word) * K` with a fixed odd constant.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher state.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast hasher.
pub type FastSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_distinguishing() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, &str> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn unaligned_byte_tails_differ() {
        // 9-byte inputs exercise the remainder path.
        assert_ne!(hash_of(&[1u8; 9][..]), hash_of(&[2u8; 9][..]));
    }
}
