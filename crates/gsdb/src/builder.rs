//! Ergonomic construction of object trees.
//!
//! The paper's examples describe databases as indented object listings;
//! [`Node`] lets tests and examples write the same shape in Rust:
//!
//! ```
//! use gsdb::builder::{set, atom};
//! use gsdb::Store;
//!
//! let mut store = Store::new();
//! set("P1", "professor")
//!     .child(atom("N1", "name", "John"))
//!     .child(atom("A1", "age", 45i64))
//!     .build(&mut store)
//!     .unwrap();
//! assert_eq!(store.len(), 3);
//! ```

use crate::shard::ShardedStore;
use crate::{Atom, Object, Oid, Result, Store, Update};
use std::collections::HashSet;

/// A tree (or DAG) of objects under construction.
#[derive(Clone, Debug)]
pub struct Node {
    object: Object,
    children: Vec<Node>,
    /// References to objects assumed to exist already (lets builders
    /// express DAG edges and cross-database pointers).
    refs: Vec<Oid>,
}

/// Start a set node.
pub fn set(oid: &str, label: &str) -> Node {
    Node {
        object: Object::empty_set(oid, label),
        children: Vec::new(),
        refs: Vec::new(),
    }
}

/// An atomic leaf node.
pub fn atom(oid: &str, label: &str, value: impl Into<Atom>) -> Node {
    Node {
        object: Object::atom(oid, label, value),
        children: Vec::new(),
        refs: Vec::new(),
    }
}

impl Node {
    /// Add a child subtree.
    pub fn child(mut self, node: Node) -> Node {
        self.children.push(node);
        self
    }

    /// Add an edge to an already-existing object by OID.
    pub fn reference(mut self, oid: impl Into<Oid>) -> Node {
        self.refs.push(oid.into());
        self
    }

    /// The OID this node will create.
    pub fn oid(&self) -> Oid {
        self.object.oid
    }

    /// Materialize the subtree into `store`; returns the root OID.
    ///
    /// Children are created before parents so that edge insertion
    /// always references existing objects. Nodes whose OID already
    /// exists in the store are treated as references (enabling shared
    /// subtrees), provided the existing object has the same label.
    pub fn build(self, store: &mut Store) -> Result<Oid> {
        let root = self.object.oid;
        self.build_inner(store)?;
        Ok(root)
    }

    /// Materialize the subtree through a [`ShardedStore`] as **one
    /// atomic commit**: either the whole tree lands (publishing a
    /// single epoch) or none of it does. Like [`build`](Node::build),
    /// nodes whose OID already exists — in the latest published
    /// snapshot or earlier in this same tree — are treated as
    /// references. The containment check reads the snapshot, so a
    /// racing writer creating the same OID makes this commit fail
    /// rather than silently share; retry on conflict.
    pub fn commit_into(self, pipeline: &ShardedStore) -> Result<Oid> {
        let snapshot = pipeline.snapshot();
        let root = self.object.oid;
        let mut seen = HashSet::new();
        let mut updates = Vec::new();
        self.collect(&snapshot, &mut seen, &mut updates);
        pipeline.commit(&updates).into_result()?;
        Ok(root)
    }

    /// Flatten into the update sequence `build` would apply: each new
    /// object's `Create` precedes every edge into it.
    fn collect(self, snapshot: &Store, seen: &mut HashSet<Oid>, out: &mut Vec<Update>) {
        let oid = self.object.oid;
        if !snapshot.contains(oid) && seen.insert(oid) {
            out.push(Update::Create { object: self.object });
        }
        for child in self.children {
            let c = child.object.oid;
            child.collect(snapshot, seen, out);
            out.push(Update::Insert { parent: oid, child: c });
        }
        for r in self.refs {
            out.push(Update::Insert {
                parent: oid,
                child: r,
            });
        }
    }

    fn build_inner(self, store: &mut Store) -> Result<Oid> {
        let oid = self.object.oid;
        if !store.contains(oid) {
            store.create(self.object)?;
        }
        for child in self.children {
            let c = child.build_inner(store)?;
            store.insert_edge(oid, c)?;
        }
        for r in self.refs {
            store.insert_edge(oid, r)?;
        }
        Ok(oid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    #[test]
    fn builds_nested_tree() {
        let mut s = Store::new();
        let root = set("R", "person")
            .child(
                set("p1", "professor")
                    .child(atom("n1", "name", "John"))
                    .child(atom("a1", "age", 45i64)),
            )
            .child(set("p2", "professor").child(atom("n2", "name", "Sally")))
            .build(&mut s)
            .unwrap();
        assert_eq!(root, oid("R"));
        assert_eq!(s.len(), 6);
        assert_eq!(s.get(oid("R")).unwrap().children().len(), 2);
        assert_eq!(s.get(oid("p1")).unwrap().children().len(), 2);
    }

    #[test]
    fn shared_subtree_by_existing_oid() {
        let mut s = Store::new();
        set("a", "left").child(atom("shared", "v", 1i64)).build(&mut s).unwrap();
        set("b", "right").reference("shared").build(&mut s).unwrap();
        assert_eq!(s.parents(oid("shared")).unwrap().len(), 2);
    }

    #[test]
    fn commit_into_lands_the_tree_in_one_epoch() {
        let pipeline = ShardedStore::new(Store::with_config(
            crate::StoreConfig::default().with_shards(4),
        ));
        let root = set("R", "person")
            .child(
                set("p1", "professor")
                    .child(atom("n1", "name", "John"))
                    .child(atom("a1", "age", 45i64)),
            )
            .child(set("p2", "professor").reference("a1"))
            .commit_into(&pipeline)
            .unwrap();
        assert_eq!(root, oid("R"));
        assert_eq!(pipeline.epoch(), 1, "whole tree = one commit");
        let snap = pipeline.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap.parents(oid("a1")).unwrap().len(), 2);
        snap.check_invariants().unwrap();

        // A second tree referencing published objects is another
        // single commit; existing OIDs are treated as references.
        set("R2", "person")
            .child(atom("a1", "age", 45i64))
            .commit_into(&pipeline)
            .unwrap();
        assert_eq!(pipeline.epoch(), 2);
        assert_eq!(pipeline.snapshot().len(), 6, "a1 was shared, not recreated");
    }

    #[test]
    fn duplicate_node_oids_merge() {
        let mut s = Store::new();
        set("r1", "x").child(atom("leaf", "v", 1i64)).build(&mut s).unwrap();
        // Same leaf appears in a second build: becomes a DAG edge.
        set("r2", "x").child(atom("leaf", "v", 1i64)).build(&mut s).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.parents(oid("leaf")).unwrap().len(), 2);
    }
}
