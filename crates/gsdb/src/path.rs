//! Paths and the paper's path functions.
//!
//! A *path* is a sequence of zero or more object labels separated by
//! dots, e.g. `professor.student` (paper §2). `N.p` denotes the set of
//! objects reachable from `N` following `p`. This module implements the
//! three functions Algorithm 1 is built on (paper §4.3):
//!
//! * [`path_between`] — `path(N1, N2)`, the unique label path between
//!   two objects of a tree-structured database;
//! * [`ancestor`] — `ancestor(N, p)`, the ancestor `X` of `N` with
//!   `path(X, N) = p`;
//! * [`eval`] — `eval(N, p, cond)`, the objects in `N.p` whose atomic
//!   values satisfy `cond`.
//!
//! Each function has two realizations, mirroring §4.4's cost
//! discussion: an upward walk using the inverse (parent) index when the
//! store maintains one, and a downward traversal from a given root when
//! it does not. [`ancestors_all`] generalizes `ancestor` to DAG bases
//! (paper §6).

use crate::{Atom, Label, Oid, Store};
use std::collections::HashSet;
use std::fmt;

/// A constant path: a sequence of labels.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Path(pub Vec<Label>);

impl Path {
    /// The empty path (`path(N, N)`).
    pub fn empty() -> Self {
        Path(Vec::new())
    }

    /// Parse a dotted path: `"professor.age"`. The empty string is the
    /// empty path.
    pub fn parse(s: &str) -> Self {
        if s.is_empty() {
            return Path::empty();
        }
        Path(s.split('.').map(Label::new).collect())
    }

    /// Path of one label.
    pub fn single(l: impl Into<Label>) -> Self {
        Path(vec![l.into()])
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff the empty path.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Labels of the path.
    pub fn labels(&self) -> &[Label] {
        &self.0
    }

    /// Concatenation `p1.p2` (paper §2: if `N2 ∈ N1.p1` and
    /// `N3 ∈ N2.p2` then `N3 ∈ N1.p1.p2`).
    pub fn concat(&self, other: &Path) -> Path {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Path(v)
    }

    /// Append one label.
    pub fn push(&mut self, l: Label) {
        self.0.push(l);
    }

    /// True iff `self` ends with `suffix` — the `p = p1.cond_path` test
    /// in Algorithm 1's delete case.
    pub fn ends_with(&self, suffix: &Path) -> bool {
        self.len() >= suffix.len() && self.0[self.len() - suffix.len()..] == suffix.0[..]
    }

    /// True iff `self` starts with `prefix`.
    pub fn starts_with(&self, prefix: &Path) -> bool {
        self.len() >= prefix.len() && self.0[..prefix.len()] == prefix.0[..]
    }

    /// If `self = prefix.rest`, return `rest`.
    pub fn strip_prefix(&self, prefix: &Path) -> Option<Path> {
        self.starts_with(prefix)
            .then(|| Path(self.0[prefix.len()..].to_vec()))
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

impl From<&str> for Path {
    fn from(s: &str) -> Self {
        Path::parse(s)
    }
}

// ----------------------------------------------------------------------
// N.p — reachability along a constant path
// ----------------------------------------------------------------------

/// The set `N.p`: objects reachable from `n` following path `p`
/// (paper §2). Works on arbitrary graphs; duplicates are collapsed at
/// every step, so the result is a set even over DAGs.
pub fn reach(store: &Store, n: Oid, p: &Path) -> Vec<Oid> {
    let mut frontier = vec![n];
    for &step in p.labels() {
        let mut next = Vec::new();
        let mut seen = HashSet::new();
        for &o in &frontier {
            for &c in store.children(o) {
                if store.label(c) == Some(step) && seen.insert(c) {
                    next.push(c);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

/// `eval(N, p, cond)`: the objects in `N.p` whose atomic value makes
/// `cond` true (paper §4.3 definition). For the empty path, `n` itself
/// is tested. Set objects in `N.p` never satisfy an atomic condition.
pub fn eval(store: &Store, n: Oid, p: &Path, cond: &dyn Fn(&Atom) -> bool) -> Vec<Oid> {
    reach(store, n, p)
        .into_iter()
        .filter(|&x| store.atom(x).map(cond).unwrap_or(false))
        .collect()
}

// ----------------------------------------------------------------------
// path(N1, N2) — unique path in a tree
// ----------------------------------------------------------------------

/// `path(N1, N2)`: the label path from `n1` to `n2` in a
/// tree-structured database; `None` if `n1` is not an ancestor of `n2`
/// (paper §4.3: `path(N1, N2) = ∅`).
///
/// Uses the parent index when available (an `O(depth)` upward walk —
/// the "inverse index" shortcut of §4.4); otherwise falls back to a
/// depth-first traversal from `n1`, which is what §4.4 warns "may
/// require a traversal from ROOT to N".
pub fn path_between(store: &Store, n1: Oid, n2: Oid) -> Option<Path> {
    if n1 == n2 {
        return Some(Path::empty());
    }
    if store.has_parent_index() {
        path_upward(store, n1, n2)
    } else {
        path_by_search(store, n1, n2)
    }
}

/// Sentinel for "no predecessor" in the search arenas below.
const NO_PREV: usize = usize::MAX;

/// Upward variant: depth-first search over parent chains from `n2`
/// toward `n1`, collecting labels. On a tree there is a single chain
/// (same cost as a straight walk); on a DAG the search backtracks
/// across parents, so a path is found whenever one exists — it never
/// commits to an arbitrary parent and misses the other route.
///
/// Search nodes live in an arena of `(object, cached label, index of
/// the node below it)`; the label prefix is reconstructed by walking
/// the predecessor chain, instead of cloning a `Vec<Label>` per step.
fn path_upward(store: &Store, n1: Oid, n2: Oid) -> Option<Path> {
    let mut nodes: Vec<(Oid, Option<Label>, usize)> = vec![(n2, None, NO_PREV)];
    let mut stack: Vec<usize> = vec![0];
    let mut visited = HashSet::new();
    visited.insert(n2);
    while let Some(i) = stack.pop() {
        let cur = nodes[i].0;
        let Some(l) = store.label(cur) else { continue };
        nodes[i].1 = Some(l);
        let parents = store.parents(cur).expect("parent index checked by caller");
        for p in parents.iter() {
            if p == n1 {
                // The chain i → … → n2 is already top-down order.
                let mut labels = Vec::new();
                let mut j = i;
                while j != NO_PREV {
                    labels.push(nodes[j].1.expect("chain labels cached on pop"));
                    j = nodes[j].2;
                }
                return Some(Path(labels));
            }
            if visited.insert(p) {
                nodes.push((p, None, i));
                stack.push(nodes.len() - 1);
            }
        }
    }
    None
}

/// Downward variant: DFS from `n1` for `n2` (no inverse index). The
/// arena holds `(edge label into node, predecessor index)`; the prefix
/// is reconstructed from the chain on success.
fn path_by_search(store: &Store, n1: Oid, n2: Oid) -> Option<Path> {
    let mut nodes: Vec<(Label, usize)> = Vec::new();
    let mut stack: Vec<(Oid, usize)> = vec![(n1, NO_PREV)];
    let mut visited = HashSet::new();
    visited.insert(n1);
    while let Some((o, prev)) = stack.pop() {
        for &c in store.children(o) {
            let Some(cl) = store.label(c) else { continue };
            if c == n2 {
                let mut labels = vec![cl];
                let mut j = prev;
                while j != NO_PREV {
                    labels.push(nodes[j].0);
                    j = nodes[j].1;
                }
                labels.reverse();
                return Some(Path(labels));
            }
            if visited.insert(c) {
                nodes.push((cl, prev));
                stack.push((c, nodes.len() - 1));
            }
        }
    }
    None
}

// ----------------------------------------------------------------------
// ancestor(N, p)
// ----------------------------------------------------------------------

/// `ancestor(N, p)`: the ancestor `X` of `n` with `path(X, N) = p`;
/// `None` if no such object (paper §4.3). Tree databases have at most
/// one; on a DAG this returns an arbitrary one (use [`ancestors_all`]
/// for all of them).
pub fn ancestor(store: &Store, n: Oid, p: &Path) -> Option<Oid> {
    ancestors_all(store, n, p).into_iter().next()
}

/// All ancestors `X` of `n` with `path(X, N) = p` — the DAG
/// generalization paper §6 calls for ("there may be more than one path
/// between two objects").
///
/// Requires the parent index; without it, callers should locate `n`'s
/// root path by traversal and derive ancestors from it (that is what
/// the warehouse does when sources report paths — §5.1 level 3).
pub fn ancestors_all(store: &Store, n: Oid, p: &Path) -> Vec<Oid> {
    if p.is_empty() {
        return vec![n];
    }
    if !store.has_parent_index() {
        return ancestors_all_by_search(store, n, p);
    }
    // Walk upward |p| levels; at level i (from the bottom) the current
    // object's label must equal p[len-1-i].
    let labels = p.labels();
    let mut frontier: Vec<Oid> = vec![n];
    for i in (0..labels.len()).rev() {
        let want = labels[i];
        let mut next = Vec::new();
        let mut seen = HashSet::new();
        for &o in &frontier {
            if store.label(o) != Some(want) {
                continue;
            }
            if let Some(parents) = store.parents(o) {
                for par in parents.iter() {
                    if seen.insert(par) {
                        next.push(par);
                    }
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            return Vec::new();
        }
    }
    frontier.sort_by_key(|o| o.name());
    frontier
}

/// Fallback without a parent index: scan every object `X` and test
/// whether `n ∈ X.p`. This is deliberately the expensive realization —
/// the cost §4.4 attributes to missing inverse indexes.
fn ancestors_all_by_search(store: &Store, n: Oid, p: &Path) -> Vec<Oid> {
    let mut out: Vec<Oid> = store
        .oids_sorted()
        .into_iter()
        .filter(|&x| reach(store, x, p).contains(&n))
        .collect();
    out.sort_by_key(|o| o.name());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Object, StoreConfig};

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    /// The PERSON fragment used throughout the paper's examples.
    fn person_fragment() -> Store {
        let mut s = Store::new();
        s.create_all([
            Object::set("ROOT", "person", &[oid("P1"), oid("P2")]),
            Object::set(
                "P1",
                "professor",
                &[oid("N1"), oid("A1"), oid("P3")],
            ),
            Object::atom("N1", "name", "John"),
            Object::atom("A1", "age", 45i64),
            Object::set("P3", "student", &[oid("N3"), oid("A3")]),
            Object::atom("N3", "name", "John"),
            Object::atom("A3", "age", 20i64),
            Object::set("P2", "professor", &[oid("N2")]),
            Object::atom("N2", "name", "Sally"),
        ])
        .unwrap();
        s
    }

    #[test]
    fn path_parse_display_roundtrip() {
        let p = Path::parse("professor.student.age");
        assert_eq!(p.len(), 3);
        assert_eq!(p.to_string(), "professor.student.age");
        assert_eq!(Path::parse(""), Path::empty());
        assert_eq!(Path::empty().to_string(), "");
    }

    #[test]
    fn path_concat_and_affixes() {
        let a = Path::parse("professor");
        let b = Path::parse("student.age");
        let c = a.concat(&b);
        assert_eq!(c.to_string(), "professor.student.age");
        assert!(c.starts_with(&a));
        assert!(c.ends_with(&b));
        assert!(!c.ends_with(&a));
        assert_eq!(c.strip_prefix(&a), Some(b));
        assert!(c.ends_with(&Path::empty()));
    }

    #[test]
    fn reach_follows_labels() {
        let s = person_fragment();
        // A1 ∈ ROOT.professor.age (paper §2 example).
        let ages = reach(&s, oid("ROOT"), &Path::parse("professor.age"));
        assert_eq!(ages, vec![oid("A1")]);
        // Both professors.
        let profs = reach(&s, oid("ROOT"), &Path::parse("professor"));
        assert_eq!(profs.len(), 2);
        // Empty path reaches self.
        assert_eq!(reach(&s, oid("P1"), &Path::empty()), vec![oid("P1")]);
        // Dead label.
        assert!(reach(&s, oid("ROOT"), &Path::parse("robot")).is_empty());
    }

    #[test]
    fn eval_tests_condition_on_atoms() {
        let s = person_fragment();
        let le45 = |a: &Atom| a.partial_cmp_atom(&Atom::Int(45)) != Some(std::cmp::Ordering::Greater);
        // eval(P1, age, ≤45) = {A1} (paper §4.3 example).
        assert_eq!(eval(&s, oid("P1"), &Path::parse("age"), &le45), vec![oid("A1")]);
        // Empty path evaluates the node itself.
        assert_eq!(eval(&s, oid("A3"), &Path::empty(), &le45), vec![oid("A3")]);
        // Set objects never satisfy atomic conditions.
        assert!(eval(&s, oid("ROOT"), &Path::parse("professor"), &le45).is_empty());
    }

    #[test]
    fn path_between_with_parent_index() {
        let s = person_fragment();
        assert_eq!(
            path_between(&s, oid("ROOT"), oid("A1")),
            Some(Path::parse("professor.age"))
        );
        assert_eq!(
            path_between(&s, oid("ROOT"), oid("A3")),
            Some(Path::parse("professor.student.age"))
        );
        assert_eq!(path_between(&s, oid("P1"), oid("P1")), Some(Path::empty()));
        // Not an ancestor.
        assert_eq!(path_between(&s, oid("P2"), oid("A1")), None);
    }

    #[test]
    fn path_between_without_parent_index_agrees() {
        let mut s = Store::with_config(StoreConfig {
            parent_index: false,
            label_index: false,
            ..StoreConfig::default()
        });
        s.create_all([
            Object::set("ROOT", "person", &[oid("p1")]),
            Object::set("p1", "professor", &[oid("a1")]),
            Object::atom("a1", "age", 45i64),
        ])
        .unwrap();
        assert_eq!(
            path_between(&s, oid("ROOT"), oid("a1")),
            Some(Path::parse("professor.age"))
        );
        assert_eq!(path_between(&s, oid("a1"), oid("ROOT")), None);
    }

    #[test]
    fn ancestor_walks_upward() {
        let s = person_fragment();
        // ancestor(A1, age) = P1 (paper Example 6).
        assert_eq!(ancestor(&s, oid("A1"), &Path::parse("age")), Some(oid("P1")));
        assert_eq!(
            ancestor(&s, oid("A3"), &Path::parse("student.age")),
            Some(oid("P1"))
        );
        assert_eq!(ancestor(&s, oid("A1"), &Path::empty()), Some(oid("A1")));
        // Label mismatch → no ancestor.
        assert_eq!(ancestor(&s, oid("A1"), &Path::parse("name")), None);
    }

    #[test]
    fn path_between_backtracks_on_dags() {
        // n2's first-enumerated parent may dead-end; the search must
        // still find the route through the other parent.
        let mut s = Store::new();
        s.create_all([
            Object::empty_set("dead", "off"),
            Object::set("mid", "m", &[]),
            Object::set("top", "t", &[oid("mid")]),
            Object::atom("leafd", "x", 1i64),
        ])
        .unwrap();
        s.insert_edge(oid("mid"), oid("leafd")).unwrap();
        s.insert_edge(oid("dead"), oid("leafd")).unwrap(); // second parent, no route to top
        let p = path_between(&s, oid("top"), oid("leafd"));
        assert_eq!(p, Some(Path::parse("m.x")));
    }

    #[test]
    fn ancestors_all_on_dag() {
        // Two tuples share one field object (DAG).
        let mut s = Store::new();
        s.create_all([
            Object::set("R", "r", &[oid("t1"), oid("t2")]),
            Object::set("t1", "tuple", &[oid("shared")]),
            Object::set("t2", "tuple", &[oid("shared")]),
            Object::atom("shared", "age", 40i64),
        ])
        .unwrap();
        let all = ancestors_all(&s, oid("shared"), &Path::parse("age"));
        assert_eq!(all, vec![oid("t1"), oid("t2")]);
        let roots = ancestors_all(&s, oid("shared"), &Path::parse("tuple.age"));
        assert_eq!(roots, vec![oid("R")]);
    }

    #[test]
    fn ancestors_all_without_parent_index_agrees() {
        let mut s = Store::with_config(StoreConfig {
            parent_index: false,
            label_index: false,
            ..StoreConfig::default()
        });
        s.create_all([
            Object::set("R", "r", &[oid("u1"), oid("u2")]),
            Object::set("u1", "tuple", &[oid("f1")]),
            Object::set("u2", "tuple", &[oid("f1")]),
            Object::atom("f1", "age", 40i64),
        ])
        .unwrap();
        let all = ancestors_all(&s, oid("f1"), &Path::parse("age"));
        assert_eq!(all, vec![oid("u1"), oid("u2")]);
    }

    #[test]
    fn parent_index_makes_ancestor_cheaper() {
        // The E2 claim in miniature: upward walk touches far fewer
        // objects than whole-store search.
        let mut with_idx = Store::counting();
        let mut without_idx = Store::with_config(
            StoreConfig {
                parent_index: false,
                label_index: false,
                ..StoreConfig::default()
            }
            .counting(),
        );
        for s in [&mut with_idx, &mut without_idx] {
            let mut children = Vec::new();
            for i in 0..100 {
                let t = Oid::new(&format!("pt{i}"));
                let f = Oid::new(&format!("pf{i}"));
                s.create(Object::atom(f.name(), "age", i as i64)).unwrap();
                s.create(Object::set(t.name(), "tuple", &[f])).unwrap();
                children.push(t);
            }
            s.create(Object::set("R", "r", &children)).unwrap();
        }
        with_idx.reset_accesses();
        let a = ancestor(&with_idx, oid("pf7"), &Path::parse("age"));
        let cheap = with_idx.accesses();
        without_idx.reset_accesses();
        let b = ancestor(&without_idx, oid("pf7"), &Path::parse("age"));
        let costly = without_idx.accesses();
        assert_eq!(a, b);
        assert!(
            cheap * 10 < costly,
            "expected >10x gap, got {cheap} vs {costly}"
        );
    }

    /// Clone-per-step upward search — the seed realization, kept here
    /// as the reference the arena-based reconstruction is checked
    /// against.
    fn reference_path_upward(store: &Store, n1: Oid, n2: Oid) -> Option<Path> {
        if n1 == n2 {
            return Some(Path::empty());
        }
        let mut stack: Vec<(Oid, Vec<Label>)> = vec![(n2, Vec::new())];
        let mut visited = HashSet::new();
        visited.insert(n2);
        while let Some((cur, labels_rev)) = stack.pop() {
            let Some(l) = store.label(cur) else { continue };
            let mut next_labels = labels_rev.clone();
            next_labels.push(l);
            for p in store.parents(cur).unwrap().iter() {
                if p == n1 {
                    let mut labels = next_labels.clone();
                    labels.reverse();
                    return Some(Path(labels));
                }
                if visited.insert(p) {
                    stack.push((p, next_labels.clone()));
                }
            }
        }
        None
    }

    #[test]
    fn reconstruction_unchanged_on_sample_database() {
        // §2 sample database: every ordered pair must give the same
        // path under the index-based reconstruction as under the
        // clone-per-step reference, and the indexed and traversal
        // realizations must agree with each other.
        let mut s = Store::new();
        crate::samples::person_db(&mut s).unwrap();
        let mut no_idx = Store::with_config(StoreConfig {
            parent_index: false,
            label_index: false,
            ..StoreConfig::default()
        });
        crate::samples::person_db(&mut no_idx).unwrap();
        let oids = s.oids_sorted();
        for &a in &oids {
            for &b in &oids {
                let got = path_between(&s, a, b);
                let reference = reference_path_upward(&s, a, b);
                assert_eq!(
                    got,
                    reference,
                    "path({}, {}) changed",
                    a.name(),
                    b.name()
                );
                assert_eq!(
                    path_between(&no_idx, a, b),
                    reference,
                    "traversal path({}, {}) disagrees",
                    a.name(),
                    b.name()
                );
            }
        }
    }
}
