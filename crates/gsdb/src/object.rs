//! Objects: `<OID, label, type, value>` records (paper §2, OEM model).
//!
//! The *type* field is derived from the value (`set` vs the atomic
//! type name), matching the paper's observation that atomic types can be
//! inferred.

use crate::{Atom, Label, Oid, OidSet, Value};
use std::fmt;

/// A GSDB object.
#[derive(Clone, Debug, PartialEq)]
pub struct Object {
    /// Universally unique identifier.
    pub oid: Oid,
    /// Explanatory label (need not be unique).
    pub label: Label,
    /// Atomic value or set of child OIDs.
    pub value: Value,
}

impl Object {
    /// A new set object with the given children.
    pub fn set(oid: impl Into<Oid>, label: impl Into<Label>, children: &[Oid]) -> Self {
        Object {
            oid: oid.into(),
            label: label.into(),
            value: Value::set_of(children.iter().copied()),
        }
    }

    /// A new empty set object.
    pub fn empty_set(oid: impl Into<Oid>, label: impl Into<Label>) -> Self {
        Object {
            oid: oid.into(),
            label: label.into(),
            value: Value::empty_set(),
        }
    }

    /// A new atomic object.
    pub fn atom(oid: impl Into<Oid>, label: impl Into<Label>, value: impl Into<Atom>) -> Self {
        Object {
            oid: oid.into(),
            label: label.into(),
            value: Value::Atom(value.into()),
        }
    }

    /// The paper's type field.
    pub fn type_name(&self) -> &'static str {
        self.value.type_name()
    }

    /// True iff a set object.
    pub fn is_set(&self) -> bool {
        self.value.is_set()
    }

    /// Children of a set object (empty for atomic objects).
    pub fn children(&self) -> &[Oid] {
        self.value.as_set().map(OidSet::as_slice).unwrap_or(&[])
    }

    /// Atomic value, if atomic.
    pub fn atom_value(&self) -> Option<&Atom> {
        self.value.as_atom()
    }

    /// Render in the paper's angle-bracket notation:
    /// `< P1, professor, set, {N1,A1,S1,P3} >`.
    pub fn to_paper_notation(&self) -> String {
        format!(
            "< {}, {}, {}, {} >",
            self.oid,
            self.label,
            self.type_name(),
            self.value
        )
    }
}

impl fmt::Display for Object {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_paper_notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_object_construction() {
        let o = Object::set("P1", "professor", &[Oid::new("N1"), Oid::new("A1")]);
        assert!(o.is_set());
        assert_eq!(o.type_name(), "set");
        assert_eq!(o.children().len(), 2);
        assert!(o.atom_value().is_none());
    }

    #[test]
    fn atomic_object_construction() {
        let o = Object::atom("A1", "age", 45i64);
        assert!(!o.is_set());
        assert_eq!(o.type_name(), "integer");
        assert_eq!(o.atom_value(), Some(&Atom::Int(45)));
        assert!(o.children().is_empty());
    }

    #[test]
    fn paper_notation_matches_example_2() {
        let o = Object::set(
            "P1",
            "professor",
            &[
                Oid::new("N1"),
                Oid::new("A1"),
                Oid::new("S1"),
                Oid::new("P3"),
            ],
        );
        assert_eq!(o.to_paper_notation(), "< P1, professor, set, {N1,A1,S1,P3} >");
        let a = Object::atom("N1", "name", "John");
        assert_eq!(a.to_paper_notation(), "< N1, name, string, 'John' >");
    }
}
