//! Error types for GSDB operations.

use crate::Oid;
use std::fmt;

/// Errors raised when applying updates or accessing a store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GsdbError {
    /// The referenced object does not exist.
    NoSuchObject(Oid),
    /// `insert`/`delete` targeted an atomic object
    /// (paper §4.1: "N1 must have a set type").
    NotASet(Oid),
    /// `modify` targeted a set object (only atomic values can be
    /// modified; set values change via insert/delete — paper §4.1).
    NotAtomic(Oid),
    /// `delete(N1, N2)` where `N2` is not a child of `N1`.
    NotAChild {
        /// The parent object.
        parent: Oid,
        /// The non-child.
        child: Oid,
    },
    /// `insert(N1, N2)` where `N2` is already a child of `N1`. A
    /// silently-accepted duplicate insert would still be logged as an
    /// applied update, and any consumer that nets edge counts from the
    /// log (delta consolidation, circuit ingest) would then double
    /// count an edge that set semantics stored only once.
    AlreadyAChild {
        /// The parent object.
        parent: Oid,
        /// The existing child.
        child: Oid,
    },
    /// An object with this OID already exists.
    DuplicateOid(Oid),
    /// The operation requires a tree-structured database but the store
    /// is not a tree (paper §4.2 assumes tree structure for Algorithm 1).
    NotATree(Oid),
}

impl fmt::Display for GsdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GsdbError::NoSuchObject(o) => write!(f, "no such object: {o}"),
            GsdbError::NotASet(o) => write!(f, "object {o} is not a set object"),
            GsdbError::NotAtomic(o) => write!(f, "object {o} is not an atomic object"),
            GsdbError::NotAChild { parent, child } => {
                write!(f, "{child} is not a child of {parent}")
            }
            GsdbError::AlreadyAChild { parent, child } => {
                write!(f, "{child} is already a child of {parent}")
            }
            GsdbError::DuplicateOid(o) => write!(f, "an object with OID {o} already exists"),
            GsdbError::NotATree(o) => {
                write!(f, "object {o} has multiple parents; database is not a tree")
            }
        }
    }
}

impl std::error::Error for GsdbError {}

/// Result alias for GSDB operations.
pub type Result<T> = std::result::Result<T, GsdbError>;
