//! Epoch-published store snapshots for lock-free readers.
//!
//! A writer that owns a live [`Store`] behind a mutex can let readers
//! run **without ever taking that mutex**: at every commit it publishes
//! an immutable [`Store::fork`] into an [`EpochHandle`], and readers
//! grab the latest published `Arc<Store>` instead of locking the live
//! one. Forks are copy-on-write (reference-count bumps, not deep
//! copies), so publication is cheap and the writer's subsequent
//! mutations copy only the pages they actually touch.
//!
//! The guarantee readers get is **snapshot isolation at commit
//! granularity**: every load observes exactly the state some commit
//! published — never a torn intermediate — and epochs observed by any
//! single reader are monotonically non-decreasing. The
//! `check_snapshot_isolation` oracle in `gsview-core` verifies this
//! differentially against per-batch recomputes.
//!
//! Readers do take a `RwLock` read guard inside [`EpochHandle::load`],
//! but only for the duration of an `Arc` clone — a few instructions —
//! never for the duration of a store mutation or a maintenance pass.
//! The writer's critical section in [`EpochHandle::publish`] is the
//! swap of one `Arc`, equally short.
//!
//! With a single writer, "commit" and "publish" coincide: fork, then
//! publish, as in the example below. With concurrent writers, use
//! [`ShardedStore`](crate::ShardedStore) instead of a bare mutex — it
//! drives the same `EpochHandle` from its two-phase commit pipeline
//! (per-shard locks, one global epoch), so readers here cannot tell
//! how many writers, or how many slab shards, produced the snapshots
//! they load.

use crate::Store;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// An `Arc`-swapped handle to the latest committed store snapshot.
///
/// ```
/// use gsdb::{EpochHandle, Object, Oid, Store, Update};
///
/// let mut live = Store::new();
/// live.create(Object::atom("A", "age", 45i64)).unwrap();
/// let epochs = EpochHandle::new(live.fork());
///
/// let before = epochs.load();                     // reader pins epoch 0
/// live.apply(Update::modify("A", 80i64)).unwrap(); // writer commits…
/// epochs.publish(live.fork());                     // …and publishes epoch 1
///
/// assert_eq!(before.atom(Oid::new("A")), Some(&gsdb::Atom::Int(45)));
/// assert_eq!(epochs.load().atom(Oid::new("A")), Some(&gsdb::Atom::Int(80)));
/// assert_eq!(epochs.epoch(), 1);
/// ```
#[derive(Debug)]
pub struct EpochHandle {
    current: RwLock<Arc<Store>>,
    epoch: AtomicU64,
}

impl EpochHandle {
    /// Wrap an initial snapshot as epoch 0.
    pub fn new(initial: Store) -> Self {
        EpochHandle {
            current: RwLock::new(Arc::new(initial)),
            epoch: AtomicU64::new(0),
        }
    }

    /// Wrap a recovered snapshot, resuming the epoch counter at
    /// `epoch` — the warm-restart constructor. A process that crashes
    /// and recovers from a durable root must keep numbering epochs
    /// where the durable log left off, or the log's frames would stop
    /// being totally ordered by epoch across restarts.
    pub fn with_epoch(initial: Store, epoch: u64) -> Self {
        EpochHandle {
            current: RwLock::new(Arc::new(initial)),
            epoch: AtomicU64::new(epoch),
        }
    }

    /// The latest published snapshot. Never blocks on the writer's
    /// store mutex; the internal read guard is held only for an `Arc`
    /// clone.
    pub fn load(&self) -> Arc<Store> {
        self.current.read().unwrap().clone()
    }

    /// The latest snapshot together with its epoch number, read
    /// consistently (the pair is taken under one read guard, so a
    /// concurrent publish cannot interleave between them).
    pub fn load_with_epoch(&self) -> (u64, Arc<Store>) {
        let guard = self.current.read().unwrap();
        (self.epoch.load(Ordering::Acquire), guard.clone())
    }

    /// Number of publishes so far (the epoch of the current snapshot).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publish a new committed snapshot, superseding the current one.
    /// Returns the new epoch number. Readers holding older `Arc`s keep
    /// them alive until dropped — publication never invalidates an
    /// in-flight read.
    pub fn publish(&self, snapshot: Store) -> u64 {
        let version = snapshot.version();
        let mut guard = self.current.write().unwrap();
        *guard = Arc::new(snapshot);
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        drop(guard);
        gsview_obs::event!("epoch.publish", "epoch" = epoch, "version" = version);
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, Object, Oid, Update};

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    #[test]
    fn publish_bumps_epoch_and_swaps_state() {
        let mut live = Store::new();
        live.create(Object::atom("A", "age", 1i64)).unwrap();
        let h = EpochHandle::new(live.fork());
        assert_eq!(h.epoch(), 0);

        live.apply(Update::modify("A", 2i64)).unwrap();
        assert_eq!(h.publish(live.fork()), 1);
        let (e, snap) = h.load_with_epoch();
        assert_eq!(e, 1);
        assert_eq!(snap.atom(oid("A")), Some(&Atom::Int(2)));
    }

    #[test]
    fn old_snapshots_stay_alive_and_immutable() {
        let mut live = Store::new();
        live.create(Object::atom("A", "age", 1i64)).unwrap();
        let h = EpochHandle::new(live.fork());
        let pinned = h.load();
        for v in 2..10i64 {
            live.apply(Update::modify("A", v)).unwrap();
            h.publish(live.fork());
        }
        assert_eq!(pinned.atom(oid("A")), Some(&Atom::Int(1)));
        assert_eq!(h.load().atom(oid("A")), Some(&Atom::Int(9)));
    }

    #[test]
    fn concurrent_readers_never_see_torn_state() {
        // Writer keeps two atoms equal in every committed epoch;
        // readers must never observe them differing.
        let mut live = Store::new();
        live.create(Object::atom("X", "n", 0i64)).unwrap();
        live.create(Object::atom("Y", "n", 0i64)).unwrap();
        let h = EpochHandle::new(live.fork());

        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..200 {
                        let snap = h.load();
                        let x = snap.atom(oid("X")).cloned();
                        let y = snap.atom(oid("Y")).cloned();
                        assert_eq!(x, y, "torn epoch observed");
                    }
                });
            }
            for v in 1..100i64 {
                live.apply(Update::modify("X", v)).unwrap();
                live.apply(Update::modify("Y", v)).unwrap();
                h.publish(live.fork());
            }
        });
        assert_eq!(h.epoch(), 99);
    }
}
