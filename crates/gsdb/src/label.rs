//! Object labels.
//!
//! A label is "a string that explains the meaning of the object and does
//! not need to be unique" (paper §2). Labels are the alphabet of paths
//! and path expressions, so they must be cheap to compare: we intern
//! them.

use crate::intern::{intern, Symbol};
use std::fmt;

/// An interned object label (e.g. `professor`, `age`, `view`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(Symbol);

impl Label {
    /// Intern a label by name.
    pub fn new(name: &str) -> Self {
        Label(intern(name))
    }

    /// The label's string.
    pub fn as_str(self) -> &'static str {
        crate::intern::resolve(self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({})", self.as_str())
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

impl From<&String> for Label {
    fn from(s: &String) -> Self {
        Label::new(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Label::new(&s)
    }
}

/// Well-known labels used by the view machinery (paper §3).
pub mod well_known {
    use super::Label;

    /// Label of virtual view objects.
    pub fn view() -> Label {
        Label::new("view")
    }

    /// Label of materialized view objects.
    pub fn mview() -> Label {
        Label::new("mview")
    }

    /// Label of query answer objects.
    pub fn answer() -> Label {
        Label::new("answer")
    }

    /// Label of database objects.
    pub fn database() -> Label {
        Label::new("database")
    }

    /// Label of auxiliary timestamp subobjects (paper §3.2).
    pub fn timestamp() -> Label {
        Label::new("timestamp")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_compare_by_string() {
        assert_eq!(Label::new("age"), Label::new("age"));
        assert_ne!(Label::new("age"), Label::new("name"));
    }

    #[test]
    fn labels_need_not_be_unique_per_object() {
        // Two distinct objects may share a label; labels are just strings.
        let a = Label::new("professor");
        let b = Label::from("professor");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "professor");
    }

    #[test]
    fn well_known_labels() {
        assert_eq!(well_known::view().as_str(), "view");
        assert_eq!(well_known::answer().as_str(), "answer");
    }
}
