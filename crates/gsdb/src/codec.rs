//! Byte codec for durable page serialization.
//!
//! [`Oid`]s and [`Label`]s are interned symbols — their numeric ids
//! are stable only within one process — so anything that outlives the
//! process must be written **by name**. This module encodes slab pages
//! (the copy-on-write unit of [`Store`](crate::Store)) into a compact,
//! self-delimiting byte form the durability layer content-addresses:
//! equal page bytes ⇔ equal page content, across processes.
//!
//! The format is deliberately boring: LEB128 varints, zig-zag signed
//! integers, length-prefixed UTF-8 strings, one tag byte per enum.
//! `None` slots are encoded explicitly so a decoded page reproduces
//! the slot layout — and therefore the slot ids — of the page it was
//! encoded from; recovery must not compact or reassign slots, or
//! structural sharing against later epochs breaks.
//!
//! Integrity (CRC framing, content hashes) is the storage layer's job,
//! not the codec's: the decoder here detects *structural* corruption
//! (truncated input, unknown tags, invalid UTF-8) and reports it as a
//! [`CodecError`], which the recovery path treats like a failed
//! checksum.

use crate::{Atom, Label, Object, Oid, Value};
use std::fmt;
use std::sync::Arc;

/// A structural decode failure: truncated input, an unknown tag, a
/// malformed string. The durability layer treats this exactly like a
/// checksum mismatch — the frame is corrupt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(msg.into()))
}

// ----------------------------------------------------------------------
// Primitives
// ----------------------------------------------------------------------

/// Append a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a zig-zag-encoded signed varint.
pub fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over encoded bytes; every read is bounds-checked.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read one byte.
    pub fn byte(&mut self) -> Result<u8, CodecError> {
        match self.buf.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => err("unexpected end of input"),
        }
    }

    /// Read a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return err("varint overflow");
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a zig-zag-encoded signed varint.
    pub fn zigzag(&mut self) -> Result<i64, CodecError> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return err("unexpected end of input");
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        let n = self.varint()? as usize;
        match std::str::from_utf8(self.bytes(n)?) {
            Ok(s) => Ok(s),
            Err(_) => err("invalid UTF-8 in string"),
        }
    }
}

// ----------------------------------------------------------------------
// Model types
// ----------------------------------------------------------------------

const ATOM_INT: u8 = 0;
const ATOM_REAL: u8 = 1;
const ATOM_STR: u8 = 2;
const ATOM_BOOL: u8 = 3;
const ATOM_TAGGED: u8 = 4;

const VALUE_ATOM: u8 = 0;
const VALUE_SET: u8 = 1;

const SLOT_FREE: u8 = 0;
const SLOT_LIVE: u8 = 1;

/// Encode one atom (tag byte + payload). Public for wire codecs
/// (the serving tier's protocol frames carry atoms inside update
/// reports) — the encoding is the same one the durable page format
/// uses, so cross-process decode re-interns by name.
pub fn put_atom(out: &mut Vec<u8>, a: &Atom) {
    match a {
        Atom::Int(v) => {
            out.push(ATOM_INT);
            put_zigzag(out, *v);
        }
        Atom::Real(v) => {
            out.push(ATOM_REAL);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Atom::Str(s) => {
            out.push(ATOM_STR);
            put_str(out, s);
        }
        Atom::Bool(v) => {
            out.push(ATOM_BOOL);
            out.push(u8::from(*v));
        }
        Atom::Tagged(unit, magnitude) => {
            out.push(ATOM_TAGGED);
            put_str(out, unit.as_str());
            put_zigzag(out, *magnitude);
        }
    }
}

/// Decode one atom written by [`put_atom`].
pub fn get_atom(r: &mut Reader<'_>) -> Result<Atom, CodecError> {
    Ok(match r.byte()? {
        ATOM_INT => Atom::Int(r.zigzag()?),
        ATOM_REAL => {
            let b: [u8; 8] = r.bytes(8)?.try_into().expect("8 bytes");
            Atom::Real(f64::from_le_bytes(b))
        }
        ATOM_STR => Atom::Str(Arc::from(r.str()?)),
        ATOM_BOOL => Atom::Bool(r.byte()? != 0),
        ATOM_TAGGED => {
            let unit = Label::new(r.str()?);
            Atom::Tagged(unit, r.zigzag()?)
        }
        t => return err(format!("unknown atom tag {t}")),
    })
}

/// Encode one object (OID, label, and value, all by name).
pub fn put_object(out: &mut Vec<u8>, obj: &Object) {
    put_str(out, obj.oid.name());
    put_str(out, obj.label.as_str());
    match &obj.value {
        Value::Atom(a) => {
            out.push(VALUE_ATOM);
            put_atom(out, a);
        }
        Value::Set(s) => {
            out.push(VALUE_SET);
            put_varint(out, s.len() as u64);
            for child in s.iter() {
                put_str(out, child.name());
            }
        }
    }
}

/// Decode one object, re-interning its names.
pub fn get_object(r: &mut Reader<'_>) -> Result<Object, CodecError> {
    let oid = Oid::new(r.str()?);
    let label = Label::new(r.str()?);
    let value = match r.byte()? {
        VALUE_ATOM => Value::Atom(get_atom(r)?),
        VALUE_SET => {
            let n = r.varint()? as usize;
            let mut oids = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                oids.push(Oid::new(r.str()?));
            }
            Value::set_of(oids)
        }
        t => return err(format!("unknown value tag {t}")),
    };
    Ok(Object { oid, label, value })
}

/// Encode one slab page: slot count, then each slot as free or live.
/// Free slots are written explicitly so the decoded page reproduces
/// the original slot layout byte-for-byte.
pub fn encode_page(slots: &[Option<Object>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + slots.len() * 8);
    put_varint(&mut out, slots.len() as u64);
    for slot in slots {
        match slot {
            None => out.push(SLOT_FREE),
            Some(obj) => {
                out.push(SLOT_LIVE);
                put_object(&mut out, obj);
            }
        }
    }
    out
}

/// Decode one slab page. Fails on trailing garbage — a chunk holds
/// exactly one page.
pub fn decode_page(bytes: &[u8]) -> Result<Vec<Option<Object>>, CodecError> {
    let mut r = Reader::new(bytes);
    let n = r.varint()? as usize;
    if n > 1 << 20 {
        return err(format!("implausible page slot count {n}"));
    }
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        match r.byte()? {
            SLOT_FREE => slots.push(None),
            SLOT_LIVE => slots.push(Some(get_object(&mut r)?)),
            t => return err(format!("unknown slot tag {t}")),
        }
    }
    if r.remaining() != 0 {
        return err("trailing bytes after page");
    }
    Ok(slots)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(obj: Object) {
        let mut buf = Vec::new();
        put_object(&mut buf, &obj);
        let back = get_object(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn objects_roundtrip() {
        roundtrip(Object::atom("A", "age", 45i64));
        roundtrip(Object::atom("B", "pi", 3.25f64));
        roundtrip(Object::atom("C", "name", Atom::str("alice")));
        roundtrip(Object::atom("D", "flag", Atom::Bool(true)));
        roundtrip(Object::atom("E", "salary", Atom::tagged("dollar", 100_000)));
        roundtrip(Object::atom("F", "neg", -7i64));
        roundtrip(Object::set(
            "S",
            "members",
            &[Oid::new("A"), Oid::new("B"), Oid::new("C")],
        ));
        roundtrip(Object::empty_set("T", "empty"));
    }

    #[test]
    fn pages_roundtrip_preserving_slot_layout() {
        let slots = vec![
            Some(Object::atom("A", "age", 1i64)),
            None,
            Some(Object::set("S", "s", &[Oid::new("A")])),
            None,
            None,
        ];
        let bytes = encode_page(&slots);
        assert_eq!(decode_page(&bytes).unwrap(), slots);
    }

    #[test]
    fn equal_pages_encode_identically() {
        let a = vec![Some(Object::atom("X", "n", 9i64)), None];
        let b = vec![Some(Object::atom("X", "n", 9i64)), None];
        assert_eq!(encode_page(&a), encode_page(&b));
    }

    #[test]
    fn set_membership_order_is_preserved() {
        let obj = Object::set("S", "s", &[Oid::new("z"), Oid::new("a"), Oid::new("m")]);
        let mut buf = Vec::new();
        put_object(&mut buf, &obj);
        let back = get_object(&mut Reader::new(&buf)).unwrap();
        let order: Vec<&str> = back.children().iter().map(|o| o.name()).collect();
        assert_eq!(order, vec!["z", "a", "m"]);
    }

    #[test]
    fn truncated_and_garbage_inputs_error() {
        let mut buf = Vec::new();
        put_object(&mut buf, &Object::atom("A", "age", 1i64));
        let page = encode_page(&[Some(Object::atom("A", "age", 1i64))]);
        for cut in 0..page.len() {
            assert!(decode_page(&page[..cut]).is_err(), "prefix {cut} accepted");
        }
        let mut trailing = page.clone();
        trailing.push(0);
        assert!(decode_page(&trailing).is_err());
        assert!(decode_page(&[9, 9, 9]).is_err());
    }

    #[test]
    fn varint_edge_values_roundtrip() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(Reader::new(&buf).varint().unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            put_zigzag(&mut buf, v);
            assert_eq!(Reader::new(&buf).zigzag().unwrap(), v);
        }
    }
}
