//! A sorted set of `u32` slot ids with inline small-size storage.
//!
//! The store's parent and label indexes hold one set per indexed key.
//! In OEM-style databases the vast majority of objects have a handful
//! of parents (often exactly one), so a heap `Vec` (3 words of header
//! plus an allocation) per entry wastes cache and allocator time. A
//! [`SmallSet`] keeps up to [`INLINE`] elements inline in the map entry
//! itself and only spills to a heap `Vec` beyond that.
//!
//! Elements are kept sorted, so membership is a binary search and
//! iteration yields ascending slot ids — which also makes slab-order
//! scans over index entries cache-friendly.

/// Number of elements stored inline before spilling to the heap.
pub const INLINE: usize = 6;

#[derive(Clone, Debug)]
enum Repr {
    Inline { len: u8, buf: [u32; INLINE] },
    Heap(Vec<u32>),
}

/// A sorted set of `u32` ids, inline up to [`INLINE`] elements.
#[derive(Clone, Debug)]
pub struct SmallSet {
    repr: Repr,
}

impl Default for SmallSet {
    fn default() -> Self {
        SmallSet::new()
    }
}

impl SmallSet {
    /// An empty set.
    pub const fn new() -> Self {
        SmallSet {
            repr: Repr::Inline {
                len: 0,
                buf: [0; INLINE],
            },
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The elements as a sorted slice.
    pub fn as_slice(&self) -> &[u32] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Membership test (binary search).
    pub fn contains(&self, x: u32) -> bool {
        self.as_slice().binary_search(&x).is_ok()
    }

    /// Insert, keeping sort order. Returns true if newly inserted.
    pub fn insert(&mut self, x: u32) -> bool {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                let n = *len as usize;
                let Err(pos) = buf[..n].binary_search(&x) else {
                    return false;
                };
                if n < INLINE {
                    buf.copy_within(pos..n, pos + 1);
                    buf[pos] = x;
                    *len += 1;
                } else {
                    // Spill: move the inline elements to the heap.
                    let mut v = Vec::with_capacity(INLINE * 2);
                    v.extend_from_slice(&buf[..n]);
                    v.insert(pos, x);
                    self.repr = Repr::Heap(v);
                }
                true
            }
            Repr::Heap(v) => {
                let Err(pos) = v.binary_search(&x) else {
                    return false;
                };
                v.insert(pos, x);
                true
            }
        }
    }

    /// Remove. Returns true if the element was present.
    pub fn remove(&mut self, x: u32) -> bool {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                let n = *len as usize;
                let Ok(pos) = buf[..n].binary_search(&x) else {
                    return false;
                };
                buf.copy_within(pos + 1..n, pos);
                *len -= 1;
                true
            }
            Repr::Heap(v) => {
                let Ok(pos) = v.binary_search(&x) else {
                    return false;
                };
                v.remove(pos);
                true
            }
        }
    }

    /// Iterate elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.as_slice().iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_inline() {
        let mut s = SmallSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert_eq!(s.as_slice(), &[1, 3, 5]);
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.as_slice(), &[1, 5]);
    }

    #[test]
    fn spills_to_heap_and_stays_sorted() {
        let mut s = SmallSet::new();
        for x in [9, 2, 7, 4, 11, 0, 5, 8, 1] {
            assert!(s.insert(x));
        }
        assert_eq!(s.len(), 9);
        assert_eq!(s.as_slice(), &[0, 1, 2, 4, 5, 7, 8, 9, 11]);
        assert!(s.contains(11));
        assert!(s.remove(0));
        assert!(s.remove(11));
        assert_eq!(s.as_slice(), &[1, 2, 4, 5, 7, 8, 9]);
    }

    #[test]
    fn spill_at_exact_boundary() {
        let mut s = SmallSet::new();
        for x in 0..INLINE as u32 {
            assert!(s.insert(x));
        }
        // The next insert crosses the inline capacity.
        assert!(s.insert(100));
        assert!(s.insert(50));
        assert_eq!(s.len(), INLINE + 2);
        assert!(s.contains(50) && s.contains(100) && s.contains(0));
    }

    #[test]
    fn duplicate_insert_at_boundary_does_not_spill() {
        let mut s = SmallSet::new();
        for x in 0..INLINE as u32 {
            s.insert(x);
        }
        assert!(!s.insert(0));
        assert_eq!(s.len(), INLINE);
    }
}
