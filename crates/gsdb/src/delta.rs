//! Batched deltas: collecting a run of applied updates and
//! consolidating them into a net effect before view maintenance.
//!
//! Algorithm 1 is triggered once per update. When updates arrive in
//! bursts — a warehouse integrator draining several monitor reports, a
//! bulk load, a long transaction — much of that per-update work is
//! wasted: an edge inserted and deleted within the same burst has no
//! net effect, and an atom modified five times only needs its first
//! old and last new value to decide membership. A [`DeltaBatch`]
//! collects the burst and [`DeltaBatch::consolidate`] reduces it:
//!
//! * an insert and a delete of the same edge cancel (and vice versa);
//! * repeated modifies of one OID fold into a single
//!   `modify(oid, first_old, last_new)`, dropped entirely when the
//!   value returns to where it started;
//! * a create followed by a remove of the same object record cancels
//!   (the record existed neither before nor after); a remove followed
//!   by a re-create survives as both, because the record was
//!   *replaced*, not preserved;
//! * the *touched set* (directly affected source objects, paper §5.1)
//!   is deduplicated.
//!
//! The consolidated delta is what `gsview-core`'s batched maintainer
//! (`MaintPlan::apply_batch`) runs Algorithm 1's location test
//! against — once per surviving delta instead of once per raw update.

use crate::update::AppliedUpdate;
use crate::value::Atom;
use crate::Oid;
use std::collections::HashMap;

/// An ordered collection of applied updates awaiting maintenance.
#[derive(Clone, Debug, Default)]
pub struct DeltaBatch {
    ops: Vec<AppliedUpdate>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// A batch holding the given updates, in order.
    pub fn from_ops(ops: Vec<AppliedUpdate>) -> Self {
        DeltaBatch { ops }
    }

    /// Append one applied update.
    pub fn push(&mut self, op: AppliedUpdate) {
        self.ops.push(op);
    }

    /// Append a run of applied updates.
    pub fn extend(&mut self, ops: impl IntoIterator<Item = AppliedUpdate>) {
        self.ops.extend(ops);
    }

    /// Number of raw (unconsolidated) updates.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff no updates were collected.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The raw updates, in arrival order.
    pub fn ops(&self) -> &[AppliedUpdate] {
        &self.ops
    }

    /// Drain the batch, leaving it empty.
    pub fn drain(&mut self) -> Vec<AppliedUpdate> {
        std::mem::take(&mut self.ops)
    }

    /// Reduce the batch to its net effect. Surviving deltas keep the
    /// arrival order of their first occurrence.
    pub fn consolidate(&self) -> ConsolidatedDelta {
        // Net edge count per (parent, child): +1 per insert, -1 per
        // delete. A valid update sequence keeps this in {-1, 0, +1}.
        let mut edge_net: HashMap<(Oid, Oid), (i64, usize)> = HashMap::new();
        // Per modified OID: value before the batch, value after it.
        let mut mods: HashMap<Oid, (Atom, Atom, usize)> = HashMap::new();
        // Net record count per OID: +1 per create, -1 per remove. The
        // bool remembers whether the *first* record op was a remove:
        // remove-then-create nets to zero record churn but is a
        // *replacement* (the re-created object starts from a fresh
        // value), not a no-op, and must survive consolidation as a
        // remove plus a create.
        let mut record_net: HashMap<Oid, (i64, usize, bool)> = HashMap::new();

        for (i, op) in self.ops.iter().enumerate() {
            match op {
                AppliedUpdate::Insert { parent, child } => {
                    edge_net.entry((*parent, *child)).or_insert((0, i)).0 += 1;
                }
                AppliedUpdate::Delete { parent, child } => {
                    edge_net.entry((*parent, *child)).or_insert((0, i)).0 -= 1;
                }
                AppliedUpdate::Modify { oid, old, new } => {
                    mods.entry(*oid)
                        .and_modify(|(_, last_new, _)| *last_new = new.clone())
                        .or_insert((old.clone(), new.clone(), i));
                }
                AppliedUpdate::Create { oid } => {
                    record_net.entry(*oid).or_insert((0, i, false)).0 += 1;
                }
                AppliedUpdate::Remove { oid } => {
                    record_net.entry(*oid).or_insert((0, i, true)).0 -= 1;
                }
            }
        }

        let mut edges: Vec<(usize, EdgeDelta)> = edge_net
            .into_iter()
            .filter(|&(_, (net, _))| net != 0)
            .map(|((parent, child), (net, i))| {
                let op = if net > 0 { EdgeOp::Insert } else { EdgeOp::Delete };
                (i, EdgeDelta { parent, child, op })
            })
            .collect();
        edges.sort_by_key(|&(i, _)| i);

        let mut modifies: Vec<(usize, ModifyDelta)> = mods
            .into_iter()
            .filter(|(_, (old, new, _))| old != new)
            .map(|(oid, (old, new, i))| (i, ModifyDelta { oid, old, new }))
            .collect();
        modifies.sort_by_key(|&(i, _)| i);

        let mut created: Vec<(usize, Oid)> = Vec::new();
        let mut removed: Vec<(usize, Oid)> = Vec::new();
        for (oid, (net, i, first_was_remove)) in record_net {
            if net > 0 {
                created.push((i, oid));
            } else if net < 0 {
                removed.push((i, oid));
            } else if first_was_remove {
                // Remove-then-create: the record existed before and
                // after, but it was replaced — downstream maintenance
                // must retract the old record's contributions and
                // rebuild from the final store.
                removed.push((i, oid));
                created.push((i, oid));
            }
        }
        created.sort_by_key(|&(i, _)| i);
        removed.sort_by_key(|&(i, _)| i);

        let edges: Vec<EdgeDelta> = edges.into_iter().map(|(_, e)| e).collect();
        let modifies: Vec<ModifyDelta> = modifies.into_iter().map(|(_, m)| m).collect();
        let created: Vec<Oid> = created.into_iter().map(|(_, o)| o).collect();
        let removed: Vec<Oid> = removed.into_iter().map(|(_, o)| o).collect();

        // Deduplicated touched set of the *surviving* deltas, in
        // first-occurrence order.
        let mut touched: Vec<Oid> = Vec::new();
        let mut seen: std::collections::HashSet<Oid> = std::collections::HashSet::new();
        let touch = |o: Oid, touched: &mut Vec<Oid>, seen: &mut std::collections::HashSet<Oid>| {
            if seen.insert(o) {
                touched.push(o);
            }
        };
        for e in &edges {
            touch(e.parent, &mut touched, &mut seen);
            touch(e.child, &mut touched, &mut seen);
        }
        for m in &modifies {
            touch(m.oid, &mut touched, &mut seen);
        }
        for &o in created.iter().chain(removed.iter()) {
            touch(o, &mut touched, &mut seen);
        }

        let output_ops = edges.len() + modifies.len() + created.len() + removed.len();
        ConsolidatedDelta {
            edges,
            modifies,
            created,
            removed,
            touched,
            input_ops: self.ops.len(),
            cancelled_ops: self.ops.len() - output_ops,
        }
    }
}

/// Direction of a net edge change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeOp {
    /// The edge exists after the batch and did not before.
    Insert,
    /// The edge existed before the batch and does not after.
    Delete,
}

/// One net edge change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeDelta {
    /// The set object whose value changed.
    pub parent: Oid,
    /// The child OID added or removed.
    pub child: Oid,
    /// Which way the edge went, net.
    pub op: EdgeOp,
}

/// One net atomic-value change: `modify(oid, old, new)` with `old` the
/// value before the batch and `new` the value after it (`old != new`).
#[derive(Clone, Debug, PartialEq)]
pub struct ModifyDelta {
    /// The atomic object.
    pub oid: Oid,
    /// Value before the batch.
    pub old: Atom,
    /// Value after the batch.
    pub new: Atom,
}

/// The net effect of a [`DeltaBatch`].
#[derive(Clone, Debug, Default)]
pub struct ConsolidatedDelta {
    /// Net edge changes, in first-occurrence order.
    pub edges: Vec<EdgeDelta>,
    /// Net atomic-value changes, in first-occurrence order.
    pub modifies: Vec<ModifyDelta>,
    /// Object records that exist after the batch and did not before.
    pub created: Vec<Oid>,
    /// Object records removed, net, by the batch.
    pub removed: Vec<Oid>,
    /// Deduplicated directly-affected source objects of the surviving
    /// deltas (paper §5.1), in first-occurrence order.
    pub touched: Vec<Oid>,
    /// Raw updates that went in.
    pub input_ops: usize,
    /// Updates eliminated by consolidation.
    pub cancelled_ops: usize,
}

impl ConsolidatedDelta {
    /// Number of surviving deltas.
    pub fn len(&self) -> usize {
        self.edges.len() + self.modifies.len() + self.created.len() + self.removed.len()
    }

    /// True iff the batch had no net effect.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Object;

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    #[test]
    fn insert_then_delete_cancels() {
        let mut b = DeltaBatch::new();
        b.push(AppliedUpdate::Insert { parent: oid("P"), child: oid("C") });
        b.push(AppliedUpdate::Delete { parent: oid("P"), child: oid("C") });
        let d = b.consolidate();
        assert!(d.is_empty());
        assert_eq!(d.input_ops, 2);
        assert_eq!(d.cancelled_ops, 2);
        assert!(d.touched.is_empty());
    }

    #[test]
    fn delete_then_reinsert_cancels() {
        let mut b = DeltaBatch::new();
        b.push(AppliedUpdate::Delete { parent: oid("P"), child: oid("C") });
        b.push(AppliedUpdate::Insert { parent: oid("P"), child: oid("C") });
        assert!(b.consolidate().is_empty());
    }

    #[test]
    fn insert_delete_insert_nets_to_one_insert() {
        let mut b = DeltaBatch::new();
        b.push(AppliedUpdate::Insert { parent: oid("P"), child: oid("C") });
        b.push(AppliedUpdate::Delete { parent: oid("P"), child: oid("C") });
        b.push(AppliedUpdate::Insert { parent: oid("P"), child: oid("C") });
        let d = b.consolidate();
        assert_eq!(
            d.edges,
            vec![EdgeDelta { parent: oid("P"), child: oid("C"), op: EdgeOp::Insert }]
        );
        assert_eq!(d.cancelled_ops, 2);
    }

    #[test]
    fn modifies_fold_to_first_old_last_new() {
        let mut b = DeltaBatch::new();
        b.push(AppliedUpdate::Modify { oid: oid("A"), old: Atom::Int(1), new: Atom::Int(2) });
        b.push(AppliedUpdate::Modify { oid: oid("A"), old: Atom::Int(2), new: Atom::Int(3) });
        b.push(AppliedUpdate::Modify { oid: oid("A"), old: Atom::Int(3), new: Atom::Int(7) });
        let d = b.consolidate();
        assert_eq!(
            d.modifies,
            vec![ModifyDelta { oid: oid("A"), old: Atom::Int(1), new: Atom::Int(7) }]
        );
        assert_eq!(d.touched, vec![oid("A")]);
    }

    #[test]
    fn modify_back_to_original_is_dropped() {
        let mut b = DeltaBatch::new();
        b.push(AppliedUpdate::Modify { oid: oid("A"), old: Atom::Int(1), new: Atom::Int(9) });
        b.push(AppliedUpdate::Modify { oid: oid("A"), old: Atom::Int(9), new: Atom::Int(1) });
        assert!(b.consolidate().is_empty());
    }

    #[test]
    fn create_then_remove_cancels() {
        let mut b = DeltaBatch::new();
        b.push(AppliedUpdate::Create { oid: oid("X") });
        b.push(AppliedUpdate::Remove { oid: oid("X") });
        let d = b.consolidate();
        assert!(d.is_empty());
        // A lone create survives.
        let mut b2 = DeltaBatch::new();
        b2.push(AppliedUpdate::Create { oid: oid("X") });
        assert_eq!(b2.consolidate().created, vec![oid("X")]);
    }

    #[test]
    fn remove_then_recreate_survives_as_replacement() {
        // The record exists before and after, but it was replaced —
        // the old record's contributions (children, atom value) are
        // gone, so both the remove and the create must survive.
        let mut b = DeltaBatch::new();
        b.push(AppliedUpdate::Remove { oid: oid("X") });
        b.push(AppliedUpdate::Create { oid: oid("X") });
        let d = b.consolidate();
        assert_eq!(d.removed, vec![oid("X")]);
        assert_eq!(d.created, vec![oid("X")]);
        assert_eq!(d.touched, vec![oid("X")]);
    }

    #[test]
    fn touched_set_is_deduplicated_in_order() {
        let mut b = DeltaBatch::new();
        b.push(AppliedUpdate::Insert { parent: oid("P"), child: oid("C1") });
        b.push(AppliedUpdate::Insert { parent: oid("P"), child: oid("C2") });
        b.push(AppliedUpdate::Modify { oid: oid("C1"), old: Atom::Int(0), new: Atom::Int(1) });
        let d = b.consolidate();
        assert_eq!(d.touched, vec![oid("P"), oid("C1"), oid("C2")]);
    }

    #[test]
    fn distinct_edges_do_not_interfere() {
        let mut b = DeltaBatch::new();
        b.push(AppliedUpdate::Insert { parent: oid("P"), child: oid("C1") });
        b.push(AppliedUpdate::Delete { parent: oid("P"), child: oid("C2") });
        let d = b.consolidate();
        assert_eq!(d.edges.len(), 2);
        assert_eq!(d.cancelled_ops, 0);
    }

    #[test]
    fn batch_replays_to_same_store_state() {
        // Applying the raw batch and applying only its consolidation to
        // a copy of the pre-batch store yield identical object graphs.
        let mut base = crate::Store::new();
        base.create(Object::set("P", "s", &[])).unwrap();
        base.create(Object::atom("A", "a", 1i64)).unwrap();
        base.create(Object::atom("B", "b", 2i64)).unwrap();
        let mut full = base.clone();
        let mut b = DeltaBatch::new();
        b.push(full.insert_edge(oid("P"), oid("A")).unwrap());
        b.push(full.insert_edge(oid("P"), oid("B")).unwrap());
        b.push(full.delete_edge(oid("P"), oid("A")).unwrap());
        b.push(full.modify_atom(oid("B"), 5i64).unwrap());
        b.push(full.modify_atom(oid("B"), 2i64).unwrap());
        let d = b.consolidate();
        let mut net = base.clone();
        for e in &d.edges {
            match e.op {
                EdgeOp::Insert => { net.insert_edge(e.parent, e.child).unwrap(); }
                EdgeOp::Delete => { net.delete_edge(e.parent, e.child).unwrap(); }
            }
        }
        for m in &d.modifies {
            net.modify_atom(m.oid, m.new.clone()).unwrap();
        }
        for o in ["P", "A", "B"] {
            assert_eq!(net.get(oid(o)), full.get(oid(o)), "object {o}");
        }
    }
}
