//! The example databases that appear in the paper's figures, built
//! exactly as printed, so tests, examples, and documentation can refer
//! to the same objects the paper does.

use crate::builder::{atom, set};
use crate::{database, Oid, Result, Store};

/// Example 2 / Figure 2: the `PERSON` database.
///
/// ```text
/// < ROOT, person, set, {P1,P2,P3,P4} >
///   < P1, professor, set, {N1, A1, S1, P3} >
///     < N1, name, string, 'John' >
///     < A1, age, integer, 45 >
///     < S1, salary, dollar, $100,000 >
///     < P3, student, set, {N3, A3, M3} >
///       < N3, name, string, 'John' >
///       < A3, age, integer, 20 >
///       < M3, major, string, 'education' >
///   < P2, professor, set, {N2, S2} >
///     < N2, name, string, 'Sally' >
///     < ADD2, address, string, 'Palo Alto' >
///   < P4, secretary, set, {N4, A4} >
///     < N4, name, string, 'Tom' >
///     < A4, age, integer, 40 >
/// ```
///
/// (As in the paper, `P3` is both a child of `ROOT` and of `P1`, and
/// `P2`'s children are `N2` and `ADD2`.) Returns the `ROOT` OID; the
/// `PERSON` database object is created with all objects as members.
pub fn person_db(store: &mut Store) -> Result<Oid> {
    let root = set("ROOT", "person")
        .child(
            set("P1", "professor")
                .child(atom("N1", "name", "John"))
                .child(atom("A1", "age", 45i64))
                .child(atom("S1", "salary", crate::Atom::tagged("dollar", 100_000)))
                .child(
                    set("P3", "student")
                        .child(atom("N3", "name", "John"))
                        .child(atom("A3", "age", 20i64))
                        .child(atom("M3", "major", "education")),
                ),
        )
        .child(
            set("P2", "professor")
                .child(atom("N2", "name", "Sally"))
                .child(atom("ADD2", "address", "Palo Alto")),
        )
        .child(
            set("P4", "secretary")
                .child(atom("N4", "name", "Tom"))
                .child(atom("A4", "age", 40i64)),
        )
        .build(store)?;
    // ROOT's value is {P1, P2, P3, P4} in the paper: P3 is also a
    // direct child of ROOT.
    store.insert_edge(root, Oid::new("P3"))?;
    // The PERSON database object groups all objects (paper §2).
    database::database_of_reachable(store, Oid::new("PERSON"), root)?;
    Ok(root)
}

/// Figure 1: the abstract GSDB with objects A–G.
///
/// Edges: A→B, A→E, B→C, B→D, E→F, E→G, and C is also pointed at by B
/// while the dotted-line "view" encloses {B, C}. All objects are set
/// objects with single-letter labels; returns the OID of `A`.
pub fn fig1_db(store: &mut Store) -> Result<Oid> {
    set("A", "a")
        .child(set("B", "b").child(set("C", "c")).child(set("D", "d")))
        .child(set("E", "e").child(set("F", "f")).child(set("G", "g")))
        .build(store)
}

/// Figure 5 / Example 7 (small instance): `REL` with relations `r` and
/// `s`, each holding tuples with `age` fields.
///
/// `r` has `n_r` tuples `Ti` with field `<Ai, age, 10 + i>`; `s` has
/// `n_s` tuples likewise. Returns the `REL` OID.
pub fn relations_db(store: &mut Store, n_r: usize, n_s: usize) -> Result<Oid> {
    let mut rel = set("REL", "relations");
    let mut r = set("R", "r");
    for i in 0..n_r {
        r = r.child(
            set(&format!("T{i}"), "tuple").child(atom(&format!("A{i}"), "age", (10 + i) as i64)),
        );
    }
    let mut s_node = set("S", "s");
    for i in 0..n_s {
        s_node = s_node.child(
            set(&format!("U{i}"), "tuple").child(atom(&format!("B{i}"), "age", (10 + i) as i64)),
        );
    }
    rel = rel.child(r).child(s_node);
    rel.build(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{graph, path, Atom, Path};

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    #[test]
    fn person_db_matches_example_2() {
        let mut s = Store::new();
        let root = person_db(&mut s).unwrap();
        assert_eq!(root, oid("ROOT"));
        // ROOT has four children: P1, P2, P3, P4.
        let root_children = s.get(root).unwrap().children().to_vec();
        assert_eq!(root_children.len(), 4);
        for c in ["P1", "P2", "P3", "P4"] {
            assert!(root_children.contains(&oid(c)), "{c} missing from ROOT");
        }
        // P1 = {N1, A1, S1, P3}.
        assert_eq!(s.get(oid("P1")).unwrap().children().len(), 4);
        // label(P2) = professor, value(P2) = {N2, ADD2} (paper §2 text).
        assert_eq!(s.label(oid("P2")).unwrap().as_str(), "professor");
        assert_eq!(s.get(oid("P2")).unwrap().children().len(), 2);
        // Atomic values as printed.
        assert_eq!(s.atom(oid("A1")), Some(&Atom::Int(45)));
        assert_eq!(s.atom(oid("N3")), Some(&Atom::str("John")));
        assert_eq!(s.atom(oid("S1")), Some(&Atom::tagged("dollar", 100_000)));
        // A1 ∈ ROOT.professor.age (paper §2).
        assert!(path::reach(&s, root, &Path::parse("professor.age")).contains(&oid("A1")));
        // P3 reachable both directly and through P1 ⇒ the database is a
        // DAG, not a tree.
        assert_eq!(graph::classify(&s, root), graph::Shape::Dag);
        // PERSON contains all 15 objects incl. ROOT (paper lists 15).
        let members = database::members(&s, oid("PERSON")).unwrap();
        assert_eq!(members.len(), 15);
    }

    #[test]
    fn fig1_db_shape() {
        let mut s = Store::new();
        let a = fig1_db(&mut s).unwrap();
        assert_eq!(s.len(), 7);
        assert_eq!(graph::classify(&s, a), graph::Shape::Tree);
        assert_eq!(graph::depth(&s, a), Some(2));
    }

    #[test]
    fn relations_db_shape() {
        let mut s = Store::new();
        let rel = relations_db(&mut s, 5, 3).unwrap();
        // REL + R + S + 5 tuples + 5 fields + 3 tuples + 3 fields = 19.
        assert_eq!(s.len(), 19);
        let tuples = path::reach(&s, rel, &Path::parse("r.tuple"));
        assert_eq!(tuples.len(), 5);
        let ages = path::reach(&s, rel, &Path::parse("s.tuple.age"));
        assert_eq!(ages.len(), 3);
        assert_eq!(graph::classify(&s, rel), graph::Shape::Tree);
    }
}
