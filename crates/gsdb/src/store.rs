//! The object store: owns all objects of one or more graph structured
//! databases and applies the basic updates of paper §4.1.
//!
//! The store is *conceptual-model faithful*: objects are
//! `<OID, label, type, value>` records, and every mutation flows through
//! [`Store::apply`] so that an update log can feed source monitors
//! (paper §5) and maintenance algorithms (paper §4).
//!
//! ## Sharded arena layout
//!
//! Objects live in a slab of fixed-size **copy-on-write pages**
//! addressed by a `u32` **slot id**. The slab is partitioned into
//! `N` **shards** (`N` a power of two, selected by
//! [`StoreConfig::shards`]); each shard owns its own page vector, free
//! list, `Oid → slot` map, and parent/label index maps. Slot ids
//! interleave the shard in the low bits — `shard = slot & (N-1)`,
//! `local = slot >> log2(N)` — so [`Store::slot_bound`] stays
//! proportional to the largest shard rather than exploding per shard,
//! and `N = 1` degenerates to exactly the un-sharded layout.
//!
//! An OID's home shard is a pure function of the OID
//! ([`Store::shard_of`]); the `Oid → slot` map, the object record, and
//! its label-index entry all live in that shard. A **parent-index
//! entry for child `c` lives in `shard_of(c)`** (its values — parent
//! slots — may point into any shard), so [`Store::parents`] stays a
//! single-map lookup while [`Store::with_label`] concatenates one
//! sorted slice per shard. The payoff of this ownership discipline is
//! that every basic update touches a small, statically computable set
//! of shards — the basis of the concurrent multi-writer commit
//! pipeline in [`ShardedStore`](crate::ShardedStore), which gives each
//! shard its own mutation lock.
//!
//! Within a shard, removed slots go on a free list and are reused by
//! later creates — object identity is the OID, so slot reuse never
//! changes what callers observe, and GC / snapshot-restore round-trips
//! keep `Oid → value` mappings stable.
//!
//! ## Copy-on-write cloning and epoch forks
//!
//! Pages and the per-shard lookup maps sit behind `Arc`s, so
//! [`Store::clone`] and [`Store::fork`] are cheap: they bump reference
//! counts instead of deep-copying objects. The first mutation of a
//! page (or a structural mutation of a map) after a clone pays the
//! copy via `Arc::make_mut`, privately — the other side keeps
//! observing the state it captured. This is what lets a source publish
//! an immutable post-commit snapshot of itself into an
//! [`EpochHandle`](crate::EpochHandle) on **every** committed update
//! without O(n) copying: readers traverse the published fork while
//! writers keep mutating the live store. Every successful
//! [`Store::apply`] also bumps a monotonically increasing
//! [`version`](Store::version), so commit protocols can skip
//! republishing untouched state.
//!
//! Two optional indexes accelerate the functions Algorithm 1 relies on:
//!
//! * the **parent index** — the paper's "inverse index such that from
//!   each node we can find out its parent" (§4.4), which makes
//!   `ancestor(N, p)` a cheap upward walk instead of a traversal from
//!   the root;
//! * the **label index** — label → objects, used by query planning.
//!
//! Both indexes store **slot ids** in sorted inline small-sets
//! ([`SmallSet`]), keyed by child OID (so replica stores may hold
//! dangling child references) and by label respectively.
//!
//! Object reads can increment an access counter, giving experiments a
//! machine-independent measure of "access to base data" — the cost the
//! paper's §4.4 discussion is about. Counting is off by default
//! (production reads skip even the counter bump); experiment harnesses
//! opt in with [`StoreConfig::count_accesses`].

use crate::fxhash::FastMap;
use crate::smallset::SmallSet;
use crate::{
    AppliedUpdate, Atom, GsdbError, Label, Object, Oid, Result, Update, Value,
};
use gsview_obs::Counter;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Slots per copy-on-write page (power of two: slot addressing is a
/// shift and a mask). 256 objects bounds the clone cost a writer pays
/// on the first touch of a shared page after an epoch fork.
const PAGE_SHIFT: u32 = 8;
/// Page capacity, in slots.
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
/// Mask extracting the within-page offset from a local slot id.
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// Maximum shard count a store will partition into (power of two).
/// Sixteen shards keeps the `SlotSet` slice array `Copy`-cheap and is
/// far beyond the writer parallelism a single source sees.
pub const MAX_SHARDS: usize = 16;

/// One copy-on-write slab page, always `PAGE_SIZE` entries long.
type Page = Vec<Option<Object>>;

/// The home shard of an OID at a given shard shift (`log2(shards)`).
/// A pure function of the OID so every store (and every commit
/// pipeline) at the same shard count agrees on placement.
#[inline]
pub(crate) fn shard_for(oid: Oid, shift: u32) -> usize {
    if shift == 0 {
        return 0;
    }
    // Fibonacci multiplicative hash of the interned symbol; the high
    // bits are well mixed even for the sequential ids interning hands
    // out.
    let h = oid.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) & ((1usize << shift) - 1)
}

/// One shard of the slab: a page vector plus every map whose entries
/// this shard owns. All slot values held in maps are **global** slot
/// ids (shard interleaved in the low bits) so they resolve against the
/// whole store; the pages are addressed by **local** ids
/// (`global >> shift`).
#[derive(Clone, Debug, Default)]
pub(crate) struct ShardState {
    /// The shard's copy-on-write pages. `None` entries are free slots
    /// awaiting reuse (or the unallocated tail of the last page).
    pub(crate) pages: Vec<Arc<Page>>,
    /// Local slots handed out so far (high-water mark, free included).
    pub(crate) len_slots: usize,
    /// OID → global slot, for OIDs homed in this shard.
    pub(crate) slot_of: Arc<FastMap<Oid, u32>>,
    /// Free global slots of this shard, reused LIFO by `Create`.
    pub(crate) free: Vec<u32>,
    /// child OID (homed here) → sorted global parent slots (any
    /// shard). Keyed by OID (not slot) so replica stores may index
    /// edges to children they don't hold.
    pub(crate) parent_index: Option<Arc<FastMap<Oid, SmallSet>>>,
    /// label → sorted global member slots (members homed here).
    pub(crate) label_index: Option<Arc<FastMap<Label, SmallSet>>>,
}

impl ShardState {
    /// Fresh shard with the given index options enabled.
    fn with_indexes(parent: bool, label: bool) -> Self {
        ShardState {
            parent_index: parent.then(|| Arc::new(FastMap::default())),
            label_index: label.then(|| Arc::new(FastMap::default())),
            ..ShardState::default()
        }
    }

    /// Shared read access to the slot behind local id `local`.
    #[inline]
    pub(crate) fn obj(&self, local: u32) -> Option<&Object> {
        self.pages
            .get((local >> PAGE_SHIFT) as usize)
            .and_then(|p| p[(local & PAGE_MASK) as usize].as_ref())
    }

    /// Exclusive access to the slot behind local id `local`, copying
    /// the page first if it is shared with a published epoch fork.
    /// Panics on out-of-range slots — mutation paths only address
    /// allocated slots.
    #[inline]
    fn obj_mut(&mut self, local: u32) -> &mut Option<Object> {
        &mut Arc::make_mut(&mut self.pages[(local >> PAGE_SHIFT) as usize])
            [(local & PAGE_MASK) as usize]
    }

    /// Live objects in this shard.
    fn iter(&self) -> impl Iterator<Item = &Object> {
        self.pages.iter().flat_map(|p| p.iter()).filter_map(|s| s.as_ref())
    }
}

/// Uniform mutable access to a set of shards — implemented by
/// [`Store`] (all shards owned, exclusively borrowed) and by the
/// commit pipeline's locked-guard view (only the shards a batch
/// affects are locked; touching an unlocked one is a bug in the
/// affected-shard computation and panics). [`apply_update`] is written
/// against this trait so both paths share one mutation core.
pub(crate) trait ShardAccess {
    /// `log2(shard count)`.
    fn shift(&self) -> u32;
    /// Read access to shard `i`.
    fn state(&self, i: usize) -> &ShardState;
    /// Write access to shard `i`.
    fn state_mut(&mut self, i: usize) -> &mut ShardState;

    /// Home shard of `oid`.
    #[inline]
    fn home(&self, oid: Oid) -> usize {
        shard_for(oid, self.shift())
    }
}

/// The shared mutation core: apply one basic update against any
/// [`ShardAccess`] view, maintaining object records and both indexes
/// under the sharded ownership discipline (see the module docs). Does
/// **not** touch the update log, version counter, or sorted-OID cache —
/// those are store-level concerns the callers own.
pub(crate) fn apply_update<V: ShardAccess>(view: &mut V, update: Update) -> Result<AppliedUpdate> {
    match update {
        Update::Insert { parent, child } => {
            let cs = view.home(child);
            if !view.state(cs).slot_of.contains_key(&child) {
                return Err(GsdbError::NoSuchObject(child));
            }
            let ps = view.home(parent);
            let pslot = *view
                .state(ps)
                .slot_of
                .get(&parent)
                .ok_or(GsdbError::NoSuchObject(parent))?;
            let shift = view.shift();
            {
                let st = view.state_mut(ps);
                let pobj = st.obj_mut(pslot >> shift).as_mut().unwrap();
                let set = pobj.value.as_set_mut().ok_or(GsdbError::NotASet(parent))?;
                if !set.insert(child) {
                    // A duplicate insert is a no-op on the set, but if
                    // accepted it would be logged as applied — and
                    // delta consolidation nets edge counts from the
                    // log, so a later delete would be cancelled (or
                    // double-counted) against an edge that was only
                    // ever stored once. Reject it like a delete of an
                    // absent edge.
                    return Err(GsdbError::AlreadyAChild { parent, child });
                }
            }
            let st = view.state_mut(cs);
            if let Some(idx) = st.parent_index.as_mut() {
                Arc::make_mut(idx).entry(child).or_default().insert(pslot);
            }
            Ok(AppliedUpdate::Insert { parent, child })
        }
        Update::Delete { parent, child } => {
            let ps = view.home(parent);
            let pslot = *view
                .state(ps)
                .slot_of
                .get(&parent)
                .ok_or(GsdbError::NoSuchObject(parent))?;
            let shift = view.shift();
            {
                let st = view.state_mut(ps);
                let pobj = st.obj_mut(pslot >> shift).as_mut().unwrap();
                let set = pobj.value.as_set_mut().ok_or(GsdbError::NotASet(parent))?;
                if !set.remove(child) {
                    return Err(GsdbError::NotAChild { parent, child });
                }
            }
            let cs = view.home(child);
            let st = view.state_mut(cs);
            if let Some(idx) = st.parent_index.as_mut() {
                if let Some(ps) = Arc::make_mut(idx).get_mut(&child) {
                    ps.remove(pslot);
                }
            }
            Ok(AppliedUpdate::Delete { parent, child })
        }
        Update::Modify { oid, new } => {
            let s = view.home(oid);
            let slot = *view
                .state(s)
                .slot_of
                .get(&oid)
                .ok_or(GsdbError::NoSuchObject(oid))?;
            let shift = view.shift();
            let obj = view.state_mut(s).obj_mut(slot >> shift).as_mut().unwrap();
            let old = match &mut obj.value {
                Value::Atom(a) => std::mem::replace(a, new.clone()),
                Value::Set(_) => return Err(GsdbError::NotAtomic(oid)),
            };
            Ok(AppliedUpdate::Modify { oid, old, new })
        }
        Update::Create { object } => {
            let oid = object.oid;
            let s = view.home(oid);
            if view.state(s).slot_of.contains_key(&oid) {
                return Err(GsdbError::DuplicateOid(oid));
            }
            let shift = view.shift();
            let slot = {
                let st = view.state_mut(s);
                // Reuse a freed slot if one exists; identity is the
                // OID, so reuse is invisible to callers.
                match st.free.pop() {
                    Some(g) => g,
                    None => {
                        let local = st.len_slots as u32;
                        if (local >> PAGE_SHIFT) as usize == st.pages.len() {
                            st.pages.push(Arc::new(vec![None; PAGE_SIZE]));
                        }
                        st.len_slots += 1;
                        (local << shift) | s as u32
                    }
                }
            };
            if view.state(s).label_index.is_some() {
                let st = view.state_mut(s);
                Arc::make_mut(st.label_index.as_mut().unwrap())
                    .entry(object.label)
                    .or_default()
                    .insert(slot);
            }
            if view.state(s).parent_index.is_some() {
                // A created object may arrive with children already in
                // its set value; index those edges, each in the
                // child's home shard.
                for i in 0..object.children().len() {
                    let c = object.children()[i];
                    let cs = view.home(c);
                    let st = view.state_mut(cs);
                    Arc::make_mut(st.parent_index.as_mut().unwrap())
                        .entry(c)
                        .or_default()
                        .insert(slot);
                }
            }
            let st = view.state_mut(s);
            *st.obj_mut(slot >> shift) = Some(object);
            Arc::make_mut(&mut st.slot_of).insert(oid, slot);
            Ok(AppliedUpdate::Create { oid })
        }
        Update::Remove { oid } => {
            let s = view.home(oid);
            if !view.state(s).slot_of.contains_key(&oid) {
                return Err(GsdbError::NoSuchObject(oid));
            }
            let shift = view.shift();
            let (slot, obj) = {
                let st = view.state_mut(s);
                let slot = Arc::make_mut(&mut st.slot_of).remove(&oid).unwrap();
                let obj = st.obj_mut(slot >> shift).take().unwrap();
                st.free.push(slot);
                if let Some(idx) = st.label_index.as_mut() {
                    if let Some(set) = Arc::make_mut(idx).get_mut(&obj.label) {
                        set.remove(slot);
                    }
                }
                (slot, obj)
            };
            if view.state(s).parent_index.is_some() {
                for i in 0..obj.children().len() {
                    let c = obj.children()[i];
                    let cs = view.home(c);
                    let st = view.state_mut(cs);
                    if let Some(set) =
                        Arc::make_mut(st.parent_index.as_mut().unwrap()).get_mut(&c)
                    {
                        set.remove(slot);
                    }
                }
                // The entry for `oid` *as a child* records edges
                // into it, and Remove leaves those dangling in the
                // parents' sets (replica semantics) — so the entry
                // must survive, or a later re-Create of the same
                // OID resurrects the edges with an empty index.
                // Drop it only when no parent references remain.
                let st = view.state_mut(s);
                let idx = Arc::make_mut(st.parent_index.as_mut().unwrap());
                if idx.get(&oid).is_some_and(|ps| ps.is_empty()) {
                    idx.remove(&oid);
                }
            }
            Ok(AppliedUpdate::Remove { oid })
        }
    }
}

/// Store configuration.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Maintain the inverse (child → parents) index (paper §4.4).
    pub parent_index: bool,
    /// Maintain the label → objects index.
    pub label_index: bool,
    /// Record applied updates in the update log.
    pub log_updates: bool,
    /// Count object reads (experiment instrumentation, paper §4.4).
    /// Off by default so production reads pay nothing.
    pub count_accesses: bool,
    /// Number of slab shards. Rounded up to a power of two and
    /// clamped to `[1, MAX_SHARDS]`. Shard count is observationally
    /// invisible to every read and mutation API — it only determines
    /// how much writer concurrency a
    /// [`ShardedStore`](crate::ShardedStore) built over this store can
    /// extract.
    pub shards: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            parent_index: true,
            label_index: true,
            log_updates: false,
            count_accesses: false,
            shards: 1,
        }
    }
}

impl StoreConfig {
    /// This configuration with access counting enabled.
    pub fn counting(mut self) -> Self {
        self.count_accesses = true;
        self
    }

    /// This configuration with the given shard count (rounded up to a
    /// power of two, clamped to `[1, MAX_SHARDS]`).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The effective (normalized) shard count.
    fn effective_shards(&self) -> usize {
        self.shards.clamp(1, MAX_SHARDS).next_power_of_two().min(MAX_SHARDS)
    }
}

/// A borrowed set of objects from a store index (parent or label
/// index). Holds up to one sorted slice of global slot ids per shard;
/// iteration and membership work in terms of [`Oid`]s, like the
/// `OidSet` the seed layout returned.
#[derive(Clone, Copy, Debug)]
pub struct SlotSet<'a> {
    store: &'a Store,
    slices: [&'a [u32]; MAX_SHARDS],
    n: usize,
}

impl<'a> SlotSet<'a> {
    /// A set backed by a single sorted slice (parent-index entries
    /// live wholly in one shard).
    fn single(store: &'a Store, slice: &'a [u32]) -> Self {
        let mut slices = [&[][..]; MAX_SHARDS];
        slices[0] = slice;
        SlotSet { store, slices, n: 1 }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.slices[..self.n].iter().map(|s| s.len()).sum()
    }

    /// True iff no members.
    pub fn is_empty(&self) -> bool {
        self.slices[..self.n].iter().all(|s| s.is_empty())
    }

    /// Membership test (binary search over each shard's sorted slice).
    pub fn contains(&self, oid: Oid) -> bool {
        match self.store.slot_of(oid) {
            Some(slot) => self.slices[..self.n]
                .iter()
                .any(|s| s.binary_search(&slot).is_ok()),
            None => false,
        }
    }

    /// Iterate members as OIDs (ascending slot order within each
    /// shard's slice; slices concatenate in shard order).
    pub fn iter(&self) -> impl Iterator<Item = Oid> + 'a {
        let store = self.store;
        let slices = self.slices;
        let n = self.n;
        (0..n).flat_map(move |i| {
            slices[i].iter().map(move |&s| {
                store
                    .slot_obj(s)
                    .expect("index references live slot")
                    .oid
            })
        })
    }
}

/// A read-only image of one slab shard: its copy-on-write pages plus
/// the slot high-water mark — everything the durability layer needs to
/// serialize the shard and everything [`Store::from_images`] needs to
/// rebuild it (lookup maps, free lists, and indexes are derived from
/// the pages). Pages are shared with the exporting store, so taking an
/// image costs reference-count bumps, not object copies.
#[derive(Clone, Debug)]
pub struct ShardImage {
    /// Local slots handed out so far (free slots included). Slots at
    /// or past this mark are the unallocated tail of the last page.
    pub len_slots: usize,
    /// The shard's pages, each exactly [`Store::page_slots`] entries;
    /// `None` entries are free slots.
    pub pages: Vec<Arc<Vec<Option<Object>>>>,
}

/// An in-memory GSDB object store.
#[derive(Debug)]
pub struct Store {
    /// The sharded slab; always a power-of-two length.
    shards: Vec<ShardState>,
    /// `log2(shards.len())` — slot ids are `local << shift | shard`.
    shift: u32,
    log: Vec<AppliedUpdate>,
    log_enabled: bool,
    /// Bumped on every successful mutation; lets commit protocols skip
    /// republishing an untouched store.
    version: u64,
    count_accesses: AtomicBool,
    /// Sharded (per-thread-bucket) so parallel maintenance threads
    /// counting reads on a shared snapshot don't bounce a cache line.
    accesses: Counter,
    /// Cached result of `oids_sorted`, invalidated on create/remove.
    /// `Arc` inside so clones and forks share the cached vector.
    sorted_cache: RwLock<Option<Arc<Vec<Oid>>>>,
}

impl Default for Store {
    fn default() -> Self {
        Store {
            shards: vec![ShardState::default()],
            shift: 0,
            log: Vec::new(),
            log_enabled: false,
            version: 0,
            count_accesses: AtomicBool::new(false),
            accesses: Counter::new("store.accesses"),
            sorted_cache: RwLock::new(None),
        }
    }
}

impl Clone for Store {
    /// A logically independent copy. Cheap: pages and index maps are
    /// shared copy-on-write, so the cost is reference-count bumps plus
    /// the free lists and update log; either side pays the copy lazily
    /// on its next mutation of a shared structure.
    ///
    /// The `sorted_cache` is carried over as-is: it depends only on
    /// the OID set, which is identical at clone time, and every
    /// OID-set mutation (`Create` / `Remove`) invalidates it — see
    /// `oids_sorted_survives_mutation_interleavings` in
    /// `tests/store_properties.rs` for the property pinning this.
    fn clone(&self) -> Self {
        Store {
            shards: self.shards.clone(),
            shift: self.shift,
            log: self.log.clone(),
            log_enabled: self.log_enabled,
            version: self.version,
            count_accesses: AtomicBool::new(self.count_accesses.load(Ordering::Relaxed)),
            accesses: {
                let c = Counter::new("store.accesses");
                c.add(self.accesses.get());
                c
            },
            sorted_cache: RwLock::new(self.sorted_cache.read().unwrap().clone()),
        }
    }
}

impl ShardAccess for Store {
    #[inline]
    fn shift(&self) -> u32 {
        self.shift
    }
    #[inline]
    fn state(&self, i: usize) -> &ShardState {
        &self.shards[i]
    }
    #[inline]
    fn state_mut(&mut self, i: usize) -> &mut ShardState {
        &mut self.shards[i]
    }
}

impl Store {
    /// A store with the default configuration (both indexes, no log,
    /// no access counting, one shard).
    pub fn new() -> Self {
        Self::with_config(StoreConfig::default())
    }

    /// A store with the default configuration plus access counting —
    /// the experiment-harness constructor.
    pub fn counting() -> Self {
        Self::with_config(StoreConfig::default().counting())
    }

    /// A store with explicit configuration.
    pub fn with_config(cfg: StoreConfig) -> Self {
        let n = cfg.effective_shards();
        Store {
            shards: (0..n)
                .map(|_| ShardState::with_indexes(cfg.parent_index, cfg.label_index))
                .collect(),
            shift: n.trailing_zeros(),
            log_enabled: cfg.log_updates,
            count_accesses: AtomicBool::new(cfg.count_accesses),
            ..Store::default()
        }
    }

    // ------------------------------------------------------------------
    // Shard topology
    // ------------------------------------------------------------------

    /// Number of slab shards (a power of two in `[1, MAX_SHARDS]`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The home shard of an OID: where its record, `Oid → slot` entry,
    /// label-index entry, and parent-index entry (as a child) live. A
    /// pure function of the OID and the shard count.
    pub fn shard_of(&self, oid: Oid) -> usize {
        shard_for(oid, self.shift)
    }

    /// Live objects per shard, in shard order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.slot_of.len()).collect()
    }

    /// A copy of this store re-partitioned into `shards` shards
    /// (rounded up to a power of two, clamped to `[1, MAX_SHARDS]`).
    /// Object state, dangling-edge index entries, and configuration
    /// carry over; the update log does not (resharding is a topology
    /// change, not a base update). The version counter carries over so
    /// commit protocols never mistake the reshard for "no change".
    pub fn reshard(&self, shards: usize) -> Store {
        let cfg = StoreConfig {
            parent_index: self.has_parent_index(),
            label_index: self.has_label_index(),
            log_updates: self.log_enabled,
            count_accesses: self.counts_accesses(),
            shards,
        };
        let mut out = Store::with_config(cfg);
        out.log_enabled = false;
        // Deterministic order so equal stores reshard identically.
        for oid in self.oids_sorted() {
            let obj = self
                .slot_obj(self.slot_of(oid).unwrap())
                .expect("sorted oid resolves")
                .clone();
            // Create indexes the object's children (present or
            // dangling), reproducing the parent index exactly.
            apply_update(&mut out, Update::Create { object: obj })
                .expect("reshard re-create cannot fail");
        }
        out.log_enabled = self.log_enabled;
        out.version = self.version;
        out
    }

    /// Pre-size the slab and maps for `additional` more objects.
    pub fn reserve(&mut self, additional: usize) {
        let per_shard = additional / self.shards.len() + 1;
        for st in &mut self.shards {
            st.pages
                .reserve(per_shard.saturating_sub(st.free.len()) / PAGE_SIZE + 1);
            Arc::make_mut(&mut st.slot_of).reserve(per_shard);
            if let Some(idx) = st.parent_index.as_mut() {
                Arc::make_mut(idx).reserve(per_shard);
            }
        }
    }

    /// A read-only snapshot fork of this store: the same objects and
    /// indexes, shared copy-on-write, with an **empty update log** and
    /// logging disabled. This is the image a source publishes into an
    /// [`EpochHandle`](crate::EpochHandle) at commit time — readers
    /// traverse the fork while the live store keeps mutating (and
    /// keeps accumulating its own log for the monitor). Cost:
    /// reference-count bumps per shard, independent of store size.
    pub fn fork(&self) -> Store {
        let mut fork = self.clone();
        fork.log = Vec::new();
        fork.log_enabled = false;
        fork
    }

    /// Monotonic mutation counter: bumped by every successful
    /// [`Store::apply`] and [`Store::insert_edge_unchecked`]. Equal
    /// versions ⇒ identical object state (within one store lineage),
    /// so commit protocols can skip republishing an untouched store.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.slot_of.len()).sum()
    }

    /// True iff no objects.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.slot_of.is_empty())
    }

    /// True iff an object with this OID exists.
    pub fn contains(&self, oid: Oid) -> bool {
        self.home_state(oid).slot_of.contains_key(&oid)
    }

    /// True iff the update log records applied updates.
    pub fn logs_updates(&self) -> bool {
        self.log_enabled
    }

    #[inline]
    fn home_state(&self, oid: Oid) -> &ShardState {
        &self.shards[shard_for(oid, self.shift)]
    }

    #[inline]
    fn bump(&self) {
        if self.count_accesses.load(Ordering::Relaxed) {
            self.accesses.incr();
        }
    }

    // ------------------------------------------------------------------
    // Slot addressing
    // ------------------------------------------------------------------

    /// The object behind a global slot id, resolving through the
    /// shard interleave. `None` for free / out-of-range slots.
    #[inline]
    fn slot_obj(&self, slot: u32) -> Option<&Object> {
        let mask = (self.shards.len() - 1) as u32;
        self.shards[(slot & mask) as usize].obj(slot >> self.shift)
    }

    /// Slot id of an OID, if the object exists. Does not count an
    /// access — pair with [`Store::object_at`] / [`Store::children_at`]
    /// which do.
    #[inline]
    pub fn slot_of(&self, oid: Oid) -> Option<u32> {
        self.home_state(oid).slot_of.get(&oid).copied()
    }

    /// The object in a slot (counts the access). `None` for free slots.
    #[inline]
    pub fn object_at(&self, slot: u32) -> Option<&Object> {
        self.bump();
        self.slot_obj(slot)
    }

    /// OID of the object in a slot. Does not count an access.
    #[inline]
    pub fn oid_at(&self, slot: u32) -> Option<Oid> {
        self.slot_obj(slot).map(|o| o.oid)
    }

    /// Children of the object in a slot (counts the access, like
    /// [`Store::children`]). Empty for atomic or free slots.
    #[inline]
    pub fn children_at(&self, slot: u32) -> &[Oid] {
        self.bump();
        self.slot_obj(slot).map(|o| o.children()).unwrap_or(&[])
    }

    /// Label of the object in a slot (counts the access, like
    /// [`Store::label`]).
    #[inline]
    pub fn label_at(&self, slot: u32) -> Option<Label> {
        self.bump();
        self.slot_obj(slot).map(|o| o.label)
    }

    /// Upper bound (exclusive) on slot ids currently in use; free slots
    /// below this bound exist. Sizes per-slot scratch tables. With
    /// multiple shards the bound covers the largest shard's local
    /// high-water mark across all interleaves.
    pub fn slot_bound(&self) -> usize {
        let max_local = self.shards.iter().map(|s| s.len_slots).max().unwrap_or(0);
        max_local << self.shift
    }

    // ------------------------------------------------------------------
    // OID-keyed reads
    // ------------------------------------------------------------------

    /// Look up an object, counting the access.
    pub fn get(&self, oid: Oid) -> Option<&Object> {
        self.bump();
        let st = self.home_state(oid);
        let slot = *st.slot_of.get(&oid)?;
        st.obj(slot >> self.shift)
    }

    /// Look up an object or fail.
    pub fn require(&self, oid: Oid) -> Result<&Object> {
        self.get(oid).ok_or(GsdbError::NoSuchObject(oid))
    }

    /// Label of an object, if it exists.
    pub fn label(&self, oid: Oid) -> Option<Label> {
        self.get(oid).map(|o| o.label)
    }

    /// Children of a set object (empty slice for atomic or missing).
    pub fn children(&self, oid: Oid) -> &[Oid] {
        self.bump();
        let st = self.home_state(oid);
        st.slot_of
            .get(&oid)
            .and_then(|&s| st.obj(s >> self.shift))
            .map(|o| o.children())
            .unwrap_or(&[])
    }

    /// Atomic value of an object, if atomic.
    pub fn atom(&self, oid: Oid) -> Option<&Atom> {
        self.get(oid).and_then(|o| o.atom_value())
    }

    /// Iterate all objects (shard-major slot order). Does not count
    /// accesses.
    pub fn iter(&self) -> impl Iterator<Item = &Object> {
        self.shards.iter().flat_map(|s| s.iter())
    }

    /// All OIDs, sorted by name (deterministic). Cached between calls;
    /// creates and removes invalidate the cache.
    pub fn oids_sorted(&self) -> Vec<Oid> {
        if let Some(v) = self.sorted_cache.read().unwrap().as_ref() {
            return v.as_ref().clone();
        }
        let mut v: Vec<Oid> = self
            .shards
            .iter()
            .flat_map(|s| s.slot_of.keys().copied())
            .collect();
        v.sort_by_key(|o| o.name());
        *self.sorted_cache.write().unwrap() = Some(Arc::new(v.clone()));
        v
    }

    fn invalidate_sorted(&mut self) {
        *self.sorted_cache.get_mut().unwrap() = None;
    }

    // ------------------------------------------------------------------
    // Access accounting
    // ------------------------------------------------------------------

    /// Number of object reads since construction / last reset. This is
    /// the "access to base data" cost the paper's §4.4 analysis uses.
    /// Always 0 unless [`StoreConfig::count_accesses`] was set.
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }

    /// Reset the access counter.
    pub fn reset_accesses(&self) {
        self.accesses.reset();
    }

    /// True iff reads are counted.
    pub fn counts_accesses(&self) -> bool {
        self.count_accesses.load(Ordering::Relaxed)
    }

    /// Turn access counting on or off after construction. Experiment
    /// harnesses use this to instrument stores they don't build
    /// themselves (e.g. a view's internal store).
    pub fn set_count_accesses(&self, on: bool) {
        self.count_accesses.store(on, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Indexes
    // ------------------------------------------------------------------

    /// True iff the inverse (parent) index is maintained.
    pub fn has_parent_index(&self) -> bool {
        self.shards[0].parent_index.is_some()
    }

    /// True iff the label index is maintained.
    pub fn has_label_index(&self) -> bool {
        self.shards[0].label_index.is_some()
    }

    /// Parents of an object, from the inverse index. `None` if the index
    /// is disabled (callers must then traverse — exactly the trade-off
    /// of paper §4.4). The entry lives wholly in the child's home
    /// shard, so this is a single-map lookup at any shard count.
    pub fn parents(&self, oid: Oid) -> Option<SlotSet<'_>> {
        self.bump();
        self.home_state(oid).parent_index.as_ref().map(|idx| {
            SlotSet::single(
                self,
                idx.get(&oid).map(|s| s.as_slice()).unwrap_or(&[]),
            )
        })
    }

    /// Objects with a given label, from the label index. `None` if the
    /// index is disabled. Members are concatenated per shard (each
    /// shard's slice sorted by slot).
    pub fn with_label(&self, label: Label) -> Option<SlotSet<'_>> {
        self.shards[0].label_index.as_ref()?;
        let mut slices = [&[][..]; MAX_SHARDS];
        for (i, st) in self.shards.iter().enumerate() {
            slices[i] = st
                .label_index
                .as_ref()
                .and_then(|idx| idx.get(&label))
                .map(|s| s.as_slice())
                .unwrap_or(&[]);
        }
        Some(SlotSet {
            store: self,
            slices,
            n: self.shards.len(),
        })
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Insert a fresh object record. Fails on duplicate OID.
    pub fn create(&mut self, object: Object) -> Result<()> {
        self.apply(Update::Create { object }).map(|_| ())
    }

    /// Create many objects at once (setup convenience).
    pub fn create_all(&mut self, objects: impl IntoIterator<Item = Object>) -> Result<()> {
        for o in objects {
            self.create(o)?;
        }
        Ok(())
    }

    /// `insert(parent, child)` — paper §4.1 update 1.
    pub fn insert_edge(&mut self, parent: Oid, child: Oid) -> Result<AppliedUpdate> {
        self.apply(Update::Insert { parent, child })
    }

    /// `delete(parent, child)` — paper §4.1 update 2.
    pub fn delete_edge(&mut self, parent: Oid, child: Oid) -> Result<AppliedUpdate> {
        self.apply(Update::Delete { parent, child })
    }

    /// Insert `child` into `parent`'s set without requiring `child` to
    /// exist in this store. Replica stores (e.g. a warehouse-side
    /// cache) hold copies of objects whose sets may reference children
    /// outside the replicated region; those references stay dangling,
    /// exactly as [`Store::create`] leaves them when a copied object
    /// arrives with unknown children. Not logged — this is replica
    /// bookkeeping, not a base update.
    pub fn insert_edge_unchecked(&mut self, parent: Oid, child: Oid) -> Result<()> {
        let ps = self.home(parent);
        let pslot = *self.shards[ps]
            .slot_of
            .get(&parent)
            .ok_or(GsdbError::NoSuchObject(parent))?;
        let shift = self.shift;
        {
            let st = &mut self.shards[ps];
            let pobj = st.obj_mut(pslot >> shift).as_mut().unwrap();
            let set = pobj.value.as_set_mut().ok_or(GsdbError::NotASet(parent))?;
            set.insert(child);
        }
        let cs = self.home(child);
        if let Some(idx) = self.shards[cs].parent_index.as_mut() {
            Arc::make_mut(idx).entry(child).or_default().insert(pslot);
        }
        self.version += 1;
        Ok(())
    }

    /// `modify(oid, oldv, newv)` — paper §4.1 update 3 (old value is
    /// captured from the store).
    pub fn modify_atom(&mut self, oid: Oid, new: impl Into<Atom>) -> Result<AppliedUpdate> {
        self.apply(Update::Modify {
            oid,
            new: new.into(),
        })
    }

    /// Apply a basic update, validating it and maintaining indexes and
    /// the update log. Returns the applied form (with old values).
    pub fn apply(&mut self, update: Update) -> Result<AppliedUpdate> {
        let applied = apply_update(self, update)?;
        if matches!(
            applied,
            AppliedUpdate::Create { .. } | AppliedUpdate::Remove { .. }
        ) {
            self.invalidate_sorted();
        }
        if self.log_enabled {
            self.log.push(applied.clone());
        }
        self.version += 1;
        gsview_obs::event!(
            "store.apply",
            "kind" = match &applied {
                AppliedUpdate::Insert { .. } => "insert",
                AppliedUpdate::Delete { .. } => "delete",
                AppliedUpdate::Modify { .. } => "modify",
                AppliedUpdate::Create { .. } => "create",
                AppliedUpdate::Remove { .. } => "remove",
            },
            "version" = self.version,
        );
        Ok(applied)
    }

    // ------------------------------------------------------------------
    // Update log
    // ------------------------------------------------------------------

    /// Drain the update log (the source monitor's feed, paper §5).
    pub fn drain_log(&mut self) -> Vec<AppliedUpdate> {
        std::mem::take(&mut self.log)
    }

    /// Peek the update log.
    pub fn log(&self) -> &[AppliedUpdate] {
        &self.log
    }

    // ------------------------------------------------------------------
    // Commit-pipeline plumbing (crate-internal)
    // ------------------------------------------------------------------

    /// Disassemble into per-shard states plus store-level metadata.
    /// Used by the commit pipeline's exclusive path; see
    /// [`ShardedStore`](crate::ShardedStore).
    pub(crate) fn into_parts(self) -> (Vec<ShardState>, u64, Vec<AppliedUpdate>) {
        let Store {
            shards,
            version,
            log,
            ..
        } = self;
        (shards, version, log)
    }

    /// Assemble a live store from per-shard states. The inverse of
    /// [`Store::into_parts`]; `shards.len()` must be a power of two.
    pub(crate) fn from_parts(
        shards: Vec<ShardState>,
        log_enabled: bool,
        version: u64,
        count_accesses: bool,
    ) -> Store {
        debug_assert!(shards.len().is_power_of_two());
        let shift = shards.len().trailing_zeros();
        Store {
            shards,
            shift,
            log_enabled,
            version,
            count_accesses: AtomicBool::new(count_accesses),
            ..Store::default()
        }
    }

    /// Seed the update log (exclusive-path check-out of pending
    /// entries so closures observe the same log a single-mutex store
    /// would have shown them).
    pub(crate) fn set_log(&mut self, entries: Vec<AppliedUpdate>) {
        self.log = entries;
    }

    /// Compose the next published snapshot: the previous snapshot's
    /// shard states with `replaced` swapped in (the shards a commit
    /// locked), at the commit's post-state version. Cost: one cheap
    /// clone of `prev` plus the swaps — untouched shards are shared
    /// copy-on-write with every earlier snapshot.
    pub(crate) fn compose_from(
        prev: &Store,
        replaced: impl IntoIterator<Item = (usize, ShardState)>,
        version: u64,
        oidset_changed: bool,
    ) -> Store {
        let mut s = prev.fork();
        for (i, st) in replaced {
            s.shards[i] = st;
        }
        s.version = version;
        if oidset_changed {
            s.invalidate_sorted();
        }
        s
    }

    // ------------------------------------------------------------------
    // Durable image export / import
    // ------------------------------------------------------------------

    /// Slots per copy-on-write page — the unit the durability layer
    /// serializes and content-addresses.
    pub fn page_slots() -> usize {
        PAGE_SIZE
    }

    /// Export the slab as per-shard page images, shared copy-on-write
    /// with this store (reference-count bumps, no object copies). The
    /// durability layer serializes each page independently; unchanged
    /// pages keep their `Arc` identity across epochs, which is what
    /// makes incremental persistence O(touched pages).
    pub fn export_images(&self) -> Vec<ShardImage> {
        self.shards
            .iter()
            .map(|s| ShardImage {
                len_slots: s.len_slots,
                pages: s.pages.clone(),
            })
            .collect()
    }

    /// Rebuild a store from exported (or decoded) page images,
    /// reconstructing the `Oid → slot` maps, free lists, and both
    /// indexes from the pages alone. The inverse of
    /// [`Store::export_images`]: slot layout is preserved exactly, so
    /// a recovered store re-exports to byte-identical pages —
    /// structural sharing with pre-crash chunks survives restart.
    ///
    /// Errors (as strings, for the recovery path to surface) on
    /// structural corruption: a shard count that is not a power of
    /// two, pages of the wrong size, an object homed in the wrong
    /// shard, a duplicate OID, or a live slot past the high-water
    /// mark.
    pub fn from_images(
        cfg: StoreConfig,
        images: Vec<ShardImage>,
        version: u64,
    ) -> std::result::Result<Store, String> {
        let n = images.len();
        if !n.is_power_of_two() || n > MAX_SHARDS {
            return Err(format!("invalid shard count {n}"));
        }
        if cfg.effective_shards() != n {
            return Err(format!(
                "config wants {} shards but {} images were supplied",
                cfg.effective_shards(),
                n
            ));
        }
        let shift = n.trailing_zeros();
        let mut shards = Vec::with_capacity(n);
        for (i, img) in images.into_iter().enumerate() {
            if img.len_slots > img.pages.len() * PAGE_SIZE {
                return Err(format!(
                    "shard {i}: high-water mark {} exceeds {} paged slots",
                    img.len_slots,
                    img.pages.len() * PAGE_SIZE
                ));
            }
            let mut st = ShardState::with_indexes(cfg.parent_index, cfg.label_index);
            let mut slot_of = FastMap::default();
            for (p, page) in img.pages.iter().enumerate() {
                if page.len() != PAGE_SIZE {
                    return Err(format!("shard {i} page {p}: {} slots", page.len()));
                }
                for (k, slot) in page.iter().enumerate() {
                    let local = (p * PAGE_SIZE + k) as u32;
                    match slot {
                        Some(obj) => {
                            if (local as usize) >= img.len_slots {
                                return Err(format!(
                                    "shard {i}: live slot {local} past high-water mark {}",
                                    img.len_slots
                                ));
                            }
                            if shard_for(obj.oid, shift) != i {
                                return Err(format!(
                                    "object {} homed in shard {} found in shard {i}",
                                    obj.oid,
                                    shard_for(obj.oid, shift)
                                ));
                            }
                            let global = (local << shift) | i as u32;
                            if slot_of.insert(obj.oid, global).is_some() {
                                return Err(format!("duplicate OID {}", obj.oid));
                            }
                        }
                        None => {
                            if (local as usize) < img.len_slots {
                                st.free.push((local << shift) | i as u32);
                            }
                        }
                    }
                }
            }
            st.pages = img.pages;
            st.len_slots = img.len_slots;
            st.slot_of = Arc::new(slot_of);
            shards.push(st);
        }
        // Second pass: rebuild the indexes. Label entries home with
        // the object; parent entries home with the *child* (including
        // dangling children, matching `Create`'s indexing).
        if cfg.parent_index || cfg.label_index {
            for i in 0..n {
                for p in 0..shards[i].pages.len() {
                    for k in 0..PAGE_SIZE {
                        let (slot, children) = match &shards[i].pages[p][k] {
                            Some(obj) => (
                                (((p * PAGE_SIZE + k) as u32) << shift) | i as u32,
                                obj.children().to_vec(),
                            ),
                            None => continue,
                        };
                        if cfg.label_index {
                            let label = shards[i].pages[p][k].as_ref().unwrap().label;
                            let idx = shards[i].label_index.as_mut().unwrap();
                            Arc::make_mut(idx).entry(label).or_default().insert(slot);
                        }
                        if cfg.parent_index {
                            for c in children {
                                let home = shard_for(c, shift);
                                let idx = shards[home].parent_index.as_mut().unwrap();
                                Arc::make_mut(idx).entry(c).or_default().insert(slot);
                            }
                        }
                    }
                }
            }
        }
        Ok(Store {
            shards,
            shift,
            log_enabled: cfg.log_updates,
            version,
            count_accesses: AtomicBool::new(cfg.count_accesses),
            ..Store::default()
        })
    }

    // ------------------------------------------------------------------
    // Set operations on set objects (paper §2)
    // ------------------------------------------------------------------

    /// `union(S1, S2)`: a new object whose value is
    /// `value(S1) ∪ value(S2)`, with a fresh OID and S1's label.
    pub fn union_objects(&mut self, fresh_oid: Oid, s1: Oid, s2: Oid) -> Result<Oid> {
        let (label, v1) = {
            let o1 = self.require(s1)?;
            (o1.label, o1.value.as_set().ok_or(GsdbError::NotASet(s1))?.clone())
        };
        let v2 = {
            let o2 = self.require(s2)?;
            o2.value.as_set().ok_or(GsdbError::NotASet(s2))?.clone()
        };
        self.create(Object {
            oid: fresh_oid,
            label,
            value: Value::Set(v1.union(&v2)),
        })?;
        Ok(fresh_oid)
    }

    /// `int(S1, S2)`: a new object whose value is
    /// `value(S1) ∩ value(S2)`, with a fresh OID and S1's label.
    pub fn intersect_objects(&mut self, fresh_oid: Oid, s1: Oid, s2: Oid) -> Result<Oid> {
        let (label, v1) = {
            let o1 = self.require(s1)?;
            (o1.label, o1.value.as_set().ok_or(GsdbError::NotASet(s1))?.clone())
        };
        let v2 = {
            let o2 = self.require(s2)?;
            o2.value.as_set().ok_or(GsdbError::NotASet(s2))?.clone()
        };
        self.create(Object {
            oid: fresh_oid,
            label,
            value: Value::Set(v1.intersection(&v2)),
        })?;
        Ok(fresh_oid)
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests / proptests)
    // ------------------------------------------------------------------

    /// Check one shard's arena + placement invariants: slot accounting,
    /// OID homing (every entry hashes to this shard), free-list
    /// disjointness (free slots carry this shard's interleave bits and
    /// are dead), and label-index forward agreement.
    #[doc(hidden)]
    pub fn check_shard_invariants(&self, i: usize) -> std::result::Result<(), String> {
        let st = &self.shards[i];
        let mask = (self.shards.len() - 1) as u32;
        let live = st.iter().count();
        if live != st.slot_of.len() {
            return Err(format!(
                "shard {i}: live slots {} != slot_of entries {}",
                live,
                st.slot_of.len()
            ));
        }
        if live + st.free.len() != st.len_slots {
            return Err(format!(
                "shard {i}: live {} + free {} != allocated slots {}",
                live,
                st.free.len(),
                st.len_slots
            ));
        }
        if st.len_slots > st.pages.len() * PAGE_SIZE {
            return Err(format!(
                "shard {i}: slot high-water mark {} exceeds page capacity {}",
                st.len_slots,
                st.pages.len() * PAGE_SIZE
            ));
        }
        for (oid, &slot) in st.slot_of.iter() {
            if shard_for(*oid, self.shift) != i {
                return Err(format!(
                    "shard {i}: OID {} is homed in shard {} but mapped here",
                    oid.name(),
                    shard_for(*oid, self.shift)
                ));
            }
            if (slot & mask) as usize != i {
                return Err(format!(
                    "shard {i}: slot_of[{}] = {slot} carries foreign shard bits",
                    oid.name()
                ));
            }
            match st.obj(slot >> self.shift) {
                Some(o) if o.oid == *oid => {}
                _ => return Err(format!("shard {i}: slot_of[{}] -> dead or mismatched slot", oid.name())),
            }
        }
        for &f in &st.free {
            if (f & mask) as usize != i {
                return Err(format!("shard {i}: free slot {f} carries foreign shard bits"));
            }
            let local = f >> self.shift;
            if (local as usize) >= st.len_slots || st.obj(local).is_some() {
                return Err(format!("shard {i}: free slot {f} is live or out of bounds"));
            }
        }
        if let Some(idx) = st.label_index.as_deref() {
            for (label, set) in idx {
                for slot in set.iter() {
                    if (slot & mask) as usize != i {
                        return Err(format!(
                            "shard {i}: label index [{}] holds foreign slot {slot}",
                            label.as_str()
                        ));
                    }
                    match st.obj(slot >> self.shift) {
                        Some(o) if o.label == *label => {}
                        _ => {
                            return Err(format!(
                                "shard {i}: label index [{}] references slot {slot} without that label",
                                label.as_str()
                            ))
                        }
                    }
                }
            }
            for obj in st.iter() {
                let slot = st.slot_of[&obj.oid];
                if !idx.get(&obj.label).map(|s| s.contains(slot)).unwrap_or(false) {
                    return Err(format!("shard {i}: label index missing {}", obj.oid.name()));
                }
            }
        }
        if let Some(idx) = st.parent_index.as_deref() {
            for (child, set) in idx {
                if shard_for(*child, self.shift) != i {
                    return Err(format!(
                        "shard {i}: parent index entry for {} belongs to shard {}",
                        child.name(),
                        shard_for(*child, self.shift)
                    ));
                }
                for pslot in set.iter() {
                    match self.slot_obj(pslot) {
                        Some(p) if p.children().contains(child) => {}
                        _ => {
                            return Err(format!(
                                "shard {i}: parent index [{}] references slot {pslot} lacking that edge",
                                child.name()
                            ))
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Check the arena + index invariants across all shards: every
    /// per-shard check plus the global ones — no OID mapped in two
    /// shards, free lists pairwise disjoint (both implied by the
    /// per-shard placement checks, which pin each entry to exactly the
    /// shard the OID/slot hashes to), and parent-index reverse
    /// agreement across shard boundaries. Used by property tests to
    /// verify free-list reuse and sharding never corrupt the store.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        for i in 0..self.shards.len() {
            self.check_shard_invariants(i)?;
        }
        // Cross-shard reverse direction: every live edge is indexed in
        // the child's home shard.
        if self.has_parent_index() {
            for obj in self.iter() {
                let slot = self.slot_of(obj.oid).unwrap();
                for c in obj.children() {
                    let idx = self.home_state(*c).parent_index.as_deref().unwrap();
                    if !idx.get(c).map(|s| s.contains(slot)).unwrap_or(false) {
                        return Err(format!(
                            "parent index missing edge {} -> {}",
                            obj.oid.name(),
                            c.name()
                        ));
                    }
                }
            }
        }
        // Global accounting: shard-placement checks above already
        // guarantee the slot_of key sets are pairwise disjoint, so the
        // sum equals the distinct-object count.
        let total: usize = self.shards.iter().map(|s| s.slot_of.len()).sum();
        if total != self.len() {
            return Err(format!("shard sizes sum {} != len {}", total, self.len()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn tiny_store() -> Store {
        let mut s = Store::counting();
        s.create_all([
            Object::set("ROOT", "person", &[oid("P1")]),
            Object::set("P1", "professor", &[oid("A1")]),
            Object::atom("A1", "age", 45i64),
        ])
        .unwrap();
        s
    }

    #[test]
    fn create_and_get() {
        let s = tiny_store();
        assert_eq!(s.len(), 3);
        assert_eq!(s.label(oid("P1")).unwrap().as_str(), "professor");
        assert_eq!(s.atom(oid("A1")), Some(&Atom::Int(45)));
        assert!(s.get(oid("NOPE")).is_none());
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut s = tiny_store();
        let err = s.create(Object::atom("A1", "age", 1i64)).unwrap_err();
        assert_eq!(err, GsdbError::DuplicateOid(oid("A1")));
    }

    #[test]
    fn duplicate_edge_insert_rejected() {
        let mut s = tiny_store();
        s.create(Object::atom("N1", "name", "John")).unwrap();
        s.insert_edge(oid("P1"), oid("N1")).unwrap();
        let err = s.insert_edge(oid("P1"), oid("N1")).unwrap_err();
        assert_eq!(
            err,
            GsdbError::AlreadyAChild {
                parent: oid("P1"),
                child: oid("N1"),
            }
        );
        // The rejected insert is not logged and does not bump the
        // version — consolidation never sees a phantom +1.
        let v = s.version();
        assert!(s.insert_edge(oid("P1"), oid("N1")).is_err());
        assert_eq!(s.version(), v);
    }

    #[test]
    fn insert_edge_updates_value_and_parent_index() {
        let mut s = tiny_store();
        s.create(Object::atom("N1", "name", "John")).unwrap();
        s.insert_edge(oid("P1"), oid("N1")).unwrap();
        assert!(s.get(oid("P1")).unwrap().children().contains(&oid("N1")));
        assert!(s.parents(oid("N1")).unwrap().contains(oid("P1")));
    }

    #[test]
    fn insert_into_atomic_rejected() {
        let mut s = tiny_store();
        let err = s.insert_edge(oid("A1"), oid("P1")).unwrap_err();
        assert_eq!(err, GsdbError::NotASet(oid("A1")));
    }

    #[test]
    fn insert_unknown_child_rejected() {
        let mut s = tiny_store();
        let err = s.insert_edge(oid("P1"), oid("GHOST")).unwrap_err();
        assert_eq!(err, GsdbError::NoSuchObject(oid("GHOST")));
    }

    #[test]
    fn delete_edge_and_not_a_child() {
        let mut s = tiny_store();
        s.delete_edge(oid("ROOT"), oid("P1")).unwrap();
        assert!(s.get(oid("ROOT")).unwrap().children().is_empty());
        assert!(!s.parents(oid("P1")).unwrap().contains(oid("ROOT")));
        let err = s.delete_edge(oid("ROOT"), oid("P1")).unwrap_err();
        assert_eq!(
            err,
            GsdbError::NotAChild {
                parent: oid("ROOT"),
                child: oid("P1")
            }
        );
    }

    #[test]
    fn modify_captures_old_value() {
        let mut s = tiny_store();
        let applied = s.modify_atom(oid("A1"), 46i64).unwrap();
        assert_eq!(
            applied,
            AppliedUpdate::Modify {
                oid: oid("A1"),
                old: Atom::Int(45),
                new: Atom::Int(46),
            }
        );
        assert_eq!(s.atom(oid("A1")), Some(&Atom::Int(46)));
    }

    #[test]
    fn modify_set_object_rejected() {
        let mut s = tiny_store();
        let err = s.modify_atom(oid("P1"), 1i64).unwrap_err();
        assert_eq!(err, GsdbError::NotAtomic(oid("P1")));
    }

    #[test]
    fn update_log_records_applied_updates() {
        let mut s = Store::with_config(StoreConfig {
            log_updates: true,
            ..StoreConfig::default()
        });
        s.create(Object::empty_set("R", "root")).unwrap();
        s.create(Object::atom("X", "x", 1i64)).unwrap();
        s.insert_edge(oid("R"), oid("X")).unwrap();
        s.modify_atom(oid("X"), 2i64).unwrap();
        let log = s.drain_log();
        assert_eq!(log.len(), 4);
        assert!(matches!(log[2], AppliedUpdate::Insert { .. }));
        assert!(matches!(log[3], AppliedUpdate::Modify { .. }));
        assert!(s.log().is_empty());
    }

    #[test]
    fn label_index_tracks_create_remove() {
        let mut s = tiny_store();
        let prof = Label::new("professor");
        assert!(s.with_label(prof).unwrap().contains(oid("P1")));
        s.delete_edge(oid("ROOT"), oid("P1")).unwrap();
        s.apply(Update::Remove { oid: oid("P1") }).unwrap();
        assert!(!s.with_label(prof).unwrap().contains(oid("P1")));
    }

    #[test]
    fn disabled_indexes_return_none() {
        let s = Store::with_config(StoreConfig {
            parent_index: false,
            label_index: false,
            ..StoreConfig::default()
        });
        assert!(s.parents(oid("X")).is_none());
        assert!(s.with_label(Label::new("y")).is_none());
        assert!(!s.has_parent_index());
    }

    #[test]
    fn access_counter_counts_reads() {
        let s = tiny_store();
        s.reset_accesses();
        let _ = s.get(oid("P1"));
        let _ = s.children(oid("ROOT"));
        assert_eq!(s.accesses(), 2);
        s.reset_accesses();
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn counting_disabled_by_default() {
        let s = Store::new();
        let _ = s.get(oid("anything"));
        assert_eq!(s.accesses(), 0);
        assert!(!s.counts_accesses());
    }

    #[test]
    fn union_and_intersect_objects() {
        let mut s = Store::new();
        s.create_all([
            Object::atom("a", "x", 1i64),
            Object::atom("b", "x", 2i64),
            Object::atom("c", "x", 3i64),
            Object::set("S1", "things", &[oid("a"), oid("b")]),
            Object::set("S2", "things", &[oid("b"), oid("c")]),
        ])
        .unwrap();
        let u = s.union_objects(oid("U"), oid("S1"), oid("S2")).unwrap();
        let i = s.intersect_objects(oid("I"), oid("S1"), oid("S2")).unwrap();
        assert_eq!(s.get(u).unwrap().children().len(), 3);
        let io = s.get(i).unwrap();
        assert_eq!(io.children(), &[oid("b")]);
        // Result objects take S1's label (paper §2).
        assert_eq!(io.label.as_str(), "things");
    }

    #[test]
    fn create_with_children_populates_parent_index() {
        let mut s = Store::new();
        s.create(Object::atom("c1", "x", 1i64)).unwrap();
        s.create(Object::set("p", "parent", &[oid("c1")])).unwrap();
        assert!(s.parents(oid("c1")).unwrap().contains(oid("p")));
    }

    #[test]
    fn freed_slots_are_reused_and_oids_stay_stable() {
        let mut s = Store::new();
        s.create(Object::atom("A", "x", 1i64)).unwrap();
        s.create(Object::atom("B", "x", 2i64)).unwrap();
        let b_slot = s.slot_of(oid("B")).unwrap();
        s.apply(Update::Remove { oid: oid("B") }).unwrap();
        s.create(Object::atom("C", "y", 3i64)).unwrap();
        // C takes B's slot, but lookups by OID are unaffected.
        assert_eq!(s.slot_of(oid("C")), Some(b_slot));
        assert!(s.slot_of(oid("B")).is_none());
        assert_eq!(s.atom(oid("A")), Some(&Atom::Int(1)));
        assert_eq!(s.atom(oid("C")), Some(&Atom::Int(3)));
        assert_eq!(s.slot_bound(), 2);
        s.check_invariants().unwrap();
    }

    #[test]
    fn slot_reuse_does_not_alias_label_index() {
        let mut s = Store::new();
        s.create(Object::atom("A", "old", 1i64)).unwrap();
        s.apply(Update::Remove { oid: oid("A") }).unwrap();
        s.create(Object::atom("B", "new", 2i64)).unwrap();
        // B reused A's slot; the "old" label set must not claim it.
        assert!(s.with_label(Label::new("old")).unwrap().is_empty());
        assert!(s.with_label(Label::new("new")).unwrap().contains(oid("B")));
        s.check_invariants().unwrap();
    }

    #[test]
    fn recreated_oid_keeps_its_dangling_edges_indexed() {
        // Found by `oids_sorted_survives_mutation_interleavings`:
        // Remove leaves edges into the removed object dangling in the
        // parents' sets, so the parent-index entry for the removed OID
        // must survive — a later Create of the same OID makes those
        // edges live again, and the index has to agree.
        let mut s = Store::new();
        s.create(Object::empty_set("R", "root")).unwrap();
        s.create(Object::atom("A", "age", 1i64)).unwrap();
        s.insert_edge(oid("R"), oid("A")).unwrap();
        s.apply(Update::Remove { oid: oid("A") }).unwrap();
        // R still lists A (dangling). Re-create A: the edge is live.
        s.create(Object::atom("A", "age", 2i64)).unwrap();
        assert!(s.parents(oid("A")).unwrap().contains(oid("R")));
        s.check_invariants().unwrap();
        // Once the last referencing parent drops the edge, the entry
        // is gone for good.
        s.delete_edge(oid("R"), oid("A")).unwrap();
        s.apply(Update::Remove { oid: oid("A") }).unwrap();
        assert!(s.parents(oid("A")).unwrap().is_empty());
        s.check_invariants().unwrap();
    }

    #[test]
    fn oids_sorted_cache_invalidation() {
        let mut s = tiny_store();
        let before = s.oids_sorted();
        assert_eq!(before, s.oids_sorted()); // cached path
        s.create(Object::atom("A0", "age", 1i64)).unwrap();
        let after = s.oids_sorted();
        assert_eq!(after.len(), before.len() + 1);
        assert!(after.contains(&oid("A0")));
        s.apply(Update::Remove { oid: oid("A0") }).unwrap();
        assert_eq!(s.oids_sorted(), before);
    }

    #[test]
    fn fork_is_isolated_from_later_writes() {
        let mut s = Store::with_config(StoreConfig {
            log_updates: true,
            ..StoreConfig::default()
        });
        s.create(Object::atom("A", "age", 45i64)).unwrap();
        let fork = s.fork();
        assert!(fork.log().is_empty(), "forks never carry the live log");

        // Mutate every structure the fork shares: page (modify),
        // slot_of + indexes (create/remove), edges (insert/delete).
        s.modify_atom(oid("A"), 46i64).unwrap();
        s.create(Object::set("S", "set", &[oid("A")])).unwrap();
        s.delete_edge(oid("S"), oid("A")).unwrap();
        s.apply(Update::Remove { oid: oid("A") }).unwrap();

        // The fork still observes the capture-time state.
        assert_eq!(fork.atom(oid("A")), Some(&Atom::Int(45)));
        assert_eq!(fork.len(), 1);
        assert!(!fork.contains(oid("S")));
        assert!(fork.with_label(Label::new("age")).unwrap().contains(oid("A")));
        fork.check_invariants().unwrap();
        s.check_invariants().unwrap();

        // And the live store moved on.
        assert!(!s.contains(oid("A")));
        assert!(s.contains(oid("S")));
    }

    #[test]
    fn cloned_store_mutates_independently_both_ways() {
        let mut a = tiny_store();
        let mut b = a.clone();
        a.modify_atom(oid("A1"), 1i64).unwrap();
        b.modify_atom(oid("A1"), 2i64).unwrap();
        b.create(Object::atom("B1", "age", 3i64)).unwrap();
        assert_eq!(a.atom(oid("A1")), Some(&Atom::Int(1)));
        assert_eq!(b.atom(oid("A1")), Some(&Atom::Int(2)));
        assert!(!a.contains(oid("B1")));
        a.check_invariants().unwrap();
        b.check_invariants().unwrap();
    }

    #[test]
    fn version_counts_successful_mutations_only() {
        let mut s = tiny_store();
        let v0 = s.version();
        s.modify_atom(oid("A1"), 46i64).unwrap();
        assert_eq!(s.version(), v0 + 1);
        s.modify_atom(oid("NOPE"), 1i64).unwrap_err();
        assert_eq!(s.version(), v0 + 1, "failed updates do not bump");
        s.insert_edge_unchecked(oid("P1"), oid("GHOST")).unwrap();
        assert_eq!(s.version(), v0 + 2);
        let _ = s.oids_sorted();
        assert_eq!(s.version(), v0 + 2, "reads do not bump");
    }

    #[test]
    fn slabs_span_multiple_pages() {
        let mut s = Store::new();
        let n = PAGE_SIZE * 2 + 17;
        for i in 0..n {
            s.create(Object::atom(format!("o{i}").as_str(), "x", i as i64))
                .unwrap();
        }
        assert_eq!(s.len(), n);
        assert_eq!(s.slot_bound(), n);
        assert_eq!(s.iter().count(), n);
        // Spot-check an object on each page.
        for i in [0, PAGE_SIZE, 2 * PAGE_SIZE + 16] {
            assert_eq!(
                s.atom(Oid::new(&format!("o{i}"))),
                Some(&Atom::Int(i as i64))
            );
        }
        s.check_invariants().unwrap();
    }

    #[test]
    fn reserve_is_usable_and_harmless() {
        let mut s = Store::new();
        s.reserve(1000);
        for i in 0..100 {
            s.create(Object::atom(format!("o{i}").as_str(), "x", i as i64))
                .unwrap();
        }
        assert_eq!(s.len(), 100);
        s.check_invariants().unwrap();
    }

    // ------------------------------------------------------------------
    // Sharded-layout tests
    // ------------------------------------------------------------------

    /// The same mutation run at every shard count; used to pin
    /// observational invisibility of the shard count.
    fn churn(s: &mut Store) {
        s.create(Object::empty_set("R", "root")).unwrap();
        for i in 0..40 {
            s.create(Object::atom(format!("a{i}").as_str(), "age", i as i64))
                .unwrap();
            s.insert_edge(oid("R"), Oid::new(&format!("a{i}"))).unwrap();
        }
        for i in (0..40).step_by(3) {
            s.delete_edge(oid("R"), Oid::new(&format!("a{i}"))).unwrap();
            s.apply(Update::Remove {
                oid: Oid::new(&format!("a{i}")),
            })
            .unwrap();
        }
        for i in (1..40).step_by(3) {
            s.modify_atom(Oid::new(&format!("a{i}")), 100 + i as i64)
                .unwrap();
        }
    }

    #[test]
    fn shard_count_is_observationally_invisible() {
        let mut base = Store::new();
        churn(&mut base);
        for n in [2, 4, 8, 16] {
            let mut s = Store::with_config(StoreConfig::default().with_shards(n));
            assert_eq!(s.shard_count(), n);
            churn(&mut s);
            s.check_invariants().unwrap();
            assert_eq!(s.oids_sorted(), base.oids_sorted(), "{n} shards");
            for o in base.oids_sorted() {
                assert_eq!(s.get(o).map(|x| &x.value), base.get(o).map(|x| &x.value));
                let bp: Vec<_> = {
                    let mut v: Vec<_> = base.parents(o).unwrap().iter().collect();
                    v.sort();
                    v
                };
                let sp: Vec<_> = {
                    let mut v: Vec<_> = s.parents(o).unwrap().iter().collect();
                    v.sort();
                    v
                };
                assert_eq!(sp, bp, "parents of {o} at {n} shards");
            }
            let mut bl: Vec<_> = base.with_label(Label::new("age")).unwrap().iter().collect();
            let mut sl: Vec<_> = s.with_label(Label::new("age")).unwrap().iter().collect();
            bl.sort();
            sl.sort();
            assert_eq!(sl, bl, "label index at {n} shards");
        }
    }

    #[test]
    fn shard_counts_normalize_to_powers_of_two() {
        for (asked, got) in [(0, 1), (1, 1), (3, 4), (5, 8), (9, 16), (64, 16)] {
            let s = Store::with_config(StoreConfig::default().with_shards(asked));
            assert_eq!(s.shard_count(), got, "asked {asked}");
        }
    }

    #[test]
    fn slot_ids_carry_their_home_shard() {
        let mut s = Store::with_config(StoreConfig::default().with_shards(8));
        for i in 0..64 {
            s.create(Object::atom(format!("x{i}").as_str(), "x", i as i64))
                .unwrap();
        }
        for i in 0..64 {
            let o = Oid::new(&format!("x{i}"));
            let slot = s.slot_of(o).unwrap();
            assert_eq!((slot & 7) as usize, s.shard_of(o));
            assert_eq!(s.oid_at(slot), Some(o));
        }
        assert_eq!(s.shard_sizes().iter().sum::<usize>(), 64);
        s.check_invariants().unwrap();
    }

    #[test]
    fn reshard_preserves_state_and_dangling_entries() {
        let mut s = Store::with_config(StoreConfig {
            log_updates: true,
            ..StoreConfig::default()
        });
        churn(&mut s);
        // Add a dangling edge (removed child still referenced).
        s.create(Object::atom("gone", "age", 7i64)).unwrap();
        s.insert_edge(oid("R"), oid("gone")).unwrap();
        s.apply(Update::Remove { oid: oid("gone") }).unwrap();
        s.drain_log();

        for n in [1, 2, 8] {
            let r = s.reshard(n);
            assert_eq!(r.shard_count(), n.next_power_of_two());
            r.check_invariants().unwrap();
            assert_eq!(r.oids_sorted(), s.oids_sorted());
            assert_eq!(r.version(), s.version());
            assert!(r.logs_updates());
            assert!(r.log().is_empty());
            // The dangling entry survives: re-creating `gone` makes
            // the edge live again, exactly like in the original.
            let mut r2 = r.clone();
            r2.create(Object::atom("gone", "age", 8i64)).unwrap();
            assert!(r2.parents(oid("gone")).unwrap().contains(oid("R")));
            r2.check_invariants().unwrap();
        }
    }

    #[test]
    fn sharded_fork_is_isolated_and_cheap() {
        let mut s = Store::with_config(StoreConfig::default().with_shards(4));
        churn(&mut s);
        let fork = s.fork();
        let before = fork.oids_sorted();
        s.create(Object::atom("extra", "age", 1i64)).unwrap();
        s.modify_atom(oid("a1"), -1i64).unwrap();
        assert_eq!(fork.oids_sorted(), before);
        assert_eq!(fork.atom(oid("a1")), Some(&Atom::Int(101)));
        fork.check_invariants().unwrap();
        s.check_invariants().unwrap();
    }

    #[test]
    fn image_export_import_roundtrips_exactly() {
        for shards in [1usize, 2, 4, 8] {
            let cfg = StoreConfig {
                log_updates: true,
                ..StoreConfig::default().with_shards(shards)
            };
            let mut s = Store::with_config(cfg);
            churn(&mut s);
            s.drain_log();
            let back = Store::from_images(cfg, s.export_images(), s.version()).unwrap();
            back.check_invariants().unwrap();
            assert_eq!(back.version(), s.version());
            assert_eq!(back.oids_sorted(), s.oids_sorted());
            for o in s.oids_sorted() {
                // Slot layout must survive the round trip — recovery
                // may not compact or reassign slots.
                assert_eq!(back.slot_of(o), s.slot_of(o), "slot moved for {o}");
                assert_eq!(back.get(o), s.get(o));
                assert_eq!(
                    back.parents(o).unwrap().iter().collect::<Vec<_>>(),
                    s.parents(o).unwrap().iter().collect::<Vec<_>>()
                );
            }
            // Re-exported pages are identical Arcs' worth of content:
            // persisting a recovered store re-produces the same bytes.
            let a = s.export_images();
            let b = back.export_images();
            assert_eq!(a.len(), b.len());
            for (ia, ib) in a.iter().zip(&b) {
                assert_eq!(ia.len_slots, ib.len_slots);
                assert_eq!(ia.pages.len(), ib.pages.len());
                for (pa, pb) in ia.pages.iter().zip(&ib.pages) {
                    assert_eq!(
                        crate::codec::encode_page(pa),
                        crate::codec::encode_page(pb)
                    );
                }
            }
        }
    }

    #[test]
    fn from_images_rejects_misplaced_and_duplicate_objects() {
        let cfg = StoreConfig::default().with_shards(4);
        let mut s = Store::with_config(cfg);
        churn(&mut s);
        let mut images = s.export_images();
        // Move one object's page into a different shard: every object
        // in it becomes misplaced (or duplicated) — recovery must
        // refuse rather than resurrect objects under the wrong home.
        let donor = images
            .iter()
            .position(|img| img.pages.iter().any(|p| p.iter().any(|s| s.is_some())))
            .unwrap();
        let page = images[donor].pages[0].clone();
        let target = (donor + 1) % 4;
        images[target].pages.insert(0, page);
        images[target].len_slots += Store::page_slots();
        assert!(Store::from_images(cfg, images, 0).is_err());
    }
}
