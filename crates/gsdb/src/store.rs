//! The object store: owns all objects of one or more graph structured
//! databases and applies the basic updates of paper §4.1.
//!
//! The store is *conceptual-model faithful*: objects are
//! `<OID, label, type, value>` records, and every mutation flows through
//! [`Store::apply`] so that an update log can feed source monitors
//! (paper §5) and maintenance algorithms (paper §4).
//!
//! Two optional indexes accelerate the functions Algorithm 1 relies on:
//!
//! * the **parent index** — the paper's "inverse index such that from
//!   each node we can find out its parent" (§4.4), which makes
//!   `ancestor(N, p)` a cheap upward walk instead of a traversal from
//!   the root;
//! * the **label index** — label → objects, used by query planning.
//!
//! Every object read increments an access counter, giving experiments a
//! machine-independent measure of "access to base data" — the cost the
//! paper's §4.4 discussion is about.

use crate::{
    AppliedUpdate, Atom, GsdbError, Label, Object, Oid, OidSet, Result, Update, Value,
};
use std::cell::Cell;
use std::collections::HashMap;

/// Store configuration.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Maintain the inverse (child → parents) index (paper §4.4).
    pub parent_index: bool,
    /// Maintain the label → objects index.
    pub label_index: bool,
    /// Record applied updates in the update log.
    pub log_updates: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            parent_index: true,
            label_index: true,
            log_updates: false,
        }
    }
}

/// An in-memory GSDB object store.
#[derive(Clone, Debug, Default)]
pub struct Store {
    objects: HashMap<Oid, Object>,
    parent_index: Option<HashMap<Oid, OidSet>>,
    label_index: Option<HashMap<Label, OidSet>>,
    log: Vec<AppliedUpdate>,
    log_enabled: bool,
    accesses: Cell<u64>,
}

impl Store {
    /// A store with the default configuration (both indexes, no log).
    pub fn new() -> Self {
        Self::with_config(StoreConfig::default())
    }

    /// A store with explicit configuration.
    pub fn with_config(cfg: StoreConfig) -> Self {
        Store {
            objects: HashMap::new(),
            parent_index: cfg.parent_index.then(HashMap::new),
            label_index: cfg.label_index.then(HashMap::new),
            log: Vec::new(),
            log_enabled: cfg.log_updates,
            accesses: Cell::new(0),
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True iff no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// True iff an object with this OID exists.
    pub fn contains(&self, oid: Oid) -> bool {
        self.objects.contains_key(&oid)
    }

    /// Look up an object, counting the access.
    pub fn get(&self, oid: Oid) -> Option<&Object> {
        self.accesses.set(self.accesses.get() + 1);
        self.objects.get(&oid)
    }

    /// Look up an object or fail.
    pub fn require(&self, oid: Oid) -> Result<&Object> {
        self.get(oid).ok_or(GsdbError::NoSuchObject(oid))
    }

    /// Label of an object, if it exists.
    pub fn label(&self, oid: Oid) -> Option<Label> {
        self.get(oid).map(|o| o.label)
    }

    /// Children of a set object (empty slice for atomic or missing).
    pub fn children(&self, oid: Oid) -> &[Oid] {
        self.accesses.set(self.accesses.get() + 1);
        self.objects
            .get(&oid)
            .map(|o| o.children())
            .unwrap_or(&[])
    }

    /// Atomic value of an object, if atomic.
    pub fn atom(&self, oid: Oid) -> Option<&Atom> {
        self.get(oid).and_then(|o| o.atom_value())
    }

    /// Iterate all objects (order unspecified). Does not count accesses.
    pub fn iter(&self) -> impl Iterator<Item = &Object> {
        self.objects.values()
    }

    /// All OIDs, sorted by name (deterministic).
    pub fn oids_sorted(&self) -> Vec<Oid> {
        let mut v: Vec<Oid> = self.objects.keys().copied().collect();
        v.sort_by_key(|o| o.name());
        v
    }

    // ------------------------------------------------------------------
    // Access accounting
    // ------------------------------------------------------------------

    /// Number of object reads since construction / last reset. This is
    /// the "access to base data" cost the paper's §4.4 analysis uses.
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }

    /// Reset the access counter.
    pub fn reset_accesses(&self) {
        self.accesses.set(0);
    }

    // ------------------------------------------------------------------
    // Indexes
    // ------------------------------------------------------------------

    /// True iff the inverse (parent) index is maintained.
    pub fn has_parent_index(&self) -> bool {
        self.parent_index.is_some()
    }

    /// Parents of an object, from the inverse index. `None` if the index
    /// is disabled (callers must then traverse — exactly the trade-off
    /// of paper §4.4).
    pub fn parents(&self, oid: Oid) -> Option<&OidSet> {
        self.accesses.set(self.accesses.get() + 1);
        self.parent_index.as_ref().map(|idx| {
            static EMPTY: std::sync::OnceLock<OidSet> = std::sync::OnceLock::new();
            idx.get(&oid)
                .unwrap_or_else(|| EMPTY.get_or_init(OidSet::new))
        })
    }

    /// Objects with a given label, from the label index. `None` if the
    /// index is disabled.
    pub fn with_label(&self, label: Label) -> Option<&OidSet> {
        self.label_index.as_ref().map(|idx| {
            static EMPTY: std::sync::OnceLock<OidSet> = std::sync::OnceLock::new();
            idx.get(&label)
                .unwrap_or_else(|| EMPTY.get_or_init(OidSet::new))
        })
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Insert a fresh object record. Fails on duplicate OID.
    pub fn create(&mut self, object: Object) -> Result<()> {
        self.apply(Update::Create { object }).map(|_| ())
    }

    /// Create many objects at once (setup convenience).
    pub fn create_all(&mut self, objects: impl IntoIterator<Item = Object>) -> Result<()> {
        for o in objects {
            self.create(o)?;
        }
        Ok(())
    }

    /// `insert(parent, child)` — paper §4.1 update 1.
    pub fn insert_edge(&mut self, parent: Oid, child: Oid) -> Result<AppliedUpdate> {
        self.apply(Update::Insert { parent, child })
    }

    /// `delete(parent, child)` — paper §4.1 update 2.
    pub fn delete_edge(&mut self, parent: Oid, child: Oid) -> Result<AppliedUpdate> {
        self.apply(Update::Delete { parent, child })
    }

    /// Insert `child` into `parent`'s set without requiring `child` to
    /// exist in this store. Replica stores (e.g. a warehouse-side
    /// cache) hold copies of objects whose sets may reference children
    /// outside the replicated region; those references stay dangling,
    /// exactly as [`Store::create`] leaves them when a copied object
    /// arrives with unknown children. Not logged — this is replica
    /// bookkeeping, not a base update.
    pub fn insert_edge_unchecked(&mut self, parent: Oid, child: Oid) -> Result<()> {
        let pobj = self
            .objects
            .get_mut(&parent)
            .ok_or(GsdbError::NoSuchObject(parent))?;
        let set = pobj.value.as_set_mut().ok_or(GsdbError::NotASet(parent))?;
        set.insert(child);
        if let Some(idx) = self.parent_index.as_mut() {
            idx.entry(child).or_default().insert(parent);
        }
        Ok(())
    }

    /// `modify(oid, oldv, newv)` — paper §4.1 update 3 (old value is
    /// captured from the store).
    pub fn modify_atom(&mut self, oid: Oid, new: impl Into<Atom>) -> Result<AppliedUpdate> {
        self.apply(Update::Modify {
            oid,
            new: new.into(),
        })
    }

    /// Apply a basic update, validating it and maintaining indexes and
    /// the update log. Returns the applied form (with old values).
    pub fn apply(&mut self, update: Update) -> Result<AppliedUpdate> {
        let applied = match update {
            Update::Insert { parent, child } => {
                if !self.objects.contains_key(&child) {
                    return Err(GsdbError::NoSuchObject(child));
                }
                let pobj = self
                    .objects
                    .get_mut(&parent)
                    .ok_or(GsdbError::NoSuchObject(parent))?;
                let set = pobj.value.as_set_mut().ok_or(GsdbError::NotASet(parent))?;
                set.insert(child);
                if let Some(idx) = self.parent_index.as_mut() {
                    idx.entry(child).or_default().insert(parent);
                }
                AppliedUpdate::Insert { parent, child }
            }
            Update::Delete { parent, child } => {
                let pobj = self
                    .objects
                    .get_mut(&parent)
                    .ok_or(GsdbError::NoSuchObject(parent))?;
                let set = pobj.value.as_set_mut().ok_or(GsdbError::NotASet(parent))?;
                if !set.remove(child) {
                    return Err(GsdbError::NotAChild { parent, child });
                }
                if let Some(idx) = self.parent_index.as_mut() {
                    if let Some(ps) = idx.get_mut(&child) {
                        ps.remove(parent);
                    }
                }
                AppliedUpdate::Delete { parent, child }
            }
            Update::Modify { oid, new } => {
                let obj = self
                    .objects
                    .get_mut(&oid)
                    .ok_or(GsdbError::NoSuchObject(oid))?;
                let old = match &mut obj.value {
                    Value::Atom(a) => std::mem::replace(a, new.clone()),
                    Value::Set(_) => return Err(GsdbError::NotAtomic(oid)),
                };
                AppliedUpdate::Modify { oid, old, new }
            }
            Update::Create { object } => {
                if self.objects.contains_key(&object.oid) {
                    return Err(GsdbError::DuplicateOid(object.oid));
                }
                let oid = object.oid;
                if let Some(idx) = self.label_index.as_mut() {
                    idx.entry(object.label).or_default().insert(oid);
                }
                if let Some(idx) = self.parent_index.as_mut() {
                    // A created object may arrive with children already in
                    // its set value; index those edges.
                    for c in object.children() {
                        idx.entry(*c).or_default().insert(oid);
                    }
                }
                self.objects.insert(oid, object);
                AppliedUpdate::Create { oid }
            }
            Update::Remove { oid } => {
                let obj = self
                    .objects
                    .remove(&oid)
                    .ok_or(GsdbError::NoSuchObject(oid))?;
                if let Some(idx) = self.label_index.as_mut() {
                    if let Some(s) = idx.get_mut(&obj.label) {
                        s.remove(oid);
                    }
                }
                if let Some(idx) = self.parent_index.as_mut() {
                    for c in obj.children() {
                        if let Some(ps) = idx.get_mut(c) {
                            ps.remove(oid);
                        }
                    }
                    idx.remove(&oid);
                }
                AppliedUpdate::Remove { oid }
            }
        };
        if self.log_enabled {
            self.log.push(applied.clone());
        }
        Ok(applied)
    }

    // ------------------------------------------------------------------
    // Update log
    // ------------------------------------------------------------------

    /// Drain the update log (the source monitor's feed, paper §5).
    pub fn drain_log(&mut self) -> Vec<AppliedUpdate> {
        std::mem::take(&mut self.log)
    }

    /// Peek the update log.
    pub fn log(&self) -> &[AppliedUpdate] {
        &self.log
    }

    // ------------------------------------------------------------------
    // Set operations on set objects (paper §2)
    // ------------------------------------------------------------------

    /// `union(S1, S2)`: a new object whose value is
    /// `value(S1) ∪ value(S2)`, with a fresh OID and S1's label.
    pub fn union_objects(&mut self, fresh_oid: Oid, s1: Oid, s2: Oid) -> Result<Oid> {
        let (label, v1) = {
            let o1 = self.require(s1)?;
            (o1.label, o1.value.as_set().ok_or(GsdbError::NotASet(s1))?.clone())
        };
        let v2 = {
            let o2 = self.require(s2)?;
            o2.value.as_set().ok_or(GsdbError::NotASet(s2))?.clone()
        };
        self.create(Object {
            oid: fresh_oid,
            label,
            value: Value::Set(v1.union(&v2)),
        })?;
        Ok(fresh_oid)
    }

    /// `int(S1, S2)`: a new object whose value is
    /// `value(S1) ∩ value(S2)`, with a fresh OID and S1's label.
    pub fn intersect_objects(&mut self, fresh_oid: Oid, s1: Oid, s2: Oid) -> Result<Oid> {
        let (label, v1) = {
            let o1 = self.require(s1)?;
            (o1.label, o1.value.as_set().ok_or(GsdbError::NotASet(s1))?.clone())
        };
        let v2 = {
            let o2 = self.require(s2)?;
            o2.value.as_set().ok_or(GsdbError::NotASet(s2))?.clone()
        };
        self.create(Object {
            oid: fresh_oid,
            label,
            value: Value::Set(v1.intersection(&v2)),
        })?;
        Ok(fresh_oid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn tiny_store() -> Store {
        let mut s = Store::new();
        s.create_all([
            Object::set("ROOT", "person", &[oid("P1")]),
            Object::set("P1", "professor", &[oid("A1")]),
            Object::atom("A1", "age", 45i64),
        ])
        .unwrap();
        s
    }

    #[test]
    fn create_and_get() {
        let s = tiny_store();
        assert_eq!(s.len(), 3);
        assert_eq!(s.label(oid("P1")).unwrap().as_str(), "professor");
        assert_eq!(s.atom(oid("A1")), Some(&Atom::Int(45)));
        assert!(s.get(oid("NOPE")).is_none());
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut s = tiny_store();
        let err = s.create(Object::atom("A1", "age", 1i64)).unwrap_err();
        assert_eq!(err, GsdbError::DuplicateOid(oid("A1")));
    }

    #[test]
    fn insert_edge_updates_value_and_parent_index() {
        let mut s = tiny_store();
        s.create(Object::atom("N1", "name", "John")).unwrap();
        s.insert_edge(oid("P1"), oid("N1")).unwrap();
        assert!(s.get(oid("P1")).unwrap().children().contains(&oid("N1")));
        assert!(s.parents(oid("N1")).unwrap().contains(oid("P1")));
    }

    #[test]
    fn insert_into_atomic_rejected() {
        let mut s = tiny_store();
        let err = s.insert_edge(oid("A1"), oid("P1")).unwrap_err();
        assert_eq!(err, GsdbError::NotASet(oid("A1")));
    }

    #[test]
    fn insert_unknown_child_rejected() {
        let mut s = tiny_store();
        let err = s.insert_edge(oid("P1"), oid("GHOST")).unwrap_err();
        assert_eq!(err, GsdbError::NoSuchObject(oid("GHOST")));
    }

    #[test]
    fn delete_edge_and_not_a_child() {
        let mut s = tiny_store();
        s.delete_edge(oid("ROOT"), oid("P1")).unwrap();
        assert!(s.get(oid("ROOT")).unwrap().children().is_empty());
        assert!(!s.parents(oid("P1")).unwrap().contains(oid("ROOT")));
        let err = s.delete_edge(oid("ROOT"), oid("P1")).unwrap_err();
        assert_eq!(
            err,
            GsdbError::NotAChild {
                parent: oid("ROOT"),
                child: oid("P1")
            }
        );
    }

    #[test]
    fn modify_captures_old_value() {
        let mut s = tiny_store();
        let applied = s.modify_atom(oid("A1"), 46i64).unwrap();
        assert_eq!(
            applied,
            AppliedUpdate::Modify {
                oid: oid("A1"),
                old: Atom::Int(45),
                new: Atom::Int(46),
            }
        );
        assert_eq!(s.atom(oid("A1")), Some(&Atom::Int(46)));
    }

    #[test]
    fn modify_set_object_rejected() {
        let mut s = tiny_store();
        let err = s.modify_atom(oid("P1"), 1i64).unwrap_err();
        assert_eq!(err, GsdbError::NotAtomic(oid("P1")));
    }

    #[test]
    fn update_log_records_applied_updates() {
        let mut s = Store::with_config(StoreConfig {
            log_updates: true,
            ..StoreConfig::default()
        });
        s.create(Object::empty_set("R", "root")).unwrap();
        s.create(Object::atom("X", "x", 1i64)).unwrap();
        s.insert_edge(oid("R"), oid("X")).unwrap();
        s.modify_atom(oid("X"), 2i64).unwrap();
        let log = s.drain_log();
        assert_eq!(log.len(), 4);
        assert!(matches!(log[2], AppliedUpdate::Insert { .. }));
        assert!(matches!(log[3], AppliedUpdate::Modify { .. }));
        assert!(s.log().is_empty());
    }

    #[test]
    fn label_index_tracks_create_remove() {
        let mut s = tiny_store();
        let prof = Label::new("professor");
        assert!(s.with_label(prof).unwrap().contains(oid("P1")));
        s.delete_edge(oid("ROOT"), oid("P1")).unwrap();
        s.apply(Update::Remove { oid: oid("P1") }).unwrap();
        assert!(!s.with_label(prof).unwrap().contains(oid("P1")));
    }

    #[test]
    fn disabled_indexes_return_none() {
        let s = Store::with_config(StoreConfig {
            parent_index: false,
            label_index: false,
            log_updates: false,
        });
        assert!(s.parents(oid("X")).is_none());
        assert!(s.with_label(Label::new("y")).is_none());
        assert!(!s.has_parent_index());
    }

    #[test]
    fn access_counter_counts_reads() {
        let s = tiny_store();
        s.reset_accesses();
        let _ = s.get(oid("P1"));
        let _ = s.children(oid("ROOT"));
        assert_eq!(s.accesses(), 2);
        s.reset_accesses();
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn union_and_intersect_objects() {
        let mut s = Store::new();
        s.create_all([
            Object::atom("a", "x", 1i64),
            Object::atom("b", "x", 2i64),
            Object::atom("c", "x", 3i64),
            Object::set("S1", "things", &[oid("a"), oid("b")]),
            Object::set("S2", "things", &[oid("b"), oid("c")]),
        ])
        .unwrap();
        let u = s.union_objects(oid("U"), oid("S1"), oid("S2")).unwrap();
        let i = s.intersect_objects(oid("I"), oid("S1"), oid("S2")).unwrap();
        assert_eq!(s.get(u).unwrap().children().len(), 3);
        let io = s.get(i).unwrap();
        assert_eq!(io.children(), &[oid("b")]);
        // Result objects take S1's label (paper §2).
        assert_eq!(io.label.as_str(), "things");
    }

    #[test]
    fn create_with_children_populates_parent_index() {
        let mut s = Store::new();
        s.create(Object::atom("c1", "x", 1i64)).unwrap();
        s.create(Object::set("p", "parent", &[oid("c1")])).unwrap();
        assert!(s.parents(oid("c1")).unwrap().contains(oid("p")));
    }
}
