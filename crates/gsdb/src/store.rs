//! The object store: owns all objects of one or more graph structured
//! databases and applies the basic updates of paper §4.1.
//!
//! The store is *conceptual-model faithful*: objects are
//! `<OID, label, type, value>` records, and every mutation flows through
//! [`Store::apply`] so that an update log can feed source monitors
//! (paper §5) and maintenance algorithms (paper §4).
//!
//! ## Arena layout
//!
//! Objects live in a dense slab of fixed-size **copy-on-write pages**
//! (`Vec<Arc<[Option<Object>; PAGE_SIZE]>>`-shaped, realized as
//! `Vec<Arc<Vec<…>>>`) addressed by a `u32` **slot id**; the
//! `Oid → slot` map exists only at the API boundary, so the traversal
//! hot path pays one fast-hash lookup per OID and then works with slab
//! offsets. Removed slots go on a free list and are reused by later
//! creates — object identity is the OID, so slot reuse never changes
//! what callers observe, and GC / snapshot-restore round-trips keep
//! `Oid → value` mappings stable.
//!
//! ## Copy-on-write cloning and epoch forks
//!
//! Pages and the three lookup maps (`Oid → slot`, parent index, label
//! index) sit behind `Arc`s, so [`Store::clone`] and [`Store::fork`]
//! are cheap: they bump reference counts instead of deep-copying
//! objects. The first mutation of a page (or a structural mutation of
//! a map) after a clone pays the copy via `Arc::make_mut`, privately —
//! the other side keeps observing the state it captured. This is what
//! lets a source publish an immutable post-commit snapshot of itself
//! into an [`EpochHandle`](crate::EpochHandle) on **every** committed
//! update without O(n) copying: readers traverse the published fork
//! while writers keep mutating the live store. Every successful
//! [`Store::apply`] also bumps a monotonically increasing
//! [`version`](Store::version), so commit protocols can skip
//! republishing untouched state.
//!
//! Two optional indexes accelerate the functions Algorithm 1 relies on:
//!
//! * the **parent index** — the paper's "inverse index such that from
//!   each node we can find out its parent" (§4.4), which makes
//!   `ancestor(N, p)` a cheap upward walk instead of a traversal from
//!   the root;
//! * the **label index** — label → objects, used by query planning.
//!
//! Both indexes store **slot ids** in sorted inline small-sets
//! ([`SmallSet`]), keyed by child OID (so replica stores may hold
//! dangling child references) and by label respectively.
//!
//! Object reads can increment an access counter, giving experiments a
//! machine-independent measure of "access to base data" — the cost the
//! paper's §4.4 discussion is about. Counting is off by default
//! (production reads skip even the counter bump); experiment harnesses
//! opt in with [`StoreConfig::count_accesses`].

use crate::fxhash::FastMap;
use crate::smallset::SmallSet;
use crate::{
    AppliedUpdate, Atom, GsdbError, Label, Object, Oid, Result, Update, Value,
};
use gsview_obs::Counter;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Slots per copy-on-write page (power of two: slot addressing is a
/// shift and a mask). 256 objects bounds the clone cost a writer pays
/// on the first touch of a shared page after an epoch fork.
const PAGE_SHIFT: u32 = 8;
/// Page capacity, in slots.
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
/// Mask extracting the within-page offset from a slot id.
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// One copy-on-write slab page, always `PAGE_SIZE` entries long.
type Page = Vec<Option<Object>>;

/// Shared read access to the slot behind `slot`, or `None` for free /
/// out-of-range slots. A free function (not a method) so mutation
/// paths can borrow `pages` disjointly from the index maps.
#[inline]
fn slot_ref(pages: &[Arc<Page>], slot: u32) -> Option<&Object> {
    pages
        .get((slot >> PAGE_SHIFT) as usize)
        .and_then(|p| p[(slot & PAGE_MASK) as usize].as_ref())
}

/// Exclusive access to the slot behind `slot`, copying the page first
/// if it is shared with a published epoch fork. Panics on
/// out-of-range slots — mutation paths only address allocated slots.
#[inline]
fn slot_mut(pages: &mut [Arc<Page>], slot: u32) -> &mut Option<Object> {
    &mut Arc::make_mut(&mut pages[(slot >> PAGE_SHIFT) as usize])[(slot & PAGE_MASK) as usize]
}

/// Store configuration.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Maintain the inverse (child → parents) index (paper §4.4).
    pub parent_index: bool,
    /// Maintain the label → objects index.
    pub label_index: bool,
    /// Record applied updates in the update log.
    pub log_updates: bool,
    /// Count object reads (experiment instrumentation, paper §4.4).
    /// Off by default so production reads pay nothing.
    pub count_accesses: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            parent_index: true,
            label_index: true,
            log_updates: false,
            count_accesses: false,
        }
    }
}

impl StoreConfig {
    /// This configuration with access counting enabled.
    pub fn counting(mut self) -> Self {
        self.count_accesses = true;
        self
    }
}

/// A borrowed set of objects from a store index (parent or label
/// index). Holds slot ids internally; iteration and membership work in
/// terms of [`Oid`]s, like the `OidSet` the seed layout returned.
#[derive(Clone, Copy, Debug)]
pub struct SlotSet<'a> {
    store: &'a Store,
    slots: &'a [u32],
}

impl<'a> SlotSet<'a> {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff no members.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Membership test (binary search over sorted slot ids).
    pub fn contains(&self, oid: Oid) -> bool {
        match self.store.slot_of(oid) {
            Some(s) => self.slots.binary_search(&s).is_ok(),
            None => false,
        }
    }

    /// Iterate members as OIDs (ascending slot order).
    pub fn iter(&self) -> impl Iterator<Item = Oid> + 'a {
        let store = self.store;
        self.slots.iter().map(move |&s| {
            slot_ref(&store.pages, s)
                .expect("index references live slot")
                .oid
        })
    }

    /// The raw slot ids (sorted ascending).
    pub fn slots(&self) -> &'a [u32] {
        self.slots
    }
}

/// An in-memory GSDB object store.
#[derive(Debug)]
pub struct Store {
    /// The slab: copy-on-write pages. `None` entries are free slots
    /// awaiting reuse (or the unallocated tail of the last page).
    pages: Vec<Arc<Page>>,
    /// Slots handed out so far (high-water mark, free slots included).
    len_slots: usize,
    /// OID → slot, the only full-key hash on the read path.
    /// Copy-on-write: structurally mutated via `Arc::make_mut`.
    slot_of: Arc<FastMap<Oid, u32>>,
    /// Free slots, reused LIFO by `Create`.
    free: Vec<u32>,
    /// child OID → sorted parent slots. Keyed by OID (not slot) so
    /// replica stores may index edges to children they don't hold.
    parent_index: Option<Arc<FastMap<Oid, SmallSet>>>,
    /// label → sorted member slots.
    label_index: Option<Arc<FastMap<Label, SmallSet>>>,
    log: Vec<AppliedUpdate>,
    log_enabled: bool,
    /// Bumped on every successful mutation; lets commit protocols skip
    /// republishing an untouched store.
    version: u64,
    count_accesses: AtomicBool,
    /// Sharded (per-thread-bucket) so parallel maintenance threads
    /// counting reads on a shared snapshot don't bounce a cache line.
    accesses: Counter,
    /// Cached result of `oids_sorted`, invalidated on create/remove.
    /// `Arc` inside so clones and forks share the cached vector.
    sorted_cache: RwLock<Option<Arc<Vec<Oid>>>>,
}

impl Default for Store {
    fn default() -> Self {
        Store {
            pages: Vec::new(),
            len_slots: 0,
            slot_of: Arc::new(FastMap::default()),
            free: Vec::new(),
            parent_index: None,
            label_index: None,
            log: Vec::new(),
            log_enabled: false,
            version: 0,
            count_accesses: AtomicBool::new(false),
            accesses: Counter::new("store.accesses"),
            sorted_cache: RwLock::new(None),
        }
    }
}

impl Clone for Store {
    /// A logically independent copy. Cheap: pages and index maps are
    /// shared copy-on-write, so the cost is reference-count bumps plus
    /// the free list and update log; either side pays the copy lazily
    /// on its next mutation of a shared structure.
    ///
    /// The `sorted_cache` is carried over as-is: it depends only on
    /// the OID set, which is identical at clone time, and every
    /// OID-set mutation (`Create` / `Remove`) invalidates it — see
    /// `oids_sorted_survives_mutation_interleavings` in
    /// `tests/store_properties.rs` for the property pinning this.
    fn clone(&self) -> Self {
        Store {
            pages: self.pages.clone(),
            len_slots: self.len_slots,
            slot_of: self.slot_of.clone(),
            free: self.free.clone(),
            parent_index: self.parent_index.clone(),
            label_index: self.label_index.clone(),
            log: self.log.clone(),
            log_enabled: self.log_enabled,
            version: self.version,
            count_accesses: AtomicBool::new(self.count_accesses.load(Ordering::Relaxed)),
            accesses: {
                let c = Counter::new("store.accesses");
                c.add(self.accesses.get());
                c
            },
            sorted_cache: RwLock::new(self.sorted_cache.read().unwrap().clone()),
        }
    }
}

impl Store {
    /// A store with the default configuration (both indexes, no log,
    /// no access counting).
    pub fn new() -> Self {
        Self::with_config(StoreConfig::default())
    }

    /// A store with the default configuration plus access counting —
    /// the experiment-harness constructor.
    pub fn counting() -> Self {
        Self::with_config(StoreConfig::default().counting())
    }

    /// A store with explicit configuration.
    pub fn with_config(cfg: StoreConfig) -> Self {
        Store {
            parent_index: cfg.parent_index.then(|| Arc::new(FastMap::default())),
            label_index: cfg.label_index.then(|| Arc::new(FastMap::default())),
            log_enabled: cfg.log_updates,
            count_accesses: AtomicBool::new(cfg.count_accesses),
            ..Store::default()
        }
    }

    /// Pre-size the slab and maps for `additional` more objects.
    pub fn reserve(&mut self, additional: usize) {
        self.pages
            .reserve(additional.saturating_sub(self.free.len()) / PAGE_SIZE + 1);
        Arc::make_mut(&mut self.slot_of).reserve(additional);
        if let Some(idx) = self.parent_index.as_mut() {
            Arc::make_mut(idx).reserve(additional);
        }
    }

    /// A read-only snapshot fork of this store: the same objects and
    /// indexes, shared copy-on-write, with an **empty update log** and
    /// logging disabled. This is the image a source publishes into an
    /// [`EpochHandle`](crate::EpochHandle) at commit time — readers
    /// traverse the fork while the live store keeps mutating (and
    /// keeps accumulating its own log for the monitor). Cost:
    /// reference-count bumps, independent of store size.
    pub fn fork(&self) -> Store {
        let mut fork = self.clone();
        fork.log = Vec::new();
        fork.log_enabled = false;
        fork
    }

    /// Monotonic mutation counter: bumped by every successful
    /// [`Store::apply`] and [`Store::insert_edge_unchecked`]. Equal
    /// versions ⇒ identical object state (within one store lineage),
    /// so commit protocols can skip republishing an untouched store.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// True iff no objects.
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// True iff an object with this OID exists.
    pub fn contains(&self, oid: Oid) -> bool {
        self.slot_of.contains_key(&oid)
    }

    #[inline]
    fn bump(&self) {
        if self.count_accesses.load(Ordering::Relaxed) {
            self.accesses.incr();
        }
    }

    // ------------------------------------------------------------------
    // Slot addressing
    // ------------------------------------------------------------------

    /// Slot id of an OID, if the object exists. Does not count an
    /// access — pair with [`Store::object_at`] / [`Store::children_at`]
    /// which do.
    #[inline]
    pub fn slot_of(&self, oid: Oid) -> Option<u32> {
        self.slot_of.get(&oid).copied()
    }

    /// The object in a slot (counts the access). `None` for free slots.
    #[inline]
    pub fn object_at(&self, slot: u32) -> Option<&Object> {
        self.bump();
        slot_ref(&self.pages, slot)
    }

    /// OID of the object in a slot. Does not count an access.
    #[inline]
    pub fn oid_at(&self, slot: u32) -> Option<Oid> {
        slot_ref(&self.pages, slot).map(|o| o.oid)
    }

    /// Children of the object in a slot (counts the access, like
    /// [`Store::children`]). Empty for atomic or free slots.
    #[inline]
    pub fn children_at(&self, slot: u32) -> &[Oid] {
        self.bump();
        slot_ref(&self.pages, slot).map(|o| o.children()).unwrap_or(&[])
    }

    /// Label of the object in a slot (counts the access, like
    /// [`Store::label`]).
    #[inline]
    pub fn label_at(&self, slot: u32) -> Option<Label> {
        self.bump();
        slot_ref(&self.pages, slot).map(|o| o.label)
    }

    /// Upper bound (exclusive) on slot ids currently in use; free slots
    /// below this bound exist. Sizes per-slot scratch tables.
    pub fn slot_bound(&self) -> usize {
        self.len_slots
    }

    // ------------------------------------------------------------------
    // OID-keyed reads
    // ------------------------------------------------------------------

    /// Look up an object, counting the access.
    pub fn get(&self, oid: Oid) -> Option<&Object> {
        self.bump();
        let slot = *self.slot_of.get(&oid)?;
        slot_ref(&self.pages, slot)
    }

    /// Look up an object or fail.
    pub fn require(&self, oid: Oid) -> Result<&Object> {
        self.get(oid).ok_or(GsdbError::NoSuchObject(oid))
    }

    /// Label of an object, if it exists.
    pub fn label(&self, oid: Oid) -> Option<Label> {
        self.get(oid).map(|o| o.label)
    }

    /// Children of a set object (empty slice for atomic or missing).
    pub fn children(&self, oid: Oid) -> &[Oid] {
        self.bump();
        self.slot_of
            .get(&oid)
            .and_then(|&s| slot_ref(&self.pages, s))
            .map(|o| o.children())
            .unwrap_or(&[])
    }

    /// Atomic value of an object, if atomic.
    pub fn atom(&self, oid: Oid) -> Option<&Atom> {
        self.get(oid).and_then(|o| o.atom_value())
    }

    /// Iterate all objects (slot order). Does not count accesses.
    pub fn iter(&self) -> impl Iterator<Item = &Object> {
        self.pages
            .iter()
            .flat_map(|p| p.iter())
            .filter_map(|s| s.as_ref())
    }

    /// All OIDs, sorted by name (deterministic). Cached between calls;
    /// creates and removes invalidate the cache.
    pub fn oids_sorted(&self) -> Vec<Oid> {
        if let Some(v) = self.sorted_cache.read().unwrap().as_ref() {
            return v.as_ref().clone();
        }
        let mut v: Vec<Oid> = self.slot_of.keys().copied().collect();
        v.sort_by_key(|o| o.name());
        *self.sorted_cache.write().unwrap() = Some(Arc::new(v.clone()));
        v
    }

    fn invalidate_sorted(&mut self) {
        *self.sorted_cache.get_mut().unwrap() = None;
    }

    // ------------------------------------------------------------------
    // Access accounting
    // ------------------------------------------------------------------

    /// Number of object reads since construction / last reset. This is
    /// the "access to base data" cost the paper's §4.4 analysis uses.
    /// Always 0 unless [`StoreConfig::count_accesses`] was set.
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }

    /// Reset the access counter.
    pub fn reset_accesses(&self) {
        self.accesses.reset();
    }

    /// True iff reads are counted.
    pub fn counts_accesses(&self) -> bool {
        self.count_accesses.load(Ordering::Relaxed)
    }

    /// Turn access counting on or off after construction. Experiment
    /// harnesses use this to instrument stores they don't build
    /// themselves (e.g. a view's internal store).
    pub fn set_count_accesses(&self, on: bool) {
        self.count_accesses.store(on, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Indexes
    // ------------------------------------------------------------------

    /// True iff the inverse (parent) index is maintained.
    pub fn has_parent_index(&self) -> bool {
        self.parent_index.is_some()
    }

    /// Parents of an object, from the inverse index. `None` if the index
    /// is disabled (callers must then traverse — exactly the trade-off
    /// of paper §4.4).
    pub fn parents(&self, oid: Oid) -> Option<SlotSet<'_>> {
        self.bump();
        self.parent_index.as_ref().map(|idx| SlotSet {
            store: self,
            slots: idx.get(&oid).map(|s| s.as_slice()).unwrap_or(&[]),
        })
    }

    /// Objects with a given label, from the label index. `None` if the
    /// index is disabled.
    pub fn with_label(&self, label: Label) -> Option<SlotSet<'_>> {
        self.label_index.as_ref().map(|idx| SlotSet {
            store: self,
            slots: idx.get(&label).map(|s| s.as_slice()).unwrap_or(&[]),
        })
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Insert a fresh object record. Fails on duplicate OID.
    pub fn create(&mut self, object: Object) -> Result<()> {
        self.apply(Update::Create { object }).map(|_| ())
    }

    /// Create many objects at once (setup convenience).
    pub fn create_all(&mut self, objects: impl IntoIterator<Item = Object>) -> Result<()> {
        for o in objects {
            self.create(o)?;
        }
        Ok(())
    }

    /// `insert(parent, child)` — paper §4.1 update 1.
    pub fn insert_edge(&mut self, parent: Oid, child: Oid) -> Result<AppliedUpdate> {
        self.apply(Update::Insert { parent, child })
    }

    /// `delete(parent, child)` — paper §4.1 update 2.
    pub fn delete_edge(&mut self, parent: Oid, child: Oid) -> Result<AppliedUpdate> {
        self.apply(Update::Delete { parent, child })
    }

    /// Insert `child` into `parent`'s set without requiring `child` to
    /// exist in this store. Replica stores (e.g. a warehouse-side
    /// cache) hold copies of objects whose sets may reference children
    /// outside the replicated region; those references stay dangling,
    /// exactly as [`Store::create`] leaves them when a copied object
    /// arrives with unknown children. Not logged — this is replica
    /// bookkeeping, not a base update.
    pub fn insert_edge_unchecked(&mut self, parent: Oid, child: Oid) -> Result<()> {
        let pslot = *self
            .slot_of
            .get(&parent)
            .ok_or(GsdbError::NoSuchObject(parent))?;
        let pobj = slot_mut(&mut self.pages, pslot).as_mut().unwrap();
        let set = pobj.value.as_set_mut().ok_or(GsdbError::NotASet(parent))?;
        set.insert(child);
        if let Some(idx) = self.parent_index.as_mut() {
            Arc::make_mut(idx).entry(child).or_default().insert(pslot);
        }
        self.version += 1;
        Ok(())
    }

    /// `modify(oid, oldv, newv)` — paper §4.1 update 3 (old value is
    /// captured from the store).
    pub fn modify_atom(&mut self, oid: Oid, new: impl Into<Atom>) -> Result<AppliedUpdate> {
        self.apply(Update::Modify {
            oid,
            new: new.into(),
        })
    }

    /// Apply a basic update, validating it and maintaining indexes and
    /// the update log. Returns the applied form (with old values).
    pub fn apply(&mut self, update: Update) -> Result<AppliedUpdate> {
        let applied = match update {
            Update::Insert { parent, child } => {
                if !self.slot_of.contains_key(&child) {
                    return Err(GsdbError::NoSuchObject(child));
                }
                let pslot = *self
                    .slot_of
                    .get(&parent)
                    .ok_or(GsdbError::NoSuchObject(parent))?;
                let pobj = slot_mut(&mut self.pages, pslot).as_mut().unwrap();
                let set = pobj.value.as_set_mut().ok_or(GsdbError::NotASet(parent))?;
                set.insert(child);
                if let Some(idx) = self.parent_index.as_mut() {
                    Arc::make_mut(idx).entry(child).or_default().insert(pslot);
                }
                AppliedUpdate::Insert { parent, child }
            }
            Update::Delete { parent, child } => {
                let pslot = *self
                    .slot_of
                    .get(&parent)
                    .ok_or(GsdbError::NoSuchObject(parent))?;
                let pobj = slot_mut(&mut self.pages, pslot).as_mut().unwrap();
                let set = pobj.value.as_set_mut().ok_or(GsdbError::NotASet(parent))?;
                if !set.remove(child) {
                    return Err(GsdbError::NotAChild { parent, child });
                }
                if let Some(idx) = self.parent_index.as_mut() {
                    if let Some(ps) = Arc::make_mut(idx).get_mut(&child) {
                        ps.remove(pslot);
                    }
                }
                AppliedUpdate::Delete { parent, child }
            }
            Update::Modify { oid, new } => {
                let slot = *self
                    .slot_of
                    .get(&oid)
                    .ok_or(GsdbError::NoSuchObject(oid))?;
                let obj = slot_mut(&mut self.pages, slot).as_mut().unwrap();
                let old = match &mut obj.value {
                    Value::Atom(a) => std::mem::replace(a, new.clone()),
                    Value::Set(_) => return Err(GsdbError::NotAtomic(oid)),
                };
                AppliedUpdate::Modify { oid, old, new }
            }
            Update::Create { object } => {
                if self.slot_of.contains_key(&object.oid) {
                    return Err(GsdbError::DuplicateOid(object.oid));
                }
                let oid = object.oid;
                // Reuse a freed slot if one exists; identity is the
                // OID, so reuse is invisible to callers.
                let slot = match self.free.pop() {
                    Some(s) => s,
                    None => {
                        let s = self.len_slots as u32;
                        if (s >> PAGE_SHIFT) as usize == self.pages.len() {
                            self.pages.push(Arc::new(vec![None; PAGE_SIZE]));
                        }
                        self.len_slots += 1;
                        s
                    }
                };
                if let Some(idx) = self.label_index.as_mut() {
                    Arc::make_mut(idx).entry(object.label).or_default().insert(slot);
                }
                if let Some(idx) = self.parent_index.as_mut() {
                    // A created object may arrive with children already in
                    // its set value; index those edges.
                    let idx = Arc::make_mut(idx);
                    for c in object.children() {
                        idx.entry(*c).or_default().insert(slot);
                    }
                }
                *slot_mut(&mut self.pages, slot) = Some(object);
                Arc::make_mut(&mut self.slot_of).insert(oid, slot);
                self.invalidate_sorted();
                AppliedUpdate::Create { oid }
            }
            Update::Remove { oid } => {
                if !self.slot_of.contains_key(&oid) {
                    return Err(GsdbError::NoSuchObject(oid));
                }
                let slot = Arc::make_mut(&mut self.slot_of).remove(&oid).unwrap();
                let obj = slot_mut(&mut self.pages, slot).take().unwrap();
                self.free.push(slot);
                if let Some(idx) = self.label_index.as_mut() {
                    if let Some(s) = Arc::make_mut(idx).get_mut(&obj.label) {
                        s.remove(slot);
                    }
                }
                if let Some(idx) = self.parent_index.as_mut() {
                    let idx = Arc::make_mut(idx);
                    for c in obj.children() {
                        if let Some(ps) = idx.get_mut(c) {
                            ps.remove(slot);
                        }
                    }
                    // The entry for `oid` *as a child* records edges
                    // into it, and Remove leaves those dangling in the
                    // parents' sets (replica semantics) — so the entry
                    // must survive, or a later re-Create of the same
                    // OID resurrects the edges with an empty index.
                    // Drop it only when no parent references remain.
                    if idx.get(&oid).is_some_and(|ps| ps.is_empty()) {
                        idx.remove(&oid);
                    }
                }
                self.invalidate_sorted();
                AppliedUpdate::Remove { oid }
            }
        };
        if self.log_enabled {
            self.log.push(applied.clone());
        }
        self.version += 1;
        gsview_obs::event!(
            "store.apply",
            "kind" = match &applied {
                AppliedUpdate::Insert { .. } => "insert",
                AppliedUpdate::Delete { .. } => "delete",
                AppliedUpdate::Modify { .. } => "modify",
                AppliedUpdate::Create { .. } => "create",
                AppliedUpdate::Remove { .. } => "remove",
            },
            "version" = self.version,
        );
        Ok(applied)
    }

    // ------------------------------------------------------------------
    // Update log
    // ------------------------------------------------------------------

    /// Drain the update log (the source monitor's feed, paper §5).
    pub fn drain_log(&mut self) -> Vec<AppliedUpdate> {
        std::mem::take(&mut self.log)
    }

    /// Peek the update log.
    pub fn log(&self) -> &[AppliedUpdate] {
        &self.log
    }

    // ------------------------------------------------------------------
    // Set operations on set objects (paper §2)
    // ------------------------------------------------------------------

    /// `union(S1, S2)`: a new object whose value is
    /// `value(S1) ∪ value(S2)`, with a fresh OID and S1's label.
    pub fn union_objects(&mut self, fresh_oid: Oid, s1: Oid, s2: Oid) -> Result<Oid> {
        let (label, v1) = {
            let o1 = self.require(s1)?;
            (o1.label, o1.value.as_set().ok_or(GsdbError::NotASet(s1))?.clone())
        };
        let v2 = {
            let o2 = self.require(s2)?;
            o2.value.as_set().ok_or(GsdbError::NotASet(s2))?.clone()
        };
        self.create(Object {
            oid: fresh_oid,
            label,
            value: Value::Set(v1.union(&v2)),
        })?;
        Ok(fresh_oid)
    }

    /// `int(S1, S2)`: a new object whose value is
    /// `value(S1) ∩ value(S2)`, with a fresh OID and S1's label.
    pub fn intersect_objects(&mut self, fresh_oid: Oid, s1: Oid, s2: Oid) -> Result<Oid> {
        let (label, v1) = {
            let o1 = self.require(s1)?;
            (o1.label, o1.value.as_set().ok_or(GsdbError::NotASet(s1))?.clone())
        };
        let v2 = {
            let o2 = self.require(s2)?;
            o2.value.as_set().ok_or(GsdbError::NotASet(s2))?.clone()
        };
        self.create(Object {
            oid: fresh_oid,
            label,
            value: Value::Set(v1.intersection(&v2)),
        })?;
        Ok(fresh_oid)
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests / proptests)
    // ------------------------------------------------------------------

    /// Check the arena + index invariants. Used by property tests to
    /// verify free-list reuse never corrupts the store.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        let live = self.iter().count();
        if live != self.slot_of.len() {
            return Err(format!(
                "live slots {} != slot_of entries {}",
                live,
                self.slot_of.len()
            ));
        }
        // Every allocated slot is either live or on the free list.
        if live + self.free.len() != self.len_slots {
            return Err(format!(
                "live {} + free {} != allocated slots {}",
                live,
                self.free.len(),
                self.len_slots
            ));
        }
        if self.len_slots > self.pages.len() * PAGE_SIZE {
            return Err(format!(
                "slot high-water mark {} exceeds page capacity {}",
                self.len_slots,
                self.pages.len() * PAGE_SIZE
            ));
        }
        for (oid, &slot) in self.slot_of.iter() {
            match slot_ref(&self.pages, slot) {
                Some(o) if o.oid == *oid => {}
                _ => return Err(format!("slot_of[{}] -> dead or mismatched slot", oid.name())),
            }
        }
        for &f in &self.free {
            if (f as usize) >= self.len_slots || slot_ref(&self.pages, f).is_some() {
                return Err(format!("free slot {f} is live or out of bounds"));
            }
        }
        if let Some(idx) = self.label_index.as_deref() {
            for (label, set) in idx {
                for slot in set.iter() {
                    match slot_ref(&self.pages, slot) {
                        Some(o) if o.label == *label => {}
                        _ => {
                            return Err(format!(
                                "label index [{}] references slot {slot} without that label",
                                label.as_str()
                            ))
                        }
                    }
                }
            }
            for obj in self.iter() {
                let slot = self.slot_of[&obj.oid];
                if !idx.get(&obj.label).map(|s| s.contains(slot)).unwrap_or(false) {
                    return Err(format!("label index missing {}", obj.oid.name()));
                }
            }
        }
        if let Some(idx) = self.parent_index.as_deref() {
            for (child, set) in idx {
                for pslot in set.iter() {
                    match slot_ref(&self.pages, pslot) {
                        Some(p) if p.children().contains(child) => {}
                        _ => {
                            return Err(format!(
                                "parent index [{}] references slot {pslot} lacking that edge",
                                child.name()
                            ))
                        }
                    }
                }
            }
            for obj in self.iter() {
                let slot = self.slot_of[&obj.oid];
                for c in obj.children() {
                    if !idx.get(c).map(|s| s.contains(slot)).unwrap_or(false) {
                        return Err(format!(
                            "parent index missing edge {} -> {}",
                            obj.oid.name(),
                            c.name()
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn tiny_store() -> Store {
        let mut s = Store::counting();
        s.create_all([
            Object::set("ROOT", "person", &[oid("P1")]),
            Object::set("P1", "professor", &[oid("A1")]),
            Object::atom("A1", "age", 45i64),
        ])
        .unwrap();
        s
    }

    #[test]
    fn create_and_get() {
        let s = tiny_store();
        assert_eq!(s.len(), 3);
        assert_eq!(s.label(oid("P1")).unwrap().as_str(), "professor");
        assert_eq!(s.atom(oid("A1")), Some(&Atom::Int(45)));
        assert!(s.get(oid("NOPE")).is_none());
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut s = tiny_store();
        let err = s.create(Object::atom("A1", "age", 1i64)).unwrap_err();
        assert_eq!(err, GsdbError::DuplicateOid(oid("A1")));
    }

    #[test]
    fn insert_edge_updates_value_and_parent_index() {
        let mut s = tiny_store();
        s.create(Object::atom("N1", "name", "John")).unwrap();
        s.insert_edge(oid("P1"), oid("N1")).unwrap();
        assert!(s.get(oid("P1")).unwrap().children().contains(&oid("N1")));
        assert!(s.parents(oid("N1")).unwrap().contains(oid("P1")));
    }

    #[test]
    fn insert_into_atomic_rejected() {
        let mut s = tiny_store();
        let err = s.insert_edge(oid("A1"), oid("P1")).unwrap_err();
        assert_eq!(err, GsdbError::NotASet(oid("A1")));
    }

    #[test]
    fn insert_unknown_child_rejected() {
        let mut s = tiny_store();
        let err = s.insert_edge(oid("P1"), oid("GHOST")).unwrap_err();
        assert_eq!(err, GsdbError::NoSuchObject(oid("GHOST")));
    }

    #[test]
    fn delete_edge_and_not_a_child() {
        let mut s = tiny_store();
        s.delete_edge(oid("ROOT"), oid("P1")).unwrap();
        assert!(s.get(oid("ROOT")).unwrap().children().is_empty());
        assert!(!s.parents(oid("P1")).unwrap().contains(oid("ROOT")));
        let err = s.delete_edge(oid("ROOT"), oid("P1")).unwrap_err();
        assert_eq!(
            err,
            GsdbError::NotAChild {
                parent: oid("ROOT"),
                child: oid("P1")
            }
        );
    }

    #[test]
    fn modify_captures_old_value() {
        let mut s = tiny_store();
        let applied = s.modify_atom(oid("A1"), 46i64).unwrap();
        assert_eq!(
            applied,
            AppliedUpdate::Modify {
                oid: oid("A1"),
                old: Atom::Int(45),
                new: Atom::Int(46),
            }
        );
        assert_eq!(s.atom(oid("A1")), Some(&Atom::Int(46)));
    }

    #[test]
    fn modify_set_object_rejected() {
        let mut s = tiny_store();
        let err = s.modify_atom(oid("P1"), 1i64).unwrap_err();
        assert_eq!(err, GsdbError::NotAtomic(oid("P1")));
    }

    #[test]
    fn update_log_records_applied_updates() {
        let mut s = Store::with_config(StoreConfig {
            log_updates: true,
            ..StoreConfig::default()
        });
        s.create(Object::empty_set("R", "root")).unwrap();
        s.create(Object::atom("X", "x", 1i64)).unwrap();
        s.insert_edge(oid("R"), oid("X")).unwrap();
        s.modify_atom(oid("X"), 2i64).unwrap();
        let log = s.drain_log();
        assert_eq!(log.len(), 4);
        assert!(matches!(log[2], AppliedUpdate::Insert { .. }));
        assert!(matches!(log[3], AppliedUpdate::Modify { .. }));
        assert!(s.log().is_empty());
    }

    #[test]
    fn label_index_tracks_create_remove() {
        let mut s = tiny_store();
        let prof = Label::new("professor");
        assert!(s.with_label(prof).unwrap().contains(oid("P1")));
        s.delete_edge(oid("ROOT"), oid("P1")).unwrap();
        s.apply(Update::Remove { oid: oid("P1") }).unwrap();
        assert!(!s.with_label(prof).unwrap().contains(oid("P1")));
    }

    #[test]
    fn disabled_indexes_return_none() {
        let s = Store::with_config(StoreConfig {
            parent_index: false,
            label_index: false,
            ..StoreConfig::default()
        });
        assert!(s.parents(oid("X")).is_none());
        assert!(s.with_label(Label::new("y")).is_none());
        assert!(!s.has_parent_index());
    }

    #[test]
    fn access_counter_counts_reads() {
        let s = tiny_store();
        s.reset_accesses();
        let _ = s.get(oid("P1"));
        let _ = s.children(oid("ROOT"));
        assert_eq!(s.accesses(), 2);
        s.reset_accesses();
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn counting_disabled_by_default() {
        let s = Store::new();
        let _ = s.get(oid("anything"));
        assert_eq!(s.accesses(), 0);
        assert!(!s.counts_accesses());
    }

    #[test]
    fn union_and_intersect_objects() {
        let mut s = Store::new();
        s.create_all([
            Object::atom("a", "x", 1i64),
            Object::atom("b", "x", 2i64),
            Object::atom("c", "x", 3i64),
            Object::set("S1", "things", &[oid("a"), oid("b")]),
            Object::set("S2", "things", &[oid("b"), oid("c")]),
        ])
        .unwrap();
        let u = s.union_objects(oid("U"), oid("S1"), oid("S2")).unwrap();
        let i = s.intersect_objects(oid("I"), oid("S1"), oid("S2")).unwrap();
        assert_eq!(s.get(u).unwrap().children().len(), 3);
        let io = s.get(i).unwrap();
        assert_eq!(io.children(), &[oid("b")]);
        // Result objects take S1's label (paper §2).
        assert_eq!(io.label.as_str(), "things");
    }

    #[test]
    fn create_with_children_populates_parent_index() {
        let mut s = Store::new();
        s.create(Object::atom("c1", "x", 1i64)).unwrap();
        s.create(Object::set("p", "parent", &[oid("c1")])).unwrap();
        assert!(s.parents(oid("c1")).unwrap().contains(oid("p")));
    }

    #[test]
    fn freed_slots_are_reused_and_oids_stay_stable() {
        let mut s = Store::new();
        s.create(Object::atom("A", "x", 1i64)).unwrap();
        s.create(Object::atom("B", "x", 2i64)).unwrap();
        let b_slot = s.slot_of(oid("B")).unwrap();
        s.apply(Update::Remove { oid: oid("B") }).unwrap();
        s.create(Object::atom("C", "y", 3i64)).unwrap();
        // C takes B's slot, but lookups by OID are unaffected.
        assert_eq!(s.slot_of(oid("C")), Some(b_slot));
        assert!(s.slot_of(oid("B")).is_none());
        assert_eq!(s.atom(oid("A")), Some(&Atom::Int(1)));
        assert_eq!(s.atom(oid("C")), Some(&Atom::Int(3)));
        assert_eq!(s.slot_bound(), 2);
        s.check_invariants().unwrap();
    }

    #[test]
    fn slot_reuse_does_not_alias_label_index() {
        let mut s = Store::new();
        s.create(Object::atom("A", "old", 1i64)).unwrap();
        s.apply(Update::Remove { oid: oid("A") }).unwrap();
        s.create(Object::atom("B", "new", 2i64)).unwrap();
        // B reused A's slot; the "old" label set must not claim it.
        assert!(s.with_label(Label::new("old")).unwrap().is_empty());
        assert!(s.with_label(Label::new("new")).unwrap().contains(oid("B")));
        s.check_invariants().unwrap();
    }

    #[test]
    fn recreated_oid_keeps_its_dangling_edges_indexed() {
        // Found by `oids_sorted_survives_mutation_interleavings`:
        // Remove leaves edges into the removed object dangling in the
        // parents' sets, so the parent-index entry for the removed OID
        // must survive — a later Create of the same OID makes those
        // edges live again, and the index has to agree.
        let mut s = Store::new();
        s.create(Object::empty_set("R", "root")).unwrap();
        s.create(Object::atom("A", "age", 1i64)).unwrap();
        s.insert_edge(oid("R"), oid("A")).unwrap();
        s.apply(Update::Remove { oid: oid("A") }).unwrap();
        // R still lists A (dangling). Re-create A: the edge is live.
        s.create(Object::atom("A", "age", 2i64)).unwrap();
        assert!(s.parents(oid("A")).unwrap().contains(oid("R")));
        s.check_invariants().unwrap();
        // Once the last referencing parent drops the edge, the entry
        // is gone for good.
        s.delete_edge(oid("R"), oid("A")).unwrap();
        s.apply(Update::Remove { oid: oid("A") }).unwrap();
        assert!(s.parents(oid("A")).unwrap().is_empty());
        s.check_invariants().unwrap();
    }

    #[test]
    fn oids_sorted_cache_invalidation() {
        let mut s = tiny_store();
        let before = s.oids_sorted();
        assert_eq!(before, s.oids_sorted()); // cached path
        s.create(Object::atom("A0", "age", 1i64)).unwrap();
        let after = s.oids_sorted();
        assert_eq!(after.len(), before.len() + 1);
        assert!(after.contains(&oid("A0")));
        s.apply(Update::Remove { oid: oid("A0") }).unwrap();
        assert_eq!(s.oids_sorted(), before);
    }

    #[test]
    fn fork_is_isolated_from_later_writes() {
        let mut s = Store::with_config(StoreConfig {
            log_updates: true,
            ..StoreConfig::default()
        });
        s.create(Object::atom("A", "age", 45i64)).unwrap();
        let fork = s.fork();
        assert!(fork.log().is_empty(), "forks never carry the live log");

        // Mutate every structure the fork shares: page (modify),
        // slot_of + indexes (create/remove), edges (insert/delete).
        s.modify_atom(oid("A"), 46i64).unwrap();
        s.create(Object::set("S", "set", &[oid("A")])).unwrap();
        s.delete_edge(oid("S"), oid("A")).unwrap();
        s.apply(Update::Remove { oid: oid("A") }).unwrap();

        // The fork still observes the capture-time state.
        assert_eq!(fork.atom(oid("A")), Some(&Atom::Int(45)));
        assert_eq!(fork.len(), 1);
        assert!(!fork.contains(oid("S")));
        assert!(fork.with_label(Label::new("age")).unwrap().contains(oid("A")));
        fork.check_invariants().unwrap();
        s.check_invariants().unwrap();

        // And the live store moved on.
        assert!(!s.contains(oid("A")));
        assert!(s.contains(oid("S")));
    }

    #[test]
    fn cloned_store_mutates_independently_both_ways() {
        let mut a = tiny_store();
        let mut b = a.clone();
        a.modify_atom(oid("A1"), 1i64).unwrap();
        b.modify_atom(oid("A1"), 2i64).unwrap();
        b.create(Object::atom("B1", "age", 3i64)).unwrap();
        assert_eq!(a.atom(oid("A1")), Some(&Atom::Int(1)));
        assert_eq!(b.atom(oid("A1")), Some(&Atom::Int(2)));
        assert!(!a.contains(oid("B1")));
        a.check_invariants().unwrap();
        b.check_invariants().unwrap();
    }

    #[test]
    fn version_counts_successful_mutations_only() {
        let mut s = tiny_store();
        let v0 = s.version();
        s.modify_atom(oid("A1"), 46i64).unwrap();
        assert_eq!(s.version(), v0 + 1);
        s.modify_atom(oid("NOPE"), 1i64).unwrap_err();
        assert_eq!(s.version(), v0 + 1, "failed updates do not bump");
        s.insert_edge_unchecked(oid("P1"), oid("GHOST")).unwrap();
        assert_eq!(s.version(), v0 + 2);
        let _ = s.oids_sorted();
        assert_eq!(s.version(), v0 + 2, "reads do not bump");
    }

    #[test]
    fn slabs_span_multiple_pages() {
        let mut s = Store::new();
        let n = PAGE_SIZE * 2 + 17;
        for i in 0..n {
            s.create(Object::atom(format!("o{i}").as_str(), "x", i as i64))
                .unwrap();
        }
        assert_eq!(s.len(), n);
        assert_eq!(s.slot_bound(), n);
        assert_eq!(s.iter().count(), n);
        // Spot-check an object on each page.
        for i in [0, PAGE_SIZE, 2 * PAGE_SIZE + 16] {
            assert_eq!(
                s.atom(Oid::new(&format!("o{i}"))),
                Some(&Atom::Int(i as i64))
            );
        }
        s.check_invariants().unwrap();
    }

    #[test]
    fn reserve_is_usable_and_harmless() {
        let mut s = Store::new();
        s.reserve(1000);
        for i in 0..100 {
            s.create(Object::atom(format!("o{i}").as_str(), "x", i as i64))
                .unwrap();
        }
        assert_eq!(s.len(), 100);
        s.check_invariants().unwrap();
    }
}
