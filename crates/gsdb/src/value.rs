//! Object values: atomic values and ordered sets of OIDs.
//!
//! Paper §2: "Each object either has an atomic type, such as integer or
//! string, or has a set type. The value of a set object is a set of OIDs
//! of other objects."

use crate::{Label, Oid};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An atomic value.
///
/// `Tagged` covers domain-specific atomic types such as the paper's
/// `dollar` type (`<S1, salary, dollar, $100,000>`): a unit label plus an
/// integer magnitude.
#[derive(Clone, Debug, PartialEq)]
pub enum Atom {
    /// Integer.
    Int(i64),
    /// Floating point.
    Real(f64),
    /// String.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// A tagged quantity, e.g. `dollar 100000`.
    Tagged(Label, i64),
}

impl Atom {
    /// Build a string atom.
    pub fn str(s: &str) -> Self {
        Atom::Str(Arc::from(s))
    }

    /// Build a tagged atom, e.g. `Atom::tagged("dollar", 100_000)`.
    pub fn tagged(unit: &str, magnitude: i64) -> Self {
        Atom::Tagged(Label::new(unit), magnitude)
    }

    /// The paper's *type* field, inferred from the value (paper §2:
    /// "For an atomic object, we omit the type since it can be inferred
    /// by its value").
    pub fn type_name(&self) -> &'static str {
        match self {
            Atom::Int(_) => "integer",
            Atom::Real(_) => "real",
            Atom::Str(_) => "string",
            Atom::Bool(_) => "boolean",
            Atom::Tagged(unit, _) => unit.as_str(),
        }
    }

    /// Numeric interpretation, if any. `Tagged` values compare by
    /// magnitude (so `$100,000 > $50,000` works as expected).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Atom::Int(i) => Some(*i as f64),
            Atom::Real(r) => Some(*r),
            Atom::Tagged(_, m) => Some(*m as f64),
            Atom::Bool(_) | Atom::Str(_) => None,
        }
    }

    /// String interpretation, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Atom::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Compare two atoms for condition evaluation.
    ///
    /// Numbers (including tagged quantities) compare numerically, strings
    /// lexicographically, booleans as `false < true`. Mixed-kind
    /// comparisons return `None` — the paper's `cond()` simply never
    /// holds for them.
    pub fn partial_cmp_atom(&self, other: &Atom) -> Option<Ordering> {
        match (self, other) {
            (Atom::Str(a), Atom::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Atom::Bool(a), Atom::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Int(i) => write!(f, "{i}"),
            Atom::Real(r) => write!(f, "{r}"),
            Atom::Str(s) => write!(f, "'{s}'"),
            Atom::Bool(b) => write!(f, "{b}"),
            Atom::Tagged(unit, m) => write!(f, "{unit} {m}"),
        }
    }
}

impl From<i64> for Atom {
    fn from(i: i64) -> Self {
        Atom::Int(i)
    }
}
impl From<f64> for Atom {
    fn from(r: f64) -> Self {
        Atom::Real(r)
    }
}
impl From<&str> for Atom {
    fn from(s: &str) -> Self {
        Atom::str(s)
    }
}
impl From<bool> for Atom {
    fn from(b: bool) -> Self {
        Atom::Bool(b)
    }
}

/// An ordered set of OIDs: the value of a set object.
///
/// Semantics are set semantics (no duplicates — paper §2), but we keep a
/// deterministic iteration order so that examples print the way the
/// paper's figures do and benchmarks are reproducible. Membership and
/// insertion are O(1); removal is O(1) via swap-remove (sets are
/// unordered in the model, so the order perturbation is harmless).
#[derive(Clone, Default)]
pub struct OidSet {
    items: Vec<Oid>,
    index: HashMap<Oid, usize>,
}

impl OidSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty set with capacity.
    pub fn with_capacity(cap: usize) -> Self {
        OidSet {
            items: Vec::with_capacity(cap),
            index: HashMap::with_capacity(cap),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, oid: Oid) -> bool {
        self.index.contains_key(&oid)
    }

    /// Insert; returns `true` if newly added.
    pub fn insert(&mut self, oid: Oid) -> bool {
        if self.contains(oid) {
            return false;
        }
        self.index.insert(oid, self.items.len());
        self.items.push(oid);
        true
    }

    /// Remove; returns `true` if it was present.
    pub fn remove(&mut self, oid: Oid) -> bool {
        let Some(pos) = self.index.remove(&oid) else {
            return false;
        };
        self.items.swap_remove(pos);
        if let Some(&moved) = self.items.get(pos) {
            self.index.insert(moved, pos);
        }
        true
    }

    /// Iterate members in deterministic (storage) order.
    pub fn iter(&self) -> impl Iterator<Item = Oid> + '_ {
        self.items.iter().copied()
    }

    /// Members as a slice.
    pub fn as_slice(&self) -> &[Oid] {
        &self.items
    }

    /// Set union (paper §2 `union(S1, S2)` value computation).
    pub fn union(&self, other: &OidSet) -> OidSet {
        let mut out = self.clone();
        for o in other.iter() {
            out.insert(o);
        }
        out
    }

    /// Set intersection (paper §2 `int(S1, S2)` value computation).
    pub fn intersection(&self, other: &OidSet) -> OidSet {
        let mut out = OidSet::with_capacity(self.len().min(other.len()));
        for o in self.iter() {
            if other.contains(o) {
                out.insert(o);
            }
        }
        out
    }

    /// Sorted copy of the members (for canonical comparisons in tests).
    pub fn sorted(&self) -> Vec<Oid> {
        let mut v = self.items.clone();
        v.sort();
        v
    }

}

impl PartialEq for OidSet {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.items.iter().all(|&o| other.contains(o))
    }
}
impl Eq for OidSet {}

impl FromIterator<Oid> for OidSet {
    fn from_iter<T: IntoIterator<Item = Oid>>(iter: T) -> Self {
        let mut s = OidSet::new();
        for o in iter {
            s.insert(o);
        }
        s
    }
}

impl<'a> IntoIterator for &'a OidSet {
    type Item = Oid;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Oid>>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter().copied()
    }
}

impl fmt::Debug for OidSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.items.iter()).finish()
    }
}

impl fmt::Display for OidSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, o) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{o}")?;
        }
        write!(f, "}}")
    }
}

/// The value field of an object: atomic or a set of OIDs.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// An atomic value.
    Atom(Atom),
    /// A set of child OIDs.
    Set(OidSet),
}

impl Value {
    /// Empty set value.
    pub fn empty_set() -> Self {
        Value::Set(OidSet::new())
    }

    /// Set value from OIDs.
    pub fn set_of(oids: impl IntoIterator<Item = Oid>) -> Self {
        Value::Set(oids.into_iter().collect())
    }

    /// The contained atom, if atomic.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Value::Atom(a) => Some(a),
            Value::Set(_) => None,
        }
    }

    /// The contained OID set, if a set.
    pub fn as_set(&self) -> Option<&OidSet> {
        match self {
            Value::Set(s) => Some(s),
            Value::Atom(_) => None,
        }
    }

    /// Mutable OID set, if a set.
    pub fn as_set_mut(&mut self) -> Option<&mut OidSet> {
        match self {
            Value::Set(s) => Some(s),
            Value::Atom(_) => None,
        }
    }

    /// True iff a set value.
    pub fn is_set(&self) -> bool {
        matches!(self, Value::Set(_))
    }

    /// The paper's *type* field.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Atom(a) => a.type_name(),
            Value::Set(_) => "set",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Atom(a) => write!(f, "{a}"),
            Value::Set(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    #[test]
    fn oidset_insert_contains_remove() {
        let mut s = OidSet::new();
        assert!(s.insert(oid("A")));
        assert!(!s.insert(oid("A")), "duplicates rejected");
        assert!(s.insert(oid("B")));
        assert!(s.contains(oid("A")));
        assert_eq!(s.len(), 2);
        assert!(s.remove(oid("A")));
        assert!(!s.remove(oid("A")));
        assert!(!s.contains(oid("A")));
        assert!(s.contains(oid("B")));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn oidset_swap_remove_keeps_index_consistent() {
        let mut s: OidSet = ["A", "B", "C", "D"].iter().map(|n| oid(n)).collect();
        s.remove(oid("B"));
        // D was swapped into B's slot; all remaining members must resolve.
        for n in ["A", "C", "D"] {
            assert!(s.contains(oid(n)), "{n} lost after swap_remove");
        }
        s.remove(oid("D"));
        assert!(s.contains(oid("A")) && s.contains(oid("C")));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn oidset_equality_is_order_insensitive() {
        let a: OidSet = ["X", "Y", "Z"].iter().map(|n| oid(n)).collect();
        let b: OidSet = ["Z", "X", "Y"].iter().map(|n| oid(n)).collect();
        assert_eq!(a, b);
        let c: OidSet = ["X", "Y"].iter().map(|n| oid(n)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn oidset_union_intersection() {
        let a: OidSet = ["1", "2", "3"].iter().map(|n| oid(n)).collect();
        let b: OidSet = ["2", "3", "4"].iter().map(|n| oid(n)).collect();
        let u = a.union(&b);
        let i = a.intersection(&b);
        assert_eq!(u.len(), 4);
        assert_eq!(i.len(), 2);
        assert!(i.contains(oid("2")) && i.contains(oid("3")));
    }

    #[test]
    fn atom_comparisons() {
        use std::cmp::Ordering::*;
        assert_eq!(Atom::Int(40).partial_cmp_atom(&Atom::Int(45)), Some(Less));
        assert_eq!(
            Atom::Real(45.0).partial_cmp_atom(&Atom::Int(45)),
            Some(Equal)
        );
        assert_eq!(
            Atom::str("John").partial_cmp_atom(&Atom::str("John")),
            Some(Equal)
        );
        assert_eq!(
            Atom::tagged("dollar", 100_000).partial_cmp_atom(&Atom::tagged("dollar", 50_000)),
            Some(Greater)
        );
        // Mixed kinds do not compare.
        assert_eq!(Atom::str("John").partial_cmp_atom(&Atom::Int(4)), None);
    }

    #[test]
    fn atom_type_names_match_paper() {
        assert_eq!(Atom::Int(45).type_name(), "integer");
        assert_eq!(Atom::str("John").type_name(), "string");
        assert_eq!(Atom::tagged("dollar", 100_000).type_name(), "dollar");
        assert_eq!(Value::empty_set().type_name(), "set");
    }

    #[test]
    fn value_accessors() {
        let v = Value::set_of([oid("A"), oid("B")]);
        assert!(v.is_set());
        assert_eq!(v.as_set().unwrap().len(), 2);
        assert!(v.as_atom().is_none());
        let a = Value::Atom(Atom::Int(7));
        assert_eq!(a.as_atom().unwrap(), &Atom::Int(7));
        assert!(a.as_set().is_none());
    }

    #[test]
    fn display_formats() {
        let s: OidSet = ["P1", "P3"].iter().map(|n| oid(n)).collect();
        assert_eq!(s.to_string(), "{P1,P3}");
        assert_eq!(Atom::str("John").to_string(), "'John'");
        assert_eq!(Atom::tagged("dollar", 100_000).to_string(), "dollar 100000");
    }
}
