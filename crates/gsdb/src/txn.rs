//! Atomic batches of basic updates.
//!
//! Paper §4.3: "In a centralized environment, view maintenance can be
//! performed by the same transaction as the triggering update." This
//! module provides the transaction half: apply a batch of updates
//! atomically — if any update is invalid the store is rolled back to
//! its pre-batch state — and compute inverses so appliers (like view
//! maintainers keeping in lock-step) can undo.

use crate::{AppliedUpdate, Object, Oid, Result, Store, Update, Value};

/// The inverse of an applied update: applying it undoes the original.
///
/// Valid for *effective* updates only — inserting an edge that already
/// existed is a set-semantics no-op whose recorded inverse (a delete)
/// would over-undo. [`apply_atomic`] only ever inverts updates it just
/// applied, in reverse order, so the precondition holds there.
pub fn inverse(store: &Store, applied: &AppliedUpdate) -> Update {
    match applied {
        AppliedUpdate::Insert { parent, child } => Update::Delete {
            parent: *parent,
            child: *child,
        },
        AppliedUpdate::Delete { parent, child } => Update::Insert {
            parent: *parent,
            child: *child,
        },
        AppliedUpdate::Modify { oid, old, .. } => Update::Modify {
            oid: *oid,
            new: old.clone(),
        },
        AppliedUpdate::Create { oid } => Update::Remove { oid: *oid },
        AppliedUpdate::Remove { oid } => {
            // To invert a removal we need the removed object — the
            // caller must capture it before applying (as
            // [`apply_atomic`] does); afterwards the object is gone
            // and only a tombstone can be produced.
            Update::Create {
                object: store
                    .get(*oid)
                    .cloned()
                    .unwrap_or_else(|| Object::empty_set(oid.name(), "tombstone")),
            }
        }
    }
}

/// Apply a batch atomically: on the first failure, all prior updates
/// of the batch are rolled back (in reverse order) and the error is
/// returned. On success, returns the applied updates in order.
pub fn apply_atomic(store: &mut Store, batch: Vec<Update>) -> Result<Vec<AppliedUpdate>> {
    let mut applied: Vec<AppliedUpdate> = Vec::with_capacity(batch.len());
    // Per-update rollback info: removed-object snapshots, and whether
    // an insert was a set-semantics no-op (the edge already existed —
    // inverting it would delete a pre-existing edge).
    struct RollbackInfo {
        removed: Option<Object>,
        noop_insert: bool,
    }
    let mut infos: Vec<RollbackInfo> = Vec::with_capacity(batch.len());
    for update in batch {
        let info = RollbackInfo {
            removed: match &update {
                Update::Remove { oid } => store.get(*oid).cloned(),
                _ => None,
            },
            noop_insert: match &update {
                Update::Insert { parent, child } => store
                    .get(*parent)
                    .and_then(|o| o.value.as_set())
                    .map(|s| s.contains(*child))
                    .unwrap_or(false),
                _ => false,
            },
        };
        match store.apply(update) {
            Ok(a) => {
                applied.push(a);
                infos.push(info);
            }
            Err(e) => {
                // Roll back in reverse order.
                for (a, info) in applied.iter().zip(infos.iter()).rev() {
                    if info.noop_insert {
                        continue; // nothing changed; nothing to undo
                    }
                    let inv = match a {
                        AppliedUpdate::Remove { .. } => Update::Create {
                            object: info
                                .removed
                                .clone()
                                .expect("removal snapshots are captured before applying"),
                        },
                        other => inverse(store, other),
                    };
                    store
                        .apply(inv)
                        .expect("rollback of a just-applied update cannot fail");
                }
                return Err(e);
            }
        }
    }
    Ok(applied)
}

/// A value-level savepoint for a set of objects: captures their
/// current state so a caller can restore them later (used by tests and
/// by speculative evaluation).
#[derive(Clone, Debug)]
pub struct Savepoint {
    objects: Vec<Object>,
    missing: Vec<Oid>,
}

impl Savepoint {
    /// Capture the current state of `oids`.
    pub fn capture(store: &Store, oids: &[Oid]) -> Savepoint {
        let mut objects = Vec::new();
        let mut missing = Vec::new();
        for &o in oids {
            match store.get(o) {
                Some(obj) => objects.push(obj.clone()),
                None => missing.push(o),
            }
        }
        Savepoint { objects, missing }
    }

    /// Restore the captured objects: values are reset; objects created
    /// since the capture (in the captured set) are removed.
    pub fn restore(&self, store: &mut Store) -> Result<()> {
        for o in &self.missing {
            if store.contains(*o) {
                // Unlink then remove.
                let parents: Vec<Oid> = store
                    .parents(*o)
                    .map(|p| p.iter().collect())
                    .unwrap_or_default();
                for p in parents {
                    let _ = store.delete_edge(p, *o);
                }
                store.apply(Update::Remove { oid: *o })?;
            }
        }
        for obj in &self.objects {
            match (store.get(obj.oid).map(|o| o.value.clone()), &obj.value) {
                (Some(cur), want) if &cur == want => {}
                (Some(_), Value::Atom(a)) => {
                    store.modify_atom(obj.oid, a.clone())?;
                }
                (Some(cur), Value::Set(want)) => {
                    let cur_set = cur.as_set().cloned().unwrap_or_default();
                    for c in cur_set.iter() {
                        if !want.contains(c) {
                            store.delete_edge(obj.oid, c)?;
                        }
                    }
                    for c in want.iter() {
                        if !cur_set.contains(c) {
                            store.insert_edge(obj.oid, c)?;
                        }
                    }
                }
                (None, _) => {
                    store.create(obj.clone())?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{samples, Atom};

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn person_store() -> Store {
        let mut s = Store::new();
        samples::person_db(&mut s).unwrap();
        s
    }

    #[test]
    fn atomic_batch_applies_fully() {
        let mut s = person_store();
        let batch = vec![
            Update::Create {
                object: Object::atom("TA", "age", 33i64),
            },
            Update::insert("P2", "TA"),
            Update::modify("A1", 50i64),
        ];
        let applied = apply_atomic(&mut s, batch).unwrap();
        assert_eq!(applied.len(), 3);
        assert_eq!(s.atom(oid("A1")), Some(&Atom::Int(50)));
        assert!(s.get(oid("P2")).unwrap().children().contains(&oid("TA")));
    }

    #[test]
    fn failed_batch_rolls_back_completely() {
        let mut s = person_store();
        let before = crate::Snapshot::capture(&s);
        let batch = vec![
            Update::modify("A1", 50i64),
            Update::Create {
                object: Object::atom("TB", "age", 1i64),
            },
            Update::insert("P2", "TB"),
            // Fails: GHOST does not exist.
            Update::insert("P2", "GHOST"),
        ];
        let err = apply_atomic(&mut s, batch).unwrap_err();
        assert_eq!(err, crate::GsdbError::NoSuchObject(oid("GHOST")));
        // Everything rolled back, including the created object.
        assert_eq!(s.atom(oid("A1")), Some(&Atom::Int(45)));
        assert!(!s.contains(oid("TB")));
        assert_eq!(crate::Snapshot::capture(&s), before);
    }

    #[test]
    fn rollback_restores_removed_objects() {
        let mut s = person_store();
        s.delete_edge(oid("P1"), oid("S1")).unwrap(); // unlink first
        let before = crate::Snapshot::capture(&s);
        let batch = vec![
            Update::Remove { oid: oid("S1") },
            Update::insert("P4", "GHOST"), // fails
        ];
        apply_atomic(&mut s, batch).unwrap_err();
        assert_eq!(crate::Snapshot::capture(&s), before);
        assert_eq!(s.atom(oid("S1")), Some(&Atom::tagged("dollar", 100_000)));
    }

    #[test]
    fn rollback_skips_noop_duplicate_inserts() {
        // insert(ROOT, P1) when P1 is already a child is a set no-op;
        // rolling the batch back must not delete the pre-existing edge.
        let mut s = person_store();
        let before = crate::Snapshot::capture(&s);
        let batch = vec![
            Update::insert("ROOT", "P1"), // duplicate: no-op
            Update::insert("P4", "GHOST"), // fails, triggers rollback
        ];
        apply_atomic(&mut s, batch).unwrap_err();
        assert_eq!(crate::Snapshot::capture(&s), before);
        assert!(s.get(oid("ROOT")).unwrap().children().contains(&oid("P1")));
    }

    #[test]
    fn inverse_roundtrips_each_kind() {
        let mut s = person_store();
        for u in [
            Update::modify("A1", 99i64),
            Update::delete("ROOT", "P4"),
            Update::insert("P4", "M3"), // effective: M3 not yet under P4
        ] {
            let before = crate::Snapshot::capture(&s);
            let a = s.apply(u).unwrap();
            let inv = inverse(&s, &a);
            s.apply(inv).unwrap();
            assert_eq!(crate::Snapshot::capture(&s), before, "after {a}");
        }
    }

    #[test]
    fn savepoint_restores_values_and_edges() {
        let mut s = person_store();
        let sp = Savepoint::capture(&s, &[oid("P1"), oid("A1")]);
        s.modify_atom(oid("A1"), 77i64).unwrap();
        s.delete_edge(oid("P1"), oid("N1")).unwrap();
        s.create(Object::atom("EXTRA", "x", 1i64)).unwrap();
        s.insert_edge(oid("P1"), oid("EXTRA")).unwrap();
        sp.restore(&mut s).unwrap();
        assert_eq!(s.atom(oid("A1")), Some(&Atom::Int(45)));
        let p1 = s.get(oid("P1")).unwrap();
        assert!(p1.children().contains(&oid("N1")));
        assert!(!p1.children().contains(&oid("EXTRA")));
    }
}
