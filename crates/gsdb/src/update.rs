//! Basic updates on a GSDB (paper §4.1).
//!
//! Three primitive updates drive all view maintenance:
//!
//! 1. `insert(N1, N2)` — add OID `N2` to `value(N1)` (`N1` a set object);
//! 2. `delete(N1, N2)` — remove OID `N2` from `value(N1)`;
//! 3. `modify(N, oldv, newv)` — change an atomic object's value.
//!
//! The paper notes that object creation "can be modeled as
//! `insert(DB, O)`"; we additionally provide `Create`/`Remove` record
//! operations so a store can be populated, but they never affect views
//! by themselves (a freshly created object is unreachable).

use crate::{Atom, Object, Oid};
use std::fmt;

/// A requested update, before application.
#[derive(Clone, Debug, PartialEq)]
pub enum Update {
    /// `insert(parent, child)`: add an edge.
    Insert {
        /// The set object gaining a child.
        parent: Oid,
        /// The child OID added.
        child: Oid,
    },
    /// `delete(parent, child)`: remove an edge.
    Delete {
        /// The set object losing a child.
        parent: Oid,
        /// The child OID removed.
        child: Oid,
    },
    /// `modify(oid, _, new)`: replace an atomic value. The old value is
    /// captured by the store at application time.
    Modify {
        /// The atomic object.
        oid: Oid,
        /// The new value.
        new: Atom,
    },
    /// Create a new object record (not yet linked anywhere).
    Create {
        /// The object record to create.
        object: Object,
    },
    /// Remove an object record (must be unreferenced).
    Remove {
        /// The object record to remove.
        oid: Oid,
    },
}

impl Update {
    /// Convenience constructor: `insert(N1, N2)`.
    pub fn insert(parent: impl Into<Oid>, child: impl Into<Oid>) -> Self {
        Update::Insert {
            parent: parent.into(),
            child: child.into(),
        }
    }

    /// Convenience constructor: `delete(N1, N2)`.
    pub fn delete(parent: impl Into<Oid>, child: impl Into<Oid>) -> Self {
        Update::Delete {
            parent: parent.into(),
            child: child.into(),
        }
    }

    /// Convenience constructor: `modify(N, _, newv)`.
    pub fn modify(oid: impl Into<Oid>, new: impl Into<Atom>) -> Self {
        Update::Modify {
            oid: oid.into(),
            new: new.into(),
        }
    }

    /// Convenience constructor for object creation.
    pub fn create(object: Object) -> Self {
        Update::Create { object }
    }

    /// The *directly affected source objects* of this update
    /// (paper §5.1): the one or two objects an update names.
    pub fn directly_affected(&self) -> Vec<Oid> {
        match self {
            Update::Insert { parent, child } | Update::Delete { parent, child } => {
                vec![*parent, *child]
            }
            Update::Modify { oid, .. } | Update::Remove { oid } => vec![*oid],
            Update::Create { object } => vec![object.oid],
        }
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Update::Insert { parent, child } => write!(f, "insert({parent}, {child})"),
            Update::Delete { parent, child } => write!(f, "delete({parent}, {child})"),
            Update::Modify { oid, new } => write!(f, "modify({oid}, {new})"),
            Update::Create { object } => write!(f, "create({})", object.oid),
            Update::Remove { oid } => write!(f, "remove({oid})"),
        }
    }
}

/// An update that has been applied by a store, with the information a
/// maintenance algorithm needs (notably the old value of a `modify`).
#[derive(Clone, Debug, PartialEq)]
pub enum AppliedUpdate {
    /// An edge was added.
    Insert {
        /// The set object gaining a child.
        parent: Oid,
        /// The child OID added.
        child: Oid,
    },
    /// An edge was removed.
    Delete {
        /// The set object losing a child.
        parent: Oid,
        /// The child OID removed.
        child: Oid,
    },
    /// An atomic value changed: `modify(oid, old, new)` (paper §4.1
    /// carries both values; Algorithm 1's modify case tests
    /// `cond(oldv)` and `cond(newv)`).
    Modify {
        /// The atomic object.
        oid: Oid,
        /// The value before the update.
        old: Atom,
        /// The value after the update.
        new: Atom,
    },
    /// An object record was created.
    Create {
        /// The created object's OID.
        oid: Oid,
    },
    /// An object record was removed.
    Remove {
        /// The object record to remove.
        oid: Oid,
    },
}

impl AppliedUpdate {
    /// The directly affected source objects (paper §5.1).
    pub fn directly_affected(&self) -> Vec<Oid> {
        match self {
            AppliedUpdate::Insert { parent, child }
            | AppliedUpdate::Delete { parent, child } => vec![*parent, *child],
            AppliedUpdate::Modify { oid, .. }
            | AppliedUpdate::Create { oid }
            | AppliedUpdate::Remove { oid } => vec![*oid],
        }
    }
}

impl fmt::Display for AppliedUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppliedUpdate::Insert { parent, child } => write!(f, "insert({parent}, {child})"),
            AppliedUpdate::Delete { parent, child } => write!(f, "delete({parent}, {child})"),
            AppliedUpdate::Modify { oid, old, new } => {
                write!(f, "modify({oid}, {old}, {new})")
            }
            AppliedUpdate::Create { oid } => write!(f, "create({oid})"),
            AppliedUpdate::Remove { oid } => write!(f, "remove({oid})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directly_affected_objects() {
        assert_eq!(
            Update::insert("P2", "A2").directly_affected(),
            vec![Oid::new("P2"), Oid::new("A2")]
        );
        assert_eq!(
            Update::modify("A1", 46i64).directly_affected(),
            vec![Oid::new("A1")]
        );
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Update::insert("P2", "A2").to_string(), "insert(P2, A2)");
        assert_eq!(Update::delete("ROOT", "P1").to_string(), "delete(ROOT, P1)");
        let m = AppliedUpdate::Modify {
            oid: Oid::new("A1"),
            old: Atom::Int(45),
            new: Atom::Int(46),
        };
        assert_eq!(m.to_string(), "modify(A1, 45, 46)");
    }
}
