//! Graph-level analysis of a store: reachability, shape classification
//! (tree / DAG / cyclic), depth and fan-out statistics.
//!
//! Algorithm 1 (paper §4.2) assumes tree-structured bases; the §6
//! extensions relax this to DAGs. [`classify`] lets callers check which
//! regime a database is in before picking a maintenance strategy.

use crate::{Oid, Store};
use std::collections::{HashMap, HashSet, VecDeque};

/// Shape of the graph reachable from a root.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// Every reachable object has exactly one reachable parent (and the
    /// root has none): the §4.2 assumption.
    Tree,
    /// Acyclic, but some object is shared: the §6 DAG extension.
    Dag,
    /// Contains a directed cycle.
    Cyclic,
}

/// All objects reachable from `root` (including `root`), in BFS order.
pub fn reachable(store: &Store, root: Oid) -> Vec<Oid> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    let mut q = VecDeque::new();
    if store.contains(root) {
        seen.insert(root);
        q.push_back(root);
    }
    while let Some(o) = q.pop_front() {
        out.push(o);
        for &c in store.children(o) {
            if store.contains(c) && seen.insert(c) {
                q.push_back(c);
            }
        }
    }
    out
}

/// Classify the subgraph reachable from `root`.
pub fn classify(store: &Store, root: Oid) -> Shape {
    // Count in-degrees within the reachable subgraph and detect cycles
    // via an iterative DFS with colors.
    let nodes: HashSet<Oid> = reachable(store, root).into_iter().collect();
    let mut indeg: HashMap<Oid, usize> = HashMap::new();
    for &n in &nodes {
        for &c in store.children(n) {
            if nodes.contains(&c) {
                *indeg.entry(c).or_insert(0) += 1;
            }
        }
    }
    if has_cycle(store, root, &nodes) {
        return Shape::Cyclic;
    }
    let shared = nodes
        .iter()
        .any(|&n| n != root && indeg.get(&n).copied().unwrap_or(0) > 1);
    if shared {
        Shape::Dag
    } else {
        Shape::Tree
    }
}

fn has_cycle(store: &Store, root: Oid, nodes: &HashSet<Oid>) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: HashMap<Oid, Color> = nodes.iter().map(|&n| (n, Color::White)).collect();
    // Iterative DFS: stack of (node, next child index).
    let mut stack: Vec<(Oid, usize)> = Vec::new();
    if nodes.contains(&root) {
        stack.push((root, 0));
        color.insert(root, Color::Gray);
    }
    while let Some(&mut (n, ref mut i)) = stack.last_mut() {
        let children = store.children(n);
        if *i < children.len() {
            let c = children[*i];
            *i += 1;
            if !nodes.contains(&c) {
                continue;
            }
            match color.get(&c).copied().unwrap_or(Color::White) {
                Color::Gray => return true,
                Color::White => {
                    color.insert(c, Color::Gray);
                    stack.push((c, 0));
                }
                Color::Black => {}
            }
        } else {
            color.insert(n, Color::Black);
            stack.pop();
        }
    }
    false
}

/// Depth of the subtree/DAG reachable from `root` (longest path, in
/// edges). Cyclic graphs return `None`.
pub fn depth(store: &Store, root: Oid) -> Option<usize> {
    let nodes: HashSet<Oid> = reachable(store, root).into_iter().collect();
    if has_cycle(store, root, &nodes) {
        return None;
    }
    let mut memo: HashMap<Oid, usize> = HashMap::new();
    // Iterative post-order via explicit stack.
    let mut stack = vec![(root, false)];
    while let Some((n, processed)) = stack.pop() {
        if processed {
            let d = store
                .children(n)
                .iter()
                .filter(|c| nodes.contains(c))
                .map(|c| memo.get(c).copied().unwrap_or(0) + 1)
                .max()
                .unwrap_or(0);
            memo.insert(n, d);
        } else if !memo.contains_key(&n) {
            stack.push((n, true));
            for &c in store.children(n) {
                if nodes.contains(&c) && !memo.contains_key(&c) {
                    stack.push((c, false));
                }
            }
        }
    }
    memo.get(&root).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Object;

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn chain(n: usize) -> Store {
        let mut s = Store::new();
        s.create(Object::atom(format!("c{n}").as_str(), "leaf", 0i64))
            .unwrap();
        for i in (0..n).rev() {
            let child = Oid::new(&format!("c{}", i + 1));
            s.create(Object::set(format!("c{i}").as_str(), "link", &[child]))
                .unwrap();
        }
        s
    }

    #[test]
    fn reachable_bfs() {
        let s = chain(3);
        let r = reachable(&s, oid("c0"));
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], oid("c0"));
    }

    #[test]
    fn classify_tree() {
        let s = chain(5);
        assert_eq!(classify(&s, oid("c0")), Shape::Tree);
    }

    #[test]
    fn classify_dag() {
        let mut s = Store::new();
        s.create_all([
            Object::atom("leaf", "x", 1i64),
            Object::set("l", "left", &[oid("leaf")]),
            Object::set("r", "right", &[oid("leaf")]),
            Object::set("top", "root", &[oid("l"), oid("r")]),
        ])
        .unwrap();
        assert_eq!(classify(&s, oid("top")), Shape::Dag);
    }

    #[test]
    fn classify_cyclic() {
        let mut s = Store::new();
        s.create_all([
            Object::empty_set("a", "a"),
            Object::empty_set("b", "b"),
        ])
        .unwrap();
        s.insert_edge(oid("a"), oid("b")).unwrap();
        s.insert_edge(oid("b"), oid("a")).unwrap();
        assert_eq!(classify(&s, oid("a")), Shape::Cyclic);
        assert_eq!(depth(&s, oid("a")), None);
    }

    #[test]
    fn self_loop_is_cyclic() {
        let mut s = Store::new();
        s.create(Object::empty_set("a", "a")).unwrap();
        s.insert_edge(oid("a"), oid("a")).unwrap();
        assert_eq!(classify(&s, oid("a")), Shape::Cyclic);
    }

    #[test]
    fn depth_of_chain() {
        let s = chain(7);
        assert_eq!(depth(&s, oid("c0")), Some(7));
        assert_eq!(depth(&s, oid("c7")), Some(0));
    }

    #[test]
    fn dangling_children_are_ignored() {
        let mut s = Store::new();
        s.create(Object::set("p", "parent", &[oid("ghost-child")]))
            .unwrap();
        assert_eq!(reachable(&s, oid("p")), vec![oid("p")]);
        assert_eq!(classify(&s, oid("p")), Shape::Tree);
    }
}
