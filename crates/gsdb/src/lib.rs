//! # gsdb — a graph structured database substrate
//!
//! An implementation of the *graph structured database* (GSDB) model of
//! Zhuge & Garcia-Molina, *Graph Structured Views and Their Incremental
//! Maintenance* (ICDE 1998), which in turn follows the OEM object
//! exchange model: every object is an `<OID, label, type, value>` record
//! whose value is either atomic or a set of OIDs of other objects.
//!
//! This crate is the storage substrate the view machinery
//! (`gsview-core`) and the warehouse architecture (`gsview-warehouse`)
//! are built on. It provides:
//!
//! * [`Oid`], [`Label`], [`Atom`], [`Value`], [`Object`] — the data
//!   model of paper §2, including semantic delegate OIDs (§3.2);
//! * [`Store`] — the object store, applying the basic updates of §4.1
//!   through [`Store::apply`], with optional inverse-parent and label
//!   indexes and an access counter for cost experiments;
//! * [`path`] — paths and the functions `path(N1,N2)`,
//!   `ancestor(N,p)`, `eval(N,p,cond)` that Algorithm 1 builds on
//!   (§4.3), in both indexed and traversal realizations (§4.4);
//! * [`graph`], [`gc`], [`database`], [`stats`](crate::stats()), [`snapshot`] —
//!   supporting machinery;
//! * [`builder`] and [`samples`] — ergonomic construction plus the
//!   exact example databases from the paper's figures.
//!
//! ## Quickstart
//!
//! ```
//! use gsdb::{samples, path, Path, Store, Oid, Atom};
//!
//! let mut store = Store::new();
//! samples::person_db(&mut store).unwrap();           // Figure 2
//! let ages = path::reach(&store, Oid::new("ROOT"), &Path::parse("professor.age"));
//! assert_eq!(ages, vec![Oid::new("A1")]);
//! assert_eq!(store.atom(Oid::new("A1")), Some(&Atom::Int(45)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod codec;
pub mod database;
pub mod delta;
pub mod display;
pub mod epoch;
mod error;
pub mod fxhash;
pub mod gc;
pub mod graph;
mod intern;
pub mod label;
pub mod notation;
mod object;
mod oid;
pub mod path;
pub mod samples;
pub mod shard;
pub mod smallset;
pub mod snapshot;
pub mod stats;
mod store;
pub mod txn;
mod update;
mod value;

pub use delta::{ConsolidatedDelta, DeltaBatch, EdgeDelta, EdgeOp, ModifyDelta};
pub use epoch::EpochHandle;
pub use error::{GsdbError, Result};
pub use label::Label;
pub use object::Object;
pub use oid::Oid;
pub use path::Path;
pub use snapshot::Snapshot;
pub use stats::{stats, stats_at, StoreStats};
pub use fxhash::{FastMap, FastSet, FxBuildHasher, FxHasher};
pub use smallset::SmallSet;
pub use shard::{CommitResult, PublishInfo, ShardedStore};
pub use stats::DurableFootprint;
pub use store::{ShardImage, SlotSet, Store, StoreConfig, MAX_SHARDS};
pub use update::{AppliedUpdate, Update};
pub use value::{Atom, OidSet, Value};
