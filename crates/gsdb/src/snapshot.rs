//! Serializable snapshots of a store.
//!
//! A warehouse initializing a materialized view needs a consistent copy
//! of source state (paper §5); snapshots also let tests persist and
//! diff database states. The snapshot format is a plain object list, so
//! it round-trips through serde (JSON, etc.) without depending on
//! interner state.

use crate::{Object, Result, Store, StoreConfig};

/// A serializable image of a store's objects.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Objects, sorted by OID name for deterministic output.
    pub objects: Vec<Object>,
}

impl Snapshot {
    /// Capture a snapshot of `store`.
    pub fn capture(store: &Store) -> Snapshot {
        let mut objects: Vec<Object> = store.iter().cloned().collect();
        objects.sort_by_key(|o| o.oid.name());
        Snapshot { objects }
    }

    /// Restore into a new store with the given configuration.
    pub fn restore(&self, cfg: StoreConfig) -> Result<Store> {
        let mut store = Store::with_config(cfg);
        for o in &self.objects {
            store.create(o.clone())?;
        }
        Ok(store)
    }

    /// Number of objects in the snapshot.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{samples, Oid, Path};

    #[test]
    fn capture_restore_roundtrip() {
        let mut s = Store::new();
        samples::person_db(&mut s).unwrap();
        let snap = Snapshot::capture(&s);
        assert_eq!(snap.len(), s.len());
        let restored = snap.restore(StoreConfig::default()).unwrap();
        assert_eq!(restored.len(), s.len());
        // Structure survives: same reachability.
        let before = crate::path::reach(&s, Oid::new("ROOT"), &Path::parse("professor.age"));
        let after = crate::path::reach(&restored, Oid::new("ROOT"), &Path::parse("professor.age"));
        assert_eq!(before, after);
        // Parent index was rebuilt on restore.
        assert!(restored
            .parents(Oid::new("A1"))
            .unwrap()
            .contains(Oid::new("P1")));
    }

    #[test]
    fn json_roundtrip() {
        let mut s = Store::new();
        samples::fig1_db(&mut s).unwrap();
        let snap = Snapshot::capture(&s);
        // serde_json is not a dependency; use the Debug representation
        // only to confirm determinism, and a manual clone for equality.
        let snap2 = Snapshot::capture(&snap.restore(StoreConfig::default()).unwrap());
        assert_eq!(snap, snap2);
    }
}
