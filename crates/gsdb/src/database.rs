//! Database objects (paper §2).
//!
//! "A graph-structured database (GSDB) is an object whose set value
//! contains the OIDs of all objects in this database. Thus, a database
//! is simply a way to group objects together." A database object is an
//! ordinary set object; this module provides helpers for creating and
//! maintaining them.

use crate::{label::well_known, GsdbError, Label, Object, Oid, Result, Store, Value};

/// Create a database object named `db` whose members are all objects
/// reachable from `root` (inclusive). This mirrors how the paper forms
/// `PERSON` from Example 2's objects.
pub fn database_of_reachable(store: &mut Store, db: Oid, root: Oid) -> Result<Oid> {
    let members = crate::graph::reachable(store, root);
    store.create(Object {
        oid: db,
        label: well_known::database(),
        value: Value::set_of(members),
    })?;
    Ok(db)
}

/// Create a database object with an explicit member list.
pub fn database_of(store: &mut Store, db: Oid, members: &[Oid]) -> Result<Oid> {
    store.create(Object::set(db.name(), "database", members))?;
    Ok(db)
}

/// Create a database object with a custom label (paper: "A database
/// object can have any type of label").
pub fn database_with_label(
    store: &mut Store,
    db: Oid,
    label: Label,
    members: &[Oid],
) -> Result<Oid> {
    store.create(Object {
        oid: db,
        label,
        value: Value::set_of(members.iter().copied()),
    })?;
    Ok(db)
}

/// Is `oid` a member of database `db`? Missing database objects contain
/// nothing.
pub fn is_member(store: &Store, db: Oid, oid: Oid) -> bool {
    store
        .get(db)
        .and_then(|o| o.value.as_set())
        .map(|s| s.contains(oid))
        .unwrap_or(false)
}

/// Add a member to a database object (`insert(DB, O)` — the paper's
/// model for adding an object to a database).
pub fn add_member(store: &mut Store, db: Oid, oid: Oid) -> Result<()> {
    store.insert_edge(db, oid).map(|_| ())
}

/// Remove a member from a database object.
pub fn remove_member(store: &mut Store, db: Oid, oid: Oid) -> Result<()> {
    store.delete_edge(db, oid).map(|_| ())
}

/// Members of a database object.
pub fn members(store: &Store, db: Oid) -> Result<Vec<Oid>> {
    let o = store.require(db)?;
    let set = o.value.as_set().ok_or(GsdbError::NotASet(db))?;
    Ok(set.iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Object;

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn setup() -> Store {
        let mut s = Store::new();
        s.create_all([
            Object::set("R", "person", &[oid("x"), oid("y")]),
            Object::atom("x", "name", "a"),
            Object::atom("y", "name", "b"),
            Object::atom("z", "name", "c"),
        ])
        .unwrap();
        s
    }

    #[test]
    fn database_of_reachable_collects_subtree() {
        let mut s = setup();
        database_of_reachable(&mut s, oid("D1"), oid("R")).unwrap();
        assert!(is_member(&s, oid("D1"), oid("R")));
        assert!(is_member(&s, oid("D1"), oid("x")));
        assert!(is_member(&s, oid("D1"), oid("y")));
        assert!(!is_member(&s, oid("D1"), oid("z")));
        let db = s.get(oid("D1")).unwrap();
        assert_eq!(db.label.as_str(), "database");
    }

    #[test]
    fn membership_maintenance() {
        let mut s = setup();
        database_of(&mut s, oid("D"), &[oid("x")]).unwrap();
        assert!(!is_member(&s, oid("D"), oid("z")));
        add_member(&mut s, oid("D"), oid("z")).unwrap();
        assert!(is_member(&s, oid("D"), oid("z")));
        remove_member(&mut s, oid("D"), oid("z")).unwrap();
        assert!(!is_member(&s, oid("D"), oid("z")));
        assert_eq!(members(&s, oid("D")).unwrap(), vec![oid("x")]);
    }

    #[test]
    fn missing_database_has_no_members() {
        let s = setup();
        assert!(!is_member(&s, oid("NOPE"), oid("x")));
        assert!(members(&s, oid("NOPE")).is_err());
    }

    #[test]
    fn custom_label_database() {
        let mut s = setup();
        database_with_label(&mut s, oid("D2"), Label::new("corpus"), &[oid("x")]).unwrap();
        assert_eq!(s.label(oid("D2")).unwrap().as_str(), "corpus");
    }
}
