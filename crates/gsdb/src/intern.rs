//! Global string interner backing [`Oid`](crate::Oid) and
//! [`Label`](crate::Label).
//!
//! The paper requires OIDs to be *universally unique identifiers* that can
//! travel between databases (a warehouse delegate references a source
//! object by its OID). A process-wide interner gives us cheap `Copy`
//! handles with O(1) equality/hashing while preserving the human-readable
//! names the paper uses in its examples (`ROOT`, `P1`, `MVJ.P1`, ...).
//!
//! Interned symbols are never freed; the set of distinct names in any
//! realistic workload is bounded by the number of objects created.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

/// A handle to an interned string. Two symbols are equal iff their
/// underlying strings are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub(crate) u64);

/// Symbols per chunk of the lock-free resolve table.
const CHUNK: usize = 4096;
/// Maximum chunks: caps the interner at 16M distinct symbols.
const CHUNKS: usize = 4096;

/// The resolve side of the interner: an append-only chunked table that
/// readers traverse without any lock. A chunk pointer is published
/// (Release) only after the slot it covers has been written, and the
/// symbol itself is handed out only after its slot is filled, so an
/// Acquire load of the chunk pointer by a reader holding a valid
/// `Symbol` always observes the slot's string. `resolve` is on the hot
/// path of every name comparison and sort — under multi-threaded view
/// maintenance a lock here serializes the whole fan-out.
struct ResolveTable {
    chunks: [AtomicPtr<[&'static str; CHUNK]>; CHUNKS],
    len: AtomicU64,
}

impl ResolveTable {
    fn get(&self, idx: u64) -> Option<&'static str> {
        if idx >= self.len.load(Ordering::Acquire) {
            return None;
        }
        let chunk = self.chunks[(idx as usize) / CHUNK].load(Ordering::Acquire);
        if chunk.is_null() {
            return None;
        }
        // Safety: non-null chunk pointers are leaked boxes, never freed,
        // and `idx < len` guarantees the slot was initialized before
        // `len` was published.
        Some(unsafe { (*chunk)[(idx as usize) % CHUNK] })
    }

    /// Append under the writer mutex (callers hold `interner()`'s map
    /// lock, so appends never race each other).
    fn push(&self, s: &'static str) -> u64 {
        let idx = self.len.load(Ordering::Relaxed);
        let (ci, co) = ((idx as usize) / CHUNK, (idx as usize) % CHUNK);
        assert!(ci < CHUNKS, "interner capacity exhausted");
        let mut chunk = self.chunks[ci].load(Ordering::Acquire);
        if chunk.is_null() {
            chunk = Box::into_raw(Box::new([""; CHUNK]));
            self.chunks[ci].store(chunk, Ordering::Release);
        }
        // Safety: single writer (map mutex held); readers can't see the
        // slot until `len` moves past it.
        unsafe { (*chunk)[co] = s };
        self.len.store(idx + 1, Ordering::Release);
        idx
    }
}

/// Shard count for the string→symbol map. Interning existing names is
/// hot under parallel maintenance (every `Oid::new`); sharding keeps
/// threads working on different names off each other's locks.
const SHARDS: usize = 64;

struct Interner {
    /// String→symbol, sharded by a string hash. Read-mostly.
    shards: [RwLock<HashMap<&'static str, Symbol>>; SHARDS],
    /// Serializes appends to the resolve table (miss path only).
    append: Mutex<()>,
    table: ResolveTable,
    /// Delegate symbol → its (view, base) pair.
    delegate_parts: RwLock<HashMap<Symbol, (Symbol, Symbol)>>,
    /// (view, base) → delegate symbol: lets repeat delegate
    /// construction skip the format+intern entirely.
    delegate_pairs: RwLock<HashMap<(Symbol, Symbol), Symbol>>,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        append: Mutex::new(()),
        table: ResolveTable {
            chunks: [const { AtomicPtr::new(std::ptr::null_mut()) }; CHUNKS],
            len: AtomicU64::new(0),
        },
        delegate_parts: RwLock::new(HashMap::new()),
        delegate_pairs: RwLock::new(HashMap::new()),
    })
}

fn shard_of(s: &str) -> usize {
    // FNV-1a over the bytes; only the shard index needs it, the maps
    // use their own hasher.
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in s.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    (h as usize) % SHARDS
}

/// Intern `s`, returning its symbol. Idempotent.
pub fn intern(s: &str) -> Symbol {
    let it = interner();
    let shard = &it.shards[shard_of(s)];
    if let Some(&sym) = shard.read().expect("interner poisoned").get(s) {
        return sym;
    }
    // Miss: serialize appends, re-check under the shard write lock.
    let _append = it.append.lock().expect("interner poisoned");
    let mut g = shard.write().expect("interner poisoned");
    if let Some(&sym) = g.get(s) {
        return sym;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    let sym = Symbol(it.table.push(leaked));
    g.insert(leaked, sym);
    sym
}

/// Intern the *semantic OID* of a delegate: the concatenation
/// `"<view>.<base>"` (paper §3.2), remembering the pair structurally.
pub fn intern_delegate(view: Symbol, base: Symbol) -> Symbol {
    let it = interner();
    if let Some(&sym) = it
        .delegate_pairs
        .read()
        .expect("delegate map poisoned")
        .get(&(view, base))
    {
        return sym;
    }
    let name = format!("{}.{}", resolve(view), resolve(base));
    let sym = intern(&name);
    it.delegate_parts
        .write()
        .expect("delegate map poisoned")
        .insert(sym, (view, base));
    it.delegate_pairs
        .write()
        .expect("delegate map poisoned")
        .insert((view, base), sym);
    sym
}

/// If `sym` was created by [`intern_delegate`], return its
/// `(view, base)` pair.
pub fn delegate_parts(sym: Symbol) -> Option<(Symbol, Symbol)> {
    interner()
        .delegate_parts
        .read()
        .expect("delegate map poisoned")
        .get(&sym)
        .copied()
}

/// Resolve a symbol back to its string. Lock-free: reads the
/// append-only chunk table directly, so concurrent maintenance threads
/// sorting by name never contend.
pub fn resolve(sym: Symbol) -> &'static str {
    interner()
        .table
        .get(sym.0)
        .expect("symbol from a different interner generation")
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({}:{})", self.0, resolve(*self))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(resolve(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = intern("hello");
        let b = intern("hello");
        assert_eq!(a, b);
        assert_eq!(resolve(a), "hello");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(intern("x1"), intern("x2"));
    }

    #[test]
    fn delegate_symbols_are_splittable() {
        let v = intern("MVJ");
        let b = intern("P1");
        let d = intern_delegate(v, b);
        assert_eq!(resolve(d), "MVJ.P1");
        assert_eq!(delegate_parts(d), Some((v, b)));
        assert_eq!(delegate_parts(b), None);
    }

    #[test]
    fn nested_delegates_split_one_level() {
        let v1 = intern("V1");
        let v2 = intern("V2");
        let b = intern("B");
        let d1 = intern_delegate(v1, b);
        let d2 = intern_delegate(v2, d1);
        assert_eq!(resolve(d2), "V2.V1.B");
        assert_eq!(delegate_parts(d2), Some((v2, d1)));
        assert_eq!(delegate_parts(d1), Some((v1, b)));
    }

    #[test]
    fn empty_string_interns() {
        let e = intern("");
        assert_eq!(resolve(e), "");
    }
}
