//! Global string interner backing [`Oid`](crate::Oid) and
//! [`Label`](crate::Label).
//!
//! The paper requires OIDs to be *universally unique identifiers* that can
//! travel between databases (a warehouse delegate references a source
//! object by its OID). A process-wide interner gives us cheap `Copy`
//! handles with O(1) equality/hashing while preserving the human-readable
//! names the paper uses in its examples (`ROOT`, `P1`, `MVJ.P1`, ...).
//!
//! Interned symbols are never freed; the set of distinct names in any
//! realistic workload is bounded by the number of objects created.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// A handle to an interned string. Two symbols are equal iff their
/// underlying strings are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub(crate) u64);

struct Interner {
    map: HashMap<&'static str, Symbol>,
    strings: Vec<&'static str>,
    /// For symbols created via [`intern_delegate`], the (view, base) pair
    /// they were constructed from. Stored structurally so that delegate
    /// OIDs can be split without parsing (base OIDs may themselves
    /// contain the separator character).
    delegates: HashMap<Symbol, (Symbol, Symbol)>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
            delegates: HashMap::new(),
        })
    })
}

/// Intern `s`, returning its symbol. Idempotent.
pub fn intern(s: &str) -> Symbol {
    let mut g = interner().lock().expect("interner poisoned");
    if let Some(&sym) = g.map.get(s) {
        return sym;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    let sym = Symbol(g.strings.len() as u64);
    g.strings.push(leaked);
    g.map.insert(leaked, sym);
    sym
}

/// Intern the *semantic OID* of a delegate: the concatenation
/// `"<view>.<base>"` (paper §3.2), remembering the pair structurally.
pub fn intern_delegate(view: Symbol, base: Symbol) -> Symbol {
    let name = format!("{}.{}", resolve(view), resolve(base));
    let sym = intern(&name);
    let mut g = interner().lock().expect("interner poisoned");
    g.delegates.insert(sym, (view, base));
    sym
}

/// If `sym` was created by [`intern_delegate`], return its
/// `(view, base)` pair.
pub fn delegate_parts(sym: Symbol) -> Option<(Symbol, Symbol)> {
    interner()
        .lock()
        .expect("interner poisoned")
        .delegates
        .get(&sym)
        .copied()
}

/// Resolve a symbol back to its string.
pub fn resolve(sym: Symbol) -> &'static str {
    interner()
        .lock()
        .expect("interner poisoned")
        .strings
        .get(sym.0 as usize)
        .copied()
        .expect("symbol from a different interner generation")
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({}:{})", self.0, resolve(*self))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(resolve(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = intern("hello");
        let b = intern("hello");
        assert_eq!(a, b);
        assert_eq!(resolve(a), "hello");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(intern("x1"), intern("x2"));
    }

    #[test]
    fn delegate_symbols_are_splittable() {
        let v = intern("MVJ");
        let b = intern("P1");
        let d = intern_delegate(v, b);
        assert_eq!(resolve(d), "MVJ.P1");
        assert_eq!(delegate_parts(d), Some((v, b)));
        assert_eq!(delegate_parts(b), None);
    }

    #[test]
    fn nested_delegates_split_one_level() {
        let v1 = intern("V1");
        let v2 = intern("V2");
        let b = intern("B");
        let d1 = intern_delegate(v1, b);
        let d2 = intern_delegate(v2, d1);
        assert_eq!(resolve(d2), "V2.V1.B");
        assert_eq!(delegate_parts(d2), Some((v2, d1)));
        assert_eq!(delegate_parts(d1), Some((v1, b)));
    }

    #[test]
    fn empty_string_interns() {
        let e = intern("");
        assert_eq!(resolve(e), "");
    }
}
