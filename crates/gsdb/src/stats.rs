//! Store statistics: object counts, label histogram, fan-out
//! distribution. Used by workload generators to validate their shapes
//! and by the benchmark harness to report database parameters.

use crate::{EpochHandle, Label, Store};
use std::collections::HashMap;

/// The durable footprint of a persisted store lineage: how much
/// segment space its content-addressed chunks occupy and how much the
/// chunk-level dedup saved. Produced by the durability layer
/// (`gsview-durable`), which attaches it to [`StoreStats::durable`]
/// and mirrors the figures into the obs metrics registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DurableFootprint {
    /// Distinct content-addressed chunks in the segment.
    pub chunks: u64,
    /// Total segment bytes (chunk payloads plus framing).
    pub segment_bytes: u64,
    /// Chunk-payload bytes actually appended (after dedup).
    pub appended_bytes: u64,
    /// Chunk-payload bytes dedup avoided appending: bytes of persist
    /// requests answered by an already-present chunk.
    pub deduped_bytes: u64,
    /// `deduped / (appended + deduped)` — the fraction of logical
    /// persist traffic the content addressing absorbed (0 when
    /// nothing has been persisted).
    pub dedup_ratio: f64,
}

/// Summary statistics for a store.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StoreStats {
    /// Total objects.
    pub objects: usize,
    /// Set objects.
    pub set_objects: usize,
    /// Atomic objects.
    pub atomic_objects: usize,
    /// Total edges.
    pub edges: usize,
    /// Maximum fan-out of any set object.
    pub max_fanout: usize,
    /// Mean fan-out over set objects (0 when there are none).
    pub mean_fanout: f64,
    /// Objects per label.
    pub label_histogram: HashMap<Label, usize>,
    /// Live objects per slab shard, in shard order (length =
    /// [`Store::shard_count`]; a single entry for un-sharded stores).
    /// Reports how evenly the OID hash spreads the database across
    /// the commit pipeline's shards.
    pub shard_occupancy: Vec<usize>,
    /// Durable footprint of this store's persisted lineage, when a
    /// durability layer is attached (`None` for memory-only stores).
    /// Filled in by `gsview-durable`'s `stats_with_footprint`.
    pub durable: Option<DurableFootprint>,
}

/// Compute statistics over every object in the store.
pub fn stats(store: &Store) -> StoreStats {
    let mut s = StoreStats {
        objects: store.len(),
        shard_occupancy: store.shard_sizes(),
        ..Default::default()
    };
    for obj in store.iter() {
        *s.label_histogram.entry(obj.label).or_insert(0) += 1;
        if obj.is_set() {
            s.set_objects += 1;
            let f = obj.children().len();
            s.edges += f;
            s.max_fanout = s.max_fanout.max(f);
        } else {
            s.atomic_objects += 1;
        }
    }
    if s.set_objects > 0 {
        s.mean_fanout = s.edges as f64 / s.set_objects as f64;
    }
    s
}

/// Compute statistics over the latest epoch-published snapshot,
/// without ever taking the live store's mutex: grabbing the snapshot
/// is an `Arc` clone ([`EpochHandle::load`]), and iteration runs over
/// the immutable fork while the writer keeps committing. Returns the
/// observed epoch alongside the stats so callers can report *which*
/// committed state they measured.
pub fn stats_at(handle: &EpochHandle) -> (u64, StoreStats) {
    let (epoch, snapshot) = handle.load_with_epoch();
    (epoch, stats(&snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{atom, set};

    #[test]
    fn stats_count_correctly() {
        let mut store = Store::new();
        set("r", "root")
            .child(set("a", "mid").child(atom("x", "leaf", 1i64)).child(atom("y", "leaf", 2i64)))
            .child(atom("z", "leaf", 3i64))
            .build(&mut store)
            .unwrap();
        let s = stats(&store);
        assert_eq!(s.objects, 5);
        assert_eq!(s.set_objects, 2);
        assert_eq!(s.atomic_objects, 3);
        assert_eq!(s.edges, 4);
        assert_eq!(s.max_fanout, 2);
        assert!((s.mean_fanout - 2.0).abs() < 1e-9);
        assert_eq!(s.label_histogram[&Label::new("leaf")], 3);
    }

    #[test]
    fn stats_at_reads_published_epoch_not_live_store() {
        let mut live = Store::new();
        set("r", "root").child(atom("x", "leaf", 1i64)).build(&mut live).unwrap();
        let h = EpochHandle::new(live.fork());
        // Mutate the live store without publishing: stats_at must not
        // see it (it reads the snapshot, not the live store).
        atom("y", "leaf", 2i64).build(&mut live).unwrap();
        let (epoch, s) = stats_at(&h);
        assert_eq!(epoch, 0);
        assert_eq!(s.objects, 2);
        h.publish(live.fork());
        let (epoch, s) = stats_at(&h);
        assert_eq!(epoch, 1);
        assert_eq!(s.objects, 3);
    }

    #[test]
    fn empty_store_stats() {
        let s = stats(&Store::new());
        assert_eq!(s.objects, 0);
        assert_eq!(s.mean_fanout, 0.0);
        assert_eq!(s.shard_occupancy, vec![0]);
    }

    #[test]
    fn shard_occupancy_sums_to_object_count() {
        let mut store = Store::with_config(crate::StoreConfig::default().with_shards(4));
        for i in 0..50 {
            atom(format!("o{i}").as_str(), "leaf", i as i64)
                .build(&mut store)
                .unwrap();
        }
        let s = stats(&store);
        assert_eq!(s.shard_occupancy.len(), 4);
        assert_eq!(s.shard_occupancy.iter().sum::<usize>(), 50);
    }
}
