//! Model-based property tests for the storage substrate: `OidSet`
//! against `std::collections::HashSet`, store update/rollback
//! round-trips, and notation/snapshot round-trips over random trees.

use gsdb::{gc, notation, txn, Object, Oid, OidSet, Snapshot, Store, StoreConfig, Update};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn oid_pool() -> Vec<Oid> {
    (0..12).map(|i| Oid::new(&format!("sp{i}"))).collect()
}

proptest! {
    /// OidSet behaves exactly like a set of OIDs under random
    /// insert/remove/contains sequences.
    #[test]
    fn oidset_matches_hashset_model(ops in prop::collection::vec((0..3u8, 0..12usize), 0..200)) {
        let pool = oid_pool();
        let mut sut = OidSet::new();
        let mut model: HashSet<Oid> = HashSet::new();
        for (kind, idx) in ops {
            let o = pool[idx];
            match kind {
                0 => prop_assert_eq!(sut.insert(o), model.insert(o)),
                1 => prop_assert_eq!(sut.remove(o), model.remove(&o)),
                _ => prop_assert_eq!(sut.contains(o), model.contains(&o)),
            }
            prop_assert_eq!(sut.len(), model.len());
        }
        let mut got = sut.sorted();
        got.sort_by_key(|o| o.name());
        let mut want: Vec<Oid> = model.into_iter().collect();
        want.sort_by_key(|o| o.name());
        prop_assert_eq!(got, want);
    }

    /// Applying a batch and then its inverses restores the exact store
    /// state (for effective updates).
    #[test]
    fn inverses_restore_state(values in prop::collection::vec(0..100i64, 1..8), salt in 0u32..1_000_000) {
        let mut store = Store::with_config(StoreConfig::default());
        let root = Oid::new(&format!("ir{salt}root"));
        store.create(Object::empty_set(root.name(), "r")).unwrap();
        let mut applied = Vec::new();
        for (i, v) in values.iter().enumerate() {
            let a = Oid::new(&format!("ir{salt}a{i}"));
            applied.push(store.apply(Update::Create {
                object: Object::atom(a.name(), "v", *v),
            }).unwrap());
            applied.push(store.apply(Update::Insert { parent: root, child: a }).unwrap());
            applied.push(store.apply(Update::Modify { oid: a, new: gsdb::Atom::Int(v + 1) }).unwrap());
        }
        let dirty = Snapshot::capture(&store);
        // Undo everything in reverse.
        for a in applied.iter().rev() {
            let inv = txn::inverse(&store, a);
            store.apply(inv).unwrap();
        }
        let clean = Snapshot::capture(&store);
        prop_assert_eq!(clean.len(), 1, "only the root remains");
        prop_assert_ne!(dirty, clean);
    }

    /// Random trees round-trip through the paper notation and through
    /// snapshots.
    #[test]
    fn notation_roundtrip_random_trees(shape in prop::collection::vec((any::<u16>(), 0..50i64), 1..20), salt in 0u32..1_000_000) {
        let mut store = Store::new();
        let root = Oid::new(&format!("nr{salt}root"));
        store.create(Object::empty_set(root.name(), "root")).unwrap();
        let mut sets = vec![root];
        for (i, (p, v)) in shape.iter().enumerate() {
            let parent = sets[(*p as usize) % sets.len()];
            if v % 3 == 0 {
                let o = Oid::new(&format!("nr{salt}s{i}"));
                store.create(Object::empty_set(o.name(), "mid")).unwrap();
                store.insert_edge(parent, o).unwrap();
                sets.push(o);
            } else {
                let o = Oid::new(&format!("nr{salt}a{i}"));
                store.create(Object::atom(o.name(), "leaf", *v)).unwrap();
                store.insert_edge(parent, o).unwrap();
            }
        }
        prop_assert!(notation::roundtrips(&store).unwrap());
        let snap = Snapshot::capture(&store);
        let restored = snap.restore(StoreConfig::default()).unwrap();
        prop_assert_eq!(snap, Snapshot::capture(&restored));
    }

    /// OIDs are stable identities under the arena's slot reuse: any
    /// interleaving of creates, attaches/detaches, removes, GC runs,
    /// and snapshot round-trips keeps every surviving OID resolving to
    /// its own value — never to whatever object later reused its slot
    /// — and keeps the internal slab/index invariants intact.
    #[test]
    fn oids_stay_stable_under_interleaved_reuse(
        ops in prop::collection::vec((0..7u8, 0..16usize, 0..100i64), 1..120),
        salt in 0u32..1_000_000,
    ) {
        let mut store = Store::new();
        let root = Oid::new(&format!("os{salt}root"));
        store.create(Object::empty_set(root.name(), "r")).unwrap();

        // The model: every live atom's expected value, plus whether it
        // currently hangs off the root (GC keeps only those).
        let mut values: HashMap<Oid, i64> = HashMap::new();
        let mut attached: Vec<Oid> = Vec::new();
        let mut detached: Vec<Oid> = Vec::new();
        let mut fresh = 0usize;

        for (kind, idx, v) in ops {
            match kind {
                0 => {
                    // Create a new detached atom (reuses freed slots).
                    let o = Oid::new(&format!("os{salt}a{fresh}"));
                    fresh += 1;
                    store.create(Object::atom(o.name(), "leaf", v)).unwrap();
                    values.insert(o, v);
                    detached.push(o);
                }
                1 if !detached.is_empty() => {
                    let o = detached.swap_remove(idx % detached.len());
                    store.insert_edge(root, o).unwrap();
                    attached.push(o);
                }
                2 if !attached.is_empty() => {
                    let o = attached.swap_remove(idx % attached.len());
                    store.delete_edge(root, o).unwrap();
                    detached.push(o);
                }
                3 if !values.is_empty() => {
                    let all: Vec<Oid> = attached.iter().chain(detached.iter()).copied().collect();
                    let o = all[idx % all.len()];
                    store.apply(Update::Modify { oid: o, new: gsdb::Atom::Int(v) }).unwrap();
                    values.insert(o, v);
                }
                4 if !detached.is_empty() => {
                    // Remove an unreferenced object: frees its slot.
                    let o = detached.swap_remove(idx % detached.len());
                    store.apply(Update::Remove { oid: o }).unwrap();
                    values.remove(&o);
                }
                5 => {
                    // GC from the root: exactly the detached atoms go.
                    let collected = gc::collect(&mut store, &[root]);
                    for o in &collected {
                        prop_assert!(detached.contains(o), "GC must only take garbage");
                        values.remove(o);
                    }
                    prop_assert_eq!(collected.len(), detached.len());
                    detached.clear();
                }
                6 => {
                    // Snapshot round-trip: a fresh arena, same OIDs.
                    let snap = Snapshot::capture(&store);
                    store = snap.restore(StoreConfig::default()).unwrap();
                }
                _ => {}
            }
            if let Err(e) = store.check_invariants() {
                panic!("arena invariant broken: {e}");
            }
        }

        // Every surviving OID still resolves to its own value.
        for (o, v) in &values {
            prop_assert_eq!(store.atom(*o), Some(&gsdb::Atom::Int(*v)), "oid {} lost its value", o);
        }
        // And nothing extra survived: live count = model + root.
        prop_assert_eq!(store.len(), values.len() + 1);
    }

    /// The `oids_sorted` cache stays correct under every mutation kind
    /// interleaved with `clone` and `fork` (which copy a *valid* cache
    /// — sound because the cache depends only on the OID set, and
    /// every Create/Remove invalidates it). The cache is deliberately
    /// re-populated before each op, so a mutating path that forgets to
    /// invalidate serves a stale list and fails here.
    #[test]
    fn oids_sorted_survives_mutation_interleavings(
        ops in prop::collection::vec((0..8u8, 0..16usize, 0..100i64), 1..120),
        salt in 0u32..1_000_000,
    ) {
        let mut store = Store::new();
        let root = Oid::new(&format!("sc{salt}root"));
        store.create(Object::empty_set(root.name(), "r")).unwrap();

        let mut model: HashSet<Oid> = HashSet::new();
        model.insert(root);
        let mut fresh = 0usize;

        for (kind, idx, v) in ops {
            // Populate the cache *before* mutating: a missed
            // invalidation now returns this stale list afterwards.
            let _ = store.oids_sorted();
            let pool: Vec<Oid> = {
                let mut p: Vec<Oid> = model.iter().copied().filter(|o| *o != root).collect();
                p.sort_by_key(|o| o.name());
                p
            };
            match kind {
                0 => {
                    let o = Oid::new(&format!("sc{salt}a{fresh}"));
                    fresh += 1;
                    store.create(Object::atom(o.name(), "leaf", v)).unwrap();
                    model.insert(o);
                }
                1 if !pool.is_empty() => {
                    // Remove tolerates dangling parent references, so
                    // any non-root object is removable at any time.
                    let o = pool[idx % pool.len()];
                    store.apply(Update::Remove { oid: o }).unwrap();
                    model.remove(&o);
                }
                2 if !pool.is_empty() => {
                    // Edge churn never changes the OID set.
                    let o = pool[idx % pool.len()];
                    let _ = store.apply(Update::Insert { parent: root, child: o });
                }
                3 if !pool.is_empty() => {
                    let o = pool[idx % pool.len()];
                    let _ = store.apply(Update::Delete { parent: root, child: o });
                }
                4 if !pool.is_empty() => {
                    let o = pool[idx % pool.len()];
                    let _ = store.apply(Update::Modify { oid: o, new: gsdb::Atom::Int(v) });
                }
                5 => {
                    // Replica bookkeeping: the child may even be a
                    // dangling OID — the OID set must not change.
                    let ghost = Oid::new(&format!("sc{salt}ghost{idx}"));
                    store.insert_edge_unchecked(root, ghost).unwrap();
                }
                6 => {
                    // Clone carries the (valid) cache along.
                    store = store.clone();
                }
                7 => {
                    // Fork = the epoch-publish path's COW snapshot.
                    store = store.fork();
                }
                _ => {}
            }
            let mut want: Vec<Oid> = model.iter().copied().collect();
            want.sort_by_key(|o| o.name());
            prop_assert_eq!(store.oids_sorted(), want, "stale or wrong sorted cache");
            if let Err(e) = store.check_invariants() {
                panic!("store invariant broken: {e}");
            }
        }
    }
}
