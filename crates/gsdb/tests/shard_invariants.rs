//! Shard-consistency battery for the sharded COW slab: random
//! mutation interleavings at shard counts 1/2/4/8 keep every
//! per-shard arena invariant and the global ones (no OID mapped in
//! two shards, free-list disjointness across shards, parent/label
//! index agreement with slot contents) intact, and the shard count is
//! observationally invisible — the same workload at N=1 and N=8
//! yields identical `oids_sorted` and query results.

use gsdb::{Label, Object, Oid, Store, StoreConfig, Update};
use proptest::prelude::*;
use std::collections::BTreeMap;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn store_at(shards: usize) -> Store {
    Store::with_config(StoreConfig::default().with_shards(shards))
}

/// Realize one raw op tuple into a concrete update against the
/// current object pools. Returns `None` when the op kind has no
/// eligible target yet. The realization depends only on the pools —
/// which evolve identically across stores fed the same sequence — so
/// every store under test sees byte-identical updates.
fn realize(
    (kind, a, b, v): (u8, usize, usize, i64),
    salt: u32,
    fresh: &mut usize,
    sets: &[Oid],
    atoms: &[Oid],
) -> Option<(Update, Option<Object>)> {
    let all = |i: usize| -> Option<Oid> {
        let n = sets.len() + atoms.len();
        if n == 0 {
            return None;
        }
        let i = i % n;
        Some(if i < sets.len() { sets[i] } else { atoms[i - sets.len()] })
    };
    match kind {
        0 => {
            // Create a detached atom (exercises free-slot reuse).
            let o = Oid::new(&format!("si{salt}a{fresh}"));
            *fresh += 1;
            let obj = Object::atom(o.name(), "leaf", v);
            Some((Update::Create { object: obj.clone() }, Some(obj)))
        }
        1 => {
            // Create a detached set (future edge parent).
            let o = Oid::new(&format!("si{salt}s{fresh}"));
            *fresh += 1;
            let obj = Object::empty_set(o.name(), "mid");
            Some((Update::Create { object: obj.clone() }, Some(obj)))
        }
        2 => {
            // Insert an edge set -> anything (may fail: duplicate
            // edge, self edge — fails identically everywhere).
            let parent = *sets.get(a % sets.len().max(1))?;
            let child = all(b)?;
            Some((Update::Insert { parent, child }, None))
        }
        3 => {
            let parent = *sets.get(a % sets.len().max(1))?;
            let child = all(b)?;
            Some((Update::Delete { parent, child }, None))
        }
        4 => {
            let oid = all(a)?;
            Some((Update::Modify { oid, new: gsdb::Atom::Int(v) }, None))
        }
        _ => {
            // Remove any object; the arena tolerates dangling parent
            // references, so every target is legal at any time.
            let oid = all(a)?;
            Some((Update::Remove { oid }, None))
        }
    }
}

/// Every externally observable query a store answers, collected into
/// one comparable value. Sorted where the API's order is an
/// implementation detail of the shard layout (`parents`, `with_label`,
/// `iter`), order-preserving where it is contractual (`children`,
/// `oids_sorted`).
#[derive(Debug, PartialEq)]
struct Observation {
    oids: Vec<Oid>,
    objects: BTreeMap<String, (String, Option<gsdb::Atom>, Vec<Oid>)>,
    parents: BTreeMap<String, Vec<String>>,
    labels: BTreeMap<String, Vec<String>>,
}

fn observe(store: &Store) -> Observation {
    let oids = store.oids_sorted();
    let mut objects = BTreeMap::new();
    let mut parents = BTreeMap::new();
    for &o in &oids {
        let obj = store.get(o).expect("listed OID resolves");
        objects.insert(
            o.name().to_string(),
            (
                obj.label.as_str().to_string(),
                obj.atom_value().cloned(),
                obj.children().to_vec(),
            ),
        );
        let mut ps: Vec<String> = store
            .parents(o)
            .map(|s| s.iter().map(|p| p.name().to_string()).collect())
            .unwrap_or_default();
        ps.sort();
        parents.insert(o.name().to_string(), ps);
    }
    let mut labels = BTreeMap::new();
    for l in ["leaf", "mid", "r"] {
        let mut members: Vec<String> = store
            .with_label(Label::new(l))
            .map(|s| s.iter().map(|o| o.name().to_string()).collect())
            .unwrap_or_default();
        members.sort();
        labels.insert(l.to_string(), members);
    }
    Observation { oids, objects, parents, labels }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The tentpole property: one random mutation interleaving driven
    /// through four stores differing only in shard count. After every
    /// op each store passes `check_shard_invariants` for each shard
    /// plus the global `check_invariants`, all stores agree on the
    /// op's outcome, and at the end the full observable state (OID
    /// list, object contents, parents, label queries) is identical —
    /// shard count is invisible.
    #[test]
    fn shard_count_is_observationally_invisible(
        ops in prop::collection::vec((0..6u8, 0..32usize, 0..32usize, 0..100i64), 1..100),
        salt in 0u32..1_000_000,
    ) {
        let mut stores: Vec<Store> = SHARD_COUNTS.iter().map(|&n| store_at(n)).collect();
        let root = Oid::new(&format!("si{salt}root"));
        for s in &mut stores {
            s.create(Object::empty_set(root.name(), "r")).unwrap();
        }
        let mut sets = vec![root];
        let mut atoms: Vec<Oid> = Vec::new();
        let mut fresh = 0usize;

        for raw in ops {
            let Some((update, created)) = realize(raw, salt, &mut fresh, &sets, &atoms)
            else { continue };
            let outcomes: Vec<bool> = stores
                .iter_mut()
                .map(|s| s.apply(update.clone()).is_ok())
                .collect();
            prop_assert!(
                outcomes.iter().all(|&ok| ok == outcomes[0]),
                "stores disagree on {update:?}: {outcomes:?}"
            );
            if outcomes[0] {
                // Keep the pools in sync with what actually happened.
                match (&update, created) {
                    (Update::Create { .. }, Some(obj)) => {
                        if obj.is_set() {
                            sets.push(obj.oid);
                        } else {
                            atoms.push(obj.oid);
                        }
                    }
                    (Update::Remove { oid }, _) => {
                        sets.retain(|o| o != oid);
                        atoms.retain(|o| o != oid);
                    }
                    _ => {}
                }
            }
            for (s, &n) in stores.iter().zip(&SHARD_COUNTS) {
                for i in 0..s.shard_count() {
                    if let Err(e) = s.check_shard_invariants(i) {
                        panic!("shard invariant broken at N={n}: {e}");
                    }
                }
                if let Err(e) = s.check_invariants() {
                    panic!("global invariant broken at N={n}: {e}");
                }
            }
        }

        let base = observe(&stores[0]);
        for (s, &n) in stores.iter().zip(&SHARD_COUNTS).skip(1) {
            prop_assert_eq!(&observe(s), &base, "N={} diverged from N=1", n);
        }
    }

    /// Global placement facts, stated externally: the per-shard object
    /// counts sum to `len()`, every OID's slot carries exactly its
    /// home shard's interleave bits (so no OID can be mapped in two
    /// shards and free lists are disjoint by construction), and
    /// resharding to any other count preserves the observable state
    /// and all invariants — including dangling parent-index entries
    /// left by Remove.
    #[test]
    fn placement_is_total_and_reshard_preserves_state(
        ops in prop::collection::vec((0..6u8, 0..32usize, 0..32usize, 0..100i64), 1..60),
        from in 0..4usize,
        to in 0..4usize,
        salt in 0u32..1_000_000,
    ) {
        let mut store = store_at(SHARD_COUNTS[from]);
        let root = Oid::new(&format!("si{salt}root"));
        store.create(Object::empty_set(root.name(), "r")).unwrap();
        let mut sets = vec![root];
        let mut atoms: Vec<Oid> = Vec::new();
        let mut fresh = 0usize;
        for raw in ops {
            let Some((update, created)) = realize(raw, salt, &mut fresh, &sets, &atoms)
            else { continue };
            if store.apply(update.clone()).is_ok() {
                match (&update, created) {
                    (Update::Create { .. }, Some(obj)) => {
                        if obj.is_set() { sets.push(obj.oid) } else { atoms.push(obj.oid) }
                    }
                    (Update::Remove { oid }, _) => {
                        sets.retain(|o| o != oid);
                        atoms.retain(|o| o != oid);
                    }
                    _ => {}
                }
            }
        }

        let mask = (store.shard_count() - 1) as u32;
        let sizes = store.shard_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), store.len());
        for o in store.oids_sorted() {
            let slot = store.slot_of(o).expect("listed OID has a slot");
            prop_assert_eq!(
                (slot & mask) as usize,
                store.shard_of(o),
                "slot of {} carries foreign shard bits", o.name()
            );
        }

        let before = observe(&store);
        let resharded = store.reshard(SHARD_COUNTS[to]);
        prop_assert_eq!(resharded.shard_count(), SHARD_COUNTS[to]);
        if let Err(e) = resharded.check_invariants() {
            panic!("invariants broken after reshard {}->{}: {e}",
                   SHARD_COUNTS[from], SHARD_COUNTS[to]);
        }
        prop_assert_eq!(&observe(&resharded), &before, "reshard changed observable state");
    }

    /// COW isolation across shard counts: forking a sharded store and
    /// mutating both sides never lets either side observe the other's
    /// writes, and both sides keep all invariants.
    #[test]
    fn forks_stay_isolated_at_every_shard_count(
        n in 0..4usize,
        vals in prop::collection::vec(0..100i64, 1..20),
        salt in 0u32..1_000_000,
    ) {
        let mut store = store_at(SHARD_COUNTS[n]);
        let root = Oid::new(&format!("fi{salt}root"));
        store.create(Object::empty_set(root.name(), "r")).unwrap();
        for (i, v) in vals.iter().enumerate() {
            let o = Oid::new(&format!("fi{salt}a{i}"));
            store.create(Object::atom(o.name(), "leaf", *v)).unwrap();
            store.insert_edge(root, o).unwrap();
        }
        let frozen = store.fork();
        let before = observe(&frozen);
        // Mutate the live side hard: modify everything, remove half.
        for (i, _) in vals.iter().enumerate() {
            let o = Oid::new(&format!("fi{salt}a{i}"));
            store.apply(Update::Modify { oid: o, new: gsdb::Atom::Int(-1) }).unwrap();
            if i % 2 == 0 {
                store.apply(Update::Remove { oid: o }).unwrap();
            }
        }
        prop_assert_eq!(&observe(&frozen), &before, "fork saw live-side writes");
        if let Err(e) = frozen.check_invariants() {
            panic!("frozen fork invariants broken: {e}");
        }
        if let Err(e) = store.check_invariants() {
            panic!("live side invariants broken: {e}");
        }
    }
}
