//! Counting-based incremental maintenance of the flattened view
//! (paper §4.4's second discussion question, and Example 8).
//!
//! The simple view `SELECT ROOT.l1...lk X WHERE cond(X.m1...mj)`
//! compiles, relationally, to a Select-Project-Join expression with
//! `k + j` self-joins of PARENT-CHILD (each joined with OID-LABEL for
//! its level's label, and the last with OID-TYPE-VALUE for the
//! predicate). We maintain it with the counting algorithm of Gupta,
//! Mumick & Subrahmanian (SIGMOD '93): the view stores, per result
//! object `Y`, the **number of derivations** (join paths); a base
//! delta contributes `Δcount = prefix-paths × suffix-paths` through
//! the changed row, and `Y` is in the view while its count is
//! positive.
//!
//! The cost asymmetry against the native Algorithm 1 is exactly what
//! the paper predicts: "the 'path semantics' are hidden in the
//! relations", so every delta must run delta-joins across the
//! self-join chain — per-level multiset walks over PARENT-CHILD —
//! whereas the native algorithm exploits path structure directly.

use crate::tables::{RelDb, TableDelta};
use gsdb::{Label, Oid, Path};
use gsview_query::Pred;
use std::collections::HashMap;

/// The relational compilation of a simple view definition.
#[derive(Clone, Debug)]
pub struct RelViewDef {
    /// Entry OID (`ROOT`).
    pub root: Oid,
    /// Selection labels `l1..lk`.
    pub sel: Vec<Label>,
    /// Condition labels `m1..mj`.
    pub cond: Vec<Label>,
    /// The predicate on the final value, if any.
    pub pred: Option<Pred>,
}

impl RelViewDef {
    /// Compile from paths.
    pub fn new(root: Oid, sel: &Path, cond: &Path, pred: Option<Pred>) -> Self {
        RelViewDef {
            root,
            sel: sel.labels().to_vec(),
            cond: cond.labels().to_vec(),
            pred,
        }
    }

    /// All labels, selection then condition.
    fn all_labels(&self) -> Vec<Label> {
        let mut v = self.sel.clone();
        v.extend(self.cond.iter().copied());
        v
    }

    /// Number of self-joins in the compiled SPJ expression.
    pub fn join_depth(&self) -> usize {
        self.sel.len() + self.cond.len()
    }
}

/// The maintained view: derivation counts per member.
#[derive(Clone, Debug, Default)]
pub struct RelView {
    counts: HashMap<Oid, i64>,
}

impl RelView {
    /// Recompute from scratch (the full SPJ evaluation).
    pub fn recompute(def: &RelViewDef, db: &RelDb) -> RelView {
        let mut view = RelView::default();
        // Down-walk to the selection level...
        let at_sel = down_multiset(db, def.root, &def.sel);
        for (y, ways) in at_sel {
            let c = cond_scalar(db, def, y);
            if ways * c != 0 {
                view.counts.insert(y, ways * c);
            }
        }
        view
    }

    /// Members (support of the count multiset), sorted by name.
    pub fn members(&self) -> Vec<Oid> {
        let mut v: Vec<Oid> = self
            .counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(&o, _)| o)
            .collect();
        v.sort_by_key(|o| o.name());
        v
    }

    /// The derivation count of one object.
    pub fn count_of(&self, y: Oid) -> i64 {
        self.counts.get(&y).copied().unwrap_or(0)
    }

    /// Propagate one table delta (tables already reflect the delta;
    /// tree-structured bases assumed, as in paper §4.2).
    pub fn propagate(&mut self, def: &RelViewDef, db: &RelDb, delta: &TableDelta) {
        match delta {
            TableDelta::Edge {
                parent,
                child,
                sign,
            } => self.propagate_edge(def, db, *parent, *child, *sign),
            TableDelta::Value { oid, old, new } => {
                let Some(pred) = &def.pred else { return };
                let d = pred.eval(new) as i64 - pred.eval(old) as i64;
                if d == 0 {
                    return;
                }
                // o sits (if anywhere) at the tail level; find the
                // candidate Ys by climbing the condition labels, then
                // weight by paths root→Y.
                let labels = def.all_labels();
                if labels.is_empty() {
                    return;
                }
                if db.label(*oid) != Some(*labels.last().expect("nonempty")) {
                    return;
                }
                // Climb cond labels (o consumes the last one).
                let ys = up_multiset(db, *oid, &def.cond);
                for (y, ways) in ys {
                    let r = root_paths(db, def, y);
                    if r != 0 {
                        self.add(y, r * ways * d);
                    }
                }
            }
            TableDelta::LabelRow { .. } => {}
        }
    }

    fn propagate_edge(&mut self, def: &RelViewDef, db: &RelDb, p: Oid, c: Oid, sign: i64) {
        let labels = def.all_labels();
        let k = def.sel.len();
        let total = labels.len();
        let Some(cl) = db.label(c) else { return };
        // The edge can occupy any level i (1-based, child at level i)
        // whose label matches. In a tree at most one level has nonzero
        // prefix paths.
        for i in 1..=total {
            if labels[i - 1] != cl {
                continue;
            }
            // Prefix paths: root → p over labels[0..i-1] (for i = 1
            // this degenerates to "p is the root").
            let prefix = count_paths_down_to(db, def.root, &labels[..i - 1], p);
            if prefix == 0 {
                continue;
            }
            if i <= k {
                // Y lies at or below c: distribute over labels[i..k].
                let at_sel = down_multiset(db, c, &labels[i..k]);
                for (y, ways) in at_sel {
                    let cond = cond_scalar(db, def, y);
                    if cond != 0 {
                        self.add(y, sign * prefix * ways * cond);
                    }
                }
            } else {
                // Y lies above p at level k: climb labels[k..i-1] from
                // p, then weight by the suffix below c.
                let suffix = suffix_scalar(db, def, c, i);
                if suffix == 0 {
                    continue;
                }
                let ys = up_multiset_to_level(db, p, &labels, k, i);
                for (y, ways) in ys {
                    let r = root_paths(db, def, y);
                    if r != 0 {
                        self.add(y, sign * r * ways * suffix);
                    }
                }
            }
        }
    }

    fn add(&mut self, y: Oid, delta: i64) {
        let e = self.counts.entry(y).or_insert(0);
        *e += delta;
        if *e == 0 {
            self.counts.remove(&y);
        }
    }
}

/// Multiset walk down from `from` following `labels`; result maps each
/// reached object to its number of derivation paths.
fn down_multiset(db: &RelDb, from: Oid, labels: &[Label]) -> HashMap<Oid, i64> {
    let mut cur: HashMap<Oid, i64> = HashMap::from([(from, 1)]);
    for &l in labels {
        let mut next: HashMap<Oid, i64> = HashMap::new();
        for (&o, &ways) in &cur {
            for (c, n) in db.children(o) {
                if db.label(c) == Some(l) {
                    *next.entry(c).or_insert(0) += ways * n;
                }
            }
        }
        cur = next;
        if cur.is_empty() {
            break;
        }
    }
    cur
}

/// Multiset climb from `from` (which consumes `labels.last()`):
/// ancestors `A` with a label-path `labels` from `A` down to `from`.
fn up_multiset(db: &RelDb, from: Oid, labels: &[Label]) -> HashMap<Oid, i64> {
    let mut cur: HashMap<Oid, i64> = HashMap::from([(from, 1)]);
    for idx in (0..labels.len()).rev() {
        let mut next: HashMap<Oid, i64> = HashMap::new();
        for (&o, &ways) in &cur {
            if db.label(o) != Some(labels[idx]) {
                continue;
            }
            for (p, n) in db.parents(o) {
                *next.entry(p).or_insert(0) += ways * n;
            }
        }
        cur = next;
        if cur.is_empty() {
            break;
        }
    }
    cur
}

/// Paths from `root` down `labels` that end exactly at `target`.
fn count_paths_down_to(db: &RelDb, root: Oid, labels: &[Label], target: Oid) -> i64 {
    // Climbing from the target is cheaper than walking down from the
    // root, but costs the same row kinds; we climb.
    up_multiset(db, target, labels)
        .get(&root)
        .copied()
        .unwrap_or(0)
}

/// Paths root → y over the selection labels.
fn root_paths(db: &RelDb, def: &RelViewDef, y: Oid) -> i64 {
    count_paths_down_to(db, def.root, &def.sel, y)
}

/// The condition factor of a member: derivations of the condition
/// sub-join below `y` (1 when the view has no condition).
fn cond_scalar(db: &RelDb, def: &RelViewDef, y: Oid) -> i64 {
    match (&def.pred, def.cond.is_empty()) {
        (None, true) => 1,
        (None, false) => down_multiset(db, y, &def.cond).values().sum(),
        (Some(pred), _) => {
            let at_tail = if def.cond.is_empty() {
                HashMap::from([(y, 1)])
            } else {
                down_multiset(db, y, &def.cond)
            };
            at_tail
                .into_iter()
                .filter(|(o, _)| db.value(*o).map(|v| pred.eval(v)).unwrap_or(false))
                .map(|(_, ways)| ways)
                .sum()
        }
    }
}

/// The suffix factor for an edge at level `i > k`: derivations of
/// labels[i..] below `c`, predicate applied at the tail.
fn suffix_scalar(db: &RelDb, def: &RelViewDef, c: Oid, i: usize) -> i64 {
    let labels = def.all_labels();
    let below = down_multiset(db, c, &labels[i..]);
    match &def.pred {
        None => below.values().sum(),
        Some(pred) => below
            .into_iter()
            .filter(|(o, _)| db.value(*o).map(|v| pred.eval(v)).unwrap_or(false))
            .map(|(_, ways)| ways)
            .sum(),
    }
}

/// Ancestors of `p` at level `k`, climbing `labels[k..i-1]` (where `p`
/// sits at level `i-1`).
fn up_multiset_to_level(
    db: &RelDb,
    p: Oid,
    labels: &[Label],
    k: usize,
    i: usize,
) -> HashMap<Oid, i64> {
    up_multiset(db, p, &labels[k..i - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdb::{samples, Store};
    use gsview_query::{CmpOp, Pred};

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn yp_def() -> RelViewDef {
        RelViewDef::new(
            oid("ROOT"),
            &Path::parse("professor"),
            &Path::parse("age"),
            Some(Pred::new(CmpOp::Le, 45i64)),
        )
    }

    fn setup() -> (Store, RelDb) {
        let mut store = Store::new();
        samples::person_db(&mut store).unwrap();
        let db = RelDb::encode(&store);
        (store, db)
    }

    #[test]
    fn recompute_matches_native_semantics() {
        let (_s, db) = setup();
        let view = RelView::recompute(&yp_def(), &db);
        assert_eq!(view.members(), vec![oid("P1")]);
        assert_eq!(view.count_of(oid("P1")), 1);
    }

    #[test]
    fn counting_handles_multiple_derivations() {
        let (mut store, _) = setup();
        // Second qualifying age under P1: two derivations.
        store
            .create(gsdb::Object::atom("A1b", "age", 30i64))
            .unwrap();
        store.insert_edge(oid("P1"), oid("A1b")).unwrap();
        let db = RelDb::encode(&store);
        let view = RelView::recompute(&yp_def(), &db);
        assert_eq!(view.count_of(oid("P1")), 2);
        assert_eq!(view.members(), vec![oid("P1")]);
    }

    #[test]
    fn value_delta_moves_members_in_and_out() {
        let (mut store, mut db) = setup();
        let def = yp_def();
        let mut view = RelView::recompute(&def, &db);
        // A1: 45 → 50, P1 leaves.
        let up = store.modify_atom(oid("A1"), 50i64).unwrap();
        for d in db.apply_update(&up) {
            view.propagate(&def, &db, &d);
        }
        assert!(view.members().is_empty());
        // Back to 44: P1 returns.
        let up = store.modify_atom(oid("A1"), 44i64).unwrap();
        for d in db.apply_update(&up) {
            view.propagate(&def, &db, &d);
        }
        assert_eq!(view.members(), vec![oid("P1")]);
    }

    #[test]
    fn edge_delta_in_condition_region() {
        let (mut store, mut db) = setup();
        let def = yp_def();
        let mut view = RelView::recompute(&def, &db);
        // insert(P2, A2) with age 40 — Example 5 relationally.
        let obj = gsdb::Object::atom("A2", "age", 40i64);
        store.create(obj.clone()).unwrap();
        db.register_object(&obj);
        let up = store.insert_edge(oid("P2"), oid("A2")).unwrap();
        for d in db.apply_update(&up) {
            view.propagate(&def, &db, &d);
        }
        assert_eq!(view.members(), vec![oid("P1"), oid("P2")]);
        // Remove it again.
        let up = store.delete_edge(oid("P2"), oid("A2")).unwrap();
        for d in db.apply_update(&up) {
            view.propagate(&def, &db, &d);
        }
        assert_eq!(view.members(), vec![oid("P1")]);
    }

    #[test]
    fn edge_delta_in_selection_region() {
        let (mut store, mut db) = setup();
        let def = yp_def();
        let mut view = RelView::recompute(&def, &db);
        // delete(ROOT, P1): the professor edge itself.
        let up = store.delete_edge(oid("ROOT"), oid("P1")).unwrap();
        for d in db.apply_update(&up) {
            view.propagate(&def, &db, &d);
        }
        assert!(view.members().is_empty());
        let up = store.insert_edge(oid("ROOT"), oid("P1")).unwrap();
        for d in db.apply_update(&up) {
            view.propagate(&def, &db, &d);
        }
        assert_eq!(view.members(), vec![oid("P1")]);
    }

    #[test]
    fn incremental_agrees_with_recompute_over_stream() {
        let (mut store, mut db) = setup();
        let def = yp_def();
        let mut view = RelView::recompute(&def, &db);
        let a2 = gsdb::Object::atom("A2", "age", 39i64);
        store.create(a2.clone()).unwrap();
        db.register_object(&a2);
        let updates = vec![
            gsdb::Update::insert("P2", "A2"),
            gsdb::Update::modify("A2", 80i64),
            gsdb::Update::modify("A2", 30i64),
            gsdb::Update::delete("P1", "A1"),
            gsdb::Update::delete("ROOT", "P2"),
            gsdb::Update::insert("ROOT", "P2"),
        ];
        for u in updates {
            let applied = store.apply(u).unwrap();
            for d in db.apply_update(&applied) {
                view.propagate(&def, &db, &d);
            }
            let expected = RelView::recompute(&def, &db);
            assert_eq!(view.members(), expected.members(), "after {applied}");
            for m in view.members() {
                assert_eq!(view.count_of(m), expected.count_of(m));
            }
        }
    }

    #[test]
    fn join_depth_reflects_path_length() {
        assert_eq!(yp_def().join_depth(), 2);
        let deep = RelViewDef::new(
            oid("R"),
            &Path::parse("a.b.c"),
            &Path::parse("d.e"),
            None,
        );
        assert_eq!(deep.join_depth(), 5);
    }
}
