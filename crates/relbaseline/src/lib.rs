//! # gsview-relbaseline — the relational flattening comparator
//!
//! Paper §4.4 asks: "Is it possible to represent objects of a GSDB in
//! a relational fashion by 'flattening' the object tree ... then use
//! existing relational view maintenance techniques to maintain the
//! view?" Example 8 gives the three-table encoding; this crate
//! implements it, compiles simple views to self-join chains, and
//! maintains them with the classic counting algorithm — so the
//! benchmarks (experiment E3) can measure the cost the paper predicts:
//! path semantics hidden inside `k + j` self-joins.
//!
//! ## Quickstart
//!
//! ```
//! use gsdb::{samples, Oid, Path, Store};
//! use gsview_query::{CmpOp, Pred};
//! use gsview_relbaseline::{RelDb, RelView, RelViewDef};
//!
//! let mut store = Store::new();
//! samples::person_db(&mut store).unwrap();
//! let mut db = RelDb::encode(&store);
//! let def = RelViewDef::new(
//!     Oid::new("ROOT"),
//!     &Path::parse("professor"),
//!     &Path::parse("age"),
//!     Some(Pred::new(CmpOp::Le, 45i64)),
//! );
//! let mut view = RelView::recompute(&def, &db);
//! assert_eq!(view.members(), vec![Oid::new("P1")]);
//!
//! let up = store.modify_atom(Oid::new("A1"), 80i64).unwrap();
//! for delta in db.apply_update(&up) {
//!     view.propagate(&def, &db, &delta);
//! }
//! assert!(view.members().is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod counting;
pub mod tables;

pub use counting::{RelView, RelViewDef};
pub use tables::{RelDb, TableDelta};
