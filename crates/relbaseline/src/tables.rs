//! The three-table relational encoding of a GSDB (paper Example 8):
//!
//! * `OID-LABEL` — OIDs and labels of all objects;
//! * `PARENT-CHILD` — the edges of all set objects;
//! * `OID-TYPE-VALUE` — atomic objects and their (union-typed) values.
//!
//! Edges carry multiplicity counts so the standard counting approach
//! to incremental view maintenance applies; with GSDB set semantics the
//! counts are 0/1, but the maintenance algebra does not rely on that.
//!
//! A row-operations counter measures the work done by queries and
//! delta propagation — the comparison currency for experiment E3
//! (relational flattening vs native maintenance).

use gsdb::{AppliedUpdate, Atom, Label, Oid};
use std::cell::Cell;
use std::collections::HashMap;

/// The relational image of a GSDB.
#[derive(Debug, Default)]
pub struct RelDb {
    /// OID-LABEL.
    oid_label: HashMap<Oid, Label>,
    /// PARENT-CHILD, forward adjacency with counts.
    pc: HashMap<Oid, HashMap<Oid, i64>>,
    /// PARENT-CHILD, reverse adjacency with counts.
    pc_rev: HashMap<Oid, HashMap<Oid, i64>>,
    /// OID-TYPE-VALUE.
    oid_value: HashMap<Oid, Atom>,
    /// Row operations performed (reads of any table row).
    ops: Cell<u64>,
}

/// A delta against one of the three tables, as produced by
/// [`RelDb::apply_update`]. One GSDB update can touch several tables —
/// the consistency hazard paper Example 8 points out.
#[derive(Clone, Debug, PartialEq)]
pub enum TableDelta {
    /// `(parent, child)` gained (+1) or lost (−1) in PARENT-CHILD.
    Edge {
        /// Parent OID.
        parent: Oid,
        /// Child OID.
        child: Oid,
        /// +1 or −1.
        sign: i64,
    },
    /// OID-TYPE-VALUE changed for `oid` (a modify: −old, +new).
    Value {
        /// The atomic object.
        oid: Oid,
        /// The value removed.
        old: Atom,
        /// The value added.
        new: Atom,
    },
    /// A row appeared in / vanished from OID-LABEL (creation/removal
    /// of an unlinked object — never affects views).
    LabelRow {
        /// The object.
        oid: Oid,
        /// +1 or −1.
        sign: i64,
    },
}

impl RelDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flatten a GSDB store into the three tables.
    pub fn encode(store: &gsdb::Store) -> RelDb {
        let mut db = RelDb::new();
        for obj in store.iter() {
            db.oid_label.insert(obj.oid, obj.label);
            match &obj.value {
                gsdb::Value::Atom(a) => {
                    db.oid_value.insert(obj.oid, a.clone());
                }
                gsdb::Value::Set(children) => {
                    for c in children.iter() {
                        *db.pc.entry(obj.oid).or_default().entry(c).or_insert(0) += 1;
                        *db.pc_rev.entry(c).or_default().entry(obj.oid).or_insert(0) += 1;
                    }
                }
            }
        }
        db
    }

    /// Apply one GSDB update to the tables; returns the table deltas
    /// (already applied) for the maintenance algorithm.
    pub fn apply_update(&mut self, update: &AppliedUpdate) -> Vec<TableDelta> {
        match update {
            AppliedUpdate::Insert { parent, child } => {
                *self.pc.entry(*parent).or_default().entry(*child).or_insert(0) += 1;
                *self
                    .pc_rev
                    .entry(*child)
                    .or_default()
                    .entry(*parent)
                    .or_insert(0) += 1;
                vec![TableDelta::Edge {
                    parent: *parent,
                    child: *child,
                    sign: 1,
                }]
            }
            AppliedUpdate::Delete { parent, child } => {
                if let Some(row) = self.pc.get_mut(parent) {
                    if let Some(c) = row.get_mut(child) {
                        *c -= 1;
                        if *c == 0 {
                            row.remove(child);
                        }
                    }
                }
                if let Some(row) = self.pc_rev.get_mut(child) {
                    if let Some(c) = row.get_mut(parent) {
                        *c -= 1;
                        if *c == 0 {
                            row.remove(parent);
                        }
                    }
                }
                vec![TableDelta::Edge {
                    parent: *parent,
                    child: *child,
                    sign: -1,
                }]
            }
            AppliedUpdate::Modify { oid, old, new } => {
                self.oid_value.insert(*oid, new.clone());
                vec![TableDelta::Value {
                    oid: *oid,
                    old: old.clone(),
                    new: new.clone(),
                }]
            }
            AppliedUpdate::Create { oid } => vec![TableDelta::LabelRow { oid: *oid, sign: 1 }],
            AppliedUpdate::Remove { oid } => {
                self.oid_label.remove(oid);
                self.oid_value.remove(oid);
                vec![TableDelta::LabelRow {
                    oid: *oid,
                    sign: -1,
                }]
            }
        }
    }

    /// Register a created object's rows (used when the GSDB `Create`
    /// carries label/value; call alongside `apply_update`).
    pub fn register_object(&mut self, obj: &gsdb::Object) {
        self.oid_label.insert(obj.oid, obj.label);
        if let Some(a) = obj.atom_value() {
            self.oid_value.insert(obj.oid, a.clone());
        }
        for c in obj.children() {
            *self.pc.entry(obj.oid).or_default().entry(*c).or_insert(0) += 1;
            *self.pc_rev.entry(*c).or_default().entry(obj.oid).or_insert(0) += 1;
        }
    }

    /// Label lookup (one row operation).
    pub fn label(&self, oid: Oid) -> Option<Label> {
        self.ops.set(self.ops.get() + 1);
        self.oid_label.get(&oid).copied()
    }

    /// Value lookup (one row operation).
    pub fn value(&self, oid: Oid) -> Option<&Atom> {
        self.ops.set(self.ops.get() + 1);
        self.oid_value.get(&oid)
    }

    /// Children rows of `parent` (counts as one op per row returned).
    pub fn children(&self, parent: Oid) -> impl Iterator<Item = (Oid, i64)> + '_ {
        let iter = self.pc.get(&parent).into_iter().flatten();
        iter.map(|(&c, &n)| {
            self.ops.set(self.ops.get() + 1);
            (c, n)
        })
    }

    /// Parent rows of `child` (counts as one op per row returned).
    pub fn parents(&self, child: Oid) -> impl Iterator<Item = (Oid, i64)> + '_ {
        let iter = self.pc_rev.get(&child).into_iter().flatten();
        iter.map(|(&p, &n)| {
            self.ops.set(self.ops.get() + 1);
            (p, n)
        })
    }

    /// Number of PARENT-CHILD rows.
    pub fn edge_rows(&self) -> usize {
        self.pc.values().map(|m| m.len()).sum()
    }

    /// Row operations performed so far.
    pub fn ops(&self) -> u64 {
        self.ops.get()
    }

    /// Reset the row-operation counter.
    pub fn reset_ops(&self) {
        self.ops.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdb::{samples, Store};

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    #[test]
    fn encode_matches_example_8_shape() {
        let mut store = Store::new();
        samples::person_db(&mut store).unwrap();
        let db = RelDb::encode(&store);
        // OID-LABEL rows: one per object.
        assert_eq!(db.label(oid("ROOT")).unwrap().as_str(), "person");
        assert_eq!(db.label(oid("P1")).unwrap().as_str(), "professor");
        // PARENT-CHILD rows as in the paper's table.
        let root_children: Vec<Oid> = db.children(oid("ROOT")).map(|(c, _)| c).collect();
        assert_eq!(root_children.len(), 4);
        // OID-TYPE-VALUE rows.
        assert_eq!(db.value(oid("N1")), Some(&Atom::str("John")));
        assert_eq!(db.value(oid("A1")), Some(&Atom::Int(45)));
        // Set objects have no value rows.
        assert_eq!(db.value(oid("P1")), None);
    }

    #[test]
    fn updates_produce_table_deltas() {
        let mut store = Store::new();
        samples::person_db(&mut store).unwrap();
        let mut db = RelDb::encode(&store);

        let up = store.modify_atom(oid("A1"), 50i64).unwrap();
        let deltas = db.apply_update(&up);
        assert_eq!(deltas.len(), 1);
        assert!(matches!(&deltas[0], TableDelta::Value { old, new, .. }
            if *old == Atom::Int(45) && *new == Atom::Int(50)));
        assert_eq!(db.value(oid("A1")), Some(&Atom::Int(50)));

        let up = store.delete_edge(oid("ROOT"), oid("P1")).unwrap();
        let deltas = db.apply_update(&up);
        assert!(matches!(&deltas[0], TableDelta::Edge { sign: -1, .. }));
        assert!(!db.children(oid("ROOT")).any(|(c, _)| c == oid("P1")));
        assert!(!db.parents(oid("P1")).any(|(p, _)| p == oid("ROOT")));
    }

    #[test]
    fn single_gsdb_create_touches_multiple_tables() {
        // The paper's consistency point: an atomic-object insertion
        // needs rows in OID-LABEL and OID-TYPE-VALUE, and an edge row.
        let mut db = RelDb::new();
        let obj = gsdb::Object::atom("A2", "age", 40i64);
        db.register_object(&obj);
        assert!(db.label(oid("A2")).is_some());
        assert!(db.value(oid("A2")).is_some());
    }

    #[test]
    fn ops_counter_counts_row_touches() {
        let mut store = Store::new();
        samples::person_db(&mut store).unwrap();
        let db = RelDb::encode(&store);
        db.reset_ops();
        let _: Vec<_> = db.children(oid("ROOT")).collect();
        assert_eq!(db.ops(), 4);
        let _ = db.label(oid("P1"));
        assert_eq!(db.ops(), 5);
    }
}
