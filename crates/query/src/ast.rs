//! Abstract syntax of the query and view-definition language
//! (paper §2 expression 2.1 and §3 expressions 3.2/3.5):
//!
//! ```text
//! SELECT OBJ.sel_path_exp X
//! WHERE  cond(X.cond_path_exp)
//! [WITHIN DB1]
//! [ANS INT DB2]
//!
//! define view  V  as: SELECT ...
//! define mview MV as: SELECT ...
//! ```

use crate::cond::Pred;
use crate::pathexpr::PathExpr;
use gsdb::Oid;
use std::fmt;

/// The entry point of a query: a known OID, or all objects of a
/// database (`DB.?` — paper §2: "Using DB.? means that the search
/// starts at all objects in DB").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Entry {
    /// Start at one object.
    Object(Oid),
    /// Start at every member of a database object.
    DatabaseAll(Oid),
}

impl Entry {
    /// The OID this entry names.
    pub fn oid(&self) -> Oid {
        match self {
            Entry::Object(o) | Entry::DatabaseAll(o) => *o,
        }
    }
}

impl fmt::Display for Entry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Entry::Object(o) => write!(f, "{o}"),
            Entry::DatabaseAll(o) => write!(f, "{o}.?"),
        }
    }
}

/// A `WHERE` condition: `cond(X.cond_path)` with an existential
/// predicate over the atomic objects reached.
#[derive(Clone, Debug, PartialEq)]
pub struct Condition {
    /// The path expression from the selected object.
    pub path: PathExpr,
    /// The predicate applied to reached atomic values.
    pub pred: Pred,
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "X {}", self.pred)
        } else {
            write!(f, "X.{} {}", self.path, self.pred)
        }
    }
}

/// A query (paper expression 2.1).
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// Entry point.
    pub entry: Entry,
    /// Selection path expression.
    pub sel_path: PathExpr,
    /// The bound variable's name (`X`), kept for display.
    pub var: String,
    /// Optional `WHERE` condition.
    pub cond: Option<Condition>,
    /// `WITHIN DB1`: restrict traversal to one database.
    pub within: Option<Oid>,
    /// `ANS INT DB2`: intersect the answer with a database.
    pub ans_int: Option<Oid>,
}

impl Query {
    /// A bare `SELECT entry.path X` query.
    pub fn select(entry: Entry, sel_path: PathExpr) -> Self {
        Query {
            entry,
            sel_path,
            var: "X".to_owned(),
            cond: None,
            within: None,
            ans_int: None,
        }
    }

    /// Attach a `WHERE` condition.
    pub fn with_cond(mut self, path: PathExpr, pred: Pred) -> Self {
        self.cond = Some(Condition { path, pred });
        self
    }

    /// Attach a `WITHIN` clause.
    pub fn within(mut self, db: Oid) -> Self {
        self.within = Some(db);
        self
    }

    /// Attach an `ANS INT` clause.
    pub fn ans_int(mut self, db: Oid) -> Self {
        self.ans_int = Some(db);
        self
    }

    /// True iff both paths are constant (no wild cards) and the entry
    /// is a single object — the *simple view* class of paper §4.2.
    pub fn is_simple(&self) -> bool {
        matches!(self.entry, Entry::Object(_))
            && self.sel_path.is_constant()
            && self
                .cond
                .as_ref()
                .map(|c| c.path.is_constant())
                .unwrap_or(true)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT {}", self.entry)?;
        if !self.sel_path.is_empty() {
            write!(f, ".{}", self.sel_path)?;
        }
        write!(f, " {}", self.var)?;
        if let Some(c) = &self.cond {
            write!(f, " WHERE {c}")?;
        }
        if let Some(db) = self.within {
            write!(f, " WITHIN {db}")?;
        }
        if let Some(db) = self.ans_int {
            write!(f, " ANS INT {db}")?;
        }
        Ok(())
    }
}

/// A view definition (paper §3: `define view` / `define mview`).
#[derive(Clone, Debug, PartialEq)]
pub struct ViewDef {
    /// The view object's OID.
    pub name: Oid,
    /// True for `define mview` (materialized).
    pub materialized: bool,
    /// The defining query.
    pub query: Query,
}

impl fmt::Display for ViewDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "define {} {} as: {}",
            if self.materialized { "mview" } else { "view" },
            self.name,
            self.query
        )
    }
}

/// A statement: a query or a view definition.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// A standalone query.
    Query(Query),
    /// A view definition.
    ViewDef(ViewDef),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::CmpOp;

    #[test]
    fn display_matches_paper_syntax() {
        let q = Query::select(
            Entry::Object(Oid::new("ROOT")),
            PathExpr::parse("professor").unwrap(),
        )
        .with_cond(PathExpr::parse("age").unwrap(), Pred::new(CmpOp::Gt, 40i64))
        .within(Oid::new("PERSON"));
        assert_eq!(
            q.to_string(),
            "SELECT ROOT.professor X WHERE X.age > 40 WITHIN PERSON"
        );
    }

    #[test]
    fn simple_view_classification() {
        let simple = Query::select(
            Entry::Object(Oid::new("ROOT")),
            PathExpr::parse("professor").unwrap(),
        )
        .with_cond(PathExpr::parse("age").unwrap(), Pred::new(CmpOp::Le, 45i64));
        assert!(simple.is_simple());

        let wild = Query::select(
            Entry::Object(Oid::new("ROOT")),
            PathExpr::parse("*").unwrap(),
        );
        assert!(!wild.is_simple());

        let db_entry = Query::select(
            Entry::DatabaseAll(Oid::new("D1")),
            PathExpr::parse("a").unwrap(),
        );
        assert!(!db_entry.is_simple());
    }

    #[test]
    fn viewdef_display() {
        let v = ViewDef {
            name: Oid::new("VJ"),
            materialized: false,
            query: Query::select(
                Entry::Object(Oid::new("ROOT")),
                PathExpr::parse("*").unwrap(),
            )
            .with_cond(
                PathExpr::parse("name").unwrap(),
                Pred::new(CmpOp::Eq, "John"),
            )
            .within(Oid::new("PERSON")),
        };
        assert_eq!(
            v.to_string(),
            "define view VJ as: SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON"
        );
    }
}
