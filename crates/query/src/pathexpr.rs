//! Path expressions: regular expressions over object labels (paper §2).
//!
//! "A path expression is a regular expression of paths. For example,
//! `*`, `professor.*` and `professor.?` are path expressions." A
//! constant path is also a path expression.
//!
//! Grammar (dot-separated elements):
//!
//! * a label `professor` — matches exactly that label;
//! * `?` — matches any single label;
//! * `*` — matches any sequence of zero or more labels;
//! * `(a|b|c)` — matches any one of the listed labels.
//!
//! Expressions compile to an NFA over the label alphabet. We provide:
//!
//! * [`PathExpr::matches`] — is a constant path an *instance* of the
//!   expression (paper §2: wild cards substituted by paths);
//! * [`PathExpr::contains`] — language containment `L(a) ⊆ L(b)`,
//!   the test paper §6 says wildcard-view maintenance needs
//!   ("the maintenance algorithm needs to be able to test path
//!   containment for general path expressions");
//! * [`reach_expr`] — `N.e`, the union of `N.p` over all instances
//!   `p` of `e` (paper §2), computed as a product BFS of the database
//!   graph and the NFA.

use gsdb::{FastMap, FastSet, Label, Oid, Path, Store};
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::fmt;

/// One dot-separated element of a path expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Elem {
    /// A specific label.
    Label(Label),
    /// `?`: any single label.
    AnyOne,
    /// `*`: any sequence of zero or more labels.
    AnySeq,
    /// `(a|b)`: one label out of a set.
    Alt(Vec<Label>),
}

/// A path expression: a sequence of elements.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct PathExpr(pub Vec<Elem>);

impl PathExpr {
    /// The empty path expression (matches only the empty path).
    pub fn empty() -> Self {
        PathExpr(Vec::new())
    }

    /// A constant path as an expression.
    pub fn from_path(p: &Path) -> Self {
        PathExpr(p.labels().iter().map(|&l| Elem::Label(l)).collect())
    }

    /// Parse a dotted expression: `"professor.*.age"`, `"?"`,
    /// `"(a|b).x"`. Empty string parses to the empty expression.
    ///
    /// Returns `None` on malformed alternation syntax.
    pub fn parse(s: &str) -> Option<Self> {
        if s.is_empty() {
            return Some(PathExpr::empty());
        }
        let mut elems = Vec::new();
        for part in s.split('.') {
            let part = part.trim();
            let elem = match part {
                "?" => Elem::AnyOne,
                "*" => Elem::AnySeq,
                _ if part.starts_with('(') && part.ends_with(')') => {
                    let inner = &part[1..part.len() - 1];
                    let labels: Vec<Label> = inner
                        .split('|')
                        .map(str::trim)
                        .filter(|l| !l.is_empty())
                        .map(Label::new)
                        .collect();
                    if labels.is_empty() {
                        return None;
                    }
                    Elem::Alt(labels)
                }
                "" => return None,
                // A stray '(', ')' or '|' here means an alternation was
                // split apart by a dot (e.g. "(a|b.c)") or malformed —
                // reject instead of silently treating it as a label.
                _ if part.contains('(') || part.contains(')') || part.contains('|') => {
                    return None
                }
                _ => Elem::Label(Label::new(part)),
            };
            elems.push(elem);
        }
        Some(PathExpr(elems))
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff no elements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// True iff this expression is a constant path (no wild cards) —
    /// the "simple view" precondition of paper §4.2.
    pub fn is_constant(&self) -> bool {
        self.0.iter().all(|e| matches!(e, Elem::Label(_)))
    }

    /// If constant, the corresponding path.
    pub fn as_path(&self) -> Option<Path> {
        let mut labels = Vec::with_capacity(self.0.len());
        for e in &self.0 {
            match e {
                Elem::Label(l) => labels.push(*l),
                _ => return None,
            }
        }
        Some(Path(labels))
    }

    /// Concatenate two expressions (`sel_path.cond_path`).
    pub fn concat(&self, other: &PathExpr) -> PathExpr {
        let mut v = self.0.clone();
        v.extend(other.0.iter().cloned());
        PathExpr(v)
    }

    /// Compile to an NFA.
    pub fn nfa(&self) -> Nfa {
        Nfa::compile(self)
    }

    /// Is `p` an instance of this expression (paper §2)?
    pub fn matches(&self, p: &Path) -> bool {
        self.nfa().accepts(p.labels())
    }

    /// Language containment: does every instance of `self` also
    /// instantiate `other`? Decided by determinizing both NFAs over
    /// the joint alphabet (plus a fresh "other label" symbol) and
    /// searching `L(self) ∩ ¬L(other)` for a witness.
    pub fn contains(other: &PathExpr, inner: &PathExpr) -> bool {
        // `inner ⊆ other`.
        let mut alphabet: BTreeSet<Label> = BTreeSet::new();
        for e in other.0.iter().chain(inner.0.iter()) {
            match e {
                Elem::Label(l) => {
                    alphabet.insert(*l);
                }
                Elem::Alt(ls) => alphabet.extend(ls.iter().copied()),
                _ => {}
            }
        }
        // A label distinct from all mentioned ones stands in for "any
        // other label" — sound because both NFAs treat all unmentioned
        // labels identically.
        let fresh = Label::new("\u{1}other\u{1}");
        alphabet.insert(fresh);
        let a = inner.nfa();
        let b = other.nfa();
        // Product BFS looking for a state where `a` accepts but `b`
        // does not. With the dense engine, product states are a pair
        // of u64 masks — no state-set vectors cloned per transition.
        if let (Some(da), Some(db)) = (a.dense(), b.dense()) {
            let start = (da.start_mask(), db.start_mask());
            let mut seen: FastSet<(u64, u64)> = FastSet::default();
            let mut q = VecDeque::new();
            seen.insert(start);
            q.push_back(start);
            while let Some((sa, sb)) = q.pop_front() {
                if da.is_accepting(sa) && !db.is_accepting(sb) {
                    return false; // witness: a path in inner but not other
                }
                for &l in &alphabet {
                    let na = da.step_mask(sa, l);
                    if na == 0 {
                        continue; // dead for inner ⇒ no counterexample there
                    }
                    let key = (na, db.step_mask(sb, l));
                    if seen.insert(key) {
                        q.push_back(key);
                    }
                }
            }
            return true;
        }
        let start = (a.eclose(&[0]), b.eclose(&[0]));
        let mut seen: HashSet<(Vec<usize>, Vec<usize>)> = HashSet::new();
        let mut q = VecDeque::new();
        seen.insert(start.clone());
        q.push_back(start);
        while let Some((sa, sb)) = q.pop_front() {
            if a.any_accepting(&sa) && !b.any_accepting(&sb) {
                return false; // witness: a path in inner but not other
            }
            for &l in &alphabet {
                let na = a.step(&sa, l);
                let nb = b.step(&sb, l);
                if na.is_empty() {
                    continue; // dead for inner ⇒ no counterexample there
                }
                let key = (na, nb);
                if seen.insert(key.clone()) {
                    q.push_back(key);
                }
            }
        }
        true
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            match e {
                Elem::Label(l) => write!(f, "{l}")?,
                Elem::AnyOne => write!(f, "?")?,
                Elem::AnySeq => write!(f, "*")?,
                Elem::Alt(ls) => {
                    write!(f, "(")?;
                    for (j, l) in ls.iter().enumerate() {
                        if j > 0 {
                            write!(f, "|")?;
                        }
                        write!(f, "{l}")?;
                    }
                    write!(f, ")")?;
                }
            }
        }
        Ok(())
    }
}

impl From<&Path> for PathExpr {
    fn from(p: &Path) -> Self {
        PathExpr::from_path(p)
    }
}

// ----------------------------------------------------------------------
// NFA
// ----------------------------------------------------------------------

/// A transition predicate on one label step.
#[derive(Clone, Debug)]
enum Trans {
    /// Consume exactly this label.
    Label(Label),
    /// Consume any label.
    Any,
    /// Consume one of these labels.
    OneOf(Vec<Label>),
}

impl Trans {
    fn admits(&self, l: Label) -> bool {
        match self {
            Trans::Label(t) => *t == l,
            Trans::Any => true,
            Trans::OneOf(ts) => ts.contains(&l),
        }
    }
}

/// A compiled NFA for a path expression. State `i` means "the first
/// `i` elements are fully matched"; `*` elements add self-loops plus an
/// epsilon edge.
#[derive(Clone, Debug)]
pub struct Nfa {
    /// consuming transitions: (from, trans, to)
    trans: Vec<(usize, Trans, usize)>,
    /// epsilon transitions: (from, to)
    eps: Vec<(usize, usize)>,
    accept: usize,
    /// Dense bitset engine, present whenever the automaton fits in a
    /// `u64` state-set (path expressions of ≤ 63 elements — i.e. all
    /// realistic ones). The sparse `Vec<usize>` API below stays as the
    /// fallback and as the reference realization.
    dense: Option<DenseNfa>,
}

/// The dense evaluation engine: state sets are `u64` bitmasks and the
/// transition function is a precomputed table over the expression's
/// mentioned labels plus one "any other label" column. Stepping a
/// state set is a few table lookups and ORs — no allocation, no
/// epsilon-closure recomputation, no `Vec` cloning per node.
#[derive(Clone, Debug)]
pub struct DenseNfa {
    /// mentioned label → column index; unmentioned labels use the
    /// extra `other` column.
    symbols: FastMap<Label, u32>,
    /// columns per state: one per mentioned label + 1 for "other".
    ncols: usize,
    /// `delta[state * ncols + col]` = eps-closed successor mask.
    delta: Vec<u64>,
    start: u64,
    accept_mask: u64,
}

impl DenseNfa {
    fn build(trans: &[(usize, Trans, usize)], eps: &[(usize, usize)], accept: usize) -> Option<DenseNfa> {
        let nstates = accept + 1;
        if nstates > 64 {
            return None;
        }
        // Borrow the sparse stepping machinery to fill the table.
        let sparse = Nfa {
            trans: trans.to_vec(),
            eps: eps.to_vec(),
            accept,
            dense: None,
        };
        let mut labels: Vec<Label> = Vec::new();
        for (_, tr, _) in trans {
            match tr {
                Trans::Label(l) => {
                    if !labels.contains(l) {
                        labels.push(*l);
                    }
                }
                Trans::OneOf(ls) => {
                    for l in ls {
                        if !labels.contains(l) {
                            labels.push(*l);
                        }
                    }
                }
                Trans::Any => {}
            }
        }
        let ncols = labels.len() + 1;
        let mut symbols = FastMap::default();
        for (i, &l) in labels.iter().enumerate() {
            symbols.insert(l, i as u32);
        }
        // A label no expression can mention (contains '\u{1}') stands
        // in for the whole unmentioned-alphabet column.
        let fresh = Label::new("\u{1}unmentioned\u{1}");
        let mask_of = |states: &[usize]| states.iter().fold(0u64, |m, &s| m | (1u64 << s));
        let mut delta = vec![0u64; nstates * ncols];
        for s in 0..nstates {
            for (i, &l) in labels.iter().enumerate() {
                delta[s * ncols + i] = mask_of(&sparse.step(&[s], l));
            }
            delta[s * ncols + ncols - 1] = mask_of(&sparse.step(&[s], fresh));
        }
        Some(DenseNfa {
            symbols,
            ncols,
            delta,
            start: mask_of(&sparse.start()),
            accept_mask: 1u64 << accept,
        })
    }

    /// The eps-closed start state set as a bitmask.
    #[inline]
    pub fn start_mask(&self) -> u64 {
        self.start
    }

    /// One consuming step on label `l` from an eps-closed mask; the
    /// result is eps-closed. `0` means the automaton is dead.
    #[inline]
    pub fn step_mask(&self, mask: u64, l: Label) -> u64 {
        let col = match self.symbols.get(&l) {
            Some(&c) => c as usize,
            None => self.ncols - 1,
        };
        let mut out = 0u64;
        let mut m = mask;
        while m != 0 {
            let s = m.trailing_zeros() as usize;
            m &= m - 1;
            out |= self.delta[s * self.ncols + col];
        }
        out
    }

    /// Does the mask contain the accepting state?
    #[inline]
    pub fn is_accepting(&self, mask: u64) -> bool {
        mask & self.accept_mask != 0
    }
}

impl Nfa {
    fn compile(e: &PathExpr) -> Nfa {
        let mut trans = Vec::new();
        let mut eps = Vec::new();
        for (i, elem) in e.0.iter().enumerate() {
            match elem {
                Elem::Label(l) => trans.push((i, Trans::Label(*l), i + 1)),
                Elem::AnyOne => trans.push((i, Trans::Any, i + 1)),
                Elem::AnySeq => {
                    eps.push((i, i + 1));
                    trans.push((i, Trans::Any, i));
                }
                Elem::Alt(ls) => trans.push((i, Trans::OneOf(ls.clone()), i + 1)),
            }
        }
        let accept = e.0.len();
        let dense = DenseNfa::build(&trans, &eps, accept);
        Nfa {
            trans,
            eps,
            accept,
            dense,
        }
    }

    /// The dense bitset engine, when the automaton fits in 64 states.
    pub fn dense(&self) -> Option<&DenseNfa> {
        self.dense.as_ref()
    }

    /// Epsilon closure of a state set; result sorted + deduped.
    pub fn eclose(&self, states: &[usize]) -> Vec<usize> {
        let mut out: BTreeSet<usize> = states.iter().copied().collect();
        let mut frontier: Vec<usize> = states.to_vec();
        while let Some(s) = frontier.pop() {
            for &(f, t) in &self.eps {
                if f == s && out.insert(t) {
                    frontier.push(t);
                }
            }
        }
        out.into_iter().collect()
    }

    /// One consuming step from a (closed) state set on label `l`;
    /// result is epsilon-closed.
    pub fn step(&self, states: &[usize], l: Label) -> Vec<usize> {
        let mut next = Vec::new();
        for &s in states {
            for (f, tr, t) in &self.trans {
                if *f == s && tr.admits(l) && !next.contains(t) {
                    next.push(*t);
                }
            }
        }
        self.eclose(&next)
    }

    /// The (epsilon-closed) start state set.
    pub fn start(&self) -> Vec<usize> {
        self.eclose(&[0])
    }

    /// Does any state in the set accept?
    pub fn any_accepting(&self, states: &[usize]) -> bool {
        states.contains(&self.accept)
    }

    /// Run the NFA over a label word.
    pub fn accepts(&self, word: &[Label]) -> bool {
        if let Some(d) = self.dense() {
            let mut cur = d.start_mask();
            for &l in word {
                cur = d.step_mask(cur, l);
                if cur == 0 {
                    return false;
                }
            }
            return d.is_accepting(cur);
        }
        let mut cur = self.start();
        for &l in word {
            cur = self.step(&cur, l);
            if cur.is_empty() {
                return false;
            }
        }
        self.any_accepting(&cur)
    }
}

// ----------------------------------------------------------------------
// N.e — reachability along a path expression
// ----------------------------------------------------------------------

/// Statistics from an expression traversal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Product states (object, NFA-state-set) visited.
    pub states_visited: usize,
}

/// `N.e`: the union of `N.p` over all instances `p` of `e`
/// (paper §2). `filter` restricts traversal to objects it admits —
/// used to implement the `WITHIN DB1` clause, under which OIDs outside
/// the database "are completely ignored by the query".
///
/// Result is sorted by OID name.
pub fn reach_expr(
    store: &Store,
    n: Oid,
    e: &PathExpr,
    filter: &dyn Fn(Oid) -> bool,
) -> (Vec<Oid>, TraversalStats) {
    let nfa = e.nfa();
    if let Some(d) = nfa.dense() {
        return reach_expr_dense(store, n, d, filter);
    }
    reach_expr_sparse(store, n, &nfa, filter)
}

/// Dense realization: product states are `(slot id, u64 mask)` pairs,
/// memoized in a fast-hash set — per-(slot, state-set) visitation is
/// computed at most once, and no state-set vectors are allocated.
/// Access counting matches the sparse realization exactly (one per
/// children fetch, one per child label read).
fn reach_expr_dense(
    store: &Store,
    n: Oid,
    d: &DenseNfa,
    filter: &dyn Fn(Oid) -> bool,
) -> (Vec<Oid>, TraversalStats) {
    let mut stats = TraversalStats::default();
    if !filter(n) {
        return (Vec::new(), stats);
    }
    let start = d.start_mask();
    let mut results: Vec<Oid> = Vec::new();
    let Some(nslot) = store.slot_of(n) else {
        // Starting object absent from the store: the traversal still
        // visits it once (with no children), as the sparse realization
        // does.
        stats.states_visited = 1;
        let _ = store.children(n);
        if d.is_accepting(start) {
            results.push(n);
        }
        return (results, stats);
    };
    let mut result_slots: FastSet<u32> = FastSet::default();
    let mut seen: FastSet<(u32, u64)> = FastSet::default();
    let mut q: VecDeque<(u32, u64)> = VecDeque::new();
    seen.insert((nslot, start));
    q.push_back((nslot, start));
    while let Some((slot, mask)) = q.pop_front() {
        stats.states_visited += 1;
        if d.is_accepting(mask) && result_slots.insert(slot) {
            results.push(store.oid_at(slot).expect("queued slot is live"));
        }
        for &c in store.children_at(slot) {
            if !filter(c) {
                continue;
            }
            let Some(cslot) = store.slot_of(c) else { continue };
            let Some(cl) = store.label_at(cslot) else { continue };
            let next = d.step_mask(mask, cl);
            if next == 0 {
                continue;
            }
            if seen.insert((cslot, next)) {
                q.push_back((cslot, next));
            }
        }
    }
    results.sort_by_key(|o| o.name());
    (results, stats)
}

/// Sparse fallback (state sets as sorted `Vec<usize>`) — also the seed
/// layout E13 benchmarks against.
fn reach_expr_sparse(
    store: &Store,
    n: Oid,
    nfa: &Nfa,
    filter: &dyn Fn(Oid) -> bool,
) -> (Vec<Oid>, TraversalStats) {
    let mut stats = TraversalStats::default();
    let mut results: Vec<Oid> = Vec::new();
    let mut result_set: HashSet<Oid> = HashSet::new();
    let start = nfa.start();
    if !filter(n) {
        return (Vec::new(), stats);
    }
    let mut seen: HashSet<(Oid, Vec<usize>)> = HashSet::new();
    let mut q: VecDeque<(Oid, Vec<usize>)> = VecDeque::new();
    seen.insert((n, start.clone()));
    q.push_back((n, start));
    while let Some((o, states)) = q.pop_front() {
        stats.states_visited += 1;
        if nfa.any_accepting(&states) && result_set.insert(o) {
            results.push(o);
        }
        for &c in store.children(o) {
            if !filter(c) || !store.contains(c) {
                continue;
            }
            let Some(cl) = store.label(c) else { continue };
            let next = nfa.step(&states, cl);
            if next.is_empty() {
                continue;
            }
            let key = (c, next.clone());
            if seen.insert(key) {
                q.push_back((c, next));
            }
        }
    }
    results.sort_by_key(|o| o.name());
    (results, stats)
}

/// Run [`reach_expr`] with the sparse engine regardless of expression
/// size — the pre-arena baseline realization, kept callable so E13 can
/// measure the dense engine against it.
pub fn reach_expr_seed_layout(
    store: &Store,
    n: Oid,
    e: &PathExpr,
    filter: &dyn Fn(Oid) -> bool,
) -> (Vec<Oid>, TraversalStats) {
    reach_expr_sparse(store, n, &e.nfa(), filter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdb::samples;

    fn pe(s: &str) -> PathExpr {
        PathExpr::parse(s).unwrap()
    }

    fn path(s: &str) -> Path {
        Path::parse(s)
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["professor", "professor.age", "*", "?", "professor.*", "(a|b).x"] {
            assert_eq!(pe(s).to_string(), s);
        }
        assert!(PathExpr::parse("a..b").is_none());
        assert!(PathExpr::parse("()").is_none());
        // Alternations cannot contain dots; malformed parens are
        // rejected, not lexed as labels.
        assert!(PathExpr::parse("(a|b.c)").is_none());
        assert!(PathExpr::parse("(a").is_none());
        assert!(PathExpr::parse("a|b").is_none());
        assert_eq!(PathExpr::parse(""), Some(PathExpr::empty()));
    }

    #[test]
    fn constant_detection() {
        assert!(pe("professor.age").is_constant());
        assert!(!pe("professor.*").is_constant());
        assert_eq!(pe("a.b").as_path(), Some(path("a.b")));
        assert_eq!(pe("a.?").as_path(), None);
    }

    #[test]
    fn matches_constant() {
        assert!(pe("professor.age").matches(&path("professor.age")));
        assert!(!pe("professor.age").matches(&path("professor")));
        assert!(pe("").matches(&Path::empty()));
        assert!(!pe("").matches(&path("x")));
    }

    #[test]
    fn matches_wildcards() {
        // ? = exactly one label.
        assert!(pe("professor.?").matches(&path("professor.age")));
        assert!(!pe("professor.?").matches(&path("professor")));
        assert!(!pe("professor.?").matches(&path("professor.student.age")));
        // * = any sequence, including empty (paper: any path p is
        // contained in path expression *).
        assert!(pe("*").matches(&Path::empty()));
        assert!(pe("*").matches(&path("a.b.c")));
        assert!(pe("professor.*").matches(&path("professor")));
        assert!(pe("professor.*").matches(&path("professor.student.age")));
        assert!(!pe("professor.*").matches(&path("secretary.age")));
        // * in the middle.
        assert!(pe("a.*.z").matches(&path("a.z")));
        assert!(pe("a.*.z").matches(&path("a.m.n.z")));
        assert!(!pe("a.*.z").matches(&path("a.m.n")));
        // Alternation.
        assert!(pe("(professor|student).age").matches(&path("student.age")));
        assert!(!pe("(professor|student).age").matches(&path("secretary.age")));
    }

    #[test]
    fn containment_basic() {
        // Any path is contained in * (paper §6's example).
        assert!(PathExpr::contains(&pe("*"), &pe("professor.age")));
        assert!(PathExpr::contains(&pe("*"), &pe("a.*.b")));
        // Reflexive.
        assert!(PathExpr::contains(&pe("a.*.b"), &pe("a.*.b")));
        // Constant vs constant.
        assert!(PathExpr::contains(&pe("a.b"), &pe("a.b")));
        assert!(!PathExpr::contains(&pe("a.b"), &pe("a.c")));
        // ? ⊆ * but not vice versa.
        assert!(PathExpr::contains(&pe("*"), &pe("?")));
        assert!(!PathExpr::contains(&pe("?"), &pe("*")));
        // a.* contains a but not b.
        assert!(PathExpr::contains(&pe("a.*"), &pe("a")));
        assert!(!PathExpr::contains(&pe("a.*"), &pe("b")));
        // Alternation containment.
        assert!(PathExpr::contains(&pe("(a|b).x"), &pe("a.x")));
        assert!(!PathExpr::contains(&pe("(a|b).x"), &pe("c.x")));
        // Unmentioned labels are handled by the fresh-symbol trick:
        // ?.x ⊆ *.x, even for labels neither side names.
        assert!(PathExpr::contains(&pe("*.x"), &pe("?.x")));
        assert!(!PathExpr::contains(&pe("?.x"), &pe("*.x")));
    }

    #[test]
    fn containment_empty_pattern() {
        // ε ⊆ ε, and ε is contained in anything that accepts the
        // empty path — but contains nothing besides ε itself.
        let eps = PathExpr::empty();
        assert!(PathExpr::contains(&eps, &eps));
        assert!(PathExpr::contains(&pe("*"), &eps));
        assert!(PathExpr::contains(&pe("*.*"), &eps));
        assert!(!PathExpr::contains(&eps, &pe("a")));
        assert!(!PathExpr::contains(&eps, &pe("?")));
        assert!(!PathExpr::contains(&eps, &pe("*"))); // * also matches "a"
        assert!(!PathExpr::contains(&pe("a"), &eps));
        assert!(!PathExpr::contains(&pe("?"), &eps));
    }

    #[test]
    fn containment_is_reflexive() {
        for s in ["", "a", "?", "*", "a.b.c", "a.*.b", "?.*.?", "(a|b).*.(b|c)"] {
            let e = pe(s);
            assert!(PathExpr::contains(&e, &e), "{s} ⊆ {s} must hold");
        }
    }

    #[test]
    fn containment_wildcard_vs_literal() {
        // ? covers every single literal, named or not.
        assert!(PathExpr::contains(&pe("?"), &pe("a")));
        assert!(PathExpr::contains(&pe("?"), &pe("(a|b)")));
        assert!(!PathExpr::contains(&pe("a"), &pe("?")));
        assert!(!PathExpr::contains(&pe("(a|b)"), &pe("?")));
        // Fixed-arity chains: ?.? covers any two-label path, never a
        // one- or three-label one.
        assert!(PathExpr::contains(&pe("?.?"), &pe("a.b")));
        assert!(!PathExpr::contains(&pe("?.?"), &pe("a")));
        assert!(!PathExpr::contains(&pe("?.?"), &pe("a.b.c")));
        assert!(PathExpr::contains(&pe("*"), &pe("?.?")));
        // Mixed: a.? vs a.b vs ?.b — pairwise incomparable except
        // where the literal agrees.
        assert!(PathExpr::contains(&pe("a.?"), &pe("a.b")));
        assert!(PathExpr::contains(&pe("?.b"), &pe("a.b")));
        assert!(!PathExpr::contains(&pe("a.?"), &pe("?.b")));
        assert!(!PathExpr::contains(&pe("?.b"), &pe("a.?")));
        // A literal written as a singleton alternation is the same
        // language.
        assert!(PathExpr::contains(&pe("(a)"), &pe("a")));
        assert!(PathExpr::contains(&pe("a"), &pe("(a)")));
    }

    #[test]
    fn containment_cyclic_alphabets() {
        // `*` makes the NFA cyclic; exercise containment where both
        // sides loop over the same small alphabet {a, b}.
        // Strings over {a,b} starting with a ⊆ strings starting with
        // a or b.
        assert!(PathExpr::contains(&pe("(a|b).*"), &pe("a.*")));
        assert!(!PathExpr::contains(&pe("a.*"), &pe("(a|b).*")));
        // Ending constraints: *.a ⊆ *.(a|b), not vice versa.
        assert!(PathExpr::contains(&pe("*.(a|b)"), &pe("*.a")));
        assert!(!PathExpr::contains(&pe("*.a"), &pe("*.(a|b)")));
        // Starts-and-ends-with-a ⊆ contains-an-a (cycle on both sides
        // of the anchor).
        assert!(PathExpr::contains(&pe("*.a.*"), &pe("a.*.a")));
        assert!(!PathExpr::contains(&pe("a.*.a"), &pe("*.a.*")));
        // Starts-and-ends-with-a ⊆ starts-with-a.
        assert!(PathExpr::contains(&pe("a.*"), &pe("a.*.a")));
        assert!(!PathExpr::contains(&pe("a.*.a"), &pe("a.*")));
        // Two anchors vs one: *.a.*.b.* (an a somewhere before a b)
        // is strictly inside *.b.* (a b somewhere).
        assert!(PathExpr::contains(&pe("*.b.*"), &pe("*.a.*.b.*")));
        assert!(!PathExpr::contains(&pe("*.a.*.b.*"), &pe("*.b.*")));
        // Same language, syntactically different loops: *.* ≡ *.
        assert!(PathExpr::contains(&pe("*"), &pe("*.*")));
        assert!(PathExpr::contains(&pe("*.*"), &pe("*")));
        // The fresh-symbol trick must keep ?-loops honest even when
        // the candidate path uses labels neither side mentions:
        // ?.*.? (length ≥ 2) vs *.a.* — incomparable.
        assert!(!PathExpr::contains(&pe("?.*.?"), &pe("*.a.*"))); // "a" alone
        assert!(!PathExpr::contains(&pe("*.a.*"), &pe("?.*.?"))); // "x.y"
    }

    #[test]
    fn reach_expr_on_person_db() {
        let mut s = Store::new();
        samples::person_db(&mut s).unwrap();
        let root = Oid::new("ROOT");
        let all = |_: Oid| true;
        // ROOT.professor = {P1, P2}.
        let (profs, _) = reach_expr(&s, root, &pe("professor"), &all);
        assert_eq!(profs, vec![Oid::new("P1"), Oid::new("P2")]);
        // ROOT.* includes every descendant and ROOT itself (ε instance).
        let (star, _) = reach_expr(&s, root, &pe("*"), &all);
        assert_eq!(star.len(), 15); // all 15 objects reachable from ROOT
        // ROOT.*.age: ages at any depth.
        let (ages, _) = reach_expr(&s, root, &pe("*.age"), &all);
        assert_eq!(
            ages,
            vec![Oid::new("A1"), Oid::new("A3"), Oid::new("A4")]
        );
        // ROOT.professor.?: all direct children of professors.
        let (kids, _) = reach_expr(&s, root, &pe("professor.?"), &all);
        assert_eq!(kids.len(), 6); // N1,A1,S1,P3,N2,ADD2
    }

    #[test]
    fn reach_expr_respects_filter() {
        let mut s = Store::new();
        samples::person_db(&mut s).unwrap();
        let root = Oid::new("ROOT");
        // Exclude P1: nothing under it is reachable through it.
        let not_p1 = |o: Oid| o != Oid::new("P1");
        let (ages, _) = reach_expr(&s, root, &pe("*.age"), &not_p1);
        // A1 is only under P1; A3 is under P3 which is also a direct
        // child of ROOT, so it remains reachable; A4 under P4.
        assert_eq!(ages, vec![Oid::new("A3"), Oid::new("A4")]);
    }

    #[test]
    fn dense_engine_agrees_with_sparse() {
        let mut s = Store::counting();
        samples::person_db(&mut s).unwrap();
        let root = Oid::new("ROOT");
        let all = |_: Oid| true;
        for expr in [
            "", "professor", "professor.age", "*", "*.age", "professor.?",
            "?.?", "(professor|student).*", "*.name", "professor.*.age",
        ] {
            let e = pe(expr);
            assert!(e.nfa().dense().is_some(), "{expr} should compile dense");
            s.reset_accesses();
            let (dense, dstats) = reach_expr(&s, root, &e, &all);
            let dense_cost = s.accesses();
            s.reset_accesses();
            let (sparse, sstats) = reach_expr_seed_layout(&s, root, &e, &all);
            let sparse_cost = s.accesses();
            assert_eq!(dense, sparse, "results differ for {expr}");
            assert_eq!(dstats, sstats, "stats differ for {expr}");
            assert_eq!(dense_cost, sparse_cost, "base accesses differ for {expr}");
        }
    }

    #[test]
    fn dense_engine_accepts_matches_sparse_on_words() {
        for expr in ["", "a", "?", "*", "a.*.b", "(a|b).?", "*.a.*"] {
            let e = pe(expr);
            let nfa = e.nfa();
            let d = nfa.dense().unwrap();
            for word in ["", "a", "b", "z", "a.b", "a.z.b", "x.y.z", "a.a.a.b"] {
                let p = path(word);
                // dense accepts == sparse stepping by hand
                let mut cur = nfa.start();
                for &l in p.labels() {
                    cur = nfa.step(&cur, l);
                }
                let sparse_ok = nfa.any_accepting(&cur);
                let mut m = d.start_mask();
                for &l in p.labels() {
                    m = d.step_mask(m, l);
                }
                assert_eq!(
                    d.is_accepting(m),
                    sparse_ok,
                    "{expr} on {word}"
                );
            }
        }
    }

    #[test]
    fn reach_expr_handles_cycles() {
        let mut s = Store::new();
        s.create_all([
            gsdb::Object::empty_set("a", "x"),
            gsdb::Object::empty_set("b", "x"),
        ])
        .unwrap();
        s.insert_edge(Oid::new("a"), Oid::new("b")).unwrap();
        s.insert_edge(Oid::new("b"), Oid::new("a")).unwrap();
        let (r, stats) = reach_expr(&s, Oid::new("a"), &pe("*"), &|_| true);
        assert_eq!(r.len(), 2);
        assert!(stats.states_visited <= 4, "product BFS must terminate");
    }
}
