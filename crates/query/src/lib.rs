//! # gsview-query — query language for graph structured databases
//!
//! The query and view-definition language of Zhuge & Garcia-Molina
//! (ICDE 1998), §2–3:
//!
//! ```text
//! SELECT OBJ.sel_path_exp X
//! WHERE  cond(X.cond_path_exp)
//! [WITHIN DB1]
//! [ANS INT DB2]
//! ```
//!
//! * [`pathexpr`] — path expressions (regular expressions over labels)
//!   with NFA matching, containment testing, and graph traversal;
//! * [`cond`] — the condition language (existential predicates over
//!   atomic values);
//! * [`ast`], [`lexer`], [`parser`] — surface syntax;
//! * [`eval`] — the evaluation engine with `WITHIN` / `ANS INT`
//!   scoping semantics.
//!
//! ## Quickstart
//!
//! ```
//! use gsdb::{samples, Oid, Store};
//! use gsview_query::{parse_query, evaluate};
//!
//! let mut store = Store::new();
//! samples::person_db(&mut store).unwrap();
//! let q = parse_query("SELECT ROOT.professor X WHERE X.age > 40").unwrap();
//! let ans = evaluate(&store, &q).unwrap();
//! assert_eq!(ans.oids, vec![Oid::new("P1")]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod cond;
pub mod eval;
pub mod explain;
pub mod lexer;
pub mod parser;
pub mod pathexpr;
pub mod plan;

pub use ast::{Condition, Entry, Query, Statement, ViewDef};
pub use cond::{CmpOp, Pred};
pub use eval::{evaluate, evaluate_into, Answer, EvalError, EvalStats};
pub use parser::{parse_query, parse_statement, parse_viewdef, ParseError};
pub use explain::explain;
pub use plan::{choose_backend, choose_explained, evaluate_planned, MaintBackend, SelStrategy};
pub use pathexpr::{reach_expr, reach_expr_seed_layout, DenseNfa, Elem, Nfa, PathExpr, TraversalStats};
