//! Physical planning for selection traversal.
//!
//! The evaluator's default strategy walks *forward* from the entry
//! point (a product BFS of graph × NFA). When the selection expression
//! ends in a constant label and the store maintains a label index, a
//! *backward* strategy is often far cheaper: start from the (few)
//! objects carrying the final label and verify reachability from the
//! entry by walking **up** the parent index against the reversed
//! expression. `ROOT.*.age` over a million-object store then touches
//! only the age atoms and their ancestor chains, instead of the whole
//! database.
//!
//! The paper motivates exactly this trade-off in §4.4 for maintenance
//! (`ancestor()` with an inverse index vs a traversal from ROOT);
//! this module applies it to query evaluation, and experiment E9
//! measures the ablation.

use crate::ast::{Entry, Query};
use crate::eval::{Answer, EvalError, EvalStats};
use crate::pathexpr::{reach_expr, Elem, PathExpr, TraversalStats};
use gsdb::{Label, Oid, Store};
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// The chosen physical strategy for the selection traversal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SelStrategy {
    /// Product BFS from the entry (always applicable).
    Forward,
    /// Label-index candidates + upward verification.
    Backward {
        /// The final label(s) the index is probed with.
        labels: Vec<Label>,
    },
}

impl fmt::Display for SelStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelStrategy::Forward => write!(f, "forward"),
            SelStrategy::Backward { labels } => {
                write!(f, "backward(")?;
                for (i, l) in labels.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{l}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Choose a strategy for evaluating `expr` from `entry` on `store`.
///
/// Backward is picked when (a) the expression is non-empty and its
/// final element is a constant label or alternation, (b) the store
/// has both label and parent indexes, and (c) the candidate set is
/// smaller than `selectivity_cutoff` × |store|.
pub fn choose(store: &Store, expr: &PathExpr, selectivity_cutoff: f64) -> SelStrategy {
    choose_explained(store, expr, selectivity_cutoff).0
}

/// Like [`choose`], but also returns a one-line human-readable reason
/// for the decision (used by [`explain`](crate::explain::explain) and
/// the `query.plan` trace event).
pub fn choose_explained(
    store: &Store,
    expr: &PathExpr,
    selectivity_cutoff: f64,
) -> (SelStrategy, String) {
    if !store.has_parent_index() {
        return (SelStrategy::Forward, "no parent index".into());
    }
    let labels: Vec<Label> = match expr.0.last() {
        Some(Elem::Label(l)) => vec![*l],
        Some(Elem::Alt(ls)) => ls.clone(),
        None => return (SelStrategy::Forward, "empty selection expression".into()),
        _ => {
            return (
                SelStrategy::Forward,
                "tail element is not a constant label".into(),
            )
        }
    };
    let mut candidates = 0usize;
    for &l in &labels {
        match store.with_label(l) {
            Some(set) => candidates += set.len(),
            None => {
                return (
                    SelStrategy::Forward,
                    format!("no label index for {l}"),
                )
            }
        }
    }
    let objects = store.len();
    if (candidates as f64) < selectivity_cutoff * objects as f64 {
        (
            SelStrategy::Backward { labels },
            format!("label index: {candidates} candidates < {selectivity_cutoff} x {objects} objects"),
        )
    } else {
        (
            SelStrategy::Forward,
            format!("unselective tail: {candidates} candidates >= {selectivity_cutoff} x {objects} objects"),
        )
    }
}

/// The maintenance backend the planner selects for a materialized
/// view: the paper's Algorithm 1 family (local repair against the
/// base), or the delta-circuit engine (per-view arranged operator
/// state stepped in O(|Δ|) per batch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaintBackend {
    /// Localized repair (Algorithm 1 and its batched/guarded variants).
    Algorithm1,
    /// Compiled delta circuit over Z-set deltas with arranged state.
    Circuit,
}

impl fmt::Display for MaintBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaintBackend::Algorithm1 => write!(f, "algorithm1"),
            MaintBackend::Circuit => write!(f, "circuit"),
        }
    }
}

/// Choose a maintenance backend for a view shape, with a one-line
/// reason (rendered by [`explain`](crate::explain::explain) and the
/// maintainer layer's `StrategyReason`-style reporting).
///
/// The heuristic mirrors where each backend's cost model wins:
///
/// * **aggregates** — Algorithm 1 re-aggregates affected members from
///   the base per batch; the circuit keeps per-member arranged flows
///   and pays only for touched product states;
/// * **multi-branch unions** — the circuit shares one arrangement
///   across branches, Algorithm 1 runs one repair pass per branch;
/// * **non-constant expressions** (wildcards, alternations with
///   closure) — Algorithm 1 has no local repair rule and escalates to
///   a *scoped* recomputation on any relevant update; E18 measures
///   that scoped refresh beating the circuit's wildcard product-state
///   bookkeeping at every size and selectivity, so wildcard shapes
///   route to Algorithm 1 (the measured winner), not the circuit;
/// * **constant single paths** — Algorithm 1's repair is already
///   O(local) and carries no operator state, so it stays the default.
pub fn choose_backend(
    sel_expr: &PathExpr,
    branches: usize,
    aggregated: bool,
) -> (MaintBackend, String) {
    if aggregated {
        return (
            MaintBackend::Circuit,
            "aggregate view: per-member delta flows beat re-aggregation".into(),
        );
    }
    if branches > 1 {
        return (
            MaintBackend::Circuit,
            format!("multi-path union: one arrangement shared by {branches} branches"),
        );
    }
    if sel_expr.as_path().is_none() {
        return (
            MaintBackend::Algorithm1,
            "wildcard selection: scoped recomputation beats circuit product-state (E18)".into(),
        );
    }
    (
        MaintBackend::Algorithm1,
        "constant single-path selection: Algorithm 1 repairs locally".into(),
    )
}

/// Reverse a path expression: since our expressions are concatenations
/// of self-symmetric elements, `L(rev(e))` is the set of reversed
/// words of `L(e)`.
pub fn reversed(expr: &PathExpr) -> PathExpr {
    let mut v = expr.0.clone();
    v.reverse();
    PathExpr(v)
}

/// Backward realization of `entry.expr`: candidates from the label
/// index, verified by an upward product BFS against the reversed
/// expression. Produces exactly the same set as
/// [`reach_expr`] (asserted by tests and
/// experiment E9).
pub fn reach_expr_backward(
    store: &Store,
    entry: Oid,
    expr: &PathExpr,
    labels: &[Label],
    filter: &dyn Fn(Oid) -> bool,
) -> (Vec<Oid>, TraversalStats) {
    let rev = reversed(expr);
    let nfa = rev.nfa();
    let mut stats = TraversalStats::default();
    let mut out: Vec<Oid> = Vec::new();

    // ε instance: the entry itself is in entry.expr when the NFA
    // accepts the empty word (e.g. a bare `*`).
    if nfa.any_accepting(&nfa.start()) && filter(entry) && store.contains(entry) {
        out.push(entry);
    }

    let mut candidates: Vec<Oid> = Vec::new();
    for &l in labels {
        if let Some(set) = store.with_label(l) {
            candidates.extend(set.iter());
        }
    }
    candidates.sort_by_key(|o| o.name());
    candidates.dedup();

    for cand in candidates {
        if !filter(cand) {
            continue;
        }
        if cand == entry && out.contains(&cand) {
            continue; // already admitted via the ε instance
        }
        // Upward product BFS: consume label(cur), climb to parents.
        let mut seen: HashSet<(Oid, Vec<usize>)> = HashSet::new();
        let mut q: VecDeque<(Oid, Vec<usize>)> = VecDeque::new();
        let start = nfa.start();
        seen.insert((cand, start.clone()));
        q.push_back((cand, start));
        let mut matched = false;
        'bfs: while let Some((o, states)) = q.pop_front() {
            stats.states_visited += 1;
            let Some(l) = store.label(o) else { continue };
            let next = nfa.step(&states, l);
            if next.is_empty() {
                continue;
            }
            let Some(parents) = store.parents(o) else {
                continue;
            };
            for p in parents.iter() {
                if !filter(p) {
                    continue;
                }
                if p == entry && nfa.any_accepting(&next) {
                    matched = true;
                    break 'bfs;
                }
                let key = (p, next.clone());
                if seen.insert(key) {
                    q.push_back((p, next.clone()));
                }
            }
        }
        if matched {
            out.push(cand);
        }
    }
    out.sort_by_key(|o| o.name());
    out.dedup();
    (out, stats)
}

/// Evaluate a query using the planner for the selection traversal
/// (conditions and scoping are handled exactly as in
/// [`evaluate`](crate::eval::evaluate); answers are identical).
/// Returns the answer plus the chosen strategy.
pub fn evaluate_planned(
    store: &Store,
    query: &Query,
    selectivity_cutoff: f64,
) -> Result<(Answer, SelStrategy), EvalError> {
    // Scope filter (same semantics as eval.rs).
    let within_members: Option<gsdb::OidSet> = match query.within {
        Some(db) => {
            let obj = store.get(db).ok_or(EvalError::BadDatabase(db))?;
            Some(
                obj.value
                    .as_set()
                    .cloned()
                    .ok_or(EvalError::BadDatabase(db))?,
            )
        }
        None => None,
    };
    let filter = |o: Oid| -> bool {
        match &within_members {
            Some(m) => m.contains(o),
            None => true,
        }
    };

    let (start, sel_expr) = match &query.entry {
        Entry::Object(o) => {
            if !store.contains(*o) {
                return Err(EvalError::NoSuchEntry(*o));
            }
            (*o, query.sel_path.clone())
        }
        Entry::DatabaseAll(db) => {
            if !store.contains(*db) {
                return Err(EvalError::NoSuchEntry(*db));
            }
            let mut elems = vec![Elem::AnyOne];
            elems.extend(query.sel_path.0.iter().cloned());
            (*db, PathExpr(elems))
        }
    };

    let strategy = choose(store, &sel_expr, selectivity_cutoff);
    let mut stats = EvalStats::default();
    let (candidates, tstats) = match &strategy {
        SelStrategy::Forward => reach_expr(store, start, &sel_expr, &filter),
        SelStrategy::Backward { labels } => {
            reach_expr_backward(store, start, &sel_expr, labels, &filter)
        }
    };
    stats.sel_states_visited = tstats.states_visited;

    let mut result = Vec::new();
    for x in candidates {
        let keep = match &query.cond {
            None => true,
            Some(c) => {
                stats.candidates_tested += 1;
                let (reached, cstats) = reach_expr(store, x, &c.path, &filter);
                stats.cond_states_visited += cstats.states_visited;
                c.pred.eval_any(store, &reached)
            }
        };
        if keep {
            result.push(x);
        }
    }
    if let Some(db) = query.ans_int {
        let obj = store.get(db).ok_or(EvalError::BadDatabase(db))?;
        let members = obj
            .value
            .as_set()
            .cloned()
            .ok_or(EvalError::BadDatabase(db))?;
        result.retain(|o| members.contains(*o));
    }
    gsview_obs::event!("query.plan",
        "strategy" = strategy.to_string(),
        "answers" = result.len(),
        "sel_states" = stats.sel_states_visited,
        "candidates_tested" = stats.candidates_tested,
        "cond_states" = stats.cond_states_visited);
    Ok((
        Answer {
            oids: result,
            stats,
        },
        strategy,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::parser::parse_query;
    use gsdb::samples;

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn person_store() -> Store {
        let mut s = Store::new();
        samples::person_db(&mut s).unwrap();
        s
    }

    #[test]
    fn chooser_picks_backward_for_selective_tails() {
        let s = person_store();
        let e = PathExpr::parse("*.major").unwrap(); // one major atom
        assert!(matches!(
            choose(&s, &e, 0.25),
            SelStrategy::Backward { .. }
        ));
        // Wildcard tail → forward.
        assert_eq!(choose(&s, &PathExpr::parse("professor.*").unwrap(), 0.25), SelStrategy::Forward);
        // Unselective label (above cutoff) → forward.
        assert_eq!(choose(&s, &PathExpr::parse("name").unwrap(), 0.01), SelStrategy::Forward);
    }

    #[test]
    fn backend_chooser_covers_all_shapes() {
        let constant = PathExpr::parse("professor.student").unwrap();
        let wildcard = PathExpr::parse("professor.*").unwrap();

        let (b, why) = choose_backend(&constant, 1, false);
        assert_eq!(b, MaintBackend::Algorithm1);
        assert!(why.contains("single-path"), "{why}");

        // Regression pin (E18): wildcard shapes lost to scoped
        // recomputation at every measured size, so the router must NOT
        // send them to the circuit.
        let (b, why) = choose_backend(&wildcard, 1, false);
        assert_eq!(b, MaintBackend::Algorithm1);
        assert!(why.contains("wildcard"), "{why}");
        assert!(why.contains("E18"), "{why}");

        let (b, why) = choose_backend(&constant, 3, false);
        assert_eq!(b, MaintBackend::Circuit);
        assert!(why.contains("3 branches"), "{why}");

        let (b, why) = choose_backend(&constant, 1, true);
        assert_eq!(b, MaintBackend::Circuit);
        assert!(why.contains("aggregate"), "{why}");

        assert_eq!(MaintBackend::Algorithm1.to_string(), "algorithm1");
        assert_eq!(MaintBackend::Circuit.to_string(), "circuit");
    }

    #[test]
    fn backward_agrees_with_forward_on_paper_queries() {
        let s = person_store();
        for src in [
            "SELECT ROOT.*.age X",
            "SELECT ROOT.professor.age X",
            "SELECT ROOT.*.name X",
            "SELECT ROOT.professor.student.major X",
            "SELECT ROOT.(professor|secretary).age X",
        ] {
            let q = parse_query(src).unwrap();
            let forward = evaluate(&s, &q).unwrap();
            let (planned, strategy) = evaluate_planned(&s, &q, 0.6).unwrap();
            assert_eq!(planned.oids, forward.oids, "{src} via {strategy}");
        }
    }

    #[test]
    fn backward_respects_within_filter() {
        let mut s = person_store();
        let members: Vec<Oid> = gsdb::database::members(&s, oid("PERSON"))
            .unwrap()
            .into_iter()
            .filter(|&o| o != oid("P1"))
            .collect();
        gsdb::database::database_of(&mut s, oid("D1"), &members).unwrap();
        let q = parse_query("SELECT ROOT.*.age X WITHIN D1").unwrap();
        let forward = evaluate(&s, &q).unwrap();
        let (planned, _) = evaluate_planned(&s, &q, 0.9).unwrap();
        assert_eq!(planned.oids, forward.oids);
        // A1 is under P1 only, which D1 excludes from traversal.
        assert!(!planned.oids.contains(&oid("A1")));
    }

    #[test]
    fn backward_visits_fewer_states_on_selective_queries() {
        // Build a wide store where only a few leaves carry the target
        // label.
        let mut s = Store::new();
        let mut kids = Vec::new();
        for i in 0..500 {
            let leaf = Oid::new(&format!("pl{i}"));
            let label = if i % 100 == 0 { "rare" } else { "common" };
            s.create(gsdb::Object::atom(leaf.name(), label, i as i64))
                .unwrap();
            let mid = Oid::new(&format!("pm{i}"));
            s.create(gsdb::Object::set(mid.name(), "mid", &[leaf]))
                .unwrap();
            kids.push(mid);
        }
        s.create(gsdb::Object::set("PROOT", "root", &kids)).unwrap();
        let q = parse_query("SELECT PROOT.*.rare X").unwrap();
        let forward = evaluate(&s, &q).unwrap();
        let (planned, strategy) = evaluate_planned(&s, &q, 0.25).unwrap();
        assert!(matches!(strategy, SelStrategy::Backward { .. }));
        assert_eq!(planned.oids, forward.oids);
        assert_eq!(planned.oids.len(), 5);
        assert!(
            planned.stats.sel_states_visited * 10 < forward.stats.sel_states_visited,
            "backward {} should be far below forward {}",
            planned.stats.sel_states_visited,
            forward.stats.sel_states_visited
        );
    }

    #[test]
    fn entry_itself_matches_epsilon_instances() {
        let s = person_store();
        // `ROOT.*` includes ROOT; forward and backward agree (backward
        // here falls back to forward — wildcard tail — so force the
        // backward path with a label tail that equals the entry label).
        let q = parse_query("SELECT P1.*.professor X").unwrap();
        let forward = evaluate(&s, &q).unwrap();
        let (planned, _) = evaluate_planned(&s, &q, 1.1).unwrap();
        assert_eq!(planned.oids, forward.oids);
    }
}
