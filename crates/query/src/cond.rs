//! The condition language of the `WHERE` clause.
//!
//! Paper §2: "Boolean function `cond()` accepts a set of atomic objects,
//! and returns true if one of those object values satisfy the
//! condition." A condition is thus existentially quantified over the
//! objects reached by the condition path.

use gsdb::{Atom, Oid, Store};
use std::cmp::Ordering;
use std::fmt;

/// Comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `contains` — substring test on strings (extension; the paper's
    /// motivating example selects "Web pages containing the word
    /// 'flower'").
    Contains,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Contains => "contains",
        };
        f.write_str(s)
    }
}

/// A predicate on a single atomic value: `value <op> rhs`.
#[derive(Clone, Debug, PartialEq)]
pub struct Pred {
    /// The operator.
    pub op: CmpOp,
    /// The right-hand-side literal.
    pub rhs: Atom,
}

impl Pred {
    /// Build a predicate.
    pub fn new(op: CmpOp, rhs: impl Into<Atom>) -> Self {
        Pred {
            op,
            rhs: rhs.into(),
        }
    }

    /// Evaluate on one atomic value. Mixed-kind comparisons are false
    /// (they "do not satisfy the condition").
    pub fn eval(&self, v: &Atom) -> bool {
        match self.op {
            CmpOp::Contains => match (v.as_str(), self.rhs.as_str()) {
                (Some(hay), Some(needle)) => hay.contains(needle),
                _ => false,
            },
            _ => {
                let Some(ord) = v.partial_cmp_atom(&self.rhs) else {
                    // `!=` across kinds: values of different kinds are
                    // unequal.
                    return self.op == CmpOp::Ne;
                };
                match self.op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                    CmpOp::Contains => unreachable!(),
                }
            }
        }
    }

    /// The paper's `cond()` applied to a set of objects: true if any of
    /// them is atomic and satisfies the predicate.
    pub fn eval_any(&self, store: &Store, objects: &[Oid]) -> bool {
        objects
            .iter()
            .any(|&o| store.atom(o).map(|a| self.eval(a)).unwrap_or(false))
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.op, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdb::Object;

    #[test]
    fn numeric_comparisons() {
        let le45 = Pred::new(CmpOp::Le, 45i64);
        assert!(le45.eval(&Atom::Int(45)));
        assert!(le45.eval(&Atom::Int(40)));
        assert!(!le45.eval(&Atom::Int(46)));
        assert!(le45.eval(&Atom::Real(44.5)));
        let gt = Pred::new(CmpOp::Gt, 40i64);
        assert!(gt.eval(&Atom::Int(45)));
        assert!(!gt.eval(&Atom::Int(40)));
    }

    #[test]
    fn string_comparisons() {
        let eq = Pred::new(CmpOp::Eq, "John");
        assert!(eq.eval(&Atom::str("John")));
        assert!(!eq.eval(&Atom::str("Sally")));
        let contains = Pred::new(CmpOp::Contains, "flower");
        assert!(contains.eval(&Atom::str("a field of flowers")));
        assert!(!contains.eval(&Atom::str("a field of weeds")));
        assert!(!contains.eval(&Atom::Int(3)));
    }

    #[test]
    fn mixed_kind_comparisons() {
        // 'John' > 40 is simply false, not an error.
        assert!(!Pred::new(CmpOp::Gt, 40i64).eval(&Atom::str("John")));
        // 'John' != 40 is true.
        assert!(Pred::new(CmpOp::Ne, 40i64).eval(&Atom::str("John")));
        // Tagged quantities compare numerically.
        assert!(Pred::new(CmpOp::Ge, 50_000i64).eval(&Atom::tagged("dollar", 100_000)));
    }

    #[test]
    fn eval_any_is_existential() {
        let mut s = Store::new();
        s.create_all([
            Object::atom("a", "age", 20i64),
            Object::atom("b", "age", 50i64),
            Object::set("c", "stuff", &[]),
        ])
        .unwrap();
        let gt40 = Pred::new(CmpOp::Gt, 40i64);
        let all = [Oid::new("a"), Oid::new("b"), Oid::new("c")];
        assert!(gt40.eval_any(&s, &all));
        assert!(!gt40.eval_any(&s, &[Oid::new("a")]));
        // Set objects never satisfy.
        assert!(!gt40.eval_any(&s, &[Oid::new("c")]));
        assert!(!gt40.eval_any(&s, &[]));
    }
}
