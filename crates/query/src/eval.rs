//! Query evaluation (paper §2–3).
//!
//! The evaluator considers all objects in `OBJ.sel_path_exp`; for each
//! candidate `X` it checks `cond(X.cond_path_exp)`; `X` joins the
//! answer when the condition holds. The two scope clauses behave as
//! the paper specifies:
//!
//! * `WITHIN DB1` — "any OIDs that are not in DB1 are completely
//!   ignored by the query": the membership filter applies to the
//!   selection traversal *and* to condition-path traversal;
//! * `ANS INT DB2` — the answer is intersected with `DB2`'s members,
//!   but condition evaluation "can follow remote pointers".
//!
//! The paper's `DB.?` entry-point idiom needs no special case here:
//! a database object is an ordinary set object whose children are its
//! members, so `DB.?` reaches exactly "all objects in DB".

use crate::ast::{Entry, Query};
use crate::pathexpr::{reach_expr, Elem, PathExpr};
use gsdb::{label::well_known, Object, Oid, Store, Value};
use std::fmt;

/// Evaluation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// The entry-point OID does not exist.
    NoSuchEntry(Oid),
    /// A `WITHIN`/`ANS INT` clause names a missing or non-set object.
    BadDatabase(Oid),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NoSuchEntry(o) => write!(f, "no such entry point: {o}"),
            EvalError::BadDatabase(o) => write!(f, "not a database object: {o}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Counters from one evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Product states visited during the selection traversal.
    pub sel_states_visited: usize,
    /// Candidates whose condition was evaluated.
    pub candidates_tested: usize,
    /// Product states visited across all condition traversals.
    pub cond_states_visited: usize,
}

/// The result of a query: the answer OIDs (sorted by name) and stats.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Answer {
    /// Answer members.
    pub oids: Vec<Oid>,
    /// Evaluation counters.
    pub stats: EvalStats,
}

impl Answer {
    /// Materialize this answer as an object
    /// `<ans_oid, answer, set, {...}>` (paper §2).
    pub fn into_object(self, ans_oid: Oid) -> Object {
        Object {
            oid: ans_oid,
            label: well_known::answer(),
            value: Value::set_of(self.oids),
        }
    }

    /// True iff the answer is empty.
    pub fn is_empty(&self) -> bool {
        self.oids.is_empty()
    }
}

/// Evaluate a query against a store.
pub fn evaluate(store: &Store, query: &Query) -> Result<Answer, EvalError> {
    let mut stats = EvalStats::default();

    // Resolve the WITHIN filter.
    let within_members: Option<gsdb::OidSet> = match query.within {
        Some(db) => Some(database_members(store, db)?),
        None => None,
    };
    let filter = |o: Oid| -> bool {
        match &within_members {
            Some(m) => m.contains(o),
            None => true,
        }
    };

    // Resolve the entry point and effective selection expression.
    let (start, sel_expr) = match &query.entry {
        Entry::Object(o) => {
            if !store.contains(*o) {
                return Err(EvalError::NoSuchEntry(*o));
            }
            (*o, query.sel_path.clone())
        }
        Entry::DatabaseAll(db) => {
            // DB.? then sel_path: start at the database object and
            // prepend one arbitrary step (its members).
            if !store.contains(*db) {
                return Err(EvalError::NoSuchEntry(*db));
            }
            let mut elems = vec![Elem::AnyOne];
            elems.extend(query.sel_path.0.iter().cloned());
            (*db, PathExpr(elems))
        }
    };

    // Candidates: objects in entry.sel_path, under the WITHIN filter.
    let (candidates, tstats) = reach_expr(store, start, &sel_expr, &filter);
    stats.sel_states_visited = tstats.states_visited;

    // Condition check per candidate.
    let mut result = Vec::new();
    for x in candidates {
        let keep = match &query.cond {
            None => true,
            Some(c) => {
                stats.candidates_tested += 1;
                let (reached, cstats) = reach_expr(store, x, &c.path, &filter);
                stats.cond_states_visited += cstats.states_visited;
                c.pred.eval_any(store, &reached)
            }
        };
        if keep {
            result.push(x);
        }
    }

    // ANS INT intersection.
    if let Some(db) = query.ans_int {
        let members = database_members(store, db)?;
        result.retain(|o| members.contains(*o));
    }

    Ok(Answer {
        oids: result,
        stats,
    })
}

/// Evaluate and store the answer object under `ans_oid`.
pub fn evaluate_into(
    store: &mut Store,
    query: &Query,
    ans_oid: Oid,
) -> Result<Oid, EvalError> {
    let ans = evaluate(store, query)?;
    store
        .create(ans.into_object(ans_oid))
        .map_err(|_| EvalError::BadDatabase(ans_oid))?;
    Ok(ans_oid)
}

fn database_members(store: &Store, db: Oid) -> Result<gsdb::OidSet, EvalError> {
    let obj = store.get(db).ok_or(EvalError::BadDatabase(db))?;
    obj.value
        .as_set()
        .cloned()
        .ok_or(EvalError::BadDatabase(db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_viewdef};
    use gsdb::{database, samples};

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn person_store() -> Store {
        let mut s = Store::new();
        samples::person_db(&mut s).unwrap();
        s
    }

    #[test]
    fn query_professors_older_than_40() {
        // Paper §2: "SELECT ROOT.professor X WHERE X.age > 40 will
        // return <ANS, answer, set, {P1}>".
        let s = person_store();
        let q = parse_query("SELECT ROOT.professor X WHERE X.age > 40").unwrap();
        let ans = evaluate(&s, &q).unwrap();
        assert_eq!(ans.oids, vec![oid("P1")]);
    }

    #[test]
    fn answer_object_shape() {
        let mut s = person_store();
        let q = parse_query("SELECT ROOT.professor X WHERE X.age > 40").unwrap();
        let a = evaluate_into(&mut s, &q, oid("ANS")).unwrap();
        let obj = s.get(a).unwrap();
        assert_eq!(obj.label.as_str(), "answer");
        assert_eq!(obj.children(), &[oid("P1")]);
    }

    #[test]
    fn example_3_view_vj_selects_p1_and_p3() {
        // VJ: SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON
        // → {P1, P3}.
        let s = person_store();
        let v = parse_viewdef(
            "define view VJ as: SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON",
        )
        .unwrap();
        let ans = evaluate(&s, &v.query).unwrap();
        assert_eq!(ans.oids, vec![oid("P1"), oid("P3")]);
    }

    #[test]
    fn within_clause_ignores_outside_oids() {
        // Paper §2: with all nodes in D1 except A1, the age>40 query
        // WITHIN D1 has an empty result.
        let mut s = person_store();
        let members: Vec<Oid> = database::members(&s, oid("PERSON"))
            .unwrap()
            .into_iter()
            .filter(|&o| o != oid("A1"))
            .collect();
        database::database_of(&mut s, oid("D1"), &members).unwrap();
        let q = parse_query("SELECT ROOT.professor X WHERE X.age > 40 WITHIN D1").unwrap();
        let ans = evaluate(&s, &q).unwrap();
        assert!(ans.is_empty(), "A1 outside D1 must be invisible");
    }

    #[test]
    fn ans_int_constrains_answer_but_not_evaluation() {
        // Paper §2: same scenario, but ANS INT D1 returns {P1} because
        // condition evaluation may follow remote pointers.
        let mut s = person_store();
        let members: Vec<Oid> = database::members(&s, oid("PERSON"))
            .unwrap()
            .into_iter()
            .filter(|&o| o != oid("A1"))
            .collect();
        database::database_of(&mut s, oid("D1"), &members).unwrap();
        let q = parse_query("SELECT ROOT.professor X WHERE X.age > 40 ANS INT D1").unwrap();
        let ans = evaluate(&s, &q).unwrap();
        assert_eq!(ans.oids, vec![oid("P1")]);

        // And if P1 (not A1) is the one outside D1, the answer is empty.
        let members2: Vec<Oid> = database::members(&s, oid("PERSON"))
            .unwrap()
            .into_iter()
            .filter(|&o| o != oid("P1"))
            .collect();
        database::database_of(&mut s, oid("D2"), &members2).unwrap();
        let q2 = parse_query("SELECT ROOT.professor X WHERE X.age > 40 ANS INT D2").unwrap();
        assert!(evaluate(&s, &q2).unwrap().is_empty());
    }

    #[test]
    fn query_answer_insensitive_to_location_without_scope() {
        // Paper §2: the query "is insensitive to the location of
        // objects" when no scope clause is given.
        let s = person_store();
        let q = parse_query("SELECT ROOT.professor X WHERE X.age > 40").unwrap();
        assert_eq!(evaluate(&s, &q).unwrap().oids, vec![oid("P1")]);
    }

    #[test]
    fn views_3_4_prof_student_hierarchy() {
        let s = person_store();
        let prof_q = parse_viewdef("define view PROF as: SELECT ROOT.*.professor X")
            .unwrap()
            .query;
        let profs = evaluate(&s, &prof_q).unwrap();
        assert_eq!(profs.oids, vec![oid("P1"), oid("P2")]);
    }

    #[test]
    fn db_entry_point_via_database_all() {
        let s = person_store();
        let q = Query::select(
            Entry::DatabaseAll(oid("PERSON")),
            PathExpr::parse("age").unwrap(),
        );
        // Every member of PERSON that has an age child contributes; the
        // reached age objects are A1, A3, A4.
        let ans = evaluate(&s, &q).unwrap();
        assert_eq!(ans.oids, vec![oid("A1"), oid("A3"), oid("A4")]);
    }

    #[test]
    fn missing_entry_is_an_error() {
        let s = person_store();
        let q = parse_query("SELECT NOWHERE.a X").unwrap();
        assert_eq!(
            evaluate(&s, &q).unwrap_err(),
            EvalError::NoSuchEntry(oid("NOWHERE"))
        );
    }

    #[test]
    fn missing_within_db_is_an_error() {
        let s = person_store();
        let q = parse_query("SELECT ROOT.professor X WITHIN GHOSTDB").unwrap();
        assert_eq!(
            evaluate(&s, &q).unwrap_err(),
            EvalError::BadDatabase(oid("GHOSTDB"))
        );
    }

    #[test]
    fn empty_condition_path_tests_candidate_itself() {
        let s = person_store();
        let q = parse_query("SELECT ROOT.professor.age X WHERE X > 40").unwrap();
        let ans = evaluate(&s, &q).unwrap();
        assert_eq!(ans.oids, vec![oid("A1")]);
    }

    #[test]
    fn stats_are_populated() {
        let s = person_store();
        let q = parse_query("SELECT ROOT.* X WHERE X.name = 'John'").unwrap();
        let ans = evaluate(&s, &q).unwrap();
        assert!(ans.stats.sel_states_visited >= 15);
        assert!(ans.stats.candidates_tested >= 15);
        assert!(ans.stats.cond_states_visited > 0);
    }
}
