//! Tokenizer for the query language surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Keyword (uppercased): SELECT, WHERE, WITHIN, ANS, INT, DEFINE,
    /// VIEW, MVIEW, AS, CONTAINS.
    Keyword(String),
    /// Identifier: OID, label, or variable name.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Quoted string literal (single or double quotes, or backquote as
    /// in the paper's `‘John’`).
    Str(String),
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `?`
    Question,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `|`
    Pipe,
    /// `:`
    Colon,
    /// A comparison operator: `=`, `!=`, `<`, `<=`, `>`, `>=`.
    Op(String),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Real(r) => write!(f, "{r}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Question => write!(f, "?"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Pipe => write!(f, "|"),
            Token::Colon => write!(f, ":"),
            Token::Op(o) => write!(f, "{o}"),
        }
    }
}

const KEYWORDS: &[&str] = &[
    "SELECT", "WHERE", "WITHIN", "ANS", "INT", "DEFINE", "VIEW", "MVIEW", "AS", "CONTAINS",
    "EXISTS",
];

/// A lexing error with byte position.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Byte offset into the input.
    pub pos: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a statement. Identifiers and operators are ASCII;
/// non-ASCII text is only valid inside quoted string literals.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '.' => {
                toks.push(Token::Dot);
                i += 1;
            }
            '*' => {
                toks.push(Token::Star);
                i += 1;
            }
            '?' => {
                toks.push(Token::Question);
                i += 1;
            }
            '(' => {
                toks.push(Token::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Token::RParen);
                i += 1;
            }
            '|' => {
                toks.push(Token::Pipe);
                i += 1;
            }
            ':' => {
                toks.push(Token::Colon);
                i += 1;
            }
            '=' => {
                toks.push(Token::Op("=".into()));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                toks.push(Token::Op("!=".into()));
                i += 2;
            }
            '<' | '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Token::Op(format!("{c}=")));
                    i += 2;
                } else {
                    toks.push(Token::Op(c.to_string()));
                    i += 1;
                }
            }
            '\'' | '"' | '`' => {
                let quote = c;
                let close = if quote == '`' { '\'' } else { quote };
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != close {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        pos: i,
                        message: "unterminated string literal".into(),
                    });
                }
                toks.push(Token::Str(input[start..j].to_owned()));
                i = j + 1;
            }
            '$' | '0'..='9' | '-' => {
                // Numbers; `$100,000` style dollar literals lex as the
                // integer 100000.
                let start = i;
                if c == '$' || c == '-' {
                    i += 1;
                }
                let mut digits = String::new();
                if c == '-' {
                    digits.push('-');
                }
                let mut is_real = false;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_digit() {
                        digits.push(d);
                        i += 1;
                    } else if d == ',' && c == '$' {
                        i += 1; // thousands separator in dollar literals
                    } else if d == '.'
                        && !is_real
                        && bytes
                            .get(i + 1)
                            .map(|b| (*b as char).is_ascii_digit())
                            .unwrap_or(false)
                    {
                        is_real = true;
                        digits.push('.');
                        i += 1;
                    } else {
                        break;
                    }
                }
                if digits.is_empty() || digits == "-" {
                    return Err(LexError {
                        pos: start,
                        message: format!("malformed number starting with {c:?}"),
                    });
                }
                if is_real {
                    let r = digits.parse().map_err(|e| LexError {
                        pos: start,
                        message: format!("bad real literal: {e}"),
                    })?;
                    toks.push(Token::Real(r));
                } else {
                    let n = digits.parse().map_err(|e| LexError {
                        pos: start,
                        message: format!("bad integer literal: {e}"),
                    })?;
                    toks.push(Token::Int(n));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_alphanumeric() || d == '_' || d == '-' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    toks.push(Token::Keyword(upper));
                } else {
                    toks.push(Token::Ident(word.to_owned()));
                }
            }
            other if (other as u32) >= 0x80 => {
                return Err(LexError {
                    pos: i,
                    message: "non-ASCII text is only allowed inside quoted string literals"
                        .to_owned(),
                });
            }
            other => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_paper_query() {
        let toks = lex("SELECT ROOT.professor X WHERE X.age > 40").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Ident("ROOT".into()),
                Token::Dot,
                Token::Ident("professor".into()),
                Token::Ident("X".into()),
                Token::Keyword("WHERE".into()),
                Token::Ident("X".into()),
                Token::Dot,
                Token::Ident("age".into()),
                Token::Op(">".into()),
                Token::Int(40),
            ]
        );
    }

    #[test]
    fn lexes_wildcards_and_strings() {
        let toks = lex("SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON").unwrap();
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Str("John".into())));
        assert!(toks.contains(&Token::Keyword("WITHIN".into())));
    }

    #[test]
    fn lexes_define_mview() {
        let toks = lex("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45").unwrap();
        assert_eq!(toks[0], Token::Keyword("DEFINE".into()));
        assert_eq!(toks[1], Token::Keyword("MVIEW".into()));
        assert!(toks.contains(&Token::Op("<=".into())));
    }

    #[test]
    fn lexes_dollar_and_negative_and_real() {
        assert_eq!(lex("$100,000").unwrap(), vec![Token::Int(100_000)]);
        assert_eq!(lex("-5").unwrap(), vec![Token::Int(-5)]);
        assert_eq!(lex("3.25").unwrap(), vec![Token::Real(3.25)]);
    }

    #[test]
    fn dot_after_int_is_path_dot() {
        // "DB1.?" style: 1.? must not parse 1. as a real.
        let toks = lex("D1.?").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("D1".into()), Token::Dot, Token::Question]
        );
    }

    #[test]
    fn non_ascii_outside_strings_is_an_error_not_a_panic() {
        // Previously `lex("Café")` sliced mid-character and panicked.
        let e = lex("SELECT Café.x X").unwrap_err();
        assert!(e.message.contains("non-ASCII"));
        // Inside string literals, any UTF-8 is fine.
        let toks = lex("SELECT R.a X WHERE X.n = 'Café ☕'").unwrap();
        assert!(toks.contains(&Token::Str("Café ☕".into())));
    }

    #[test]
    fn errors_carry_position() {
        let e = lex("SELECT #").unwrap_err();
        assert_eq!(e.pos, 7);
        let e = lex("'unterminated").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn backquoted_strings_as_in_paper() {
        // The paper prints `John' with a backquote-apostrophe pair.
        assert_eq!(lex("`John'").unwrap(), vec![Token::Str("John".into())]);
    }
}
