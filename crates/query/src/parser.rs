//! Recursive-descent parser for queries and view definitions.
//!
//! Accepted grammar (paper expressions 2.1, 3.2, 3.5):
//!
//! ```text
//! statement   := query | viewdef
//! viewdef     := DEFINE (VIEW|MVIEW) ident AS [:] query
//! query       := SELECT entry [ '.' pathexpr ] ident
//!                [ WHERE ident [ '.' pathexpr ] pred ]
//!                [ WITHIN ident ]
//!                [ ANS INT ident ]
//! entry       := ident            -- an OID; `ident.?` with a bare `?`
//!                                 -- tail denotes DatabaseAll
//! pathexpr    := elem ( '.' elem )*
//! elem        := label | '?' | '*' | '(' label ('|' label)* ')'
//! pred        := op literal | CONTAINS literal | EXISTS
//! op          := '=' | '!=' | '<' | '<=' | '>' | '>='
//! ```
//!
//! The paper's `DB.?` entry form is syntactically identical to an
//! object entry followed by a `?` selection step; the parser always
//! produces `Entry::Object` plus the path expression, and the evaluator
//! gives database objects the `DB.?` semantics (see [`crate::eval`]).

use crate::ast::{Entry, Query, Statement, ViewDef};
use crate::cond::{CmpOp, Pred};
use crate::lexer::{lex, LexError, Token};
use crate::pathexpr::{Elem, PathExpr};
use gsdb::{Atom, Label, Oid};
use std::fmt;

/// A parse error.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Description.
    pub message: String,
}

impl ParseError {
    fn new(msg: impl Into<String>) -> Self {
        ParseError {
            message: msg.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::new(e.to_string())
    }
}

/// Parse a statement (query or view definition).
pub fn parse_statement(input: &str) -> Result<Statement, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    let stmt = p.statement()?;
    p.expect_end()?;
    Ok(stmt)
}

/// Parse a query.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    match parse_statement(input)? {
        Statement::Query(q) => Ok(q),
        Statement::ViewDef(_) => Err(ParseError::new("expected a query, found a view definition")),
    }
}

/// Parse a view definition.
pub fn parse_viewdef(input: &str) -> Result<ViewDef, ParseError> {
    match parse_statement(input)? {
        Statement::ViewDef(v) => Ok(v),
        Statement::Query(_) => Err(ParseError::new("expected a view definition, found a query")),
    }
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected keyword {kw}, found {}",
                self.describe_current()
            )))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError::new(format!(
                "expected {what}, found {}",
                describe(other.as_ref())
            ))),
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "unexpected trailing input: {}",
                self.describe_current()
            )))
        }
    }

    fn describe_current(&self) -> String {
        describe(self.peek())
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.eat_keyword("DEFINE") {
            let materialized = if self.eat_keyword("MVIEW") {
                true
            } else if self.eat_keyword("VIEW") {
                false
            } else {
                return Err(ParseError::new(format!(
                    "expected VIEW or MVIEW after DEFINE, found {}",
                    self.describe_current()
                )));
            };
            let name = self.expect_ident("view name")?;
            self.expect_keyword("AS")?;
            // Optional colon as in the paper: `define view VJ as: SELECT`.
            if matches!(self.peek(), Some(Token::Colon)) {
                self.pos += 1;
            }
            let query = self.query()?;
            Ok(Statement::ViewDef(ViewDef {
                name: Oid::new(&name),
                materialized,
                query,
            }))
        } else {
            Ok(Statement::Query(self.query()?))
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_keyword("SELECT")?;
        let entry_name = self.expect_ident("entry point OID")?;
        let mut sel_elems = Vec::new();
        while matches!(self.peek(), Some(Token::Dot)) {
            self.pos += 1;
            sel_elems.push(self.path_elem()?);
        }
        let var = self.expect_ident("selection variable")?;
        // The paper overloads `DB.?` to mean "start at all objects of
        // DB"; syntactically it is indistinguishable from an object
        // entry with a `?` selection step, so the parser always builds
        // `Entry::Object` and the evaluator treats database objects'
        // members as traversal starts (see `crate::eval`). Callers that
        // want the explicit form construct `Entry::DatabaseAll` in code.
        let entry = Entry::Object(Oid::new(&entry_name));
        let mut q = Query::select(entry, PathExpr(sel_elems));
        q.var = var.clone();
        if self.eat_keyword("WHERE") {
            let v = self.expect_ident("condition variable")?;
            if v != var {
                return Err(ParseError::new(format!(
                    "condition variable {v} does not match selection variable {var}"
                )));
            }
            let mut cond_elems = Vec::new();
            while matches!(self.peek(), Some(Token::Dot)) {
                self.pos += 1;
                cond_elems.push(self.path_elem()?);
            }
            let pred = self.pred()?;
            q = q.with_cond(PathExpr(cond_elems), pred);
        }
        if self.eat_keyword("WITHIN") {
            let db = self.expect_ident("database name after WITHIN")?;
            q = q.within(Oid::new(&db));
        }
        if self.eat_keyword("ANS") {
            self.expect_keyword("INT")?;
            let db = self.expect_ident("database name after ANS INT")?;
            q = q.ans_int(Oid::new(&db));
        }
        Ok(q)
    }

    fn path_elem(&mut self) -> Result<Elem, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(Elem::Label(Label::new(&s))),
            Some(Token::Star) => Ok(Elem::AnySeq),
            Some(Token::Question) => Ok(Elem::AnyOne),
            Some(Token::LParen) => {
                let mut labels = Vec::new();
                loop {
                    match self.next() {
                        Some(Token::Ident(s)) => labels.push(Label::new(&s)),
                        other => {
                            return Err(ParseError::new(format!(
                                "expected label in alternation, found {}",
                                describe(other.as_ref())
                            )))
                        }
                    }
                    match self.next() {
                        Some(Token::Pipe) => continue,
                        Some(Token::RParen) => break,
                        other => {
                            return Err(ParseError::new(format!(
                                "expected | or ) in alternation, found {}",
                                describe(other.as_ref())
                            )))
                        }
                    }
                }
                Ok(Elem::Alt(labels))
            }
            other => Err(ParseError::new(format!(
                "expected path element, found {}",
                describe(other.as_ref())
            ))),
        }
    }

    fn pred(&mut self) -> Result<Pred, ParseError> {
        match self.next() {
            Some(Token::Op(op)) => {
                let op = match op.as_str() {
                    "=" => CmpOp::Eq,
                    "!=" => CmpOp::Ne,
                    "<" => CmpOp::Lt,
                    "<=" => CmpOp::Le,
                    ">" => CmpOp::Gt,
                    ">=" => CmpOp::Ge,
                    other => return Err(ParseError::new(format!("unknown operator {other}"))),
                };
                let rhs = self.literal()?;
                Ok(Pred { op, rhs })
            }
            Some(Token::Keyword(k)) if k == "CONTAINS" => {
                let rhs = self.literal()?;
                Ok(Pred {
                    op: CmpOp::Contains,
                    rhs,
                })
            }
            other => Err(ParseError::new(format!(
                "expected comparison operator, found {}",
                describe(other.as_ref())
            ))),
        }
    }

    fn literal(&mut self) -> Result<Atom, ParseError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Atom::Int(i)),
            Some(Token::Real(r)) => Ok(Atom::Real(r)),
            Some(Token::Str(s)) => Ok(Atom::str(&s)),
            other => Err(ParseError::new(format!(
                "expected literal, found {}",
                describe(other.as_ref())
            ))),
        }
    }
}

fn describe(t: Option<&Token>) -> String {
    match t {
        Some(t) => format!("{t}"),
        None => "end of input".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query_2_1() {
        let q = parse_query("SELECT ROOT.professor X WHERE X.age > 40").unwrap();
        assert_eq!(q.entry, Entry::Object(Oid::new("ROOT")));
        assert_eq!(q.sel_path, PathExpr::parse("professor").unwrap());
        let c = q.cond.unwrap();
        assert_eq!(c.path, PathExpr::parse("age").unwrap());
        assert_eq!(c.pred, Pred::new(CmpOp::Gt, 40i64));
    }

    #[test]
    fn parses_example_3_view_vj() {
        let v = parse_viewdef(
            "define view VJ as: SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON",
        )
        .unwrap();
        assert_eq!(v.name, Oid::new("VJ"));
        assert!(!v.materialized);
        assert_eq!(v.query.within, Some(Oid::new("PERSON")));
        assert_eq!(v.query.sel_path, PathExpr::parse("*").unwrap());
    }

    #[test]
    fn parses_example_4_mview() {
        let v = parse_viewdef(
            "define mview MVJ as: SELECT ROOT.* X WHERE X.name = `John' WITHIN PERSON",
        )
        .unwrap();
        assert!(v.materialized);
    }

    #[test]
    fn parses_ans_int_clause() {
        let q = parse_query("SELECT ROOT.professor X ANS INT VJ").unwrap();
        assert_eq!(q.ans_int, Some(Oid::new("VJ")));
        assert!(q.cond.is_none());
    }

    #[test]
    fn parses_view_3_4_wildcards() {
        let prof = parse_viewdef("define view PROF as: SELECT ROOT.*.professor X").unwrap();
        assert_eq!(prof.query.sel_path, PathExpr::parse("*.professor").unwrap());
        let student = parse_viewdef("define view STUDENT as: SELECT PROF.?.student X").unwrap();
        assert_eq!(
            student.query.sel_path,
            PathExpr::parse("?.student").unwrap()
        );
    }

    #[test]
    fn parses_example_5_yp() {
        let v =
            parse_viewdef("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45").unwrap();
        assert!(v.query.is_simple());
        assert_eq!(v.query.cond.as_ref().unwrap().pred, Pred::new(CmpOp::Le, 45i64));
    }

    #[test]
    fn rejects_mismatched_variables() {
        let e = parse_query("SELECT ROOT.professor X WHERE Y.age > 40").unwrap_err();
        assert!(e.message.contains("does not match"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("SELECT ROOT.a X WHERE X.b > 1 bogus extra").is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_query("SELECT").is_err());
        assert!(parse_query("WHERE X.a > 1").is_err());
        assert!(parse_viewdef("define VJ as: SELECT R.a X").is_err());
        assert!(parse_query("SELECT R.a X WHERE X.b >").is_err());
    }

    #[test]
    fn contains_predicate() {
        let q = parse_query("SELECT W.page X WHERE X.text contains 'flower'").unwrap();
        assert_eq!(q.cond.unwrap().pred.op, CmpOp::Contains);
    }

    #[test]
    fn empty_condition_path_tests_object_itself() {
        let q = parse_query("SELECT R.a.b X WHERE X = 5").unwrap();
        let c = q.cond.unwrap();
        assert!(c.path.is_empty());
    }

    #[test]
    fn roundtrip_through_display() {
        let src = "SELECT ROOT.professor X WHERE X.age > 40 WITHIN PERSON ANS INT VJ";
        let q = parse_query(src).unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }
}
