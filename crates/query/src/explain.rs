//! EXPLAIN-style plan summaries.
//!
//! [`explain`] plans *and* runs a query, then renders a stable,
//! line-oriented report: entry point, effective selection expression,
//! the physical strategy the planner chose (with its reason), scope
//! and condition handling, and the deterministic execution counters
//! from [`EvalStats`](crate::eval::EvalStats). Because evaluation is
//! deterministic the whole report is golden-testable, and it doubles
//! as documentation for why a query was cheap or expensive (the
//! forward/backward trade-off of §4.4, applied to queries).

use crate::ast::{Entry, Query};
use crate::eval::EvalError;
use crate::pathexpr::{Elem, PathExpr};
use crate::plan::{choose_backend, choose_explained, evaluate_planned};
use gsdb::Store;
use std::fmt::Write;

/// Render a plan-and-execution report for `query` against `store`.
///
/// The selection strategy is chosen with the same
/// `selectivity_cutoff` that [`evaluate_planned`] would use, so the
/// report always describes the plan that actually ran.
pub fn explain(
    store: &Store,
    query: &Query,
    selectivity_cutoff: f64,
) -> Result<String, EvalError> {
    // Effective selection expression, mirroring evaluate_planned:
    // DatabaseAll entries prepend one `?` hop to reach the members.
    let sel_expr = match &query.entry {
        Entry::Object(_) => query.sel_path.clone(),
        Entry::DatabaseAll(_) => {
            let mut elems = vec![Elem::AnyOne];
            elems.extend(query.sel_path.0.iter().cloned());
            PathExpr(elems)
        }
    };
    let (answer, strategy) = evaluate_planned(store, query, selectivity_cutoff)?;
    let (_, reason) = choose_explained(store, &sel_expr, selectivity_cutoff);

    let mut out = String::new();
    writeln!(out, "QUERY   {query}").unwrap();
    match &query.entry {
        Entry::Object(o) => writeln!(out, "entry   object {o}").unwrap(),
        Entry::DatabaseAll(db) => writeln!(out, "entry   members of {db}").unwrap(),
    }
    if sel_expr.is_empty() {
        writeln!(out, "select  (entry itself)").unwrap();
    } else {
        writeln!(out, "select  {sel_expr}").unwrap();
    }
    writeln!(out, "plan    {strategy} ({reason})").unwrap();
    // If this query's selection were materialized as a view, which
    // maintenance backend would the planner pick?  A plain SELECT has
    // one branch and no aggregate; the maintainer layer passes its own
    // shape when it plans CompoundViewDef / AggregateViewDef sources.
    let (backend, why) = choose_backend(&sel_expr, 1, false);
    writeln!(out, "maint   {backend} ({why})").unwrap();
    if let Some(db) = query.within {
        let members = store
            .get(db)
            .and_then(|o| o.value.as_set())
            .map_or(0, |s| s.len());
        writeln!(out, "scope   WITHIN {db} ({members} members)").unwrap();
    }
    if let Some(c) = &query.cond {
        writeln!(out, "filter  WHERE {c} (re-traversal per candidate)").unwrap();
    }
    if let Some(db) = query.ans_int {
        writeln!(out, "post    ANS INT {db}").unwrap();
    }
    writeln!(
        out,
        "stats   answers={} sel_states={} candidates_tested={} cond_states={}",
        answer.oids.len(),
        answer.stats.sel_states_visited,
        answer.stats.candidates_tested,
        answer.stats.cond_states_visited
    )
    .unwrap();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use gsdb::{samples, Oid};

    fn person_store() -> Store {
        let mut s = Store::new();
        samples::person_db(&mut s).unwrap();
        s
    }

    #[test]
    fn explain_golden_indexed_label_scan() {
        let s = person_store();
        let q = parse_query("SELECT ROOT.professor.age X").unwrap();
        let report = explain(&s, &q, 0.25).unwrap();
        println!("{report}");
        assert!(report.starts_with("QUERY   SELECT ROOT.professor.age X\n"));
        assert!(report.contains("entry   object ROOT\n"));
        assert!(report.contains("select  professor.age\n"));
        assert!(report.contains("plan    backward(age) (label index:"));
        assert!(report.contains("maint   algorithm1 (constant single-path"));
        assert!(report.contains("answers=1 "));
    }

    #[test]
    fn explain_golden_wildcard_forward() {
        let s = person_store();
        let q = parse_query("SELECT ROOT.professor.* X").unwrap();
        let report = explain(&s, &q, 0.25).unwrap();
        println!("{report}");
        assert!(report.contains("plan    forward (tail element is not a constant label)\n"));
        assert!(report.contains("maint   algorithm1 (wildcard selection"));
        assert!(report.contains("select  professor.*\n"));
    }

    #[test]
    fn explain_golden_within_scope() {
        let mut s = person_store();
        let members: Vec<Oid> = gsdb::database::members(&s, Oid::new("PERSON"))
            .unwrap()
            .into_iter()
            .filter(|&o| o != Oid::new("P1"))
            .collect();
        gsdb::database::database_of(&mut s, Oid::new("D1"), &members).unwrap();
        let q = parse_query("SELECT ROOT.*.age X WITHIN D1").unwrap();
        let report = explain(&s, &q, 0.9).unwrap();
        println!("{report}");
        assert!(report.contains("scope   WITHIN D1 ("));
        assert!(report.contains("plan    backward(age)"));
        // The scoped answer excludes P1's age atom.
        let forward = crate::eval::evaluate(&s, &q).unwrap();
        assert!(report.contains(&format!("answers={} ", forward.oids.len())));
    }

    #[test]
    fn explain_reports_condition_and_ans_int() {
        let s = person_store();
        let q = parse_query("SELECT ROOT.*.professor X WHERE X.age > 30 ANS INT PERSON").unwrap();
        let report = explain(&s, &q, 0.9).unwrap();
        assert!(report.contains("filter  WHERE X.age > 30 (re-traversal per candidate)\n"));
        assert!(report.contains("post    ANS INT PERSON\n"));
        assert!(report.contains("candidates_tested="));
    }

    #[test]
    fn explain_matches_strategy_actually_run() {
        let s = person_store();
        for src in ["SELECT ROOT.*.age X", "SELECT ROOT.professor.* X"] {
            let q = parse_query(src).unwrap();
            let (_, strategy) = evaluate_planned(&s, &q, 0.25).unwrap();
            let report = explain(&s, &q, 0.25).unwrap();
            assert!(
                report.contains(&format!("plan    {strategy} (")),
                "{src}: {report}"
            );
        }
    }
}
