//! Property tests for the path-expression machinery: NFA matching
//! against a brute-force oracle, containment consistency, and
//! forward/backward traversal agreement.

use gsdb::{Label, Path};
use gsview_query::pathexpr::{Elem, PathExpr};
use proptest::prelude::*;

const ALPHABET: &[&str] = &["a", "b", "c"];

fn elem_strategy() -> impl Strategy<Value = Elem> {
    prop_oneof![
        (0..ALPHABET.len()).prop_map(|i| Elem::Label(Label::new(ALPHABET[i]))),
        Just(Elem::AnyOne),
        Just(Elem::AnySeq),
        prop::collection::vec(0..ALPHABET.len(), 1..3).prop_map(|is| {
            let mut ls: Vec<Label> = is.iter().map(|&i| Label::new(ALPHABET[i])).collect();
            ls.dedup();
            Elem::Alt(ls)
        }),
    ]
}

fn expr_strategy() -> impl Strategy<Value = PathExpr> {
    prop::collection::vec(elem_strategy(), 0..5).prop_map(PathExpr)
}

fn word_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..ALPHABET.len(), 0..6)
}

fn to_path(word: &[usize]) -> Path {
    Path(word.iter().map(|&i| Label::new(ALPHABET[i])).collect())
}

/// Brute-force oracle: does `word` instantiate `expr`? Recursive
/// descent with backtracking over `*`.
fn oracle(elems: &[Elem], word: &[Label]) -> bool {
    match elems.split_first() {
        None => word.is_empty(),
        Some((e, rest)) => match e {
            Elem::Label(l) => word
                .split_first()
                .map(|(w, ws)| w == l && oracle(rest, ws))
                .unwrap_or(false),
            Elem::AnyOne => word
                .split_first()
                .map(|(_, ws)| oracle(rest, ws))
                .unwrap_or(false),
            Elem::Alt(ls) => word
                .split_first()
                .map(|(w, ws)| ls.contains(w) && oracle(rest, ws))
                .unwrap_or(false),
            Elem::AnySeq => (0..=word.len()).any(|k| oracle(rest, &word[k..])),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// NFA matching agrees with the brute-force oracle on every
    /// expression × word pair.
    #[test]
    fn nfa_matches_oracle(expr in expr_strategy(), word in word_strategy()) {
        let p = to_path(&word);
        prop_assert_eq!(expr.matches(&p), oracle(&expr.0, p.labels()));
    }

    /// Containment is sound: if `a ⊆ b` then every word matched by `a`
    /// is matched by `b` (checked over all short words).
    #[test]
    fn containment_is_sound(a in expr_strategy(), b in expr_strategy()) {
        if PathExpr::contains(&b, &a) {
            // Enumerate all words up to length 4 over the alphabet.
            let mut words: Vec<Vec<usize>> = vec![vec![]];
            for len in 1..=4usize {
                let mut next = Vec::new();
                for w in words.iter().filter(|w| w.len() == len - 1) {
                    for i in 0..ALPHABET.len() {
                        let mut v = w.clone();
                        v.push(i);
                        next.push(v);
                    }
                }
                words.extend(next);
            }
            for w in words {
                let p = to_path(&w);
                if a.matches(&p) {
                    prop_assert!(
                        b.matches(&p),
                        "containment claimed but {} ∈ L({}) ∉ L({})",
                        p, a, b
                    );
                }
            }
        }
    }

    /// Containment is reflexive and `*`-topped.
    #[test]
    fn containment_reflexive_and_star_top(a in expr_strategy()) {
        prop_assert!(PathExpr::contains(&a, &a));
        let star = PathExpr::parse("*").unwrap();
        prop_assert!(PathExpr::contains(&star, &a));
    }

    /// The reversed expression matches exactly the reversed words.
    #[test]
    fn reversal_matches_reversed_words(expr in expr_strategy(), word in word_strategy()) {
        let p = to_path(&word);
        let mut rev_word = word.clone();
        rev_word.reverse();
        let rp = to_path(&rev_word);
        let rev_expr = gsview_query::plan::reversed(&expr);
        prop_assert_eq!(expr.matches(&p), rev_expr.matches(&rp));
    }

    /// Constant expressions match exactly their own path.
    #[test]
    fn constant_exprs_match_only_themselves(word in word_strategy(), other in word_strategy()) {
        let p = to_path(&word);
        let expr = PathExpr::from_path(&p);
        prop_assert!(expr.matches(&p));
        let q = to_path(&other);
        prop_assert_eq!(expr.matches(&q), p == q);
    }
}
