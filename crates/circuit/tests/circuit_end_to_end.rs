//! In-crate differential test: a [`Circuit`] stepped over random
//! update batches must land on exactly the membership (and aggregate
//! values) a from-scratch evaluation of the definition computes on
//! the final store — for single-path, multi-path, wildcard, and
//! aggregate shapes. This is the crate-local precursor of the four-way
//! oracle in core.

use gsdb::{DeltaBatch, Object, Oid, Store, Update};
use gsview_circuit::{AggDef, AggKind, BranchDef, Circuit, CircuitDef, CondDef};
use gsview_query::pathexpr::{reach_expr, PathExpr};
use gsview_query::{CmpOp, Pred};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap, HashSet};

fn oid(s: &str) -> Oid {
    Oid::new(s)
}

/// Professors with students, every one holding an age atom, plus
/// detached spares the run can attach and orphaned atoms.
fn build_base(n_prof: usize, studs: usize, ages: &[i64]) -> Store {
    let mut s = Store::new();
    let mut age_i = 0usize;
    let mut next_age = |s: &mut Store, name: String| {
        let v = ages[age_i % ages.len()];
        age_i += 1;
        s.create(Object::atom(name.as_str(), "age", v)).unwrap();
        Oid::new(&name)
    };
    s.create(Object::empty_set("ROOT", "db")).unwrap();
    for p in 0..n_prof {
        let prof = format!("P{p}");
        s.create(Object::empty_set(prof.as_str(), "professor")).unwrap();
        s.insert_edge(oid("ROOT"), oid(&prof)).unwrap();
        let a = next_age(&mut s, format!("P{p}a"));
        s.insert_edge(oid(&prof), a).unwrap();
        for t in 0..studs {
            let stud = format!("P{p}S{t}");
            s.create(Object::empty_set(stud.as_str(), "student")).unwrap();
            s.insert_edge(oid(&prof), oid(&stud)).unwrap();
            let a = next_age(&mut s, format!("P{p}S{t}a"));
            s.insert_edge(oid(&stud), a).unwrap();
        }
    }
    s.create(Object::empty_set("F0", "professor")).unwrap();
    for d in 0..3 {
        next_age(&mut s, format!("D{d}"));
    }
    s
}

fn universe(n_prof: usize, studs: usize) -> (Vec<Oid>, Vec<Oid>) {
    let mut sets = vec![oid("ROOT"), oid("F0")];
    let mut atoms = vec![oid("D0"), oid("D1"), oid("D2")];
    for p in 0..n_prof {
        sets.push(oid(&format!("P{p}")));
        atoms.push(oid(&format!("P{p}a")));
        for t in 0..studs {
            sets.push(oid(&format!("P{p}S{t}")));
            atoms.push(oid(&format!("P{p}S{t}a")));
        }
    }
    (sets, atoms)
}

/// Realize raw tuples into updates that keep the edge relation a
/// forest (attach only objects without a live parent, never below
/// their own subtree) while freely removing / re-creating records —
/// the dangling-reference cases the arrangement must absorb.
fn realize(
    raw: &[(u8, usize, usize, i64)],
    store: &mut Store,
    sets: &[Oid],
    atoms: &[Oid],
) -> Vec<(gsdb::ConsolidatedDelta, Store)> {
    let mut parent_of: HashMap<Oid, Oid> = HashMap::new();
    let mut edges: Vec<(Oid, Oid)> = Vec::new();
    for o in sets.iter().chain(atoms.iter()) {
        for &c in store.children(*o) {
            parent_of.insert(c, *o);
            edges.push((*o, c));
        }
    }
    let mut batches = Vec::new();
    let mut batch = DeltaBatch::new();
    for &(kind, a, b, v) in raw {
        let u = match kind % 6 {
            0 => {
                // Attach an orphan below a set that is not its own
                // descendant.
                let orphans: Vec<Oid> = sets
                    .iter()
                    .chain(atoms.iter())
                    .filter(|o| **o != oid("ROOT") && !parent_of.contains_key(*o))
                    .copied()
                    .collect();
                if orphans.is_empty() {
                    continue;
                }
                let child = orphans[b % orphans.len()];
                let mut blocked: HashSet<Oid> = HashSet::new();
                blocked.insert(child);
                loop {
                    let grew: Vec<Oid> = edges
                        .iter()
                        .filter(|(p, c)| blocked.contains(p) && !blocked.contains(c))
                        .map(|&(_, c)| c)
                        .collect();
                    if grew.is_empty() {
                        break;
                    }
                    blocked.extend(grew);
                }
                let hosts: Vec<Oid> = sets.iter().filter(|p| !blocked.contains(p)).copied().collect();
                if hosts.is_empty() {
                    continue;
                }
                let parent = hosts[a % hosts.len()];
                parent_of.insert(child, parent);
                edges.push((parent, child));
                Update::Insert { parent, child }
            }
            1 => {
                if edges.is_empty() {
                    continue;
                }
                let (parent, child) = edges.remove(a % edges.len());
                parent_of.remove(&child);
                Update::Delete { parent, child }
            }
            2 => {
                let target = atoms[a % atoms.len()];
                Update::Modify {
                    oid: target,
                    new: gsdb::Atom::Int(v),
                }
            }
            3 => {
                // Remove a record outright — its live edges keep
                // naming it in the store (dangling) but must vanish
                // from the circuit.
                let all: Vec<Oid> = sets.iter().chain(atoms.iter()).copied().collect();
                let target = all[a % all.len()];
                if target == oid("ROOT") {
                    continue;
                }
                Update::Remove { oid: target }
            }
            _ => {
                // Re-create a removed record (resurrecting dangling
                // edges). Atoms come back with a fresh value.
                let all: Vec<Oid> = sets.iter().chain(atoms.iter()).copied().collect();
                let target = all[a % all.len()];
                let object = if atoms.contains(&target) {
                    Object::atom(target.name(), "age", v)
                } else if target == oid("F0") || target.name().starts_with('P') && !target.name().contains('S') {
                    Object::empty_set(target.name(), "professor")
                } else {
                    Object::empty_set(target.name(), "student")
                };
                Update::Create { object }
            }
        };
        if let Ok(applied) = store.apply(u) {
            batch.push(applied);
        }
        if b % 7 == 0 && !batch.is_empty() {
            let done = std::mem::replace(&mut batch, DeltaBatch::new());
            batches.push((done.consolidate(), store.clone()));
        }
    }
    if !batch.is_empty() {
        batches.push((batch.consolidate(), store.clone()));
    }
    batches
}

/// From-scratch evaluation of a circuit definition on a store.
fn expected_members(store: &Store, def: &CircuitDef) -> BTreeSet<Oid> {
    let mut out = BTreeSet::new();
    for b in &def.branches {
        let (reached, _) = reach_expr(store, b.root, &b.sel, &|_| true);
        for y in reached {
            if store.get(y).is_none() {
                continue;
            }
            let ok = match &b.cond {
                None => true,
                Some(c) => {
                    let (ends, _) = reach_expr(store, y, &c.expr, &|_| true);
                    ends.iter()
                        .any(|&z| store.atom(z).map(|a| c.pred.eval(a)).unwrap_or(false))
                }
            };
            if ok {
                out.insert(y);
            }
        }
    }
    out
}

fn expected_values(store: &Store, member: Oid, path: &PathExpr) -> Vec<f64> {
    let (ends, _) = reach_expr(store, member, path, &|_| true);
    ends.iter()
        .filter_map(|&z| store.atom(z).and_then(|a| a.as_f64()))
        .collect()
}

fn approx(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
        _ => false,
    }
}

/// Drive one definition through the batches, checking the circuit
/// against recomputation after every batch.
fn check(def: CircuitDef, initial: &Store, raw: &[(u8, usize, usize, i64)], n: usize, st: usize) {
    let mut store = initial.clone();
    let (sets, atoms) = universe(n, st);
    let mut circuit = Circuit::compile(def.clone());
    circuit.init(&store).expect("init on a forest never diverges");
    let want0 = expected_members(&store, &def);
    let got0: BTreeSet<Oid> = circuit.members().into_iter().collect();
    assert_eq!(got0, want0, "initial membership");

    let batches = realize(raw, &mut store, &sets, &atoms);
    for (delta, replay) in batches {
        circuit.step(&delta, &replay).expect("forest propagation converges");
        let want = expected_members(&replay, &def);
        let got: BTreeSet<Oid> = circuit.members().into_iter().collect();
        assert_eq!(got, want, "membership after batch");
        if let Some(agg) = &def.aggregate {
            for &y in &want {
                let vals = expected_values(&replay, y, &agg.path);
                assert!(
                    approx(circuit.aggregate_of(y), agg.f.compute(&vals)),
                    "aggregate of {y:?}: got {:?}, want {:?}",
                    circuit.aggregate_of(y),
                    agg.f.compute(&vals),
                );
            }
            let all: Vec<f64> = want
                .iter()
                .flat_map(|&y| expected_values(&replay, y, &agg.path))
                .collect();
            assert!(approx(circuit.total(), agg.f.compute(&all)), "total rollup");
        }
    }
}

fn raw_ops() -> impl Strategy<Value = Vec<(u8, usize, usize, i64)>> {
    prop::collection::vec((0..12u8, 0..64usize, 0..64usize, 0..80i64), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn single_path_with_condition(
        (n, st) in (1..4usize, 0..3usize),
        ages in prop::collection::vec(0..80i64, 1..6),
        raw in raw_ops(),
    ) {
        let store = build_base(n, st, &ages);
        let def = CircuitDef {
            branches: vec![BranchDef {
                root: oid("ROOT"),
                sel: PathExpr::parse("professor").unwrap(),
                cond: Some(CondDef {
                    expr: PathExpr::parse("age").unwrap(),
                    pred: Pred::new(CmpOp::Le, 45i64),
                }),
            }],
            aggregate: None,
        };
        check(def, &store, &raw, n, st);
    }

    #[test]
    fn multi_path_union(
        (n, st) in (1..4usize, 1..3usize),
        ages in prop::collection::vec(0..80i64, 1..6),
        raw in raw_ops(),
    ) {
        let store = build_base(n, st, &ages);
        let def = CircuitDef {
            branches: vec![
                BranchDef {
                    root: oid("ROOT"),
                    sel: PathExpr::parse("professor").unwrap(),
                    cond: None,
                },
                BranchDef {
                    root: oid("ROOT"),
                    sel: PathExpr::parse("professor.student").unwrap(),
                    cond: Some(CondDef {
                        expr: PathExpr::parse("age").unwrap(),
                        pred: Pred::new(CmpOp::Gt, 20i64),
                    }),
                },
            ],
            aggregate: None,
        };
        check(def, &store, &raw, n, st);
    }

    #[test]
    fn wildcard_selection(
        (n, st) in (1..3usize, 0..3usize),
        ages in prop::collection::vec(0..80i64, 1..6),
        raw in raw_ops(),
    ) {
        let store = build_base(n, st, &ages);
        let def = CircuitDef {
            branches: vec![BranchDef {
                root: oid("ROOT"),
                sel: PathExpr::parse("*.student").unwrap(),
                cond: Some(CondDef {
                    expr: PathExpr::parse("age").unwrap(),
                    pred: Pred::new(CmpOp::Gt, 10i64),
                }),
            }],
            aggregate: None,
        };
        check(def, &store, &raw, n, st);
    }

    #[test]
    fn aggregate_over_members(
        (n, st) in (1..4usize, 1..3usize),
        ages in prop::collection::vec(0..80i64, 1..6),
        raw in raw_ops(),
    ) {
        let store = build_base(n, st, &ages);
        for f in [AggKind::Count, AggKind::Sum, AggKind::Min, AggKind::Avg] {
            let def = CircuitDef {
                branches: vec![BranchDef {
                    root: oid("ROOT"),
                    sel: PathExpr::parse("professor").unwrap(),
                    cond: None,
                }],
                aggregate: Some(AggDef {
                    path: PathExpr::parse("student.age").unwrap(),
                    f,
                }),
            };
            check(def, &store, &raw, n, st);
        }
    }
}
