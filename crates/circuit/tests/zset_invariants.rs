//! Property tests for the Z-set algebra the circuit operators are
//! built on. The operators' correctness argument leans on exactly
//! these identities: weights consolidate by summation regardless of
//! delivery order, inverse deltas annihilate, and the distinct clamp
//! depends only on support signs — so any interleaving or batching of
//! the same delta stream lands on the same state.

use gsview_circuit::{distinct_delta, DistinctOp, ZSet};
use proptest::prelude::*;
use std::collections::HashMap;

fn ops() -> impl Strategy<Value = Vec<(u8, i64)>> {
    prop::collection::vec((0..12u8, -3..4i64), 0..160)
}

/// Deterministic permutation of indices from a seed (Fisher–Yates
/// driven by a splitmix step; the shim has no shuffle helper).
fn permute<T: Clone>(items: &[T], mut seed: u64) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    for i in (1..out.len()).rev() {
        seed = seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        out.swap(i, (seed % (i as u64 + 1)) as usize);
    }
    out
}

fn build(ops: &[(u8, i64)]) -> ZSet<u8> {
    let mut z = ZSet::new();
    for &(k, w) in ops {
        z.add(k, w);
    }
    z
}

fn as_map(z: &ZSet<u8>) -> HashMap<u8, i64> {
    z.iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Duplicate keys consolidate to the arithmetic sum, and zero
    /// weights never survive.
    #[test]
    fn weights_consolidate_to_sum(ops in ops()) {
        let z = build(&ops);
        let mut sums: HashMap<u8, i64> = HashMap::new();
        for &(k, w) in &ops {
            *sums.entry(k).or_insert(0) += w;
        }
        sums.retain(|_, w| *w != 0);
        prop_assert_eq!(as_map(&z), sums);
        prop_assert!(z.iter().all(|(_, w)| w != 0));
    }

    /// Delivery order never matters: any permutation of the same delta
    /// stream builds the same Z-set.
    #[test]
    fn order_independent(ops in ops(), seed in any::<u64>()) {
        let a = build(&ops);
        let b = build(&permute(&ops, seed));
        prop_assert_eq!(as_map(&a), as_map(&b));
    }

    /// Batching never matters: splitting the stream anywhere and
    /// merging the two halves equals one-shot application — the
    /// linearity that lets a circuit consume consolidated batches.
    #[test]
    fn split_and_merge_equals_one_shot(ops in ops(), cut in 0..161usize) {
        let cut = cut.min(ops.len());
        let mut merged = build(&ops[..cut]);
        merged.merge(&build(&ops[cut..]));
        prop_assert_eq!(as_map(&merged), as_map(&build(&ops)));
    }

    /// An insert and its inverse annihilate exactly: appending the
    /// negated stream (in any order) empties the Z-set.
    #[test]
    fn inverse_stream_annihilates(ops in ops(), seed in any::<u64>()) {
        let inverse: Vec<(u8, i64)> = ops.iter().map(|&(k, w)| (k, -w)).collect();
        let mut z = build(&ops);
        for (k, w) in permute(&inverse, seed) {
            z.add(k, w);
        }
        prop_assert!(z.is_empty());
    }

    /// The distinct clamp is a function of support signs only.
    #[test]
    fn distinct_delta_tracks_sign_crossings(old in -5..6i64, new in -5..6i64) {
        let d = distinct_delta(old, new);
        prop_assert_eq!(d, (new > 0) as i64 - (old > 0) as i64);
        // Clamped output is always a set delta.
        prop_assert!((-1..=1).contains(&d));
    }

    /// `DistinctOp` state depends only on the support function, not on
    /// the order dirty keys are synced in — and its emitted deltas per
    /// key telescope to the state change.
    #[test]
    fn distinct_op_is_order_independent(ops in ops(), seed in any::<u64>()) {
        let z = build(&ops);
        let dirty: Vec<u8> = (0..12u8).collect();
        let mut fwd = DistinctOp::new();
        let out_fwd = fwd.sync(dirty.iter().copied(), |k| z.weight(k));
        let mut shuffled = DistinctOp::new();
        let out_shuf = shuffled.sync(permute(&dirty, seed), |k| z.weight(k));
        let keys =
            |mut v: Vec<(u8, i64)>| { v.sort_unstable(); v };
        prop_assert_eq!(keys(out_fwd), keys(out_shuf));
        for k in 0..12u8 {
            prop_assert_eq!(fwd.contains(k), z.weight(k) > 0);
            prop_assert_eq!(fwd.contains(k), shuffled.contains(k));
        }
    }

    /// Incremental clamping across two rounds telescopes: total
    /// emitted delta per key equals the overall sign transition.
    #[test]
    fn distinct_op_deltas_telescope(ops in ops(), cut in 0..161usize) {
        let cut = cut.min(ops.len());
        let mut z = ZSet::new();
        let mut d = DistinctOp::new();
        let dirty: Vec<u8> = (0..12u8).collect();
        let mut net: HashMap<u8, i64> = HashMap::new();
        for half in [&ops[..cut], &ops[cut..]] {
            for &(k, w) in half {
                z.add(k, w);
            }
            for (k, delta) in d.sync(dirty.iter().copied(), |k| z.weight(k)) {
                *net.entry(k).or_insert(0) += delta;
            }
        }
        for k in 0..12u8 {
            prop_assert_eq!(net.get(&k).copied().unwrap_or(0), distinct_delta(0, z.weight(k)));
        }
    }
}
