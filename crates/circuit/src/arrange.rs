//! The arranged graph mirror every operator's state is keyed against.
//!
//! Circuits cannot read derivation context back out of the base store:
//! a batched `Remove` leaves surviving children lists naming a
//! record-less OID, so by the time a consolidated delta arrives the
//! final store can no longer describe the edges a removed object used
//! to contribute. The [`GraphArrangement`] therefore mirrors exactly
//! the *live* part of the graph — records, labels, atoms, and the
//! edges whose **both** endpoints have records — and the ingestion
//! step ([`GraphArrangement::ingest`]) turns a [`ConsolidatedDelta`]
//! into low-level ±1 edge/node/atom events against that mirror:
//!
//! * a removed object synthesizes edge deletions for every arranged
//!   incident edge (the store can't name them anymore);
//! * a created object synthesizes the edge insertions that make its
//!   arranged neighborhood match the final store, including edges the
//!   store had kept dangling (a re-created OID resurrects them);
//! * explicit edge deltas are applied only while both endpoints are
//!   live, which keeps the mirror consistent with the traversal
//!   semantics of the query engine (dangling children contribute
//!   nothing).

use gsdb::{Atom, ConsolidatedDelta, FastMap, FastSet, Label, Oid, Store};

/// One arranged record: the object's label plus its atomic value.
#[derive(Clone, Debug)]
pub struct NodeRec {
    /// The object's label (fixed for the record's lifetime).
    pub label: Label,
    /// The atomic value, if the object is atomic.
    pub atom: Option<Atom>,
}

/// One ±1 live-edge event. The child's label is captured at event
/// time because a removed child's record is gone from the mirror by
/// the time operators process the event stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeEvent {
    /// Edge source.
    pub parent: Oid,
    /// Edge target.
    pub child: Oid,
    /// The child's label when the event fired.
    pub child_label: Label,
    /// `+1` for insertion, `-1` for deletion.
    pub w: i64,
}

/// Low-level events one consolidated delta reduces to, in application
/// order. Weights are per-edge-occurrence (children lists are
/// multisets).
#[derive(Clone, Debug, Default)]
pub struct IngestEvents {
    /// Live-edge insertions and deletions.
    pub edges: Vec<EdgeEvent>,
    /// Objects whose record appeared this batch.
    pub created: Vec<Oid>,
    /// Objects whose record vanished this batch, with the atom they
    /// held (for predicate retraction).
    pub removed: Vec<(Oid, Option<Atom>)>,
    /// `(oid, old, new)` atom changes of surviving objects.
    pub atoms: Vec<(Oid, Option<Atom>, Atom)>,
}

impl IngestEvents {
    /// Total absolute weight of the event stream — the |Δin| obs
    /// reports per step.
    pub fn total_abs_weight(&self) -> u64 {
        self.edges.len() as u64
            + self.created.len() as u64
            + self.removed.len() as u64
            + self.atoms.len() as u64
    }

    /// True iff the batch reduced to nothing.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
            && self.created.is_empty()
            && self.removed.is_empty()
            && self.atoms.is_empty()
    }
}

/// The live-graph mirror: records plus a multiset of live edges,
/// indexed both downward (children) and upward (parents).
#[derive(Clone, Debug, Default)]
pub struct GraphArrangement {
    recs: FastMap<Oid, NodeRec>,
    children: FastMap<Oid, Vec<Oid>>,
    parents: FastMap<Oid, Vec<Oid>>,
    edge_count: usize,
}

impl GraphArrangement {
    /// An empty arrangement.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of arranged records.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// True iff nothing is arranged.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Number of live edges (multiset cardinality).
    pub fn edge_len(&self) -> usize {
        self.edge_count
    }

    /// Is `oid` arranged (does it have a live record)?
    pub fn contains(&self, oid: Oid) -> bool {
        self.recs.contains_key(&oid)
    }

    /// The arranged label of `oid`.
    pub fn label(&self, oid: Oid) -> Option<Label> {
        self.recs.get(&oid).map(|r| r.label)
    }

    /// The arranged atom of `oid`.
    pub fn atom(&self, oid: Oid) -> Option<&Atom> {
        self.recs.get(&oid)?.atom.as_ref()
    }

    /// Live children of `oid` (with multiplicity).
    pub fn children(&self, oid: Oid) -> &[Oid] {
        self.children.get(&oid).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Live parents of `oid` (with multiplicity).
    pub fn parents(&self, oid: Oid) -> &[Oid] {
        self.parents.get(&oid).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Multiplicity of the live edge `(parent, child)`.
    pub fn edge_multiplicity(&self, parent: Oid, child: Oid) -> usize {
        self.children(parent).iter().filter(|&&c| c == child).count()
    }

    fn add_edge(&mut self, parent: Oid, child: Oid) {
        self.children.entry(parent).or_default().push(child);
        self.parents.entry(child).or_default().push(parent);
        self.edge_count += 1;
    }

    fn remove_edge(&mut self, parent: Oid, child: Oid) -> bool {
        let Some(cs) = self.children.get_mut(&parent) else {
            return false;
        };
        let Some(i) = cs.iter().position(|&c| c == child) else {
            return false;
        };
        cs.swap_remove(i);
        if cs.is_empty() {
            self.children.remove(&parent);
        }
        let ps = self.parents.get_mut(&child).expect("edge indexed both ways");
        let j = ps.iter().position(|&p| p == parent).expect("edge indexed both ways");
        ps.swap_remove(j);
        if ps.is_empty() {
            self.parents.remove(&child);
        }
        self.edge_count -= 1;
        true
    }

    /// Reduce one consolidated delta (against the **final** store) to
    /// low-level events, applying them to the mirror as it goes. The
    /// returned events are what the operators propagate.
    pub fn ingest(&mut self, delta: &ConsolidatedDelta, store: &Store) -> IngestEvents {
        let mut ev = IngestEvents::default();

        // 1. Removed records: synthesize deletions for every arranged
        //    incident edge, then drop the record. (`removed` and
        //    `created` never share an OID — net-zero record churn is
        //    cancelled during consolidation.)
        for &o in &delta.removed {
            let Some(rec) = self.recs.get(&o) else { continue };
            let atom = rec.atom.clone();
            let own_label = rec.label;
            for c in self.children(o).to_vec() {
                let child_label = self.label(c).expect("live edge child is arranged");
                self.remove_edge(o, c);
                ev.edges.push(EdgeEvent {
                    parent: o,
                    child: c,
                    child_label,
                    w: -1,
                });
            }
            for p in self.parents(o).to_vec() {
                self.remove_edge(p, o);
                ev.edges.push(EdgeEvent {
                    parent: p,
                    child: o,
                    child_label: own_label,
                    w: -1,
                });
            }
            self.recs.remove(&o);
            ev.removed.push((o, atom));
        }

        // 2. Created records, from the final store.
        for &o in &delta.created {
            let Some(obj) = store.get(o) else { continue };
            self.recs.insert(
                o,
                NodeRec {
                    label: obj.label,
                    atom: obj.atom_value().cloned(),
                },
            );
            ev.created.push(o);
        }
        let created: FastSet<Oid> = ev.created.iter().copied().collect();

        // 3. Explicit edge deltas, gated on liveness. A deletion of an
        //    edge the mirror never held (it was dangling) is a no-op;
        //    an insertion whose child has no record stays un-arranged
        //    until the child is created (step 4 of that later batch).
        for e in &delta.edges {
            match e.op {
                gsdb::EdgeOp::Insert => {
                    if self.contains(e.parent) && self.contains(e.child) {
                        self.add_edge(e.parent, e.child);
                        ev.edges.push(EdgeEvent {
                            parent: e.parent,
                            child: e.child,
                            child_label: self.label(e.child).expect("child just checked live"),
                            w: 1,
                        });
                    }
                }
                gsdb::EdgeOp::Delete => {
                    if self.remove_edge(e.parent, e.child) {
                        ev.edges.push(EdgeEvent {
                            parent: e.parent,
                            child: e.child,
                            child_label: self.label(e.child).expect("arranged edge child is live"),
                            w: -1,
                        });
                    }
                }
            }
        }

        // 4. Created-record reconciliation: top the arranged
        //    neighborhood of each created object up to the final
        //    store. This covers children embedded in the `Create`
        //    itself (they never appear as edge deltas) and dangling
        //    edges a re-created OID brings back to life.
        for &o in &ev.created {
            let mut per_child: FastMap<Oid, usize> = FastMap::default();
            for &c in store.children(o) {
                *per_child.entry(c).or_insert(0) += 1;
            }
            for (c, want) in per_child {
                let Some(child_label) = self.label(c) else {
                    continue;
                };
                for _ in self.edge_multiplicity(o, c)..want {
                    self.add_edge(o, c);
                    ev.edges.push(EdgeEvent {
                        parent: o,
                        child: c,
                        child_label,
                        w: 1,
                    });
                }
            }
            // Incoming edges, through the parent index when there is
            // one (the index-less fallback scans below).
            if let Some(ps) = store.parents(o) {
                let own_label = self.label(o).expect("created record just arranged");
                let mut seen: FastSet<Oid> = FastSet::default();
                for p in ps.iter() {
                    if !seen.insert(p) || created.contains(&p) || !self.contains(p) {
                        continue;
                    }
                    let want = store.children(p).iter().filter(|&&c| c == o).count();
                    for _ in self.edge_multiplicity(p, o)..want {
                        self.add_edge(p, o);
                        ev.edges.push(EdgeEvent {
                            parent: p,
                            child: o,
                            child_label: own_label,
                            w: 1,
                        });
                    }
                }
            }
        }

        // 4b. Index-less incoming reconciliation: without a parent
        //     index the store cannot name a created object's parents,
        //     so scan every arranged parent's store children for
        //     edges into created records (covers dangling-edge
        //     resurrection). Linear in arranged edges, paid only by
        //     index-less stores with creates in the batch.
        if !created.is_empty() && !store.has_parent_index() {
            let parents: Vec<Oid> = self
                .recs
                .keys()
                .copied()
                .filter(|p| !created.contains(p))
                .collect();
            for p in parents {
                let mut per_child: FastMap<Oid, usize> = FastMap::default();
                for &c in store.children(p) {
                    if created.contains(&c) {
                        *per_child.entry(c).or_insert(0) += 1;
                    }
                }
                for (c, want) in per_child {
                    let Some(child_label) = self.label(c) else { continue };
                    for _ in self.edge_multiplicity(p, c)..want {
                        self.add_edge(p, c);
                        ev.edges.push(EdgeEvent {
                            parent: p,
                            child: c,
                            child_label,
                            w: 1,
                        });
                    }
                }
            }
        }

        // 5. Atom modifications of surviving records. Created records
        //    already carry their final-store atom, so the compare
        //    below is what makes re-application idempotent.
        for m in &delta.modifies {
            let Some(rec) = self.recs.get_mut(&m.oid) else {
                continue;
            };
            if rec.atom.as_ref() == Some(&m.new) {
                continue;
            }
            let old = rec.atom.replace(m.new.clone());
            ev.atoms.push((m.oid, old, m.new.clone()));
        }

        ev
    }

    /// Events that load an entire store into an empty circuit: every
    /// object is "created". Shares the reconciliation path with
    /// incremental ingestion, so initialization is the same code the
    /// oracle exercises per batch.
    pub fn ingest_full(&mut self, store: &Store) -> IngestEvents {
        let delta = ConsolidatedDelta {
            created: store.iter().map(|o| o.oid).collect(),
            ..ConsolidatedDelta::default()
        };
        self.ingest(&delta, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdb::{DeltaBatch, Object, Update};

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn has_edge(ev: &IngestEvents, parent: &str, child: &str, w: i64) -> bool {
        ev.edges
            .iter()
            .any(|e| e.parent == oid(parent) && e.child == oid(child) && e.w == w)
    }

    fn seed() -> Store {
        let mut s = Store::new();
        s.create(Object::atom("A", "age", 40i64)).unwrap();
        s.create(Object::set("P", "person", &[oid("A")])).unwrap();
        s.create(Object::set("R", "root", &[oid("P")])).unwrap();
        s
    }

    #[test]
    fn full_load_mirrors_store() {
        let s = seed();
        let mut arr = GraphArrangement::new();
        let ev = arr.ingest_full(&s);
        assert_eq!(arr.len(), 3);
        assert_eq!(arr.edge_len(), 2);
        assert_eq!(ev.created.len(), 3);
        assert_eq!(ev.edges.len(), 2);
        assert_eq!(arr.children(oid("R")), &[oid("P")]);
        assert_eq!(arr.parents(oid("A")), &[oid("P")]);
        assert_eq!(arr.atom(oid("A")), Some(&Atom::from(40i64)));
    }

    #[test]
    fn remove_synthesizes_incident_edge_deletes() {
        let mut s = seed();
        let mut arr = GraphArrangement::new();
        arr.ingest_full(&s);

        let mut batch = DeltaBatch::new();
        batch.push(s.apply(Update::Remove { oid: oid("P") }).unwrap());
        let ev = arr.ingest(&batch.consolidate(), &s);
        // Both incident edges die even though the store still names P
        // in R's children list.
        assert_eq!(ev.edges.len(), 2);
        assert!(has_edge(&ev, "P", "A", -1));
        assert!(has_edge(&ev, "R", "P", -1));
        assert_eq!(arr.edge_len(), 0);
        assert!(!arr.contains(oid("P")));
        assert!(!s.children(oid("R")).is_empty(), "store edge dangles");
    }

    #[test]
    fn recreate_resurrects_dangling_edges() {
        let mut s = seed();
        let mut arr = GraphArrangement::new();
        arr.ingest_full(&s);

        let mut batch = DeltaBatch::new();
        batch.push(s.apply(Update::Remove { oid: oid("P") }).unwrap());
        arr.ingest(&batch.consolidate(), &s);

        let mut batch = DeltaBatch::new();
        batch.push(
            s.apply(Update::Create {
                object: Object::set("P", "person", &[oid("A")]),
            })
            .unwrap(),
        );
        let ev = arr.ingest(&batch.consolidate(), &s);
        // Outgoing edge comes from the embedded children; the dangling
        // R→P edge resurrects through the parent index.
        assert!(has_edge(&ev, "P", "A", 1));
        assert!(has_edge(&ev, "R", "P", 1));
        assert_eq!(arr.edge_len(), 2);
    }

    #[test]
    fn modify_is_idempotent_for_created_records() {
        let mut s = seed();
        let mut arr = GraphArrangement::new();
        arr.ingest_full(&s);
        let mut batch = DeltaBatch::new();
        batch.push(s.apply(Update::modify("A", 50i64)).unwrap());
        let ev = arr.ingest(&batch.consolidate(), &s);
        assert_eq!(ev.atoms.len(), 1);
        assert_eq!(arr.atom(oid("A")), Some(&Atom::from(50i64)));
        // Replaying the same consolidated delta produces no event.
        let mut batch2 = DeltaBatch::new();
        batch2.push(gsdb::AppliedUpdate::Modify {
            oid: oid("A"),
            old: Atom::from(40i64),
            new: Atom::from(50i64),
        });
        let ev = arr.ingest(&batch2.consolidate(), &s);
        assert!(ev.atoms.is_empty());
    }
}
