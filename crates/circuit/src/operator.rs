//! The incremental operators circuits are assembled from.
//!
//! Both flow operators maintain *derivation counts* over the product
//! of the arranged graph and a path-expression NFA, updated by Z-set
//! delta propagation:
//!
//! * [`ForwardFlow`] — flat-map edge expansion from a set of source
//!   objects: `C[(src, n, s)]` counts the label-path derivations from
//!   `src` (in an NFA start state) to `n` in state `s`. The accepting
//!   row is the operator's output Z-set.
//! * [`BackwardFlow`] — the condition witness: `D[(n, s)]` counts the
//!   accepting suffixes below `n` starting in state `s`, where a
//!   suffix accepts iff it ends at an atom satisfying the predicate.
//!   The start-state row says which objects have a witness.
//!
//! Counts are linear in the edge multiset, so a batch of ±1 edge
//! events applied against the *pre-batch* counts, followed by a
//! worklist propagation through the *post-batch* arrangement, lands
//! exactly on the from-scratch counts (the semi-naïve residual rule:
//! `ΔC = closure(A_new) · ΔA · C_old`). Work is proportional to the
//! product states actually touched — O(|Δ|), not O(view).
//!
//! Cyclic bases make path counts infinite; propagation is therefore
//! budgeted and reports [`Diverged`](crate::CircuitError::Diverged)
//! instead of spinning, and the caller falls back to recomputation.

use crate::arrange::GraphArrangement;
use crate::zset::ZSet;
use gsdb::{Atom, FastMap, FastSet, Label, Oid};
use gsview_query::{Nfa, PathExpr, Pred};
use std::hash::Hash;

/// Marker for "propagation exceeded its budget".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Diverged;

/// Per-label transition tables for one NFA, built lazily: `fwd[s]` is
/// the eps-closed consuming step from `s`, `inv[s2]` the states that
/// can reach `s2` in one consuming step.
#[derive(Clone, Debug)]
struct LabelTable {
    fwd: Vec<Vec<u32>>,
    inv: Vec<Vec<u32>>,
}

fn build_table(nfa: &Nfa, nstates: u32, l: Label) -> LabelTable {
    let mut fwd: Vec<Vec<u32>> = Vec::with_capacity(nstates as usize);
    let mut inv: Vec<Vec<u32>> = vec![Vec::new(); nstates as usize];
    for s in 0..nstates {
        let next: Vec<u32> = nfa.step(&[s as usize], l).iter().map(|&t| t as u32).collect();
        for &t in &next {
            inv[t as usize].push(s);
        }
        fwd.push(next);
    }
    LabelTable { fwd, inv }
}

/// Shared NFA machinery of the two flow operators.
#[derive(Clone, Debug)]
struct NfaEngine {
    nfa: Nfa,
    nstates: u32,
    start: Vec<u32>,
    accept: u32,
    tables: FastMap<Label, LabelTable>,
}

impl NfaEngine {
    fn new(expr: &PathExpr) -> NfaEngine {
        let nfa = expr.nfa();
        let nstates = expr.len() as u32 + 1;
        let start = nfa.start().iter().map(|&s| s as u32).collect();
        let accept = (0..nstates)
            .find(|&s| nfa.any_accepting(&[s as usize]))
            .expect("every NFA has exactly one accepting state");
        NfaEngine {
            nfa,
            nstates,
            start,
            accept,
            tables: FastMap::default(),
        }
    }

    fn table(&mut self, l: Label) -> &LabelTable {
        if !self.tables.contains_key(&l) {
            let t = build_table(&self.nfa, self.nstates, l);
            self.tables.insert(l, t);
        }
        &self.tables[&l]
    }

    fn fwd(&mut self, s: u32, l: Label) -> Vec<u32> {
        self.table(l).fwd[s as usize].clone()
    }

    fn inv(&mut self, s2: u32, l: Label) -> Vec<u32> {
        self.table(l).inv[s2 as usize].clone()
    }
}

// ----------------------------------------------------------------------
// Forward flow
// ----------------------------------------------------------------------

/// Forward weighted NFA reachability from per-source injection points.
///
/// The source type `S` is `()` for a view branch (one flow from the
/// branch root) and the member OID for aggregate value collection
/// (one flow per member, sharing state and propagation).
#[derive(Clone, Debug)]
pub struct ForwardFlow<S: Eq + Hash + Copy> {
    engine: NfaEngine,
    counts: FastMap<(S, Oid, u32), i64>,
    by_node: FastMap<Oid, FastSet<(S, u32)>>,
    accept_support: ZSet<(S, Oid)>,
}

impl<S: Eq + Hash + Copy> ForwardFlow<S> {
    /// A flow for `expr` with no state.
    pub fn new(expr: &PathExpr) -> Self {
        ForwardFlow {
            engine: NfaEngine::new(expr),
            counts: FastMap::default(),
            by_node: FastMap::default(),
            accept_support: ZSet::new(),
        }
    }

    /// Inject `w` copies of source `src` at `node` (in every start
    /// state) into `pending`.
    pub fn seed(&self, pending: &mut ZSet<(S, Oid, u32)>, src: S, node: Oid, w: i64) {
        for &s in &self.engine.start {
            pending.add((src, node, s), w);
        }
    }

    /// Translate one ±1 edge event into count deltas against the
    /// **current** (pre-propagation) counts. Must be called for every
    /// event of a batch before [`ForwardFlow::propagate`].
    pub fn edge_event(
        &mut self,
        pending: &mut ZSet<(S, Oid, u32)>,
        parent: Oid,
        child: Oid,
        child_label: Label,
        w: i64,
    ) {
        let Some(keys) = self.by_node.get(&parent) else {
            return;
        };
        let keys: Vec<(S, u32)> = keys.iter().copied().collect();
        for (src, s) in keys {
            let cnt = self.counts.get(&(src, parent, s)).copied().unwrap_or(0);
            if cnt == 0 {
                continue;
            }
            for s2 in self.engine.fwd(s, child_label) {
                pending.add((src, child, s2), w.saturating_mul(cnt));
            }
        }
    }

    /// Drain `pending` to a fixpoint through the post-batch
    /// arrangement. Every `(src, node)` whose accepting support
    /// changed is added to `dirty`. Decrements `budget` per worklist
    /// pop and fails with [`Diverged`] at zero (counts are then
    /// partial — the circuit must be rebuilt).
    pub fn propagate(
        &mut self,
        arr: &GraphArrangement,
        mut pending: ZSet<(S, Oid, u32)>,
        budget: &mut u64,
        pops: &mut u64,
        dirty: &mut FastSet<(S, Oid)>,
    ) -> Result<(), Diverged> {
        while let Some(((src, node, s), delta)) = pending.pop() {
            if *budget == 0 {
                return Err(Diverged);
            }
            *budget -= 1;
            *pops += 1;
            self.bump(src, node, s, delta);
            if s == self.engine.accept {
                self.accept_support.add((src, node), delta);
                dirty.insert((src, node));
            }
            for &c in arr.children(node) {
                let l = arr.label(c).expect("live edge child is arranged");
                for s2 in self.engine.fwd(s, l) {
                    pending.add((src, c, s2), delta);
                }
            }
        }
        Ok(())
    }

    fn bump(&mut self, src: S, node: Oid, s: u32, delta: i64) {
        let key = (src, node, s);
        let entry = self.counts.entry(key).or_insert(0);
        *entry = entry.saturating_add(delta);
        if *entry == 0 {
            self.counts.remove(&key);
            if let Some(set) = self.by_node.get_mut(&node) {
                set.remove(&(src, s));
                if set.is_empty() {
                    self.by_node.remove(&node);
                }
            }
        } else {
            self.by_node.entry(node).or_default().insert((src, s));
        }
    }

    /// Accepting support of `(src, node)` — the operator's output
    /// weight before the distinct clamp.
    pub fn support(&self, src: S, node: Oid) -> i64 {
        self.accept_support.weight((src, node))
    }

    /// Number of live product states (arranged index size).
    pub fn state_len(&self) -> usize {
        self.counts.len()
    }
}

// ----------------------------------------------------------------------
// Backward flow (condition witnesses)
// ----------------------------------------------------------------------

/// Backward witness counting for an existential condition
/// `cond(X.expr) pred`: `D[(n, s)]` counts derivations of an
/// accepting, predicate-satisfying suffix from state `s` at `n`.
///
/// `D[n][accept] = [atom(n) satisfies pred]`, and every other state
/// sums over live child edges; deltas propagate **upward** through
/// the parent index with the inverse transition table. The start-state
/// row is the witness Z-set: `witness(n) > 0` iff some instance of
/// `expr` from `n` ends in a satisfying atom.
#[derive(Clone, Debug)]
pub struct BackwardFlow {
    engine: NfaEngine,
    pred: Pred,
    counts: FastMap<(Oid, u32), i64>,
    by_node: FastMap<Oid, FastSet<u32>>,
    start_support: ZSet<Oid>,
}

impl BackwardFlow {
    /// A witness flow for `expr` filtered by `pred`, with no state.
    pub fn new(expr: &PathExpr, pred: Pred) -> Self {
        BackwardFlow {
            engine: NfaEngine::new(expr),
            pred,
            counts: FastMap::default(),
            by_node: FastMap::default(),
            start_support: ZSet::new(),
        }
    }

    fn pred_ok(&self, atom: Option<&Atom>) -> bool {
        atom.map(|a| self.pred.eval(a)).unwrap_or(false)
    }

    /// Base-term delta for an object whose record or atom changed:
    /// `w = +1` on creation, `-1` on removal, and for an atom change
    /// call once with `-1`/old and once with `+1`/new.
    pub fn base_event(&self, pending: &mut ZSet<(Oid, u32)>, node: Oid, atom: Option<&Atom>, w: i64) {
        if self.pred_ok(atom) {
            pending.add((node, self.engine.accept), w);
        }
    }

    /// Translate one ±1 edge event into witness deltas for the parent,
    /// against current (pre-propagation) counts.
    pub fn edge_event(
        &mut self,
        pending: &mut ZSet<(Oid, u32)>,
        parent: Oid,
        child: Oid,
        child_label: Label,
        w: i64,
    ) {
        let Some(states) = self.by_node.get(&child) else {
            return;
        };
        let states: Vec<u32> = states.iter().copied().collect();
        for s2 in states {
            let cnt = self.counts.get(&(child, s2)).copied().unwrap_or(0);
            if cnt == 0 {
                continue;
            }
            for s0 in self.engine.inv(s2, child_label) {
                pending.add((parent, s0), w.saturating_mul(cnt));
            }
        }
    }

    /// Drain `pending` upward to a fixpoint. Objects whose start-state
    /// witness support changed are added to `dirty`.
    pub fn propagate(
        &mut self,
        arr: &GraphArrangement,
        mut pending: ZSet<(Oid, u32)>,
        budget: &mut u64,
        pops: &mut u64,
        dirty: &mut FastSet<Oid>,
    ) -> Result<(), Diverged> {
        while let Some(((node, s), delta)) = pending.pop() {
            if *budget == 0 {
                return Err(Diverged);
            }
            *budget -= 1;
            *pops += 1;
            self.bump(node, s, delta);
            if self.engine.start.contains(&s) {
                self.start_support.add(node, delta);
                dirty.insert(node);
            }
            let parents = arr.parents(node);
            if !parents.is_empty() {
                let l = arr.label(node).expect("live edge endpoint is arranged");
                let inv = self.engine.inv(s, l);
                for &p in parents {
                    for &s0 in &inv {
                        pending.add((p, s0), delta);
                    }
                }
            }
        }
        Ok(())
    }

    fn bump(&mut self, node: Oid, s: u32, delta: i64) {
        let key = (node, s);
        let entry = self.counts.entry(key).or_insert(0);
        *entry = entry.saturating_add(delta);
        if *entry == 0 {
            self.counts.remove(&key);
            if let Some(set) = self.by_node.get_mut(&node) {
                set.remove(&s);
                if set.is_empty() {
                    self.by_node.remove(&node);
                }
            }
        } else {
            self.by_node.entry(node).or_default().insert(s);
        }
    }

    /// Witness support of `node` (positive iff a satisfying instance
    /// of the condition expression exists below it).
    pub fn witness(&self, node: Oid) -> i64 {
        self.start_support.weight(node)
    }

    /// Number of live product states.
    pub fn state_len(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdb::{Object, Store};
    use gsview_query::CmpOp;

    fn oid(s: &str) -> Oid {
        Oid::new(s)
    }

    fn arr_of(store: &Store) -> (GraphArrangement, crate::arrange::IngestEvents) {
        let mut arr = GraphArrangement::new();
        let ev = arr.ingest_full(store);
        (arr, ev)
    }

    fn store3() -> Store {
        let mut s = Store::new();
        s.create(Object::atom("A1", "age", 50i64)).unwrap();
        s.create(Object::set("P1", "professor", &[oid("A1")])).unwrap();
        s.create(Object::set("ROOT", "root", &[oid("P1")])).unwrap();
        s
    }

    fn run_forward(expr: &str, store: &Store, root: &str) -> ForwardFlow<()> {
        let e = PathExpr::parse(expr).unwrap();
        let mut f = ForwardFlow::new(&e);
        let (arr, ev) = arr_of(store);
        let mut pending = ZSet::new();
        f.seed(&mut pending, (), oid(root), 1);
        for e in &ev.edges {
            f.edge_event(&mut pending, e.parent, e.child, e.child_label, e.w);
        }
        let (mut b, mut p) = (1_000_000, 0);
        let mut dirty = FastSet::default();
        f.propagate(&arr, pending, &mut b, &mut p, &mut dirty).unwrap();
        f
    }

    #[test]
    fn forward_counts_reach_accepting_members() {
        let s = store3();
        let f = run_forward("professor", &s, "ROOT");
        assert_eq!(f.support((), oid("P1")), 1);
        assert_eq!(f.support((), oid("A1")), 0);
        assert_eq!(f.support((), oid("ROOT")), 0);
    }

    #[test]
    fn wildcard_accepts_root_and_descendants() {
        let s = store3();
        let f = run_forward("*", &s, "ROOT");
        assert_eq!(f.support((), oid("ROOT")), 1);
        assert_eq!(f.support((), oid("P1")), 1);
        assert_eq!(f.support((), oid("A1")), 1);
    }

    #[test]
    fn backward_witness_finds_satisfying_atom() {
        let s = store3();
        let e = PathExpr::parse("age").unwrap();
        let mut w = BackwardFlow::new(&e, Pred::new(CmpOp::Gt, 40i64));
        let (arr, ev) = arr_of(&s);
        let mut pending = ZSet::new();
        for o in &ev.created {
            w.base_event(&mut pending, *o, arr.atom(*o), 1);
        }
        for e in &ev.edges {
            w.edge_event(&mut pending, e.parent, e.child, e.child_label, e.w);
        }
        let (mut b, mut p) = (1_000_000, 0);
        let mut dirty = FastSet::default();
        w.propagate(&arr, pending, &mut b, &mut p, &mut dirty).unwrap();
        assert!(w.witness(oid("P1")) > 0, "P1 has an age witness > 40");
        assert_eq!(w.witness(oid("ROOT")), 0);
    }

    #[test]
    fn budget_exhaustion_reports_divergence() {
        // A self-cycle under a `*` expression has infinitely many
        // paths; the budget must trip instead of spinning.
        let mut s = Store::new();
        s.create(Object::set("ROOT", "root", &[])).unwrap();
        s.create(Object::set("C", "c", &[])).unwrap();
        s.insert_edge(oid("ROOT"), oid("C")).unwrap();
        s.insert_edge(oid("C"), oid("C")).unwrap();
        let e = PathExpr::parse("*").unwrap();
        let mut f: ForwardFlow<()> = ForwardFlow::new(&e);
        let (arr, ev) = arr_of(&s);
        let mut pending = ZSet::new();
        f.seed(&mut pending, (), oid("ROOT"), 1);
        for e in &ev.edges {
            f.edge_event(&mut pending, e.parent, e.child, e.child_label, e.w);
        }
        let (mut b, mut p) = (10_000, 0);
        let mut dirty = FastSet::default();
        assert_eq!(
            f.propagate(&arr, pending, &mut b, &mut p, &mut dirty),
            Err(Diverged)
        );
    }
}
