//! Z-sets: collections with signed integer multiplicities.
//!
//! A [`ZSet`] maps keys to non-zero `i64` weights. Insertions carry
//! weight `+1`, deletions `-1`; equal keys consolidate by summing and
//! a key whose weight reaches zero vanishes. Every circuit operator
//! consumes and produces Z-set deltas, which is what makes the whole
//! dataflow composable: `apply(a) ∘ apply(b) = apply(a + b)` holds by
//! linearity regardless of how a batch is split or ordered.

use gsdb::FastMap;
use std::hash::Hash;

/// A weighted collection: key → non-zero signed weight.
///
/// All mutation goes through [`ZSet::add`], which consolidates
/// eagerly — the map never holds an explicit zero, so iteration order
/// aside, two Z-sets built from any interleaving of the same deltas
/// are equal.
#[derive(Clone, Debug)]
pub struct ZSet<K: Eq + Hash> {
    weights: FastMap<K, i64>,
}

impl<K: Eq + Hash> Default for ZSet<K> {
    fn default() -> Self {
        ZSet {
            weights: FastMap::default(),
        }
    }
}

impl<K: Eq + Hash + Copy> ZSet<K> {
    /// The empty Z-set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `w` to the weight of `key`, consolidating to zero. Returns
    /// the new weight. Weights saturate instead of overflowing: the
    /// circuit layer treats a saturated count as "very many
    /// derivations", which is sign-accurate for the membership and
    /// witness clamps built on top.
    pub fn add(&mut self, key: K, w: i64) -> i64 {
        if w == 0 {
            return self.weight(key);
        }
        let entry = self.weights.entry(key).or_insert(0);
        *entry = entry.saturating_add(w);
        let now = *entry;
        if now == 0 {
            self.weights.remove(&key);
        }
        now
    }

    /// The weight of `key` (zero when absent).
    pub fn weight(&self, key: K) -> i64 {
        self.weights.get(&key).copied().unwrap_or(0)
    }

    /// Number of keys with non-zero weight.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True iff no key has non-zero weight.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Iterate `(key, weight)` pairs. Order is unspecified.
    pub fn iter(&self) -> impl Iterator<Item = (K, i64)> + '_ {
        self.weights.iter().map(|(k, w)| (*k, *w))
    }

    /// Remove and return an arbitrary entry — the worklist pop the
    /// propagation loops are built on.
    pub fn pop(&mut self) -> Option<(K, i64)> {
        let key = *self.weights.keys().next()?;
        let w = self.weights.remove(&key).expect("key just observed");
        Some((key, w))
    }

    /// Merge another Z-set into this one (pointwise sum).
    pub fn merge(&mut self, other: &ZSet<K>) {
        for (k, w) in other.iter() {
            self.add(k, w);
        }
    }

    /// Total absolute weight — the |Δ| the obs counters report.
    pub fn total_abs_weight(&self) -> u64 {
        self.weights.values().map(|w| w.unsigned_abs()).sum()
    }
}

impl<K: Eq + Hash + Copy> FromIterator<(K, i64)> for ZSet<K> {
    fn from_iter<I: IntoIterator<Item = (K, i64)>>(iter: I) -> Self {
        let mut z = ZSet::new();
        for (k, w) in iter {
            z.add(k, w);
        }
        z
    }
}

/// The `distinct` clamp: the set-semantics delta produced when a
/// support count moves between zero and positive. `+1` when support
/// becomes positive, `-1` when it stops being positive, `0` otherwise.
pub fn distinct_delta(old_support: i64, new_support: i64) -> i64 {
    (new_support > 0) as i64 - (old_support > 0) as i64
}

/// Tracks which keys currently clamp to "present" and emits set-level
/// deltas when a key's support crosses zero — the `distinct` operator.
///
/// The operator is stateful but order-independent: its output depends
/// only on the sign transitions of the support function it is synced
/// against, never on the order dirty keys are presented in.
#[derive(Clone, Debug, Default)]
pub struct DistinctOp<K: Eq + Hash> {
    positive: gsdb::FastSet<K>,
}

impl<K: Eq + Hash + Copy> DistinctOp<K> {
    /// A distinct operator with empty state.
    pub fn new() -> Self {
        DistinctOp {
            positive: gsdb::FastSet::default(),
        }
    }

    /// True iff `key` currently clamps to present.
    pub fn contains(&self, key: K) -> bool {
        self.positive.contains(&key)
    }

    /// Keys currently present. Order unspecified.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.positive.iter().copied()
    }

    /// Number of present keys.
    pub fn len(&self) -> usize {
        self.positive.len()
    }

    /// True iff no key is present.
    pub fn is_empty(&self) -> bool {
        self.positive.is_empty()
    }

    /// Re-evaluate `support` for every dirty key and emit `(key, ±1)`
    /// for each zero crossing. Duplicate dirty keys are harmless.
    pub fn sync(
        &mut self,
        dirty: impl IntoIterator<Item = K>,
        support: impl Fn(K) -> i64,
    ) -> Vec<(K, i64)> {
        let mut out = Vec::new();
        for key in dirty {
            let was = self.positive.contains(&key);
            let now = support(key) > 0;
            if now && !was {
                self.positive.insert(key);
                out.push((key, 1));
            } else if !now && was {
                self.positive.remove(&key);
                out.push((key, -1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_delete_annihilate() {
        let mut z: ZSet<u32> = ZSet::new();
        z.add(7, 1);
        z.add(7, -1);
        assert!(z.is_empty());
        assert_eq!(z.weight(7), 0);
    }

    #[test]
    fn duplicate_weights_sum() {
        let mut z: ZSet<u32> = ZSet::new();
        z.add(1, 2);
        z.add(1, 3);
        assert_eq!(z.weight(1), 5);
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn distinct_clamps_on_zero_crossings_only() {
        assert_eq!(distinct_delta(0, 3), 1);
        assert_eq!(distinct_delta(2, 5), 0);
        assert_eq!(distinct_delta(1, 0), -1);
        assert_eq!(distinct_delta(0, 0), 0);
    }

    #[test]
    fn distinct_op_emits_transitions() {
        let mut d: DistinctOp<u32> = DistinctOp::new();
        let out = d.sync([1, 2], |k| if k == 1 { 1 } else { 0 });
        assert_eq!(out, vec![(1, 1)]);
        // No transition: nothing emitted.
        assert!(d.sync([1], |_| 5).is_empty());
        let out = d.sync([1], |_| 0);
        assert_eq!(out, vec![(1, -1)]);
    }

    #[test]
    fn merge_is_pointwise_sum() {
        let a: ZSet<u32> = [(1, 1), (2, -1)].into_iter().collect();
        let b: ZSet<u32> = [(2, 1), (3, 4)].into_iter().collect();
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.weight(1), 1);
        assert_eq!(m.weight(2), 0);
        assert_eq!(m.weight(3), 4);
        assert_eq!(m.len(), 2);
    }
}
