//! gsview-circuit — DBSP-style delta circuits for view maintenance.
//!
//! The paper's Algorithm 1 repairs a view per update by locating and
//! patching affected members, which goes superlinear for multi-path,
//! wildcard, and aggregate views under churn. This crate is the
//! alternative backend: view definitions compile into *delta
//! circuits* — dataflows of composable incremental operators (edge
//! expansion, condition semijoin, distinct, weighted aggregate) over
//! Z-set deltas, with per-operator arranged state updated in
//! O(|Δin|) per commit.
//!
//! Layering: this crate sits between `gsview-query` (path-expression
//! NFAs, predicates) and `gsview-core` (which lowers `ViewDef`s into
//! [`CircuitDef`]s and routes consolidated delta batches here when
//! the planner picks the circuit backend).
//!
//! * [`zset`] — weighted collections and the distinct clamp.
//! * [`arrange`] — the live-graph mirror and delta→event reduction.
//! * [`operator`] — forward/backward weighted NFA flows.
//! * [`circuit`] — the compiled dataflow and its step function.

#![warn(missing_docs)]

pub mod arrange;
pub mod circuit;
pub mod operator;
pub mod zset;

pub use arrange::{EdgeEvent, GraphArrangement, IngestEvents, NodeRec};
pub use circuit::{
    AggDef, AggKind, BranchDef, Circuit, CircuitDef, CondDef, StepOutput, StepStats,
};
pub use zset::{distinct_delta, DistinctOp, ZSet};

/// Errors a circuit step can report. Any error leaves the circuit's
/// internal state partial; the caller must re-compile and
/// re-initialize against the current store (which is always a correct
/// fallback — it is exactly recomputation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CircuitError {
    /// Delta propagation exceeded its budget — the base graph has a
    /// cycle under a `*` expression (infinitely many path
    /// derivations), or pathological fan-out.
    Diverged,
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::Diverged => {
                write!(f, "delta propagation diverged (cyclic base under a wildcard?)")
            }
        }
    }
}

impl std::error::Error for CircuitError {}
