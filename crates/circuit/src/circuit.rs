//! Compiling view definitions into delta circuits and stepping them.
//!
//! A [`CircuitDef`] is the backend-neutral IR a view definition lowers
//! to: one [`BranchDef`] per selection branch (root × path expression
//! × optional condition) plus an optional [`AggDef`]. [`Circuit`]
//! compiles the IR into a dataflow of flow operators over one shared
//! [`GraphArrangement`]:
//!
//! ```text
//!   ΔStore ──ingest──► edge/node/atom events
//!     ├─► ForwardFlow(sel)   per branch ─┐
//!     ├─► BackwardFlow(cond) per branch ─┼─► semijoin ─► distinct ─► ΔV
//!     └─► ForwardFlow(agg, per member) ◄─┘ (membership ±1 feeds back)
//!                └─► distinct pairs ─► weighted aggregate ─► Δagg
//! ```
//!
//! Initialization and incremental steps share one code path: loading
//! a store is just ingesting a delta that creates every object, so
//! the state reached incrementally is — by construction — the state a
//! from-scratch rebuild reaches. That is the invariant the four-way
//! differential oracle in core pins down.

use crate::arrange::{GraphArrangement, IngestEvents};
use crate::operator::{BackwardFlow, Diverged, ForwardFlow};
use crate::zset::{DistinctOp, ZSet};
use crate::CircuitError;
use gsdb::{ConsolidatedDelta, FastMap, FastSet, Oid, Store};
use gsview_query::{PathExpr, Pred};

/// An existential condition on view members: some instance of `expr`
/// from the member must end in an atom satisfying `pred`.
#[derive(Clone, Debug)]
pub struct CondDef {
    /// Path expression below the member.
    pub expr: PathExpr,
    /// Predicate on the terminal atom.
    pub pred: Pred,
}

/// One selection branch: objects reached from `root` along `sel`,
/// optionally filtered by a condition.
#[derive(Clone, Debug)]
pub struct BranchDef {
    /// Branch root object.
    pub root: Oid,
    /// Selection path expression.
    pub sel: PathExpr,
    /// Optional membership condition.
    pub cond: Option<CondDef>,
}

/// The aggregate functions the circuit backend supports — mirrors
/// core's `AggFn` (the circuit crate sits below core and cannot
/// depend on it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggKind {
    /// Number of numeric atoms.
    Count,
    /// Sum of numeric atoms.
    Sum,
    /// Minimum (undefined on empty input).
    Min,
    /// Maximum (undefined on empty input).
    Max,
    /// Arithmetic mean (undefined on empty input).
    Avg,
}

impl AggKind {
    /// Compute over a slice of numeric values; `None` when undefined.
    pub fn compute(&self, values: &[f64]) -> Option<f64> {
        match self {
            AggKind::Count => Some(values.len() as f64),
            AggKind::Sum => Some(values.iter().sum()),
            AggKind::Min => values.iter().copied().reduce(f64::min),
            AggKind::Max => values.iter().copied().reduce(f64::max),
            AggKind::Avg => {
                if values.is_empty() {
                    None
                } else {
                    Some(values.iter().sum::<f64>() / values.len() as f64)
                }
            }
        }
    }
}

/// Aggregation over each member's reachable numeric atoms.
#[derive(Clone, Debug)]
pub struct AggDef {
    /// Path from a member to the aggregated atoms.
    pub path: PathExpr,
    /// The aggregate function.
    pub f: AggKind,
}

/// The circuit IR one view definition lowers to.
#[derive(Clone, Debug)]
pub struct CircuitDef {
    /// Selection branches (membership is their union).
    pub branches: Vec<BranchDef>,
    /// Optional per-member aggregation.
    pub aggregate: Option<AggDef>,
}

/// Per-step work and state-size measurements.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    /// Total |Δin|: low-level events the batch reduced to.
    pub input_weight: u64,
    /// Worklist pops in selection flows.
    pub sel_pops: u64,
    /// Worklist pops in condition-witness flows.
    pub witness_pops: u64,
    /// Worklist pops in the aggregate flow.
    pub agg_pops: u64,
    /// Arranged records after the step.
    pub arranged_nodes: usize,
    /// Arranged live edges after the step.
    pub arranged_edges: usize,
    /// Live operator-state entries (all flows) after the step.
    pub state_entries: usize,
}

impl StepStats {
    /// Total worklist pops across all operators.
    pub fn pops(&self) -> u64 {
        self.sel_pops + self.witness_pops + self.agg_pops
    }
}

/// What one circuit step changed.
#[derive(Clone, Debug, Default)]
pub struct StepOutput {
    /// Objects that became view members (unordered).
    pub inserted: Vec<Oid>,
    /// Objects that stopped being view members (unordered).
    pub deleted: Vec<Oid>,
    /// Members whose aggregate value changed (unordered; aggregate
    /// circuits only).
    pub agg_changed: Vec<Oid>,
    /// Work/state measurements for this step.
    pub stats: StepStats,
}

#[derive(Clone, Debug)]
struct BranchState {
    sel: ForwardFlow<()>,
    witness: Option<BackwardFlow>,
}

#[derive(Clone, Debug)]
struct AggState {
    flow: ForwardFlow<Oid>,
    pairs: DistinctOp<(Oid, Oid)>,
    endpoints: FastMap<Oid, FastSet<Oid>>,
    holders: FastMap<Oid, FastSet<Oid>>,
    values: FastMap<Oid, Option<f64>>,
    f: AggKind,
}

/// A compiled, stateful delta circuit for one view.
///
/// Lifecycle: [`Circuit::compile`] → [`Circuit::init`] against a
/// store snapshot → [`Circuit::step`] per consolidated batch. After
/// any error the internal state is partial and the circuit must be
/// re-compiled and re-initialized (the maintainer layer treats every
/// error as "rebuild from the current store", which is always
/// correct).
#[derive(Clone, Debug)]
pub struct Circuit {
    def: CircuitDef,
    arr: GraphArrangement,
    branches: Vec<BranchState>,
    view: DistinctOp<Oid>,
    agg: Option<AggState>,
}

impl Circuit {
    /// Compile a definition into an empty circuit.
    pub fn compile(def: CircuitDef) -> Circuit {
        let _span = gsview_obs::span!(
            "maint.circuit.compile",
            "branches" = def.branches.len(),
            "aggregate" = def.aggregate.is_some(),
        );
        let branches = def
            .branches
            .iter()
            .map(|b| BranchState {
                sel: ForwardFlow::new(&b.sel),
                witness: b
                    .cond
                    .as_ref()
                    .map(|c| BackwardFlow::new(&c.expr, c.pred.clone())),
            })
            .collect();
        let agg = def.aggregate.as_ref().map(|a| AggState {
            flow: ForwardFlow::new(&a.path),
            pairs: DistinctOp::new(),
            endpoints: FastMap::default(),
            holders: FastMap::default(),
            values: FastMap::default(),
            f: a.f,
        });
        Circuit {
            def,
            arr: GraphArrangement::new(),
            branches,
            view: DistinctOp::new(),
            agg,
        }
    }

    /// Load a store snapshot into a freshly compiled circuit. Shares
    /// the event pipeline with [`Circuit::step`]: the whole store is
    /// one "everything created" delta.
    pub fn init(&mut self, store: &Store) -> Result<StepOutput, CircuitError> {
        let fresh = Circuit::compile(self.def.clone());
        *self = fresh;
        let events = self.arr.ingest_full(store);
        self.run(events, true)
    }

    /// Apply one consolidated delta (`store` is the post-batch
    /// store). Cost is proportional to the product states the delta
    /// actually touches, not to view or store size.
    pub fn step(
        &mut self,
        delta: &ConsolidatedDelta,
        store: &Store,
    ) -> Result<StepOutput, CircuitError> {
        let events = self.arr.ingest(delta, store);
        self.run(events, false)
    }

    /// Current members (unordered).
    pub fn members(&self) -> Vec<Oid> {
        self.view.keys().collect()
    }

    /// Is `oid` currently a member?
    pub fn contains(&self, oid: Oid) -> bool {
        self.view.contains(oid)
    }

    /// Number of members.
    pub fn member_len(&self) -> usize {
        self.view.len()
    }

    /// A member's aggregate value (aggregate circuits only; `None`
    /// for non-members or undefined aggregates).
    pub fn aggregate_of(&self, member: Oid) -> Option<f64> {
        self.agg.as_ref()?.values.get(&member).copied().flatten()
    }

    /// The global rollup over all members' aggregated atoms.
    pub fn total(&self) -> Option<f64> {
        let agg = self.agg.as_ref()?;
        let mut all = Vec::new();
        for y in self.view.keys() {
            self.collect_values(agg, y, &mut all);
        }
        agg.f.compute(&all)
    }

    fn collect_values(&self, agg: &AggState, member: Oid, out: &mut Vec<f64>) {
        if let Some(zs) = agg.endpoints.get(&member) {
            out.extend(
                zs.iter()
                    .filter_map(|&z| self.arr.atom(z).and_then(|a| a.as_f64())),
            );
        }
    }

    fn run(&mut self, events: IngestEvents, inject_roots: bool) -> Result<StepOutput, CircuitError> {
        let _span = gsview_obs::span!(
            "maint.circuit.step",
            "input" = events.total_abs_weight(),
            "init" = inject_roots,
        );
        let mut stats = StepStats {
            input_weight: events.total_abs_weight(),
            ..StepStats::default()
        };

        // Stage 1: translate events into per-operator pending deltas
        // against the *pre-propagation* counts. Every operator must
        // see the whole batch before any operator propagates — that
        // is what makes batch application equal to the sum of its
        // parts.
        let mut sel_pending: Vec<ZSet<((), Oid, u32)>> = Vec::with_capacity(self.branches.len());
        let mut wit_pending: Vec<ZSet<(Oid, u32)>> = Vec::with_capacity(self.branches.len());
        for (i, branch) in self.branches.iter_mut().enumerate() {
            let mut sp = ZSet::new();
            if inject_roots {
                branch.sel.seed(&mut sp, (), self.def.branches[i].root, 1);
            }
            let mut wp = ZSet::new();
            if let Some(w) = branch.witness.as_mut() {
                for &o in &events.created {
                    w.base_event(&mut wp, o, self.arr.atom(o), 1);
                }
                for (o, atom) in &events.removed {
                    w.base_event(&mut wp, *o, atom.as_ref(), -1);
                }
                for (o, old, new) in &events.atoms {
                    w.base_event(&mut wp, *o, old.as_ref(), -1);
                    w.base_event(&mut wp, *o, Some(new), 1);
                }
                for e in &events.edges {
                    w.edge_event(&mut wp, e.parent, e.child, e.child_label, e.w);
                }
            }
            for e in &events.edges {
                branch
                    .sel
                    .edge_event(&mut sp, e.parent, e.child, e.child_label, e.w);
            }
            sel_pending.push(sp);
            wit_pending.push(wp);
        }
        let mut agg_pending: ZSet<(Oid, Oid, u32)> = ZSet::new();
        if let Some(agg) = self.agg.as_mut() {
            for e in &events.edges {
                agg.flow
                    .edge_event(&mut agg_pending, e.parent, e.child, e.child_label, e.w);
            }
        }

        // Propagation budget: generous for legitimate deep fan-out
        // (scales with arrangement size), but finite — a cyclic base
        // under a `*` expression has infinitely many paths, and the
        // budget converts that into `Diverged` instead of a hang.
        let seed_entries: u64 = sel_pending.iter().map(|p| p.len() as u64).sum::<u64>()
            + wit_pending.iter().map(|p| p.len() as u64).sum::<u64>()
            + agg_pending.len() as u64;
        let mut budget: u64 = 10_000
            + 256 * seed_entries
            + 64 * (self.arr.len() as u64 + self.arr.edge_len() as u64);

        // Stage 2: propagate selection and witness flows to their
        // fixpoints, collecting membership candidates.
        let mut dirty_members: FastSet<Oid> = FastSet::default();
        dirty_members.extend(events.created.iter().copied());
        dirty_members.extend(events.removed.iter().map(|(o, _)| *o));
        let arr = &self.arr;
        for (i, branch) in self.branches.iter_mut().enumerate() {
            let mut sel_dirty: FastSet<((), Oid)> = FastSet::default();
            branch
                .sel
                .propagate(
                    arr,
                    std::mem::take(&mut sel_pending[i]),
                    &mut budget,
                    &mut stats.sel_pops,
                    &mut sel_dirty,
                )
                .map_err(|Diverged| CircuitError::Diverged)?;
            dirty_members.extend(sel_dirty.into_iter().map(|(_, y)| y));
            if let Some(w) = branch.witness.as_mut() {
                let mut wit_dirty: FastSet<Oid> = FastSet::default();
                w.propagate(
                    arr,
                    std::mem::take(&mut wit_pending[i]),
                    &mut budget,
                    &mut stats.witness_pops,
                    &mut wit_dirty,
                )
                .map_err(|Diverged| CircuitError::Diverged)?;
                dirty_members.extend(wit_dirty);
            }
        }

        // Stage 3: semijoin + distinct. A member needs a live record,
        // positive selection support on some branch, and (on that
        // branch) a positive condition witness.
        let view = &mut self.view;
        let branches = &self.branches;
        let member_deltas = view.sync(dirty_members.iter().copied(), |y| {
            if !arr.contains(y) {
                return 0;
            }
            let ok = branches.iter().any(|b| {
                b.sel.support((), y) > 0
                    && b.witness.as_ref().map(|w| w.witness(y) > 0).unwrap_or(true)
            });
            ok as i64
        });

        // Stage 4: aggregate flow. Membership deltas inject ±1 member
        // sources; the flow's distinct (member, endpoint) pairs drive
        // value recomputation, together with atom changes on held
        // endpoints.
        let mut agg_changed = Vec::new();
        if let Some(agg) = self.agg.as_mut() {
            for &(y, d) in &member_deltas {
                agg.flow.seed(&mut agg_pending, y, y, d);
            }
            let mut dirty_pairs: FastSet<(Oid, Oid)> = FastSet::default();
            agg.flow
                .propagate(
                    arr,
                    std::mem::take(&mut agg_pending),
                    &mut budget,
                    &mut stats.agg_pops,
                    &mut dirty_pairs,
                )
                .map_err(|Diverged| CircuitError::Diverged)?;
            let AggState {
                flow,
                pairs,
                endpoints,
                holders,
                values,
                f,
            } = agg;
            let pair_deltas = pairs.sync(dirty_pairs, |(y, z)| flow.support(y, z));
            let mut dirty_agg: FastSet<Oid> = FastSet::default();
            for ((y, z), d) in pair_deltas {
                if d > 0 {
                    endpoints.entry(y).or_default().insert(z);
                    holders.entry(z).or_default().insert(y);
                } else {
                    if let Some(s) = endpoints.get_mut(&y) {
                        s.remove(&z);
                        if s.is_empty() {
                            endpoints.remove(&y);
                        }
                    }
                    if let Some(s) = holders.get_mut(&z) {
                        s.remove(&y);
                        if s.is_empty() {
                            holders.remove(&z);
                        }
                    }
                }
                dirty_agg.insert(y);
            }
            // A held endpoint's value can change through a surviving
            // modify, or through a remove + re-create in one batch
            // (net-zero edge churn, so no pair delta) — both dirty
            // the holding members.
            for z in events
                .atoms
                .iter()
                .map(|(z, _, _)| *z)
                .chain(events.created.iter().copied())
                .chain(events.removed.iter().map(|(z, _)| *z))
            {
                if let Some(hs) = holders.get(&z) {
                    dirty_agg.extend(hs.iter().copied());
                }
            }
            dirty_agg.extend(member_deltas.iter().map(|&(y, _)| y));
            let view = &self.view;
            for y in dirty_agg {
                let new = if view.contains(y) {
                    let vals: Vec<f64> = endpoints
                        .get(&y)
                        .map(|zs| {
                            zs.iter()
                                .filter_map(|&z| arr.atom(z).and_then(|a| a.as_f64()))
                                .collect()
                        })
                        .unwrap_or_default();
                    Some(f.compute(&vals))
                } else {
                    None
                };
                let old = match new {
                    Some(v) => values.insert(y, v),
                    None => values.remove(&y),
                };
                if old != new {
                    agg_changed.push(y);
                }
            }
        }

        stats.arranged_nodes = self.arr.len();
        stats.arranged_edges = self.arr.edge_len();
        stats.state_entries = self.state_len();
        self.report(&stats);

        let mut out = StepOutput {
            agg_changed,
            stats,
            ..StepOutput::default()
        };
        for (y, d) in member_deltas {
            if d > 0 {
                out.inserted.push(y);
            } else {
                out.deleted.push(y);
            }
        }
        Ok(out)
    }

    /// Total live operator-state entries across all flows.
    pub fn state_len(&self) -> usize {
        self.branches
            .iter()
            .map(|b| {
                b.sel.state_len() + b.witness.as_ref().map(|w| w.state_len()).unwrap_or(0)
            })
            .sum::<usize>()
            + self.agg.as_ref().map(|a| a.flow.state_len()).unwrap_or(0)
    }

    /// Arranged nodes and edges (mirror size).
    pub fn arrangement_size(&self) -> (usize, usize) {
        (self.arr.len(), self.arr.edge_len())
    }

    fn report(&self, stats: &StepStats) {
        let reg = gsview_obs::registry();
        reg.counter("maint.circuit.steps").incr();
        reg.counter("maint.circuit.delta.weight")
            .add(stats.input_weight);
        reg.counter("maint.circuit.operator.expand.pops")
            .add(stats.sel_pops);
        reg.counter("maint.circuit.operator.witness.pops")
            .add(stats.witness_pops);
        reg.counter("maint.circuit.operator.aggregate.pops")
            .add(stats.agg_pops);
        reg.histogram("maint.circuit.arrangement.nodes")
            .record(stats.arranged_nodes as u64);
        reg.histogram("maint.circuit.arrangement.edges")
            .record(stats.arranged_edges as u64);
        reg.histogram("maint.circuit.state.entries")
            .record(stats.state_entries as u64);
    }
}
