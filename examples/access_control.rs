//! Access control through views (paper §1 and §3.1): "a parent may
//! wish to restrict access by his children to a particular subset of
//! Web pages. For this he can define a virtual view that contains the
//! allowed Web pages" — and the authorization system expands user
//! queries with `ANS INT` / `WITHIN` clauses for the union of granted
//! views.
//!
//! ```text
//! cargo run --example access_control
//! ```

use gsview::gsdb::{samples, Oid, Store};
use gsview::query::{evaluate, parse_query, parse_viewdef};
use gsview::views::access::{Authorizer, Enforcement};
use gsview::views::virtualview::define_virtual_view;

fn main() {
    let mut store = Store::new();
    samples::person_db(&mut store).expect("build PERSON");

    // The administrator defines two views: persons named John, and
    // secretaries.
    for def_src in [
        "define view JOHNS as: SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON",
        "define view SECRETARIES as: SELECT ROOT.secretary X",
    ] {
        let def = parse_viewdef(def_src).expect("parse view");
        define_virtual_view(&mut store, &def).expect("define view");
        println!("{def_src}");
        println!(
            "  value({}) = {}",
            def.name,
            store.get(def.name).expect("view object").value
        );
    }

    // An unrestricted query sees everything.
    let q = parse_query("SELECT ROOT.? X").expect("parse");
    let unrestricted = evaluate(&store, &q).expect("evaluate");
    println!("\nunrestricted SELECT ROOT.? X => {:?}", unrestricted.oids);

    // The child account is granted only JOHNS, with ANS INT
    // enforcement (answers filtered, traversal free).
    let mut child = Authorizer::new(vec![Oid::new("JOHNS")], Enforcement::AnsInt);
    let ans = child.run(&mut store, &q).expect("authorized query");
    println!("child (JOHNS, ANS INT)  => {:?}", ans.oids);

    // Granting SECRETARIES widens the result dynamically.
    child.grant(Oid::new("SECRETARIES"));
    let ans = child.run(&mut store, &q).expect("authorized query");
    println!("child (+SECRETARIES)    => {:?}", ans.oids);

    // Revoking shrinks it again — "it is easy to dynamically modify
    // the privilege of a user".
    child.revoke(Oid::new("JOHNS"));
    let ans = child.run(&mut store, &q).expect("authorized query");
    println!("child (SECRETARIES only)=> {:?}", ans.oids);

    // WITHIN enforcement is strict: traversal itself is confined, so a
    // query starting outside the authorized set sees nothing.
    let mut strict = Authorizer::new(vec![Oid::new("JOHNS")], Enforcement::Within);
    let ans = strict.run(&mut store, &q).expect("authorized query");
    println!("strict WITHIN mode      => {:?} (ROOT itself is not granted)", ans.oids);

    // But queries entirely inside the granted region work.
    let q_inside = parse_query("SELECT P1.student X").expect("parse");
    let ans = strict.run(&mut store, &q_inside).expect("authorized query");
    println!("strict, SELECT P1.student X => {:?}", ans.oids);
}
