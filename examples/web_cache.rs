//! The paper's motivating scenario (§1): "a user is interested in all
//! Web pages containing the word 'flower' and would like to copy them
//! to his local disk for faster access ... When the original objects
//! change, the materialized view needs to be updated."
//!
//! We crawl a synthetic web graph, materialize the flower view, stream
//! page edits through the maintainer, and show the local cache staying
//! fresh — including the self-contained (swizzled + stripped) form
//! that can be browsed fully offline.
//!
//! ```text
//! cargo run --example web_cache
//! ```

use gsview::gsdb::{Atom, StoreConfig, Update};
use gsview::query::{CmpOp, PathExpr, Pred};
use gsview::views::{GeneralMaintainer, GeneralViewDef};
use gsview::workload::web::{generate, WebSpec};
use rand::Rng;

fn main() {
    // A 300-page web with skewed linkage; ~20% of pages mention
    // flowers.
    let spec = WebSpec {
        pages: 300,
        out_degree: 3,
        skew: 1.1,
        flower_probability: 0.2,
        seed: 2026,
    };
    let (mut store, web) = generate(spec, StoreConfig::default()).expect("generate web");
    println!(
        "crawled {} pages ({} objects total)",
        web.pages.len(),
        store.len()
    );

    // define mview FLOWERS as:
    //   SELECT WEB.page X WHERE X.text contains 'flower'
    let def = GeneralViewDef::new("FLOWERS", "WEB", PathExpr::parse("page").unwrap()).with_cond(
        PathExpr::parse("text").unwrap(),
        Pred::new(CmpOp::Contains, "flower"),
    );
    let maintainer = GeneralMaintainer::new(def);
    let mut cache = maintainer.recompute(&store).expect("materialize");
    println!("cached {} flowery pages locally", cache.len());

    // The web churns: pages get rewritten.
    let mut rng = gsview::workload::rng::rng(7);
    let mut joined = 0usize;
    let mut left = 0usize;
    for step in 0..200 {
        let page_idx = rng.gen_range(0..web.texts.len());
        let text_oid = web.texts[page_idx];
        let now_flowery = rng.gen_bool(0.3);
        let new_text = if now_flowery {
            format!("rev {step}: fresh flower photos")
        } else {
            format!("rev {step}: nothing to see")
        };
        let update = store
            .apply(Update::Modify {
                oid: text_oid,
                new: Atom::str(&new_text),
            })
            .expect("edit page");
        let outcome = maintainer.apply(&mut cache, &store, &update).expect("maintain");
        joined += outcome.inserted.len();
        left += outcome.deleted.len();
    }
    println!("after 200 page edits: {joined} pages joined the cache, {left} left");
    println!("cache now holds {} pages", cache.len());

    // Make the cache fully self-contained for offline browsing:
    // swizzle intra-cache links, drop dangling ones (paper §3.2's
    // access-control/stand-alone transformation).
    let swizzled = cache.swizzle().expect("swizzle");
    let stripped = cache.strip_base_oids().expect("strip");
    println!("swizzled {swizzled} intra-cache links; dropped {stripped} external links");

    // Verify: every link inside the cache resolves inside the cache.
    let mut intra_links = 0usize;
    for d in cache.members_delegates() {
        for &c in cache.delegate(d).expect("delegate").children() {
            assert!(
                cache.store().contains(c),
                "offline cache must be closed under links"
            );
            intra_links += 1;
        }
    }
    println!("offline cache is closed: {intra_links} internal links all resolve");
}
