//! Aggregate views (§6 open issue) powering a live "dashboard":
//! per-professor average ages and a salary-sum rollup over a person
//! directory, maintained incrementally while the directory churns.
//!
//! ```text
//! cargo run --example aggregate_dashboard
//! ```

use gsview::gsdb::{Atom, StoreConfig, Update};
use gsview::query::{CmpOp, Pred};
use gsview::views::{AggFn, AggregateView, AggregateViewDef, LocalBase, SimpleViewDef};
use gsview::workload::person::{generate, PersonSpec};
use rand::Rng;

fn main() {
    let (mut store, db) = generate(
        PersonSpec {
            persons: 120,
            ..PersonSpec::default()
        },
        StoreConfig::default(),
    )
    .expect("generate directory");
    println!(
        "person directory: {} persons, {} objects",
        db.persons.len(),
        store.len()
    );

    // Dashboard tile 1: average age across professors.
    let avg_age = AggregateViewDef::new(
        SimpleViewDef::new("AVG_AGE", "DIR", "professor"),
        "age",
        AggFn::Avg,
    );
    let mut avg_age = AggregateView::materialize(avg_age, &mut LocalBase::new(&store))
        .expect("materialize avg");

    // Dashboard tile 2: total salary of professors named John.
    let john_payroll = AggregateViewDef::new(
        SimpleViewDef::new("JOHN_PAY", "DIR", "professor")
            .with_cond("name", Pred::new(CmpOp::Eq, "John")),
        "salary",
        AggFn::Sum,
    );
    let mut john_payroll = AggregateView::materialize(john_payroll, &mut LocalBase::new(&store))
        .expect("materialize payroll");

    let show = |tag: &str, avg: &AggregateView, pay: &AggregateView| {
        println!(
            "{tag}: professors={:>3}  avg age={:>5.1}  |  Johns={:>2}  payroll=${:>9.0}",
            avg.members().len(),
            avg.total().unwrap_or(f64::NAN),
            pay.members().len(),
            pay.total().unwrap_or(0.0),
        );
    };
    show("initial ", &avg_age, &john_payroll);

    // HR churn: ages tick, names change, raises happen.
    let mut rng = gsview::workload::rng::rng(99);
    for step in 0..300 {
        let update = match step % 3 {
            0 => {
                let a = db.ages[rng.gen_range(0..db.ages.len())];
                Update::Modify {
                    oid: a,
                    new: Atom::Int(rng.gen_range(18..70i64)),
                }
            }
            1 => {
                let n = db.names[rng.gen_range(0..db.names.len())];
                let name = ["John", "Sally", "Wei", "Priya"][rng.gen_range(0..4usize)];
                Update::Modify {
                    oid: n,
                    new: Atom::str(name),
                }
            }
            _ => {
                // A raise for some professor with a salary.
                let p = db.persons[rng.gen_range(0..db.persons.len())];
                let sal = gsview::gsdb::Oid::new(&format!("{}.salary", p.name()));
                if let Some(Atom::Tagged(unit, v)) = store.atom(sal).cloned() {
                    Update::Modify {
                        oid: sal,
                        new: Atom::Tagged(unit, v + 1000),
                    }
                } else {
                    continue;
                }
            }
        };
        let applied = store.apply(update).expect("valid update");
        avg_age
            .apply(&mut LocalBase::new(&store), &applied)
            .expect("maintain avg");
        john_payroll
            .apply(&mut LocalBase::new(&store), &applied)
            .expect("maintain payroll");
        if (step + 1) % 100 == 0 {
            show(&format!("step {:>4}", step + 1), &avg_age, &john_payroll);
        }
    }

    // Cross-check against from-scratch aggregation.
    let fresh = AggregateView::materialize(
        AggregateViewDef::new(
            SimpleViewDef::new("CHECK", "DIR", "professor")
                .with_cond("name", Pred::new(CmpOp::Eq, "John")),
            "salary",
            AggFn::Sum,
        ),
        &mut LocalBase::new(&store),
    )
    .expect("check");
    assert_eq!(fresh.total(), john_payroll.total(), "incremental == recompute");
    println!("\nincremental aggregates verified against recomputation ✓");
}
