//! A guided tour through every figure and worked example in the paper,
//! printed in the paper's own notation.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```

use gsview::gsdb::{display, samples, Object, Oid, Store};
use gsview::query::{evaluate, parse_query, parse_viewdef, CmpOp, PathExpr, Pred};
use gsview::views::{
    recompute::recompute, virtualview, GeneralMaintainer, GeneralViewDef, LocalBase, Maintainer,
    SimpleViewDef,
};

fn heading(s: &str) {
    println!("\n=== {s} ===\n");
}

fn main() {
    let mut store = Store::new();

    heading("Figure 1: a graph structured database");
    let a = samples::fig1_db(&mut store).expect("fig1");
    print!("{}", display::render(&store, a));

    heading("Figure 2 / Example 2: the PERSON database");
    let root = samples::person_db(&mut store).expect("person");
    print!("{}", display::render(&store, root));

    heading("Section 2: queries and scoping");
    for src in [
        "SELECT ROOT.professor X WHERE X.age > 40",
        "SELECT ROOT.*.name X",
        "SELECT ROOT.professor X WHERE X.salary >= 100000",
    ] {
        let q = parse_query(src).expect("parse");
        let ans = evaluate(&store, &q).expect("evaluate");
        println!("{src}\n  => {:?}", ans.oids);
    }

    heading("Example 3: virtual view VJ (persons named John)");
    let vj = parse_viewdef(
        "define view VJ as: SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON",
    )
    .expect("parse VJ");
    println!("{vj}");
    virtualview::define_virtual_view(&mut store, &vj).expect("define");
    println!(
        "  {}",
        store.get(Oid::new("VJ")).expect("VJ").to_paper_notation()
    );
    let q = parse_query("SELECT ROOT.professor X ANS INT VJ").expect("parse 3.3");
    println!(
        "SELECT ROOT.professor X ANS INT VJ\n  => {:?}",
        evaluate(&store, &q).expect("eval").oids
    );

    heading("Expressions 3.4: views on views (PROF / STUDENT)");
    for src in [
        "define view PROF as: SELECT ROOT.*.professor X",
        "define view STUDENT as: SELECT PROF.?.student X",
    ] {
        let def = parse_viewdef(src).expect("parse");
        virtualview::define_virtual_view(&mut store, &def).expect("define");
        println!(
            "{src}\n  {}",
            store.get(def.name).expect("view").to_paper_notation()
        );
    }

    heading("Figure 3 / Example 4: materialized view MVJ");
    let mvj_def = GeneralViewDef::new("MVJ", "ROOT", PathExpr::parse("*").unwrap()).with_cond(
        PathExpr::parse("name").unwrap(),
        Pred::new(CmpOp::Eq, "John"),
    );
    let mvj = GeneralMaintainer::new(mvj_def).recompute(&store).expect("materialize");
    print!("{}", mvj.render());

    heading("Figure 4 / Examples 5-6: maintaining view YP");
    let yp_def = SimpleViewDef::new("YP", "ROOT", "professor")
        .with_cond("age", Pred::new(CmpOp::Le, 45i64));
    println!("{yp_def}\n");
    let mut yp = recompute(&yp_def, &mut LocalBase::new(&store)).expect("materialize");
    println!("before:\n{}", yp.render());
    store
        .create(Object::atom("A2", "age", 40i64))
        .expect("create A2");
    let m = Maintainer::new(yp_def);
    let up = store
        .insert_edge(Oid::new("P2"), Oid::new("A2"))
        .expect("insert");
    println!("update: {up}");
    m.apply(&mut yp, &mut LocalBase::new(&store), &up).expect("maintain");
    println!("after:\n{}", yp.render());
    let up = store
        .delete_edge(Oid::new("ROOT"), Oid::new("P1"))
        .expect("delete");
    println!("update: {up}");
    m.apply(&mut yp, &mut LocalBase::new(&store), &up).expect("maintain");
    println!("after:\n{}", yp.render());

    heading("Figure 5 / Example 7: the relations database");
    let mut rstore = Store::counting();
    let rel = samples::relations_db(&mut rstore, 3, 2).expect("relations");
    print!("{}", display::render(&rstore, rel));
    let sel_def = SimpleViewDef::new("SEL", "REL", "r.tuple")
        .with_cond("age", Pred::new(CmpOp::Gt, 30i64));
    let m = Maintainer::new(sel_def.clone());
    let mut sel = recompute(&sel_def, &mut LocalBase::new(&rstore)).expect("materialize");
    rstore.create(Object::atom("Anew", "age", 40i64)).expect("A");
    rstore
        .create(Object::set("Tnew", "tuple", &[Oid::new("Anew")]))
        .expect("T");
    rstore.reset_accesses();
    let up = rstore
        .insert_edge(Oid::new("R"), Oid::new("Tnew"))
        .expect("insert tuple");
    let out = m.apply(&mut sel, &mut LocalBase::new(&rstore), &up).expect("maintain");
    println!(
        "insert(R, Tnew): inserted {:?} using {} base accesses",
        out.inserted,
        rstore.accesses()
    );
    rstore.reset_accesses();
    rstore.create(Object::atom("Bnew", "age", 50i64)).expect("B");
    rstore
        .create(Object::set("Unew", "tuple", &[Oid::new("Bnew")]))
        .expect("U");
    rstore.reset_accesses();
    let up = rstore
        .insert_edge(Oid::new("S"), Oid::new("Unew"))
        .expect("insert into s");
    let out = m.apply(&mut sel, &mut LocalBase::new(&rstore), &up).expect("maintain");
    println!(
        "insert(S, Unew): relevant={} — screened out after {} accesses",
        out.relevant,
        rstore.accesses()
    );
}
