//! Quickstart: build the paper's PERSON database, define and
//! materialize a view, and watch Algorithm 1 maintain it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gsview::gsdb::{display, samples, Object, Oid, Store};
use gsview::query::{evaluate, parse_query, CmpOp, Pred};
use gsview::views::{recompute::recompute, LocalBase, Maintainer, SimpleViewDef};

fn main() {
    // 1. Build Example 2's PERSON database.
    let mut store = Store::new();
    let root = samples::person_db(&mut store).expect("build PERSON");
    println!("The PERSON database (paper Figure 2):\n");
    println!("{}", display::render(&store, root));

    // 2. Query it with the paper's language.
    let q = parse_query("SELECT ROOT.professor X WHERE X.age > 40").expect("parse");
    let ans = evaluate(&store, &q).expect("evaluate");
    println!("SELECT ROOT.professor X WHERE X.age > 40  =>  {:?}\n", ans.oids);

    // 3. Define and materialize view YP (Example 5): professors with
    //    age <= 45.
    let def = SimpleViewDef::new("YP", "ROOT", "professor")
        .with_cond("age", Pred::new(CmpOp::Le, 45i64));
    println!("{def}");
    let mut yp = recompute(&def, &mut LocalBase::new(&store)).expect("materialize");
    println!("\nMaterialized view YP:\n{}", yp.render());

    // 4. Update the base: insert(P2, A2) with <A2, age, 40>.
    store
        .create(Object::atom("A2", "age", 40i64))
        .expect("create A2");
    let update = store
        .insert_edge(Oid::new("P2"), Oid::new("A2"))
        .expect("insert edge");
    println!("base update: {update}");

    // 5. Algorithm 1 maintains the view incrementally.
    let maintainer = Maintainer::new(def);
    let outcome = maintainer
        .apply(&mut yp, &mut LocalBase::new(&store), &update)
        .expect("maintain");
    println!(
        "maintenance outcome: relevant={} inserted={:?} deleted={:?}",
        outcome.relevant, outcome.inserted, outcome.deleted
    );
    println!("\nView YP after maintenance (paper Figure 4):\n{}", yp.render());

    // 6. Swizzle edges for local access (paper §3.2). YP's two
    //    members do not reference each other, so nothing rewrites
    //    here; see `examples/web_cache.rs` for swizzling with effect.
    let rewritten = yp.swizzle().expect("swizzle");
    println!("swizzled {rewritten} intra-view edge(s) (YP members share no edges)");
}
