//! The data-warehouse architecture of paper §5 (Figure 6), live:
//! two autonomous sources churn concurrently; their monitors feed the
//! warehouse through a threaded channel integrator; the warehouse
//! maintains one view per source and reports its communication costs
//! under the §5.1/§5.2 query-reduction techniques.
//!
//! ```text
//! cargo run --example warehouse_demo
//! ```

use gsview::gsdb::{Oid, StoreConfig};
use gsview::query::{CmpOp, Pred};
use gsview::views::SimpleViewDef;
use gsview::warehouse::{spawn_channel_integrator, ReportLevel, Source, ViewOptions, Warehouse};
use gsview::workload::{relations, relations_churn, ChurnSpec, RelationsSpec};

fn make_source(name: &str, level: ReportLevel, seed: u64) -> (Source, Vec<gsview::workload::ScriptOp>) {
    let (store, mut db) = relations::generate(
        RelationsSpec {
            relations: 2,
            tuples_per_relation: 500,
            extra_fields: 2,
            age_range: 60,
            seed,
        },
        StoreConfig {
            parent_index: true,
            label_index: true,
            log_updates: true,
            ..StoreConfig::default()
        },
    )
    .expect("generate");
    let script = relations_churn(
        &mut db,
        ChurnSpec {
            ops: 400,
            modify_weight: 2,
            field_modify_weight: 0,
            insert_weight: 1,
            delete_weight: 1,
            target_bias: 0.6,
            age_range: 60,
            seed: seed + 1,
        },
    );
    (Source::new(name, Oid::new("REL"), store, level), script)
}

fn main() {
    // Source alpha reports rich L3 updates; source beta only OIDs.
    let (alpha, alpha_script) = make_source("alpha", ReportLevel::WithPaths, 100);
    let (beta, beta_script) = make_source("beta", ReportLevel::OidsOnly, 200);
    println!("sources: alpha (L3 +paths, cached view), beta (L1 OIDs-only)");

    let mut wh = Warehouse::new();
    wh.connect(&alpha);
    wh.connect(&beta);
    let def = |v: &str| {
        SimpleViewDef::new(v, "REL", "r0.tuple").with_cond("age", Pred::new(CmpOp::Gt, 30i64))
    };
    wh.add_view(
        "alpha",
        def("ALPHA_SEL"),
        ViewOptions {
            use_aux_cache: true,
            label_screening: true,
            ..ViewOptions::default()
        },
    )
    .expect("alpha view");
    wh.add_view("beta", def("BETA_SEL"), ViewOptions::default())
        .expect("beta view");
    wh.meter("alpha").expect("meter").reset();
    wh.meter("beta").expect("meter").reset();

    // Source driver threads churn their stores concurrently; monitor
    // pump threads feed reports into one channel.
    let a2 = alpha.clone();
    let b2 = beta.clone();
    let driver_a = std::thread::spawn(move || {
        for op in &alpha_script {
            a2.with_store(|s| op.replay(s)).expect("alpha op");
        }
    });
    let driver_b = std::thread::spawn(move || {
        for op in &beta_script {
            b2.with_store(|s| op.replay(s)).expect("beta op");
        }
    });
    driver_a.join().expect("alpha driver");
    driver_b.join().expect("beta driver");

    let (rx, pumps) = spawn_channel_integrator(vec![alpha.monitor(), beta.monitor()], 3);
    let mut reports: Vec<_> = rx.iter().collect();
    for p in pumps {
        p.join().expect("pump");
    }
    // Keep per-source order (already sequential per source).
    reports.sort_by_key(|r| (r.source.clone(), r.seq));
    let total = reports.len();
    for r in &reports {
        wh.handle_report(&r.clone()).expect("maintain");
    }
    println!("integrator delivered {total} update reports");

    // Batch delivery can drift (the §5.1 anomaly); reconcile.
    wh.refresh_view(Oid::new("ALPHA_SEL")).expect("refresh");
    wh.refresh_view(Oid::new("BETA_SEL")).expect("refresh");

    for (name, view) in [("alpha", "ALPHA_SEL"), ("beta", "BETA_SEL")] {
        let meter = wh.meter(name).expect("meter");
        let stats = wh.view_stats(Oid::new(view)).expect("stats");
        println!("\nsource {name} / view {view}:");
        println!("  members now      : {}", wh.view(Oid::new(view)).expect("view").len());
        println!("  reports processed: {}", stats.reports);
        println!("  screened out     : {}", stats.screened_out);
        println!("  relevant         : {}", stats.relevant);
        println!(
            "  queries to source: {} ({} messages, {} bytes)",
            meter.queries(),
            meter.messages(),
            meter.bytes()
        );
    }
    let qa = wh.meter("alpha").expect("meter").queries().max(1);
    let qb = wh.meter("beta").expect("meter").queries().max(1);
    println!(
        "\nRich L3 reports + the §5.2 cache + screening cut alpha's query-backs \
         to {:.0}% of beta's. (Batched delivery blunts the cache further — \
         reports arrive after the source has moved on, the §5.1 anomaly; with \
         per-update delivery alpha runs query-free, as `cargo run -p \
         gsview-bench --bin harness -- e5` shows.)",
        100.0 * qa as f64 / qb as f64
    );
}
