//! # gsview — Graph Structured Views and Their Incremental Maintenance
//!
//! A Rust implementation of Zhuge & Garcia-Molina, *Graph Structured
//! Views and Their Incremental Maintenance* (ICDE 1998): views over
//! OEM-style graph structured databases, Algorithm 1 for incremental
//! maintenance of simple materialized views, and the data-warehouse
//! architecture that maintains such views over autonomous sources.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`gsdb`] — the graph structured database substrate (paper §2);
//! * [`query`] — the query/view-definition language (§2–3);
//! * [`views`] — virtual & materialized views and the maintenance
//!   algorithms (§3–4, §6);
//! * [`warehouse`] — the warehousing architecture (§5);
//! * [`serve`] — the async serving tier: the §5 protocol over a real
//!   network boundary (minimal epoll reactor, framed codec,
//!   backpressure and admission control);
//! * [`durable`] — the durable epoch log: content-addressed chunk
//!   segment, CRC-framed manifests, crash-fault injection;
//! * [`relbaseline`] — the relational-flattening comparator (§4.4);
//! * [`workload`] — deterministic synthetic workloads;
//! * [`obs`] — zero-dependency tracing, metrics, and the flight
//!   recorder (spans/events, sharded counters, failure dumps).
//!
//! See `examples/quickstart.rs` for a guided tour and DESIGN.md for
//! the full system inventory.

pub use gsdb;
pub use gsview_query as query;
pub use gsview_core as views;
pub use gsview_durable as durable;
pub use gsview_warehouse as warehouse;
pub use gsview_serve as serve;
pub use gsview_obs as obs;
pub use gsview_relbaseline as relbaseline;
pub use gsview_workload as workload;
