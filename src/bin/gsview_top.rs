//! `gsview-top` — a live console over the serving tier's telemetry
//! stream.
//!
//! Dials a `gsview-serve` server started with telemetry export
//! enabled, subscribes ([`TelemetryTail`]), and renders a refreshing
//! terminal view of what the warehouse stack is doing *right now*:
//!
//! * latency histograms with interpolated p50/p90/p99 (the obs log₂
//!   estimators — the same math the E19/E20 smoke gates use);
//! * counter rates for the interesting groups (`serve.*`,
//!   `warehouse.*`, `circuit.*`, `durable.*`, `obs.*`);
//! * the slowest / error spans from the last batch;
//! * store health polled over the same socket via `Request::Stats`
//!   (epoch, object/edge counts, shard occupancy) — no subscription
//!   needed for that part of the protocol.
//!
//! Usage:
//!
//! ```text
//! gsview-top <host:port> [--ticks N] [--jsonl PATH] [--no-clear]
//! ```
//!
//! `--ticks N` exits after N batches (smoke tests, scripting);
//! `--jsonl PATH` appends every batch as JSON lines for offline
//! analysis; `--no-clear` disables the ANSI clear so output scrolls.

use gsview::serve::{FrameClient, ServedStats, TelemetryTail};
use gsview::obs::telemetry::TelemetryBatch;
use std::collections::BTreeMap;
use std::io::Write;
use std::net::SocketAddr;
use std::time::Duration;

struct Options {
    addr: SocketAddr,
    ticks: Option<u64>,
    jsonl: Option<String>,
    clear: bool,
}

fn usage() -> ! {
    eprintln!("usage: gsview-top <host:port> [--ticks N] [--jsonl PATH] [--no-clear]");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut addr = None;
    let mut ticks = None;
    let mut jsonl = None;
    let mut clear = true;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ticks" => {
                ticks = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--jsonl" => jsonl = Some(args.next().unwrap_or_else(|| usage())),
            "--no-clear" => clear = false,
            "--help" | "-h" => usage(),
            other => {
                if addr.is_some() {
                    usage();
                }
                addr = Some(other.parse().unwrap_or_else(|_| {
                    eprintln!("gsview-top: bad address {other:?}");
                    std::process::exit(2);
                }));
            }
        }
    }
    Options {
        addr: addr.unwrap_or_else(|| usage()),
        ticks,
        jsonl,
        clear,
    }
}

/// Running totals across batches: counters accumulate their deltas,
/// histograms keep the latest cumulative point.
#[derive(Default)]
struct Console {
    seq: u64,
    dropped: u64,
    batches: u64,
    spans_seen: u64,
    counters: BTreeMap<String, (u64, u64)>, // name -> (total, last delta)
    histograms: BTreeMap<String, gsview::obs::telemetry::HistogramPoint>,
}

impl Console {
    fn absorb(&mut self, batch: &TelemetryBatch) {
        self.seq = batch.seq;
        self.dropped = batch.dropped;
        self.batches += 1;
        self.spans_seen += batch.spans.len() as u64;
        for c in &batch.counters {
            let entry = self.counters.entry(c.name.clone()).or_insert((0, 0));
            *entry = (c.total, c.delta);
        }
        for h in &batch.histograms {
            self.histograms.insert(h.name.clone(), h.clone());
        }
    }

    fn render(&self, batch: &TelemetryBatch, stats: Option<&ServedStats>) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "gsview-top — {} (pid {})   batch #{} seq {} dropped {}   spans seen {}\n\n",
            batch.resource.service,
            batch.resource.pid,
            self.batches,
            self.seq,
            self.dropped,
            self.spans_seen,
        ));
        if let Some(s) = stats {
            out.push_str(&format!(
                "store   epoch {}  objects {} ({} sets, {} atoms)  edges {}  fanout mean {:.2} max {}\n",
                s.epoch, s.objects, s.set_objects, s.atomic_objects, s.edges, s.mean_fanout, s.max_fanout
            ));
            if !s.shard_occupancy.is_empty() {
                let occ: Vec<String> = s.shard_occupancy.iter().map(|n| n.to_string()).collect();
                out.push_str(&format!("shards  [{}]\n", occ.join(" ")));
            }
            out.push('\n');
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "{:<36} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
                "histogram", "count", "p50", "p90", "p99", "max"
            ));
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "{:<36} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
                    name, h.count, h.p50, h.p90, h.p99, h.max
                ));
            }
            out.push('\n');
        }
        let groups = ["serve.", "warehouse.", "circuit.", "durable.", "obs."];
        let interesting: Vec<_> = self
            .counters
            .iter()
            .filter(|(name, _)| groups.iter().any(|g| name.starts_with(g)))
            .collect();
        if !interesting.is_empty() {
            out.push_str(&format!(
                "{:<36} {:>12} {:>9}\n",
                "counter", "total", "Δ/batch"
            ));
            for (name, (total, delta)) in interesting {
                out.push_str(&format!("{name:<36} {total:>12} {delta:>9}\n"));
            }
            out.push('\n');
        }
        let mut slow: Vec<_> = batch.spans.iter().collect();
        slow.sort_by_key(|s| std::cmp::Reverse((s.error, s.elapsed_ns)));
        if !slow.is_empty() {
            out.push_str("recent spans (slowest / errors first)\n");
            for s in slow.iter().take(8) {
                out.push_str(&format!(
                    "  {:<28} {:>9} us  trace {:016x}{}\n",
                    s.name,
                    s.elapsed_ns / 1_000,
                    s.trace,
                    if s.error { "  ERROR" } else { "" }
                ));
            }
        }
        out
    }
}

/// One JSON line per batch: enough for offline latency/rate analysis
/// without a protocol decoder.
fn jsonl_line(batch: &TelemetryBatch) -> String {
    let mut line = format!(
        "{{\"seq\":{},\"dropped\":{},\"service\":{:?},\"spans\":{},\"counters\":[",
        batch.seq,
        batch.dropped,
        batch.resource.service,
        batch.spans.len()
    );
    for (i, c) in batch.counters.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!(
            "{{\"name\":{:?},\"delta\":{},\"total\":{}}}",
            c.name, c.delta, c.total
        ));
    }
    line.push_str("],\"histograms\":[");
    for (i, h) in batch.histograms.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!(
            "{{\"name\":{:?},\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            h.name, h.count, h.p50, h.p90, h.p99, h.max
        ));
    }
    line.push_str("]}");
    line
}

fn main() {
    let opts = parse_args();
    let mut tail = match TelemetryTail::connect_with_timeout(opts.addr, Duration::from_secs(5)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gsview-top: subscribe to {} failed: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    // A second, plain connection for store-health polls. Optional: a
    // server at max_conns still streams to the subscription.
    let stats_client = FrameClient::connect_with_timeout(opts.addr, Duration::from_secs(1)).ok();
    let mut sink = opts.jsonl.as_ref().map(|path| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| {
                eprintln!("gsview-top: cannot open {path}: {e}");
                std::process::exit(1);
            })
    });

    let mut console = Console::default();
    let mut shown = 0u64;
    loop {
        let batch = match tail.next_batch() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("gsview-top: stream ended: {e}");
                std::process::exit(1);
            }
        };
        console.absorb(&batch);
        if let Some(sink) = sink.as_mut() {
            if let Err(e) = writeln!(sink, "{}", jsonl_line(&batch)) {
                eprintln!("gsview-top: jsonl sink failed: {e}");
                std::process::exit(1);
            }
        }
        let stats = stats_client.as_ref().and_then(|c| c.stats().ok());
        let mut stdout = std::io::stdout().lock();
        if opts.clear {
            let _ = write!(stdout, "\x1b[2J\x1b[H");
        }
        let _ = write!(stdout, "{}", console.render(&batch, stats.as_ref()));
        let _ = stdout.flush();
        shown += 1;
        if opts.ticks.is_some_and(|t| shown >= t) {
            break;
        }
    }
}
