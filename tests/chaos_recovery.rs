//! Chaos differential properties: the warehouse pipeline must recover
//! from *any* seeded fault scenario.
//!
//! Each case builds a random tree database and a random update stream
//! (the same generator family as `incremental_correctness.rs`), draws
//! a random [`ChaosPolicy`] — report drops, duplicates, delays,
//! reorders, mid-stream L3 → L1 downgrades, query faults — and runs
//! the stream through the chaos harness at **all three report
//! levels**. The harness itself asserts the end state: post-recovery
//! membership equals the fault-free sequential run and the
//! consistency checker is clean. On top of that, these properties pin
//! the mechanism:
//!
//! * every report loss is *detected* (a gap or a tail-loss reconcile),
//!   never silently absorbed;
//! * a view that went `Stale` converges back to `Consistent` within
//!   the resync budget (the harness panics otherwise);
//! * duplicate deliveries are idempotent: dropped by the sequence
//!   tracker before they touch the cache, with no resync needed.
//!
//! Failures print the proptest-shim replay seed; `CHAOS_SEED` (set by
//! the CI chaos matrix) offsets every policy seed so each matrix leg
//! explores a disjoint fault universe while staying replayable.

use gsview::gsdb::{graph, Atom, Object, Oid, Store, StoreConfig, Update};
use gsview::query::{CmpOp, Pred};
use gsview::views::SimpleViewDef;
use gsview::warehouse::chaos::{assert_recovers, ChaosPolicy, ChaosScenario};
use gsview::warehouse::{ReportLevel, RetryPolicy, ViewOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const LABELS: &[&str] = &["a", "b", "c"];
const LEVELS: [ReportLevel; 3] = [
    ReportLevel::OidsOnly,
    ReportLevel::WithValues,
    ReportLevel::WithPaths,
];

/// The CI chaos matrix sets `CHAOS_SEED` to give each leg a disjoint
/// but replayable fault universe; locally it defaults to 0.
fn chaos_seed_offset() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Blueprint for a random tree: for each non-root node, its parent
/// index (into earlier nodes), label index, and atom flag/value.
#[derive(Clone, Debug)]
struct TreeSpec {
    nodes: Vec<(usize, usize, bool, i64)>,
}

fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = TreeSpec> {
    prop::collection::vec(
        (any::<u32>(), 0..LABELS.len(), any::<bool>(), 0..100i64),
        3..max_nodes,
    )
    .prop_map(|raw| TreeSpec {
        nodes: raw
            .iter()
            .enumerate()
            .map(|(i, &(p, l, atom, v))| ((p as usize) % (i + 1), l, atom, v))
            .collect(),
    })
}

fn ops_strategy(max_ops: usize) -> impl Strategy<Value = Vec<(u8, u64)>> {
    prop::collection::vec((0..3u8, any::<u64>()), 2..max_ops)
}

/// Build the tree into a plain store (the harness makes its own
/// logging copy). Returns (store, root, set OIDs, atom OIDs).
fn build(spec: &TreeSpec) -> (Store, Oid, Vec<Oid>, Vec<Oid>) {
    let mut store = Store::with_config(StoreConfig::default());
    let root = Oid::new("croot");
    store.create(Object::empty_set(root.name(), "root")).unwrap();
    let mut sets = vec![root];
    let mut atoms = Vec::new();
    let mut all = vec![root];
    for (i, &(parent, label, is_atom, v)) in spec.nodes.iter().enumerate() {
        let l = LABELS[label];
        let oid = Oid::new(&format!("cn{i}"));
        if is_atom {
            store.create(Object::atom(oid.name(), l, v)).unwrap();
            atoms.push(oid);
        } else {
            store.create(Object::empty_set(oid.name(), l)).unwrap();
            sets.push(oid);
        }
        let mut p = all[parent];
        if store.get(p).map(|o| !o.is_set()).unwrap_or(true) {
            p = root;
        }
        store.insert_edge(p, oid).unwrap();
        all.push(oid);
    }
    (store, root, sets, atoms)
}

/// Plan one op seed into valid updates against a shadow of the
/// evolving state, so the stream exercises real maintenance instead of
/// being skipped. The shadow advances as the plan is built.
fn plan_stream(
    shadow: &mut Store,
    root: Oid,
    sets: &[Oid],
    atoms: &[Oid],
    ops: &[(u8, u64)],
) -> Vec<Update> {
    let mut stream = Vec::new();
    let mut fresh = 0usize;
    for &(kind, seed) in ops {
        let planned: Vec<Update> = match kind {
            0 if !atoms.is_empty() => {
                let a = atoms[(seed as usize) % atoms.len()];
                vec![Update::Modify {
                    oid: a,
                    new: Atom::Int((seed % 100) as i64),
                }]
            }
            1 => {
                let candidates: Vec<(Oid, Oid)> = sets
                    .iter()
                    .filter_map(|&s| {
                        let kids = shadow.get(s)?.children();
                        if kids.is_empty() {
                            None
                        } else {
                            Some((s, kids[(seed as usize) % kids.len()]))
                        }
                    })
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let (p, c) = candidates[(seed as usize) % candidates.len()];
                vec![Update::Delete { parent: p, child: c }]
            }
            _ => {
                let reachable: Vec<Oid> = graph::reachable(shadow, root)
                    .into_iter()
                    .filter(|&o| shadow.get(o).map(|x| x.is_set()).unwrap_or(false))
                    .collect();
                if reachable.is_empty() {
                    continue;
                }
                let target = reachable[(seed as usize) % reachable.len()];
                let l = LABELS[(seed as usize / 7) % LABELS.len()];
                let oid = Oid::new(&format!("cf{fresh}"));
                fresh += 1;
                vec![
                    Update::Create {
                        object: Object::atom(oid.name(), l, (seed % 100) as i64),
                    },
                    Update::Insert {
                        parent: target,
                        child: oid,
                    },
                ]
            }
        };
        for u in planned {
            if shadow.apply(u.clone()).is_ok() {
                stream.push(u);
            }
        }
    }
    stream
}

/// A view definition over the random tree, picked by seed: single- and
/// two-hop select paths, with and without a condition.
fn view_def(seed: u64) -> SimpleViewDef {
    match seed % 3 {
        0 => SimpleViewDef::new("CV", "croot", "a").with_cond("b", Pred::new(CmpOp::Gt, 50i64)),
        1 => SimpleViewDef::new("CV", "croot", "a.b"),
        _ => SimpleViewDef::new("CV", "croot", "b").with_cond("c", Pred::new(CmpOp::Le, 30i64)),
    }
}

/// Draw a full-spectrum fault model from one seed. Probabilities stay
/// moderate so bounded retries/resyncs converge with overwhelming
/// probability; determinism makes the residual risk replayable.
fn random_policy(seed: u64) -> ChaosPolicy {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = |max: f64| (rng.gen::<u64>() % 1000) as f64 / 1000.0 * max;
    ChaosPolicy {
        seed,
        drop_prob: p(0.4),
        dup_prob: p(0.3),
        delay_prob: p(0.3),
        reorder_prob: p(0.3),
        downgrade_prob: p(0.5),
        query_fail_prob: p(0.15),
        query_timeout_prob: p(0.1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The headline property: any workload × any fault mix × every
    /// report level recovers to the fault-free run, losses are always
    /// detected, and staleness always converges.
    #[test]
    fn any_fault_mix_recovers_at_every_level(
        spec in tree_strategy(14),
        ops in ops_strategy(10),
        seed in any::<u64>(),
        cache in any::<bool>(),
    ) {
        let (initial, root, sets, atoms) = build(&spec);
        let mut shadow = initial.clone();
        let updates = plan_stream(&mut shadow, root, &sets, &atoms, &ops);
        let def = view_def(seed);
        let policy = random_policy(seed ^ chaos_seed_offset());
        for level in LEVELS {
            let sc = ChaosScenario {
                level,
                policy,
                options: ViewOptions { use_aux_cache: cache, ..ViewOptions::default() },
                poll_every: 1 + (seed as usize % 3),
                ..ChaosScenario::default()
            };
            let report = assert_recovers(&def, &initial, &updates, &sc);
            // Loss is never silent: a dropped report must surface as a
            // detected gap (mid-stream or via checkpoint reconcile).
            if report.monitor_stats.dropped > 0 {
                prop_assert!(
                    report.gaps_detected > 0,
                    "{} reports dropped at {level} but no gap detected ({:?})",
                    report.monitor_stats.dropped,
                    report.monitor_stats
                );
            }
            // And a detected gap always healed through resync: the
            // harness already guarantees no view is left stale, so a
            // gap implies at least one successful resync.
            if report.gaps_detected > 0 {
                prop_assert!(
                    report.resyncs > 0,
                    "gaps detected at {level} but view never resynced"
                );
            }
            prop_assert!(report.resync_rounds <= sc.max_resync_rounds);
        }
    }

    /// Duplicate deliveries are idempotent: with a duplicate-only
    /// fault model the tracker drops every second copy before it
    /// touches the view or cache — no gaps, no staleness, no resync.
    #[test]
    fn duplicates_are_idempotent(
        spec in tree_strategy(14),
        ops in ops_strategy(10),
        seed in any::<u64>(),
    ) {
        let (initial, root, sets, atoms) = build(&spec);
        let mut shadow = initial.clone();
        let updates = plan_stream(&mut shadow, root, &sets, &atoms, &ops);
        let def = view_def(seed);
        let policy = ChaosPolicy {
            dup_prob: 0.6,
            ..ChaosPolicy::seeded(seed ^ chaos_seed_offset())
        };
        for level in LEVELS {
            let sc = ChaosScenario { level, policy, ..ChaosScenario::default() };
            let report = assert_recovers(&def, &initial, &updates, &sc);
            prop_assert_eq!(
                report.duplicates_dropped, report.monitor_stats.duplicated,
                "every duplicate delivery must be dropped by the tracker at {}", level
            );
            prop_assert_eq!(report.gaps_detected, 0);
            prop_assert_eq!(report.resyncs, 0, "duplicates must not force a resync");
        }
    }

    /// Pure report loss at a fixed rate: the view always converges and
    /// retries are never involved (queries are reliable here), which
    /// isolates the seq-tracker + resync path from the retry path.
    #[test]
    fn pure_loss_heals_without_retries(
        spec in tree_strategy(14),
        ops in ops_strategy(10),
        seed in any::<u64>(),
    ) {
        let (initial, root, sets, atoms) = build(&spec);
        let mut shadow = initial.clone();
        let updates = plan_stream(&mut shadow, root, &sets, &atoms, &ops);
        let def = view_def(seed);
        let sc = ChaosScenario {
            policy: ChaosPolicy::lossy(seed ^ chaos_seed_offset(), 0.3),
            retry: RetryPolicy::none(),
            poll_every: 1,
            ..ChaosScenario::default()
        };
        let report = assert_recovers(&def, &initial, &updates, &sc);
        if report.monitor_stats.dropped > 0 {
            prop_assert!(report.gaps_detected > 0);
        }
        prop_assert_eq!(report.dead_letters, 0, "reliable queries must never dead-letter");
        prop_assert_eq!(report.backoff_ms, 0, "no retries means no backoff latency");
    }
}

/// A dead-lettered query is never silent: every push into the DLQ
/// bumps the global `warehouse.dlq.enter` counter (and every drain
/// bumps `warehouse.dlq.leave`), so observability can account for
/// exactly as many entries as the queue reports. Deltas are used
/// because the counters are process-global and tests run in parallel.
#[test]
fn dead_letters_bump_the_global_dlq_counters() {
    use gsview::warehouse::chaos::run_scenario;

    let enter = gsview::obs::registry().counter("warehouse.dlq.enter");
    let leave = gsview::obs::registry().counter("warehouse.dlq.leave");
    let enter0 = enter.get();
    let leave0 = leave.get();

    // Every query attempt fails and there are no retries, so any
    // maintenance query dead-letters immediately. OidsOnly reports
    // force Algorithm 1 to query the source.
    let mut store = Store::with_config(StoreConfig::default());
    store.create(Object::empty_set("croot", "root")).unwrap();
    store.create(Object::empty_set("cn0", "a")).unwrap();
    store.create(Object::atom("cn1", "b", 60i64)).unwrap();
    store.insert_edge(Oid::new("croot"), Oid::new("cn0")).unwrap();
    store.insert_edge(Oid::new("cn0"), Oid::new("cn1")).unwrap();
    let mut shadow = store.clone();
    let updates = plan_stream(
        &mut shadow,
        Oid::new("croot"),
        &[Oid::new("croot"), Oid::new("cn0")],
        &[Oid::new("cn1")],
        &[(0, 1), (2, 2), (1, 3), (2, 4)],
    );
    let sc = ChaosScenario {
        level: ReportLevel::OidsOnly,
        policy: ChaosPolicy {
            query_fail_prob: 1.0,
            ..ChaosPolicy::seeded(7)
        },
        retry: RetryPolicy::none(),
        poll_every: 1,
        max_resync_rounds: 2,
        ..ChaosScenario::default()
    };
    let report = run_scenario(&SimpleViewDef::new("CV", "croot", "a.b"), &store, &updates, &sc)
        .expect("scenario run failed");

    assert!(report.dead_letters > 0, "scenario must produce dead letters");
    let entered = enter.get() - enter0;
    let left = leave.get() - leave0;
    assert!(
        entered >= report.dead_letters as u64,
        "DLQ counter undercounts: {entered} entered vs {} queued",
        report.dead_letters
    );
    assert!(left <= entered, "cannot drain more letters than entered");
}
