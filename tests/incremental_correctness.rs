//! Property-based correctness of the maintenance algorithms.
//!
//! The paper states (§4.3) that Algorithm 1 keeps the view "consistent
//! with the base data after processing each update" but omits the
//! proof. These properties are the executable substitute: over random
//! tree-structured databases with deliberately colliding labels
//! (non-unique labels are the §4.2 subtlety) and random valid update
//! streams,
//!
//! * the incrementally maintained view equals a from-scratch
//!   recomputation after *every* update;
//! * the relational counting baseline agrees with the native view;
//! * a warehouse maintaining the view from update reports (at every
//!   report level) agrees with local maintenance.

use gsview::gsdb::{Atom, Object, Oid, Path, Store, StoreConfig, Update};
use gsview::query::{CmpOp, Pred};
use gsview::views::{consistency, recompute, LocalBase, Maintainer, SimpleViewDef};
use proptest::prelude::*;

const LABELS: &[&str] = &["a", "b", "c"];

/// Blueprint for a random tree: for each non-root node, its parent
/// index (into earlier nodes), label index, and atom flag/value.
#[derive(Clone, Debug)]
struct TreeSpec {
    nodes: Vec<(usize, usize, bool, i64)>,
}

fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = TreeSpec> {
    prop::collection::vec(
        (any::<u32>(), 0..LABELS.len(), any::<bool>(), 0..100i64),
        3..max_nodes,
    )
    .prop_map(|raw| TreeSpec {
        nodes: raw
            .iter()
            .enumerate()
            .map(|(i, &(p, l, atom, v))| ((p as usize) % (i + 1), l, atom, v))
            .collect(),
    })
}

/// Op seeds, interpreted against live state so every op is valid.
fn ops_strategy(max_ops: usize) -> impl Strategy<Value = Vec<(u8, u64)>> {
    prop::collection::vec((0..3u8, any::<u64>()), 1..max_ops)
}

/// Build the tree into a store. Node ids: `pn{i}` (set) / `pa{i}`
/// (atom), root `proot`. Returns (root, set-node OIDs, atom OIDs).
fn build(spec: &TreeSpec, salt: &str, cfg: StoreConfig) -> (Store, Oid, Vec<Oid>, Vec<Oid>) {
    let mut store = Store::with_config(cfg);
    let root = Oid::new(&format!("{salt}root"));
    store.create(Object::empty_set(root.name(), "root")).unwrap();
    let mut sets = vec![root];
    let mut atoms = Vec::new();
    let mut all = vec![root];
    for (i, &(parent, label, is_atom, v)) in spec.nodes.iter().enumerate() {
        let l = LABELS[label];
        let oid = Oid::new(&format!("{salt}n{i}"));
        if is_atom {
            store.create(Object::atom(oid.name(), l, v)).unwrap();
            atoms.push(oid);
        } else {
            store.create(Object::empty_set(oid.name(), l)).unwrap();
            sets.push(oid);
        }
        // Attach under an earlier *set* node: walk back from the
        // requested parent until a set node is found (root is one).
        let mut p = all[parent];
        if store.get(p).map(|o| !o.is_set()).unwrap_or(true) {
            p = root;
        }
        store.insert_edge(p, oid).unwrap();
        all.push(oid);
    }
    (store, root, sets, atoms)
}

/// Plan one op seed as valid basic updates against the *current*
/// state (a fresh-atom attach plans a Create followed by an Insert),
/// preserving the tree invariant. The caller applies and maintains
/// them one at a time — the paper's triggering discipline ("the
/// algorithm uses the base databases right after the triggering
/// update and before any further updates", §4.3).
fn plan(
    store: &Store,
    root: Oid,
    sets: &[Oid],
    atoms: &[Oid],
    fresh_counter: &mut usize,
    salt: &str,
    op: (u8, u64),
) -> Vec<Update> {
    let (kind, seed) = op;
    match kind {
        0 if !atoms.is_empty() => {
            let a = atoms[(seed as usize) % atoms.len()];
            vec![Update::Modify {
                oid: a,
                new: Atom::Int((seed % 100) as i64),
            }]
        }
        1 => {
            // Delete a random existing edge (any parent with children).
            let candidates: Vec<(Oid, Oid)> = sets
                .iter()
                .filter_map(|&s| {
                    let kids = store.get(s)?.children();
                    if kids.is_empty() {
                        None
                    } else {
                        Some((s, kids[(seed as usize) % kids.len()]))
                    }
                })
                .collect();
            if candidates.is_empty() {
                return Vec::new();
            }
            let (p, c) = candidates[(seed as usize) % candidates.len()];
            vec![Update::Delete { parent: p, child: c }]
        }
        _ => {
            // Attach a fresh atom under a random reachable set node.
            let reachable: Vec<Oid> = gsview::gsdb::graph::reachable(store, root)
                .into_iter()
                .filter(|&o| store.get(o).map(|x| x.is_set()).unwrap_or(false))
                .collect();
            let target = reachable[(seed as usize) % reachable.len()];
            let l = LABELS[(seed as usize / 7) % LABELS.len()];
            let oid = Oid::new(&format!("{salt}f{}", *fresh_counter));
            *fresh_counter += 1;
            vec![
                Update::Create {
                    object: Object::atom(oid.name(), l, (seed % 100) as i64),
                },
                Update::Insert {
                    parent: target,
                    child: oid,
                },
            ]
        }
    }
}

fn view_defs(salt: &str) -> Vec<SimpleViewDef> {
    let root = format!("{salt}root");
    vec![
        SimpleViewDef::new(format!("{salt}V1").as_str(), root.as_str(), "a")
            .with_cond("b", Pred::new(CmpOp::Gt, 50i64)),
        SimpleViewDef::new(format!("{salt}V2").as_str(), root.as_str(), "a.b"),
        SimpleViewDef::new(format!("{salt}V3").as_str(), root.as_str(), "b")
            .with_cond("a.c", Pred::new(CmpOp::Le, 30i64)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Algorithm 1 ≡ recomputation, after every update, for several
    /// view shapes, including label collisions and multi-witness
    /// conditions.
    #[test]
    fn incremental_equals_recompute(spec in tree_strategy(28), ops in ops_strategy(25), salt in 0u32..1_000_000) {
        let salt = format!("ic{salt}_");
        let (mut store, root, sets, atoms) = build(&spec, &salt, StoreConfig::default());
        let defs = view_defs(&salt);
        let mut views: Vec<_> = defs
            .iter()
            .map(|d| {
                (
                    Maintainer::new(d.clone()),
                    recompute::recompute(d, &mut LocalBase::new(&store)).unwrap(),
                )
            })
            .collect();
        let mut fresh = 0usize;
        for op in ops {
            for update in plan(&store, root, &sets, &atoms, &mut fresh, &salt, op) {
            let Ok(applied) = store.apply(update) else { continue };
            for (m, mv) in &mut views {
                m.apply(mv, &mut LocalBase::new(&store), &applied).unwrap();
                let expected = recompute::recompute_members(m.def(), &mut LocalBase::new(&store));
                prop_assert_eq!(
                    mv.members_base(),
                    expected,
                    "view {} diverged after {}",
                    m.def().view,
                    applied
                );
                let problems = consistency::check(m.def(), &mut LocalBase::new(&store), mv);
                prop_assert!(problems.is_empty(), "inconsistencies: {:?}", problems);
            }
            }
        }
    }

    /// Native Algorithm 1 ≡ relational counting baseline across the
    /// same stream.
    #[test]
    fn relational_baseline_agrees(spec in tree_strategy(24), ops in ops_strategy(20), salt in 0u32..1_000_000) {
        use gsview::relbaseline::{RelDb, RelView, RelViewDef};
        let salt = format!("rb{salt}_");
        let (mut store, root, sets, atoms) = build(&spec, &salt, StoreConfig::default());
        let def = SimpleViewDef::new(
            format!("{salt}V").as_str(),
            format!("{salt}root").as_str(),
            "a",
        )
        .with_cond("b", Pred::new(CmpOp::Gt, 50i64));
        let m = Maintainer::new(def.clone());
        let mut mv = recompute::recompute(&def, &mut LocalBase::new(&store)).unwrap();
        let mut reldb = RelDb::encode(&store);
        let reldef = RelViewDef::new(
            root,
            &Path::parse("a"),
            &Path::parse("b"),
            Some(Pred::new(CmpOp::Gt, 50i64)),
        );
        let mut relview = RelView::recompute(&reldef, &reldb);
        let mut fresh = 0usize;
        for op in ops {
            for update in plan(&store, root, &sets, &atoms, &mut fresh, &salt, op) {
                let Ok(applied) = store.apply(update) else { continue };
                if let gsview::gsdb::AppliedUpdate::Create { oid } = &applied {
                    let obj = store.get(*oid).unwrap().clone();
                    reldb.register_object(&obj);
                    continue;
                }
                m.apply(&mut mv, &mut LocalBase::new(&store), &applied).unwrap();
                for delta in reldb.apply_update(&applied) {
                    relview.propagate(&reldef, &reldb, &delta);
                }
                prop_assert_eq!(
                    mv.members_base(),
                    relview.members(),
                    "relational baseline diverged after {}",
                    applied
                );
            }
        }
    }
}

/// Warehouse maintenance (per report level, with and without cache)
/// agrees with local maintenance across a deterministic mixed stream.
/// Kept deterministic (not proptest) because sources are stateful and
/// the stream already covers all update kinds.
#[test]
fn warehouse_agrees_with_local_at_all_levels() {
    use gsview::warehouse::{ReportLevel, Source, ViewOptions, Warehouse};
    use gsview::workload::{relations, relations_churn, ChurnSpec, RelationsSpec};

    for level in [
        ReportLevel::OidsOnly,
        ReportLevel::WithValues,
        ReportLevel::WithPaths,
    ] {
        for cached in [false, true] {
            if cached && level == ReportLevel::OidsOnly {
                continue; // cache upkeep assumes L2+ reports
            }
            let spec = RelationsSpec {
                relations: 2,
                tuples_per_relation: 40,
                extra_fields: 1,
                age_range: 60,
                seed: 71,
            };
            let (store, mut db) = relations::generate(
                spec,
                StoreConfig {
                    parent_index: true,
                    label_index: true,
                    log_updates: true,
                    ..StoreConfig::default()
                },
            )
            .unwrap();
            let source = Source::new("rels", Oid::new("REL"), store, level);
            let script = relations_churn(
                &mut db,
                ChurnSpec {
                    ops: 120,
                    modify_weight: 2,
                    field_modify_weight: 0,
                    insert_weight: 1,
                    delete_weight: 1,
                    target_bias: 0.6,
                    age_range: 60,
                    seed: 72,
                },
            );
            let def = SimpleViewDef::new("SEL", "REL", "r0.tuple")
                .with_cond("age", Pred::new(CmpOp::Gt, 30i64));
            let mut wh = Warehouse::new();
            wh.connect(&source);
            wh.add_view(
                "rels",
                def.clone(),
                ViewOptions {
                    use_aux_cache: cached,
                    label_screening: level >= ReportLevel::WithValues,
                    ..ViewOptions::default()
                },
            )
            .unwrap();
            for op in &script {
                source.with_store(|s| op.replay(s)).unwrap();
                for report in source.monitor().poll() {
                    wh.handle_report(&report).unwrap();
                }
                let expected = source.with_store(|s| {
                    recompute::recompute_members(&def, &mut LocalBase::new(s))
                });
                assert_eq!(
                    wh.view(Oid::new("SEL")).unwrap().members_base(),
                    expected,
                    "warehouse diverged at level {level} cached={cached}"
                );
            }
        }
    }
}

/// Delegate values track base values modulo swizzling, even across
/// membership churn with swizzled views.
#[test]
fn swizzled_views_survive_maintenance() {
    let mut store = Store::new();
    gsview::gsdb::samples::person_db(&mut store).unwrap();
    let def = SimpleViewDef::new("SW", "ROOT", "professor")
        .with_cond("age", Pred::new(CmpOp::Le, 45i64));
    let m = Maintainer::new(def.clone());
    let mut mv = recompute::recompute(&def, &mut LocalBase::new(&store)).unwrap();
    mv.swizzle().unwrap();
    // P2 joins, P1 leaves, P1 returns.
    store.create(Object::atom("A2x", "age", 40i64)).unwrap();
    let ups = vec![
        Update::insert("P2", "A2x"),
        Update::modify("A1", 99i64),
        Update::modify("A1", 10i64),
    ];
    for u in ups {
        let applied = store.apply(u).unwrap();
        m.apply(&mut mv, &mut LocalBase::new(&store), &applied).unwrap();
        mv.swizzle().unwrap();
        let problems = consistency::check(&def, &mut LocalBase::new(&store), &mv);
        assert!(problems.is_empty(), "{problems:?}");
    }
    assert_eq!(mv.members_base(), vec![Oid::new("P1"), Oid::new("P2")]);
}

/// Atom sanity: modifications round-trip through the whole stack.
#[test]
fn atom_modification_roundtrip() {
    let mut store = Store::new();
    store
        .create(Object::atom("x", "v", Atom::tagged("dollar", 7)))
        .unwrap();
    let up = store.modify_atom(Oid::new("x"), Atom::str("now a string")).unwrap();
    match up {
        gsview::gsdb::AppliedUpdate::Modify { old, new, .. } => {
            assert_eq!(old, Atom::tagged("dollar", 7));
            assert_eq!(new, Atom::str("now a string"));
        }
        other => panic!("unexpected {other:?}"),
    }
}
