//! Serving-tier end-to-end (networking tentpole): the §5 protocol
//! over a real TCP boundary, checked three ways —
//!
//! 1. **Networked equivalence** — every query shape answered over the
//!    wire must equal the colocated evaluation of the same epoch
//!    snapshot (writers quiesced), via the `gsview-core` oracle.
//! 2. **Admission control** — past `max_conns` the server sheds with
//!    a `Busy` frame (or queues, in `Queue` mode); shed clients see
//!    the `Overloaded` fault, queued clients get served when a slot
//!    frees.
//! 3. **Pipelined backpressure** — a client that fires a burst of
//!    requests without reading still gets every reply, in order, with
//!    the per-connection in-flight window doing the pacing.

use gsview::gsdb::{samples, Oid, Path, Update};
use gsview::serve::{
    encode_frame, Admission, FrameClient, FrameDecoder, Reply, Request, RequestBody,
    ServeConfig, Server, SourceService, DEFAULT_MAX_FRAME,
};
use gsview::views::assert_networked_equivalence;
use gsview::warehouse::{answer, CostMeter, ReportLevel, Source, SourceQuery};
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

fn oid(s: &str) -> Oid {
    Oid::new(s)
}

fn person_source() -> Source {
    let src = Source::empty("persons", oid("ROOT"), ReportLevel::WithValues);
    src.with_store(|s| samples::person_db(s).map(|_| ()))
        .unwrap();
    src.with_store(|s| {
        s.drain_log();
    });
    src
}

fn spawn_server(src: &Source, cfg: ServeConfig) -> gsview::serve::ServerHandle {
    let svc = Arc::new(SourceService::new(src.clone(), Arc::new(CostMeter::new())));
    Server::spawn(svc, cfg).unwrap()
}

/// Every query shape, remote vs colocated, on a quiesced source:
/// byte-identical protocol semantics across the network boundary.
#[test]
fn remote_answers_equal_colocated_answers() {
    let src = person_source();
    // Mutate a little first so the snapshot is not the pristine sample.
    src.apply(Update::modify("A1", 39i64)).unwrap();
    src.with_store(|s| {
        s.create(gsview::gsdb::Object::atom("A2", "age", 40i64))
            .unwrap();
    });
    src.apply(Update::insert("P2", "A2")).unwrap();

    let server = spawn_server(&src, ServeConfig::default());
    let client = FrameClient::connect(server.addr()).unwrap();

    // Writers quiesced: remote and colocated must observe one epoch.
    let snapshot = src.snapshot();
    let queries = vec![
        SourceQuery::Fetch(oid("P1")),
        SourceQuery::Fetch(oid("NOPE")),
        SourceQuery::PathFromRoot {
            root: oid("ROOT"),
            n: oid("A2"),
        },
        SourceQuery::Ancestor {
            n: oid("A1"),
            p: Path::parse("professor.age"),
        },
        SourceQuery::AncestorsAll {
            n: oid("A2"),
            p: Path::parse("professor.age"),
        },
        SourceQuery::Reach {
            n: oid("ROOT"),
            p: Path::parse("professor.age"),
        },
        SourceQuery::Reach {
            n: oid("P1"),
            p: Path::parse("student"),
        },
        SourceQuery::LabelOf(oid("P2")),
        SourceQuery::LabelOf(oid("NOPE")),
    ];
    assert_networked_equivalence(
        &queries,
        |q| {
            use gsview::warehouse::QueryPort;
            client.query(q).expect("healthy network")
        },
        |q| answer(&snapshot, q),
    );
    assert_eq!(client.epoch().unwrap(), src.epoch());
    server.shutdown();
}

/// Shed mode: with `max_conns` held open, further arrivals get a
/// `Busy` frame and the `Overloaded` fault, counted in obs.
#[test]
fn admission_sheds_beyond_the_connection_limit() {
    let src = person_source();
    let server = spawn_server(
        &src,
        ServeConfig {
            max_conns: 2,
            admission: Admission::Shed,
            ..ServeConfig::default()
        },
    );
    let reg = gsview_obs::registry();
    let shed_before = reg.snapshot().counter("serve.admission.shed");

    // Fill both slots (each holds its connection open).
    let held: Vec<FrameClient> = (0..2)
        .map(|_| FrameClient::connect(server.addr()).unwrap())
        .collect();
    for c in &held {
        assert!(c.ping().is_ok());
    }

    // Everyone else is shed at admission.
    let mut shed_count = 0;
    for _ in 0..6 {
        match FrameClient::connect_with_timeout(server.addr(), Duration::from_millis(500)) {
            Err(e) => {
                assert_eq!(e.kind(), std::io::ErrorKind::ConnectionRefused);
                shed_count += 1;
            }
            Ok(_) => panic!("connection admitted past max_conns"),
        }
    }
    assert_eq!(shed_count, 6);
    assert_eq!(
        reg.snapshot().counter("serve.admission.shed") - shed_before,
        6,
        "every refusal is counted"
    );

    // Held connections still work; freeing one admits the next (the
    // server needs a beat to observe the closes, so retry briefly).
    assert!(held[0].ping().is_ok());
    drop(held);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let late = loop {
        match FrameClient::connect(server.addr()) {
            Ok(c) => break c,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("freed slot never became admittable: {e}"),
        }
    };
    assert!(late.ping().is_ok());
    server.shutdown();
}

/// Queue mode: an arrival past the limit parks (no service, no
/// refusal) and is admitted the moment a slot frees.
#[test]
fn admission_queues_and_admits_when_a_slot_frees() {
    let src = person_source();
    let server = spawn_server(
        &src,
        ServeConfig {
            max_conns: 1,
            admission: Admission::Queue,
            ..ServeConfig::default()
        },
    );
    let reg = gsview_obs::registry();
    let queued_before = reg.snapshot().counter("serve.admission.queued");

    let first = FrameClient::connect(server.addr()).unwrap();
    assert!(first.ping().is_ok());

    // The second connection parks: its handshake blocks until `first`
    // goes away, then completes.
    let addr = server.addr();
    let waiter = std::thread::spawn(move || {
        FrameClient::connect_with_timeout(addr, Duration::from_secs(5))
    });
    // Give the waiter time to land in the parked queue, then free up.
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(
        reg.snapshot().counter("serve.admission.queued") - queued_before,
        1,
        "the second arrival parked"
    );
    drop(first);
    let second = waiter.join().unwrap().expect("queued connection admitted");
    assert!(second.ping().is_ok());
    server.shutdown();
}

/// A pipelined burst: 100 requests written before any reply is read.
/// The in-flight window (4) paces the server; the client still gets
/// all 100 replies, in order, ids intact.
#[test]
fn pipelined_burst_drains_through_the_in_flight_window() {
    let src = person_source();
    let server = spawn_server(
        &src,
        ServeConfig {
            max_in_flight: 4,
            ..ServeConfig::default()
        },
    );
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    const BURST: u64 = 100;
    let mut bytes = Vec::new();
    for id in 1..=BURST {
        bytes.extend_from_slice(&encode_frame(
            &Request {
                id,
                trace: 0,
                span: 0,
                body: RequestBody::Epoch,
            }
            .encode(),
        ));
    }
    stream.write_all(&bytes).unwrap();

    let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME);
    let mut buf = [0u8; 4096];
    let mut next_id = 1;
    while next_id <= BURST {
        if let Some(payload) = decoder.next_frame().unwrap() {
            let reply = Reply::decode(&payload).unwrap();
            assert_eq!(reply.id, next_id, "replies must come back in order");
            next_id += 1;
            continue;
        }
        let n = stream.read(&mut buf).unwrap();
        assert_ne!(n, 0, "server hung up mid-burst");
        decoder.extend(&buf[..n]);
    }
    server.shutdown();
}
