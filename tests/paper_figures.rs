//! Executable reproductions of the paper's figures: every figure is
//! rebuilt exactly as printed and its stated properties asserted.

use gsview::gsdb::{self, display, graph, path, samples, Atom, Oid, Path, Store};
use gsview::query::{evaluate, parse_query};

fn oid(s: &str) -> Oid {
    Oid::new(s)
}

/// Figure 1: the abstract GSDB with objects A–G and a dotted "view"
/// region {B, C}.
#[test]
fn figure_1_graph_and_view_region() {
    let mut store = Store::new();
    let a = samples::fig1_db(&mut store).unwrap();
    assert_eq!(store.len(), 7);
    // Users traverse by starting from an object and following edges.
    let reached = graph::reachable(&store, a);
    assert_eq!(reached.len(), 7);
    // The dotted region {B, C}: B's value still contains the pointer
    // to D — the paper's point that "the user could anyway retrieve
    // the contents of B which somewhere contains the C, D pointers".
    let b = store.get(oid("B")).unwrap();
    assert!(b.children().contains(&oid("C")));
    assert!(b.children().contains(&oid("D")));
}

/// Figure 2 / Example 2: the PERSON database, rendered in the paper's
/// angle-bracket notation.
#[test]
fn figure_2_person_database() {
    let mut store = Store::new();
    let root = samples::person_db(&mut store).unwrap();
    let text = display::render(&store, root);
    // Spot-check the paper's printed lines.
    assert!(text.contains("< N1, name, string, 'John' >"));
    assert!(text.contains("< A1, age, integer, 45 >"));
    assert!(text.contains("< S1, salary, dollar, dollar 100000 >"));
    assert!(text.contains("< M3, major, string, 'education' >"));
    assert!(text.contains("< N4, name, string, 'Tom' >"));
    // label(P2) = professor and value(P2) = {N2, ADD2} (§2 text).
    let p2 = store.get(oid("P2")).unwrap();
    assert_eq!(p2.label.as_str(), "professor");
    assert_eq!(p2.children().len(), 2);
    // A1 ∈ ROOT.professor.age (§2).
    assert!(path::reach(&store, root, &Path::parse("professor.age")).contains(&oid("A1")));
    // The PERSON database object groups all 15 objects.
    let person = store.get(oid("PERSON")).unwrap();
    assert_eq!(person.children().len(), 15);
    assert_eq!(person.label.as_str(), "database");
}

/// Figure 3 / Example 4: the materialized view MVJ with delegates
/// MVJ.P1 and MVJ.P3.
#[test]
fn figure_3_materialized_view_mvj() {
    use gsview::views::{GeneralMaintainer, GeneralViewDef};
    use gsview::query::{CmpOp, PathExpr, Pred};

    let mut store = Store::new();
    samples::person_db(&mut store).unwrap();
    let def = GeneralViewDef::new("MVJ", "ROOT", PathExpr::parse("*").unwrap()).with_cond(
        PathExpr::parse("name").unwrap(),
        Pred::new(CmpOp::Eq, "John"),
    );
    let mv = GeneralMaintainer::new(def).recompute(&store).unwrap();
    // Exactly the two delegates of Figure 3.
    assert_eq!(mv.members_base(), vec![oid("P1"), oid("P3")]);
    let p1d = mv.delegate_of(oid("P1")).unwrap();
    assert_eq!(p1d.name(), "MVJ.P1");
    // <MVJ.P1, professor, {N1,A1,S1,P3}> — base OIDs inside the value.
    let obj = mv.delegate(p1d).unwrap();
    assert_eq!(obj.label.as_str(), "professor");
    for c in ["N1", "A1", "S1", "P3"] {
        assert!(obj.children().contains(&oid(c)), "{c} missing");
    }
    // The rendering shows the view object with both delegates.
    let text = mv.render();
    assert!(text.contains("MVJ.P1"));
    assert!(text.contains("MVJ.P3"));
}

/// Figure 4 / Example 5: view YP before and after insert(P2, A2).
#[test]
fn figure_4_yp_change() {
    use gsview::views::{recompute::recompute, LocalBase, Maintainer, SimpleViewDef};
    use gsview::query::{CmpOp, Pred};

    let mut store = Store::new();
    samples::person_db(&mut store).unwrap();
    let def = SimpleViewDef::new("YP", "ROOT", "professor")
        .with_cond("age", Pred::new(CmpOp::Le, 45i64));
    let mut yp = recompute(&def, &mut LocalBase::new(&store)).unwrap();
    // Left-hand side of Figure 4: {YP.P1} only.
    assert_eq!(yp.members_delegates().len(), 1);
    assert_eq!(yp.members_delegates()[0].name(), "YP.P1");

    // insert(P2, A2) with <A2, age, 40>.
    store
        .create(gsdb::Object::atom("A2", "age", 40i64))
        .unwrap();
    let up = store.insert_edge(oid("P2"), oid("A2")).unwrap();
    Maintainer::new(def)
        .apply(&mut yp, &mut LocalBase::new(&store), &up)
        .unwrap();
    // Right-hand side of Figure 4: {YP.P1, YP.P2}.
    let delegates: Vec<&str> = yp.members_delegates().iter().map(|d| d.name()).collect();
    assert_eq!(delegates, vec!["YP.P1", "YP.P2"]);
    // The new delegate copies P2's value {N2, ADD2, A2}.
    let p2d = yp.delegate(oid("YP.P2")).unwrap();
    assert_eq!(p2d.children().len(), 3);
}

/// Figure 5 / Example 7: the relational-shaped GSDB.
#[test]
fn figure_5_relations_database() {
    let mut store = Store::new();
    let rel = samples::relations_db(&mut store, 4, 3).unwrap();
    assert_eq!(store.label(rel).unwrap().as_str(), "relations");
    let tuples = path::reach(&store, rel, &Path::parse("r.tuple"));
    assert_eq!(tuples.len(), 4);
    // <A, age, 40>-style leaves under tuples.
    let ages = path::reach(&store, rel, &Path::parse("r.tuple.age"));
    assert_eq!(ages.len(), 4);
    assert!(matches!(store.atom(ages[0]), Some(Atom::Int(_))));
    // The paper's query shape works against it.
    let q = parse_query("SELECT REL.r.tuple X WHERE X.age > 30").unwrap();
    let ans = evaluate(&store, &q).unwrap();
    assert!(ans.oids.is_empty(), "generated ages are 10..14");
}

/// Figure 6: the warehousing architecture — sources export reports and
/// answer queries; the warehouse alone knows the view definitions.
#[test]
fn figure_6_warehouse_architecture() {
    use gsview::query::{CmpOp, Pred};
    use gsview::views::SimpleViewDef;
    use gsview::warehouse::{Integrator, ReportLevel, Source, ViewOptions, Warehouse};

    // Two autonomous sources.
    let s1 = Source::empty("src1", oid("ROOT"), ReportLevel::WithValues);
    s1.with_store(|s| samples::person_db(s).map(|_| ())).unwrap();
    s1.with_store(|s| {
        s.drain_log();
    });
    let s2 = Source::empty("src2", oid("REL"), ReportLevel::WithValues);
    s2.with_store(|s| samples::relations_db(s, 3, 2).map(|_| ()))
        .unwrap();
    s2.with_store(|s| {
        s.drain_log();
    });

    let mut wh = Warehouse::new();
    wh.connect(&s1);
    wh.connect(&s2);
    wh.add_view(
        "src1",
        SimpleViewDef::new("YP", "ROOT", "professor")
            .with_cond("age", Pred::new(CmpOp::Le, 45i64)),
        ViewOptions::default(),
    )
    .unwrap();
    wh.add_view(
        "src2",
        SimpleViewDef::new("SEL", "REL", "r.tuple")
            .with_cond("age", Pred::new(CmpOp::Gt, 30i64)),
        ViewOptions::default(),
    )
    .unwrap();

    let mut integrator = Integrator::new();
    integrator.register(s1.monitor());
    integrator.register(s2.monitor());

    // Updates at both sources flow through the integrator.
    s1.apply(gsdb::Update::modify("A1", 80i64)).unwrap();
    s2.with_store(|s| s.create(gsdb::Object::atom("Anew", "age", 44i64)))
        .unwrap();
    s2.apply(gsdb::Update::insert("T1", "Anew")).unwrap();
    for report in integrator.poll() {
        wh.handle_report(&report).unwrap();
    }
    assert!(wh.view(oid("YP")).unwrap().is_empty(), "P1 aged out");
    assert_eq!(
        wh.view(oid("SEL")).unwrap().members_base(),
        vec![oid("T1")],
        "T1 gained a qualifying age"
    );
}
