//! Flight-recorder end-to-end: a forced recovery failure must leave a
//! usable crash dump.
//!
//! The scenario drives the real chaos pipeline (source commits,
//! warehouse report handling, Algorithm 1 maintenance) with the
//! flight recorder installed, then forces the recovery invariant to
//! fail by giving the warehouse a zero resync budget under report
//! loss. `assert_recovers` routes the failure through
//! `gsview_obs::failure`, which dumps the ring: the dump must contain
//! the whole causal chain — report handling span, the maintenance
//! span parented inside it, and the source store mutations — plus a
//! schema-valid JSON-lines file at `OBS_DUMP_PATH`.

use gsview::gsdb::{Atom, Object, Oid, Store, StoreConfig, Update};
use gsview::obs;
use gsview::views::SimpleViewDef;
use gsview::warehouse::chaos::{assert_recovers, ChaosPolicy, ChaosScenario};
use gsview::warehouse::ReportLevel;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn mini_store() -> Store {
    let mut store = Store::with_config(StoreConfig::default());
    store.create(Object::empty_set("croot", "root")).unwrap();
    store.create(Object::empty_set("cn0", "a")).unwrap();
    store.create(Object::atom("cn1", "b", 60i64)).unwrap();
    store.insert_edge(Oid::new("croot"), Oid::new("cn0")).unwrap();
    store.insert_edge(Oid::new("cn0"), Oid::new("cn1")).unwrap();
    store
}

fn update_stream() -> Vec<Update> {
    let mut ops = Vec::new();
    for i in 0..8 {
        let oid = Oid::new(&format!("fr{i}"));
        ops.push(Update::Create {
            object: Object::atom(oid.name(), "b", 10 + i as i64),
        });
        ops.push(Update::Insert {
            parent: Oid::new("cn0"),
            child: oid,
        });
    }
    ops.push(Update::Modify {
        oid: Oid::new("cn1"),
        new: Atom::Int(99),
    });
    ops
}

#[test]
fn forced_failure_dumps_span_chain_and_valid_json() {
    let dump_path = std::env::temp_dir().join(format!(
        "gsview_flight_recorder_{}.jsonl",
        std::process::id()
    ));
    std::env::set_var("OBS_DUMP_PATH", &dump_path);
    let recorder = Arc::new(obs::FlightRecorder::with_capacity(8192));
    let _guard = obs::install(recorder.clone());
    // Seed one histogram so the dump's quantile table has a row even
    // in this counter-only scenario.
    for v in [120u64, 340, 2700] {
        obs::registry().histogram("test.failure.lat_us").record(v);
    }

    // Report loss with a zero resync budget: gaps are detected, the
    // view goes permanently stale, and assert_recovers must fail.
    let sc = ChaosScenario {
        level: ReportLevel::WithPaths,
        policy: ChaosPolicy {
            drop_prob: 0.45,
            ..ChaosPolicy::seeded(3)
        },
        poll_every: 1,
        max_resync_rounds: 0,
        ..ChaosScenario::default()
    };
    let def = SimpleViewDef::new("CV", "croot", "a.b");
    let store = mini_store();
    let updates = update_stream();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _ = assert_recovers(&def, &store, &updates, &sc);
    }));
    assert!(
        result.is_err(),
        "zero resync budget under report loss must fail recovery"
    );

    // The ring was drained into last_dump by on_failure.
    let dump = recorder.last_dump();
    assert!(!dump.is_empty(), "failure must dump the ring");

    // Causal chain: a maintenance span parented inside a report
    // handling span, plus source store mutations and the failure
    // record itself.
    let report_span = dump
        .iter()
        .find(|r| {
            r.event.name == "warehouse.handle_report" && r.event.kind == obs::EventKind::SpanStart
        })
        .expect("dump must contain a report handling span");
    assert!(
        dump.iter().any(|r| {
            r.event.kind == obs::EventKind::SpanStart
                && r.event.name.starts_with("maint.")
                && dump.iter().any(|p| {
                    p.event.kind == obs::EventKind::SpanStart
                        && p.event.name == "warehouse.handle_report"
                        && p.event.span == r.event.parent
                })
        }),
        "dump must contain a maintenance span parented in a report span; got {:?}",
        dump.iter().map(|r| r.event.name).collect::<Vec<_>>()
    );
    assert!(
        dump.iter().any(|r| r.event.name == "store.apply"),
        "dump must contain store mutations"
    );
    assert!(
        dump.iter().any(|r| r.event.name == "failure"),
        "dump must contain the failure record"
    );
    // Chaos injections were traced too (drop_prob 0.45 over 17 ops).
    assert!(
        dump.iter().any(|r| r.event.name == "chaos.inject"),
        "dump must contain chaos injections"
    );
    let _ = report_span;

    // The JSON-lines dump on disk is non-empty and schema-valid, and
    // now carries the metrics snapshot alongside the event ring — a
    // failure dump without counters was telemetry-blind.
    let text = std::fs::read_to_string(&dump_path).expect("OBS_DUMP_PATH must be written");
    let lines = obs::export::validate_json_lines(&text).expect("dump must be schema-valid");
    assert!(lines > 0, "dump file must be non-empty");
    assert!(
        lines >= dump.len(),
        "file dump must contain at least every ring event"
    );
    assert!(
        text.lines().any(|l| l.contains("\"kind\":\"counter\"")),
        "dump must include counter metric lines"
    );
    assert!(
        text.lines().any(|l| l.contains("\"kind\":\"histogram\"")),
        "dump must include histogram metric lines with quantile estimates"
    );
    std::fs::remove_file(&dump_path).ok();
}
