//! Integration tests for the advanced view machinery: clusters,
//! partial materialization, swizzle-based access control, timestamps,
//! and compound/wildcard/DAG maintenance working together.

use gsview::gsdb::{samples, Oid, Store, Update};
use gsview::query::{evaluate, parse_query, CmpOp, PathExpr, Pred};
use gsview::views::{
    access::{Authorizer, Enforcement},
    annotate::{timestamp_all, timestamp_of, LogicalClock},
    recompute::recompute,
    CompoundMaintainer, CompoundViewDef, LocalBase, Maintainer, MaterializedView, PartialView,
    SimpleViewDef, ViewCluster, ViewDelta,
};

fn oid(s: &str) -> Oid {
    Oid::new(s)
}

fn person_store() -> Store {
    let mut s = Store::new();
    samples::person_db(&mut s).unwrap();
    s
}

fn yp_def(view: &str) -> SimpleViewDef {
    SimpleViewDef::new(view, "ROOT", "professor").with_cond("age", Pred::new(CmpOp::Le, 45i64))
}

/// §3.2: swizzle, strip base OIDs, and confirm the view is now a
/// self-contained database that WITHIN restricts correctly.
#[test]
fn swizzled_stripped_view_is_self_contained() {
    let store = person_store();
    let def = SimpleViewDef::new("MV", "ROOT", "professor");
    let mut mv = recompute(&def, &mut LocalBase::new(&store)).unwrap();
    // Also include the student so an intra-view edge exists.
    let p3 = store.get(oid("P3")).unwrap().clone();
    mv.v_insert(&p3).unwrap();
    mv.swizzle().unwrap();
    mv.strip_base_oids().unwrap();
    // Every OID inside delegate values is now a view OID.
    for d in mv.members_delegates() {
        for c in mv.delegate(d).unwrap().children() {
            assert!(
                c.name().starts_with("MV."),
                "leaked base OID {c} in {d}"
            );
        }
    }
    // Queries over the view database cannot escape it.
    let q = parse_query("SELECT MV.professor.student X").unwrap();
    let ans = evaluate(mv.store(), &q).unwrap();
    assert_eq!(ans.oids, vec![Oid::delegate(oid("MV"), oid("P3"))]);
}

/// §3.2: timestamps are auxiliary subobjects that queries can reach —
/// "something they could not do on the equivalent virtual view".
#[test]
fn timestamps_are_queryable() {
    let store = person_store();
    let def = yp_def("TS");
    let mut mv = recompute(&def, &mut LocalBase::new(&store)).unwrap();
    let mut clock = LogicalClock::new();
    timestamp_all(&mut mv, &mut clock).unwrap();
    let d = mv.delegate_of(oid("P1")).unwrap();
    assert_eq!(timestamp_of(&mv, d), Some(1));
    let q = parse_query("SELECT TS.professor.timestamp X").unwrap();
    let ans = evaluate(mv.store(), &q).unwrap();
    assert_eq!(ans.oids.len(), 1);
}

/// View deltas stream outward for downstream consumers.
#[test]
fn view_deltas_stream() {
    let mut store = person_store();
    let def = yp_def("VD");
    let m = Maintainer::new(def.clone());
    let mut mv = recompute(&def, &mut LocalBase::new(&store)).unwrap();
    mv.record_deltas(true);
    let up = store.modify_atom(oid("A1"), 99i64).unwrap();
    m.apply(&mut mv, &mut LocalBase::new(&store), &up).unwrap();
    let up = store.modify_atom(oid("A1"), 20i64).unwrap();
    m.apply(&mut mv, &mut LocalBase::new(&store), &up).unwrap();
    let deltas = mv.drain_deltas();
    assert_eq!(
        deltas,
        vec![
            ViewDelta::Deleted {
                base: oid("P1"),
                delegate: Oid::delegate(oid("VD"), oid("P1")),
            },
            ViewDelta::Inserted {
                base: oid("P1"),
                delegate: Oid::delegate(oid("VD"), oid("P1")),
            },
        ]
    );
}

/// A cluster of three overlapping views shares delegates and stays
/// correct under churn.
#[test]
fn cluster_of_three_views_under_churn() {
    let mut store = person_store();
    let mut cluster = ViewCluster::new("C3");
    cluster
        .add_view(yp_def("CV1"), &mut LocalBase::new(&store))
        .unwrap();
    cluster
        .add_view(
            SimpleViewDef::new("CV2", "ROOT", "professor")
                .with_cond("name", Pred::new(CmpOp::Eq, "John")),
            &mut LocalBase::new(&store),
        )
        .unwrap();
    cluster
        .add_view(SimpleViewDef::new("CV3", "ROOT", "professor"), &mut LocalBase::new(&store))
        .unwrap();
    // P1 in all three, P2 only in CV3 → 2 delegates.
    assert_eq!(cluster.delegate_count(), 2);

    let updates = vec![
        Update::modify("A1", 80i64), // P1 leaves CV1
        Update::modify("N1", "Jim"), // P1 leaves CV2
        Update::delete("ROOT", "P1"), // P1 leaves CV3 → delegate GCed
    ];
    for u in updates {
        let applied = store.apply(u).unwrap();
        cluster.apply(&mut LocalBase::new(&store), &applied).unwrap();
    }
    assert!(cluster.members_of(oid("CV1")).is_empty());
    assert!(cluster.members_of(oid("CV2")).is_empty());
    assert_eq!(cluster.members_of(oid("CV3")), vec![oid("P2")]);
    assert_eq!(cluster.delegate_count(), 1);
    assert!(!cluster.store().contains(Oid::delegate(oid("C3"), oid("P1"))));
}

/// Partial views cache "some but not all data of interest" and stay
/// fresh as members and their copied regions change.
#[test]
fn partial_view_end_to_end() {
    let mut store = person_store();
    let mut pv = PartialView::materialize(yp_def("PV"), 1, &mut LocalBase::new(&store)).unwrap();
    assert_eq!(pv.members(), vec![oid("P1")]);
    // The copied region answers queries locally; below the horizon,
    // pointers lead back to base data.
    let p1d = pv.delegate_of(oid("P1")).unwrap();
    let p3d = pv.delegate_of(oid("P3")).unwrap();
    assert!(pv.store().get(p1d).unwrap().children().contains(&p3d));
    assert!(pv.store().get(p3d).unwrap().children().contains(&oid("N3")));

    // Members leave; their copies vanish.
    let up = store.modify_atom(oid("A1"), 90i64).unwrap();
    pv.apply(&mut LocalBase::new(&store), &up).unwrap();
    assert!(pv.members().is_empty());
    assert_eq!(pv.copied_count(), 0);
}

/// Compound views behave like the union of their branches against the
/// underlying query semantics.
#[test]
fn compound_view_equals_query_union() {
    let mut store = person_store();
    let def = CompoundViewDef::new(
        "CU",
        vec![
            SimpleViewDef::new("_", "ROOT", "professor")
                .with_cond("age", Pred::new(CmpOp::Le, 45i64)),
            SimpleViewDef::new("_", "ROOT", "secretary"),
        ],
    );
    let mut cm = CompoundMaintainer::new(&def);
    let mut mv = MaterializedView::new("CU");
    cm.initialize(&mut mv, &mut LocalBase::new(&store)).unwrap();
    assert_eq!(mv.members_base(), vec![oid("P1"), oid("P4")]);

    // Stream agreement with per-branch query evaluation.
    let updates = vec![
        Update::modify("A1", 99i64),
        Update::modify("A4", 10i64),
        Update::delete("ROOT", "P4"),
        Update::insert("ROOT", "P4"),
    ];
    for u in updates {
        let applied = store.apply(u).unwrap();
        cm.apply(&mut mv, &mut LocalBase::new(&store), &applied).unwrap();
        let q1 = parse_query("SELECT ROOT.professor X WHERE X.age <= 45").unwrap();
        let q2 = parse_query("SELECT ROOT.secretary X").unwrap();
        let mut expected: Vec<Oid> = evaluate(&store, &q1)
            .unwrap()
            .oids
            .into_iter()
            .chain(evaluate(&store, &q2).unwrap().oids)
            .collect();
        expected.sort_by_key(|o| o.name());
        expected.dedup();
        assert_eq!(mv.members_base(), expected, "after {applied}");
    }
}

/// Authorization via views composes with materialized views used as
/// ordinary databases (§3.1 + §3.2).
#[test]
fn authorizer_over_materialized_views() {
    let mut store = person_store();
    // Materialize the authorized set inside the base store as a
    // virtual view object (the authorizer unions view values).
    let vj = gsview::query::parse_viewdef(
        "define view AUTHV as: SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON",
    )
    .unwrap();
    gsview::views::virtualview::define_virtual_view(&mut store, &vj).unwrap();
    let mut auth = Authorizer::new(vec![oid("AUTHV")], Enforcement::AnsInt);
    let q = parse_query("SELECT ROOT.* X WHERE X.age >= 20").unwrap();
    let ans = auth.run(&mut store, &q).unwrap();
    // Only John-objects with qualifying ages — P1 (45) and P3 (20).
    assert_eq!(ans.oids, vec![oid("P1"), oid("P3")]);
}

/// Wildcard + DAG: the general maintainer works on the person DB
/// (which is a DAG: P3 has two parents).
#[test]
fn general_maintainer_on_dag_base() {
    use gsview::views::{GeneralMaintainer, GeneralViewDef};
    let mut store = person_store();
    let def = GeneralViewDef::new("GW", "ROOT", PathExpr::parse("*").unwrap()).with_cond(
        PathExpr::parse("age").unwrap(),
        Pred::new(CmpOp::Lt, 30i64),
    );
    let gm = GeneralMaintainer::new(def.clone());
    let mut mv = gm.recompute(&store).unwrap();
    // P3 (age 20) qualifies; reachable via two paths.
    assert_eq!(mv.members_base(), vec![oid("P3")]);
    let up = store.modify_atom(oid("A3"), 35i64).unwrap();
    let out = gm.apply(&mut mv, &store, &up).unwrap();
    assert!(out.relevant);
    assert!(mv.is_empty());
    // Agreement with evaluation after every step.
    let ans = evaluate(&store, &def.to_query()).unwrap();
    assert_eq!(mv.members_base(), ans.oids);
}
