//! One downstream-user scenario exercising the whole stack together:
//! load a database from the paper's notation, define views through the
//! catalog, churn the base with atomic batches, query with the
//! planner, screen a bulk update, aggregate, and apply an edge policy.

use gsview::gsdb::{notation, txn, Atom, Oid, Path, Store, Update};
use gsview::query::{evaluate, evaluate_planned, parse_query, CmpOp, Pred};
use gsview::views::{
    bulk::{view_unaffected, BulkUpdate},
    catalog::Catalog,
    recompute, AggFn, AggregateView, AggregateViewDef, EdgePolicy, LocalBase, SimpleViewDef,
};

fn oid(s: &str) -> Oid {
    Oid::new(s)
}

const LISTING: &str = "
    < EROOT, company, set, {E1,E2,E3,E4} >
    < E1, engineer, set, {EN1,EA1,ES1} >
    < EN1, name, string, 'Ada' >
    < EA1, age, integer, 36 >
    < ES1, salary, dollar, $120,000 >
    < E2, engineer, set, {EN2,EA2,ES2} >
    < EN2, name, string, 'Grace' >
    < EA2, age, integer, 52 >
    < ES2, salary, dollar, $150,000 >
    < E3, manager, set, {EN3,EA3,ES3} >
    < EN3, name, string, 'Edsger' >
    < EA3, age, integer, 44 >
    < ES3, salary, dollar, $90,000 >
    < E4, engineer, set, {EN4,EA4} >
    < EN4, name, string, 'Barbara' >
    < EA4, age, integer, 29 >
";

#[test]
fn full_stack_scenario() {
    // 1. Load the database from the paper's notation.
    let mut store = Store::new();
    let loaded = notation::load_listing(&mut store, LISTING).expect("notation parses");
    assert_eq!(loaded, 16);

    // 2. Define views through the catalog: one simple materialized,
    //    one wildcard materialized, one virtual.
    let mut catalog = Catalog::new();
    catalog
        .define(
            &mut store,
            "define mview YOUNG as: SELECT EROOT.engineer X WHERE X.age < 40",
        )
        .expect("simple mview");
    catalog
        .define(
            &mut store,
            "define mview WELLPAID as: SELECT EROOT.* X WHERE X.salary >= 100000",
        )
        .expect("wildcard mview");
    catalog
        .define(
            &mut store,
            "define view STAFF as: SELECT EROOT.? X",
        )
        .expect("virtual view");
    assert_eq!(
        catalog.materialized(oid("YOUNG")).unwrap().members_base(),
        vec![oid("E1"), oid("E4")]
    );
    assert_eq!(
        catalog.materialized(oid("WELLPAID")).unwrap().members_base(),
        vec![oid("E1"), oid("E2")]
    );

    // 3. Churn the base atomically: hire one engineer, age another —
    //    routed to every materialized view.
    let batch = vec![
        Update::Create {
            object: gsview::gsdb::Object::atom("EN5", "name", "Alan"),
        },
        Update::Create {
            object: gsview::gsdb::Object::atom("EA5", "age", 31i64),
        },
        Update::Create {
            object: gsview::gsdb::Object::set("E5", "engineer", &[oid("EN5"), oid("EA5")]),
        },
        Update::insert("EROOT", "E5"),
        Update::modify("EA1", 41i64),
    ];
    for applied in txn::apply_atomic(&mut store, batch).expect("valid batch") {
        catalog.handle_update(&store, &applied).expect("maintain");
    }
    assert_eq!(
        catalog.materialized(oid("YOUNG")).unwrap().members_base(),
        vec![oid("E4"), oid("E5")],
        "E1 aged out; E5 hired in"
    );

    // 4. Query with the planner; forward and backward agree.
    let q = parse_query("SELECT EROOT.*.salary X").expect("parse");
    let forward = evaluate(&store, &q).expect("forward");
    let (planned, _strategy) = evaluate_planned(&store, &q, 0.5).expect("planned");
    assert_eq!(forward.oids, planned.oids);
    assert_eq!(forward.oids.len(), 3);

    // 5. A bulk raise for managers provably cannot affect the
    //    engineers' age view — no maintenance needed.
    let raise = BulkUpdate {
        root: oid("EROOT"),
        sel_path: Path::parse("manager"),
        cond_path: Path::parse("name"),
        pred: Pred::new(CmpOp::Eq, "Edsger"),
        target_path: Path::parse("salary"),
        delta: 10_000,
    };
    let young_def = SimpleViewDef::new("YOUNG", "EROOT", "engineer")
        .with_cond("age", Pred::new(CmpOp::Lt, 40i64));
    assert!(view_unaffected(&young_def, &raise));
    let applied = raise.execute(&mut store).expect("raise");
    assert_eq!(applied.len(), 1);
    assert_eq!(store.atom(oid("ES3")), Some(&Atom::tagged("dollar", 100_000)));
    // (WELLPAID *is* affected — route the updates there via catalog.)
    for a in &applied {
        catalog.handle_update(&store, a).expect("maintain");
    }
    assert!(
        catalog
            .materialized(oid("WELLPAID"))
            .unwrap()
            .contains_base(oid("E3")),
        "the raise lifted the manager into WELLPAID"
    );

    // 6. Aggregate dashboard over the same base.
    let avg = AggregateViewDef::new(
        SimpleViewDef::new("AVGAGE", "EROOT", "engineer"),
        "age",
        AggFn::Avg,
    );
    let mut avg = AggregateView::materialize(avg, &mut LocalBase::new(&store)).expect("agg");
    let expected = (41.0 + 52.0 + 29.0 + 31.0) / 4.0;
    assert!((avg.total().unwrap() - expected).abs() < 1e-9);
    let up = store.modify_atom(oid("EA4"), 30i64).expect("birthday");
    avg.apply(&mut LocalBase::new(&store), &up).expect("maintain agg");
    assert!((avg.total().unwrap() - (41.0 + 52.0 + 30.0 + 31.0) / 4.0).abs() < 1e-9);

    // 7. Publish a salary-free copy of the engineers view.
    let pub_def = SimpleViewDef::new("PUB", "EROOT", "engineer");
    let mut public = recompute::recompute(&pub_def, &mut LocalBase::new(&store)).expect("pub");
    let hidden =
        gsview::views::apply_policy(&mut public, &store, &EdgePolicy::show_all().hide_child("salary"))
            .expect("policy");
    assert_eq!(hidden, 2, "ES1 and ES2 hidden");
    for d in public.members_delegates() {
        for &c in public.delegate(d).unwrap().children() {
            assert_ne!(store.label(c).map(|l| l.as_str()), Some("salary"));
        }
    }

    // 8. Everything still agrees with the oracle at the end.
    let expected = recompute::recompute_members(&young_def, &mut LocalBase::new(&store));
    assert_eq!(
        catalog.materialized(oid("YOUNG")).unwrap().members_base(),
        expected
    );
}
