//! Cross-crate conformance tests for the query language: parsing,
//! evaluation, scoping, and path-expression semantics on realistic
//! stores.

use gsview::gsdb::{samples, Object, Oid, Store};
use gsview::query::{
    evaluate, evaluate_into, parse_query, parse_statement, parse_viewdef, PathExpr, Statement,
};

fn oid(s: &str) -> Oid {
    Oid::new(s)
}

fn person_store() -> Store {
    let mut s = Store::new();
    samples::person_db(&mut s).unwrap();
    s
}

#[test]
fn statement_dispatch() {
    assert!(matches!(
        parse_statement("SELECT ROOT.a X").unwrap(),
        Statement::Query(_)
    ));
    assert!(matches!(
        parse_statement("define view V as: SELECT ROOT.a X").unwrap(),
        Statement::ViewDef(_)
    ));
    assert!(parse_viewdef("SELECT ROOT.a X").is_err());
    assert!(parse_query("define view V as: SELECT ROOT.a X").is_err());
}

#[test]
fn wildcard_queries_on_person_db() {
    let s = person_store();
    // All names at any depth.
    let q = parse_query("SELECT ROOT.*.name X").unwrap();
    let ans = evaluate(&s, &q).unwrap();
    assert_eq!(
        ans.oids,
        vec![oid("N1"), oid("N2"), oid("N3"), oid("N4")]
    );
    // One arbitrary step then age: only top-level persons' ages.
    let q = parse_query("SELECT ROOT.?.age X").unwrap();
    let ans = evaluate(&s, &q).unwrap();
    assert_eq!(ans.oids, vec![oid("A1"), oid("A3"), oid("A4")]);
    // Alternation.
    let q = parse_query("SELECT ROOT.(student|secretary).name X").unwrap();
    let ans = evaluate(&s, &q).unwrap();
    assert_eq!(ans.oids, vec![oid("N3"), oid("N4")]);
}

#[test]
fn conditions_across_atom_kinds() {
    let s = person_store();
    // Tagged dollar values compare numerically.
    let q = parse_query("SELECT ROOT.professor X WHERE X.salary >= 100000").unwrap();
    assert_eq!(evaluate(&s, &q).unwrap().oids, vec![oid("P1")]);
    // String equality with the paper's backquote style.
    let q = parse_query("SELECT ROOT.* X WHERE X.major = `education'").unwrap();
    assert_eq!(evaluate(&s, &q).unwrap().oids, vec![oid("P3")]);
    // contains (extension).
    let q = parse_query("SELECT ROOT.*.address X WHERE X contains 'Palo'").unwrap();
    assert_eq!(evaluate(&s, &q).unwrap().oids, vec![oid("ADD2")]);
}

#[test]
fn answers_are_queryable_objects() {
    // "A query answer is also an object" — and usable as an entry
    // point (query composition, §3).
    let mut s = person_store();
    let q = parse_query("SELECT ROOT.professor X WHERE X.age > 40").unwrap();
    evaluate_into(&mut s, &q, oid("ANS1")).unwrap();
    let q2 = parse_query("SELECT ANS1.?.name X").unwrap();
    let ans2 = evaluate(&s, &q2).unwrap();
    assert_eq!(ans2.oids, vec![oid("N1")]);
}

#[test]
fn queries_span_multiple_databases() {
    // §2: "the above query can span multiple databases ... the query
    // is insensitive to the 'location' of objects."
    let mut s = Store::new();
    samples::person_db(&mut s).unwrap();
    // A second store region (same Store, conceptually remote DB).
    s.create(Object::atom("REMOTE1", "age", 55i64)).unwrap();
    s.insert_edge(oid("P4"), oid("REMOTE1")).unwrap();
    let q = parse_query("SELECT ROOT.secretary X WHERE X.age > 50").unwrap();
    assert_eq!(evaluate(&s, &q).unwrap().oids, vec![oid("P4")]);
}

#[test]
fn path_expression_containment_api() {
    // §6: path containment for general path expressions.
    let star = PathExpr::parse("*").unwrap();
    let prof_any = PathExpr::parse("professor.*").unwrap();
    let prof_age = PathExpr::parse("professor.age").unwrap();
    assert!(PathExpr::contains(&star, &prof_any));
    assert!(PathExpr::contains(&star, &prof_age));
    assert!(PathExpr::contains(&prof_any, &prof_age));
    assert!(!PathExpr::contains(&prof_age, &prof_any));
    assert!(!PathExpr::contains(&prof_any, &star));
}

#[test]
fn cyclic_data_is_queryable() {
    // The evaluator's product construction terminates on cycles.
    let mut s = Store::new();
    s.create(Object::empty_set("ca", "x")).unwrap();
    s.create(Object::empty_set("cb", "x")).unwrap();
    s.create(Object::atom("cv", "v", 3i64)).unwrap();
    s.insert_edge(oid("ca"), oid("cb")).unwrap();
    s.insert_edge(oid("cb"), oid("ca")).unwrap();
    s.insert_edge(oid("cb"), oid("cv")).unwrap();
    let q = parse_query("SELECT ca.*.v X").unwrap();
    assert_eq!(evaluate(&s, &q).unwrap().oids, vec![oid("cv")]);
}

#[test]
fn evaluation_stats_expose_query_effort() {
    let s = person_store();
    let cheap = parse_query("SELECT ROOT.professor X").unwrap();
    let costly = parse_query("SELECT ROOT.* X WHERE X.name = 'John'").unwrap();
    let c1 = evaluate(&s, &cheap).unwrap().stats;
    let c2 = evaluate(&s, &costly).unwrap().stats;
    assert!(c2.sel_states_visited > c1.sel_states_visited);
    assert!(c2.cond_states_visited > 0);
    assert_eq!(c1.candidates_tested, 0, "no WHERE clause");
}
