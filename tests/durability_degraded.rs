//! Regression tests for the sticky `durability_degraded` health flag
//! (ISSUE 9 bugfix): `Source::attach_durable` used to swallow persist
//! errors behind the publish point with only a counter/event, so a
//! dead disk silently cost every subsequent epoch its durability.
//! Now the hook retries a bounded number of times, latches a sticky
//! health flag on exhaustion, and the recorded error is surfaced on
//! the next explicit `persist_now` call.

use gsview::durable::{
    ChaosController, ChaosPolicy, CrashPlan, CrashPoint, DurableStore, FsMedia, Media, MediaSet,
};
use gsview::gsdb::{samples, Oid, Update};
use gsview::warehouse::{ReportLevel, Source};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn person_source() -> Source {
    let src = Source::empty("persons", Oid::new("ROOT"), ReportLevel::WithValues);
    src.with_store(|s| samples::person_db(s).map(|_| ()))
        .unwrap();
    src.with_store(|s| {
        s.drain_log();
    });
    src
}

/// A real-file media with a kill switch: once `fail` is set every
/// write and sync returns a persistent I/O error, exactly like a disk
/// that dropped off the bus. Reads keep working (the page cache
/// outlives the device in this failure mode too).
struct FailSwitchFs {
    inner: FsMedia,
    fail: Arc<AtomicBool>,
}

impl Media for FailSwitchFs {
    fn len(&self) -> u64 {
        self.inner.len()
    }
    fn read_at(&self, off: u64, len: usize) -> gsview::durable::Result<Vec<u8>> {
        self.inner.read_at(off, len)
    }
    fn write_at(&self, off: u64, data: &[u8], point: CrashPoint) -> gsview::durable::Result<()> {
        if self.fail.load(Ordering::Acquire) {
            return Err(gsview::durable::DurableError::Io(
                "injected: device unavailable".into(),
            ));
        }
        self.inner.write_at(off, data, point)
    }
    fn sync(&self, point: CrashPoint) -> gsview::durable::Result<()> {
        if self.fail.load(Ordering::Acquire) {
            return Err(gsview::durable::DurableError::Io(
                "injected: device unavailable".into(),
            ));
        }
        self.inner.sync(point)
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gsview-degraded-{tag}-{}", std::process::id()))
}

fn failing_fs_media(dir: &std::path::Path, fail: &Arc<AtomicBool>) -> MediaSet {
    std::fs::create_dir_all(dir).unwrap();
    let open = |name: &str| FailSwitchFs {
        inner: FsMedia::open(&dir.join(name)).unwrap(),
        fail: Arc::clone(fail),
    };
    MediaSet {
        segment: Arc::new(open("segment.gsd")),
        log: Arc::new(open("epochs.gsl")),
        root: Arc::new(open("root.gsr")),
    }
}

/// FsMedia under a persistent write failure: the hook latches the
/// sticky flag, the first explicit persist surfaces the recorded
/// error, and after the device returns a second explicit persist
/// re-baselines and clears the flag — with the re-baseline visible in
/// the on-disk lineage.
#[test]
fn fs_write_failure_latches_flag_and_explicit_persist_surfaces_it() {
    let dir = scratch_dir("fs");
    let _ = std::fs::remove_dir_all(&dir);
    let fail = Arc::new(AtomicBool::new(false));
    let durable = Arc::new(DurableStore::open(failing_fs_media(&dir, &fail)).unwrap());

    let src = person_source();
    src.attach_durable(Arc::clone(&durable)).unwrap();
    assert!(!src.durability_degraded());
    assert_eq!(src.durability_error(), None);

    // Healthy epoch persists fine; the flag stays clear.
    src.apply(Update::modify("A1", 80i64)).unwrap();
    assert!(!src.durability_degraded());

    // The disk dies. The publish hook exhausts its retries; the
    // in-memory commit still succeeds (persistence is behind the
    // publish point) but the flag latches.
    fail.store(true, Ordering::Release);
    src.apply(Update::modify("A1", 30i64)).unwrap();
    assert!(src.durability_degraded(), "hook failure must latch the flag");
    let err = src.durability_error().expect("error must be recorded");
    assert!(err.contains("attempts"), "error names the retry budget: {err}");

    // Later hook failures keep the *first* error (it names the start
    // of the lineage hole).
    src.apply(Update::modify("A3", 28i64)).unwrap();
    assert_eq!(src.durability_error().as_deref(), Some(err.as_str()));

    // First explicit persist surfaces the recorded error instead of
    // writing — even if the device has come back in the meantime.
    fail.store(false, Ordering::Release);
    let surfaced = src.persist_now(&durable).unwrap_err();
    assert!(
        surfaced.to_string().contains("durability degraded"),
        "explicit persist must surface the degraded state: {surfaced}"
    );
    assert!(src.durability_degraded(), "flag stays latched until a re-baseline");

    // Second explicit persist re-baselines and clears the flag.
    let receipt = src.persist_now(&durable).unwrap();
    assert_eq!(receipt.epoch, src.epoch());
    assert!(!src.durability_degraded());
    assert_eq!(src.durability_error(), None);

    // The re-baseline is really on disk: a cold reopen of the same
    // directory recovers the post-outage state.
    drop(durable);
    let reopened = DurableStore::open(MediaSet::on_dir(&dir).unwrap()).unwrap();
    let rec = reopened.recover("persons").unwrap().expect("lineage on disk");
    assert_eq!(rec.manifest.epoch, src.epoch());
    let _ = std::fs::remove_dir_all(&dir);
}

/// ChaosController crash (every write fails until heal): same latch /
/// surface / re-baseline story, and background successes after heal
/// do NOT clear the sticky flag on their own.
#[test]
fn chaos_crash_degrades_until_explicit_rebaseline() {
    let ctl = ChaosController::new(ChaosPolicy::seeded(9), CrashPlan::default());
    let durable = Arc::new(DurableStore::open(MediaSet::chaos(&ctl)).unwrap());
    let src = person_source();
    let baseline = src.attach_durable(Arc::clone(&durable)).unwrap();

    // Kill the media at the very next op: every write from here on
    // fails until the controller heals it.
    ctl.heal(CrashPlan { kill_at_op: 1 });
    src.apply(Update::modify("A1", 80i64)).unwrap();
    assert!(ctl.crashed());
    assert!(src.durability_degraded());

    // Media comes back. Background persists succeed again, but the
    // flag is sticky: the epochs lost during the outage left a hole
    // that only an acknowledged re-baseline supersedes.
    ctl.heal(CrashPlan::default());
    src.apply(Update::modify("A1", 44i64)).unwrap();
    assert!(
        src.durability_degraded(),
        "background success must not clear the sticky flag"
    );

    // Surface, then re-baseline.
    assert!(src.persist_now(&durable).is_err());
    let receipt = src.persist_now(&durable).unwrap();
    assert!(receipt.epoch > baseline.epoch);
    assert!(!src.durability_degraded());

    // The recovered image reflects the re-baselined epoch, not the
    // pre-outage lineage tail.
    let rec = durable.recover("persons").unwrap().unwrap();
    assert_eq!(rec.manifest.epoch, src.epoch());
}
